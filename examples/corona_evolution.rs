//! The §7.4 CorONA experiment: a simulated Pastry ring of host-node
//! objects starts with no caching, evolves at run time to PC-Pastry
//! passive caching and then to Beehive proactive replication — by view
//! changes on the live host-node objects only.
//!
//! Run with: `cargo run --release --example corona_evolution`

use corona::{run_evolution, ExperimentConfig};

fn main() {
    let report = run_evolution(ExperimentConfig::default());
    println!("CorONA evolution experiment (128 nodes, Zipf 1.0, 5000 queries/phase)");
    println!(
        "  plain corona : {:.2} avg hops, {:>4.0}% served early",
        report.plain.avg_hops,
        report.plain.early_hit_rate * 100.0
    );
    println!(
        "  PCCorONA     : {:.2} avg hops, {:>4.0}% served early",
        report.passive.avg_hops,
        report.passive.early_hit_rate * 100.0
    );
    println!(
        "  BeeCorONA    : {:.2} avg hops, {:>4.0}% served early",
        report.active.avg_hops,
        report.active.early_hit_rate * 100.0
    );
    println!(
        "  evolution touched {} host-node references; identity preserved: {}",
        report.nodes_touched, report.identity_preserved
    );
}
