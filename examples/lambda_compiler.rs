//! The §7.3 lambda compiler (Fig. 20): base / pair / sum / sumpair
//! families with *in-place translation*. `sumpair` composes both
//! extensions with sharing declarations only — zero translation code.
//!
//! Run with: `cargo run --example lambda_compiler`

use jns_core::{lambda, Compiler};

fn main() -> Result<(), jns_core::Error> {
    let main_body = r#"
        // (fn f. f <a, inl b>) — a term using pairs AND sums, in sumpair.
        final sumpair!.Exp term = new sumpair.Abs { x = "f",
          e = new sumpair.App {
            f = new sumpair.Var { x = "f" },
            a = new sumpair.Pair {
              fst = new sumpair.Var { x = "a" },
              snd = new sumpair.Inj1 { e = new sumpair.Var { x = "b" } } } } };
        print "source (sumpair family):";
        print term.show();

        final sumpair!.Translator tr = new sumpair.Translator();
        final base!.Exp out = term.translate(tr);
        print "translated (base family, pure lambda calculus):";
        print out.show();
        print "nodes reused in place:";
        print tr.reusedAbs + tr.reusedApp;
        print "nodes rebuilt:";
        print tr.rebuilt;
    "#;
    let source = lambda::program(main_body);
    let out = Compiler::new().compile(&source)?.run()?;
    for line in out.output {
        println!("{line}");
    }
    Ok(())
}
