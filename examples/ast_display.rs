//! The paper's running example (Figures 1-3): an expression family `AST`
//! adapted *in place* with GUI display behaviour from `TreeDisplay` via
//! the composed, class-sharing family `ASTDisplay`.
//!
//! A whole tree built by AST-only code gains `display` with a single view
//! change on the root; children are re-viewed lazily as they are reached.
//!
//! Run with: `cargo run --example ast_display`

use jns_core::Compiler;

const FAMILIES: &str = r#"
class AST {
  class Exp { str text = "?"; }
  class Value extends Exp { }
  class Binary extends Exp { Exp l; Exp r; }
}
class TreeDisplay {
  class Node { str display() { return "<node>"; } }
  class Composite extends Node { }
  class Leaf extends Node { }
}
class ASTDisplay extends AST & TreeDisplay {
  class Exp extends Node shares AST.Exp {
    str display() { return this.text; }
  }
  class Value extends Exp & Leaf shares AST.Value { }
  class Binary extends Exp & Composite shares AST.Binary {
    str display() {
      return "(" + this.l.display() + " " + this.text + " " + this.r.display() + ")";
    }
  }
  str show(AST!.Exp e) sharing AST!.Exp = Exp {
    final Exp temp = (view Exp)e;
    return temp.display();
  }
}
"#;

fn main() -> Result<(), jns_core::Error> {
    let main_body = r#"
        // Library code that knows nothing about TreeDisplay builds a tree:
        final AST!.Exp x = new AST.Value { text = "x" };
        final AST!.Exp y = new AST.Value { text = "y" };
        final AST!.Exp lhs = new AST.Binary { text = "*", l = x, r = y };
        final AST!.Exp one = new AST.Value { text = "1" };
        final AST!.Exp root = new AST.Binary { text = "+", l = lhs, r = one };

        // Family adaptation (Fig. 3): the ASTDisplay family displays the
        // existing objects, no copies made.
        final ASTDisplay d = new ASTDisplay();
        print d.show(root);
    "#;
    let source = format!("{FAMILIES}\nmain {{\n{main_body}\n}}");
    let out = Compiler::new().compile(&source)?.run()?;
    for line in out.output {
        println!("{line}");
    }
    Ok(())
}
