//! The §2.4 dynamic-evolution example (Fig. 4): a running network service
//! gains logging behaviour through one view change on its dispatcher —
//! no restart, identity and state preserved, old references unaffected.
//!
//! Run with: `cargo run --example service_evolution`

use jns_core::{service, Compiler};

fn main() -> Result<(), jns_core::Error> {
    let main_body = r#"
        final service!.SomeService s = new service.SomeService();
        final service!.EchoService e = new service.EchoService();
        final service!.Dispatcher d = new service.Dispatcher { s = s, e = e };
        final Server srv = new Server { disp = d };
        final service!.Packet p = new service.Packet { kind = 0, payload = "req" };

        print "before evolution:";
        print d.dispatch(p);

        srv.evolve(); // one view change inside: service -> logService

        print "after evolution (same objects, new family):";
        final logService!.Dispatcher d2 = (cast logService!.Dispatcher)srv.disp;
        final logService!.Packet q = (view logService!.Packet)p;
        print d2.dispatch(q);
        print "handled count carried across evolution:";
        print s.handled;
    "#;
    let source = service::program(main_body);
    let out = Compiler::new().compile(&source)?.run()?;
    for line in out.output {
        println!("{line}");
    }
    Ok(())
}
