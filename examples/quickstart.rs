//! Quickstart: compile and run a J&s program that shares a class between
//! two families, views an object from either side, and shows that object
//! identity survives the view change.
//!
//! Run with: `cargo run --example quickstart`

use jns_core::Compiler;

fn main() -> Result<(), jns_core::Error> {
    let source = r#"
        // A base family with one class...
        class A {
          class C {
            int x = 1;
            str who() { return "A"; }
          }
        }
        // ...and a derived family that *shares* it: A.C and B.C have the
        // same set of instances; which behaviour you get depends on the
        // view of the reference you use.
        class B extends A {
          class C shares A.C {
            str who() { return "B"; }
          }
        }
        main {
          final A!.C a = new A.C();
          print a.who();                 // "A"
          final B!.C b = (view B!.C)a;   // same object, new view
          print b.who();                 // "B"
          print a.who();                 // still "A": views are per reference
          print a == b;                  // true: identity is preserved
          b.x = 42;
          print a.x;                     // 42: one object, one field
        }
    "#;
    let output = Compiler::new().compile(source)?.run()?;
    for line in output.output {
        println!("{line}");
    }
    Ok(())
}
