//! `obs-check` — validates the machine-readable observability artifacts
//! the `jns` CLI emits, so CI can smoke-test the schemas end to end:
//!
//!   obs-check profile <file.json>   a `jns-profile/1` document
//!                                   (from `--profile-json`; the optional
//!                                   `samples` section is checked too)
//!   obs-check trace <file.jsonl>    a `jns-trace/1` JSON Lines stream
//!                                   (from `--trace`)
//!   obs-check bench <file.json>     a `jns-bench/2` suite document
//!                                   (from `jns bench` / `jns bench-serve`;
//!                                   the legacy `jns-bench/1` layout is
//!                                   still accepted)
//!   obs-check folded <file.txt>     collapsed-stack sampler output
//!                                   (from `--profile-folded`)
//!
//! Exits 0 when the artifact parses and conforms; prints the first
//! violation and exits 1 otherwise.

use jns_obs::Json;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: obs-check profile|trace|bench|folded <file>");
    ExitCode::FAILURE
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn check_profile(path: &str) -> Result<(), String> {
    let text = read(path)?;
    let doc = jns_obs::json::parse(text.trim())?;
    jns_obs::validate_profile(&doc)
}

/// Validates the JSONL stream: a `trace_start` header carrying the
/// schema id and an accurate event count, then one well-formed event
/// object per line with a known `ev` tag and a numeric timestamp.
fn check_trace(path: &str) -> Result<(), String> {
    let text = read(path)?;
    let mut lines = text.lines().enumerate();
    let Some((_, header)) = lines.next() else {
        return Err("empty trace file".to_string());
    };
    let header = jns_obs::json::parse(header)?;
    if header.get("ev").and_then(Json::as_str) != Some("trace_start") {
        return Err("first line must be the trace_start header".to_string());
    }
    if header.get("schema").and_then(Json::as_str) != Some(jns_obs::TRACE_SCHEMA) {
        return Err(format!("header schema must be {:?}", jns_obs::TRACE_SCHEMA));
    }
    let declared = header
        .get("events")
        .and_then(Json::as_u64)
        .ok_or("header needs a numeric `events` count")?;
    if header.get("dropped").and_then(Json::as_u64).is_none() {
        return Err("header needs a numeric `dropped` count".to_string());
    }
    let mut seen = 0u64;
    let mut last_t = 0u64;
    for (i, line) in lines {
        let ev = jns_obs::json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let t = ev
            .get("t_us")
            .and_then(Json::as_u64)
            .ok_or(format!("line {}: missing numeric t_us", i + 1))?;
        if t < last_t {
            return Err(format!("line {}: timestamps must be non-decreasing", i + 1));
        }
        last_t = t;
        let tag = ev
            .get("ev")
            .and_then(Json::as_str)
            .ok_or(format!("line {}: missing ev tag", i + 1))?;
        let required: &[&str] = match tag {
            "phase" => &["name", "micros"],
            "request_start" => &["id"],
            "request_end" => &["id", "ok", "queue_us", "exec_us"],
            "gc" => &["kind", "reclaimed", "live", "peak_live", "pause_us"],
            "ic_miss" => &["kind", "site", "view"],
            other => return Err(format!("line {}: unknown ev tag {other:?}", i + 1)),
        };
        for key in required {
            if ev.get(key).is_none() {
                return Err(format!("line {}: {tag} event needs `{key}`", i + 1));
            }
        }
        seen += 1;
    }
    if seen != declared {
        return Err(format!(
            "header declares {declared} events, file has {seen}"
        ));
    }
    Ok(())
}

fn check_bench(path: &str) -> Result<(), String> {
    let text = read(path)?;
    let doc = jns_obs::json::parse(text.trim())?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(jns_obs::BENCH_SCHEMA) => jns_obs::validate_bench(&doc),
        Some("jns-bench/1") => check_bench_v1(&doc),
        _ => Err(format!(
            "schema must be {:?} (or the legacy \"jns-bench/1\")",
            jns_obs::BENCH_SCHEMA
        )),
    }
}

/// The legacy single-shot `jns bench-serve` layout, kept readable so
/// pinned artifacts from older commits still validate.
fn check_bench_v1(doc: &Json) -> Result<(), String> {
    if doc.get("workload").and_then(Json::as_str).is_none() {
        return Err("missing string `workload`".to_string());
    }
    if doc.get("speedup").and_then(Json::as_f64).is_none() {
        return Err("missing numeric `speedup`".to_string());
    }
    for arm in ["single", "multi"] {
        let a = doc.get(arm).ok_or(format!("missing `{arm}` arm"))?;
        for key in ["workers", "requests", "elapsed_us"] {
            if a.get(key).and_then(Json::as_u64).is_none() {
                return Err(format!("`{arm}` needs numeric `{key}`"));
            }
        }
        if a.get("rps").and_then(Json::as_f64).is_none() {
            return Err(format!("`{arm}` needs numeric `rps`"));
        }
        for hist in ["queue_wait_us", "exec_us"] {
            let h = a.get(hist).ok_or(format!("`{arm}` needs `{hist}`"))?;
            for key in ["count", "p50", "p90", "p99", "max"] {
                if h.get(key).and_then(Json::as_u64).is_none() {
                    return Err(format!("`{arm}.{hist}` needs numeric `{key}`"));
                }
            }
        }
    }
    Ok(())
}

fn check_folded(path: &str) -> Result<(), String> {
    let text = read(path)?;
    jns_obs::validate_folded(&text)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [kind, path] = args.as_slice() else {
        return usage();
    };
    let result = match kind.as_str() {
        "profile" => check_profile(path),
        "trace" => check_trace(path),
        "bench" => check_bench(path),
        "folded" => check_folded(path),
        _ => return usage(),
    };
    match result {
        Ok(()) => {
            println!("{path}: ok ({kind})");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{path}: invalid {kind}: {e}");
            ExitCode::FAILURE
        }
    }
}
