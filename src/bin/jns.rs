//! `jns` — command-line interpreter and serving driver for the J&s
//! language.
//!
//! Usage:
//!   jns run [--vm] [--stats] [--max-depth N] [--heap-limit N] <file.jns>
//!       parse, type-check, and run a program (tree-walking interpreter
//!       by default; `--vm` selects the bytecode VM; `--stats` prints
//!       execution statistics, inline-cache hit rates, and the VM's
//!       per-chunk instruction profile; `--max-depth` bounds J&s
//!       recursion — both backends run on explicit heap stacks, so deep
//!       limits are safe and exhaustion is a clean runtime error;
//!       `--heap-limit` bounds the live heap — reaching it triggers a
//!       mark-compact tracing collection on the shared heap)
//!   jns check <file.jns>
//!       type-check only
//!   jns serve [--workers N] [--requests N] [--queue N] [--max-depth N]
//!             [--heap-limit N] [--stats] <file.jns>
//!       compile once, then replay the program's entrypoint N times
//!       across a pool of worker VMs (heap reset per request; with
//!       `--heap-limit`, tracing GC *within* each request too) and
//!       report throughput
//!   jns bench-serve [--workers N] [--requests N] [--packets N]
//!       the §2.4 service-dispatch batch workload on 1 worker and on N
//!       workers, with the speedup
//!   jns --help

use jns_core::{Backend, Compiler, RunOutput};
use jns_serve::{serve_batch, ServeConfig};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: jns run [--vm] [--stats] [--max-depth N] [--heap-limit N] <file.jns>\n\
         \x20      jns check <file.jns>\n\
         \x20      jns serve [--workers N] [--requests N] [--queue N] [--max-depth N] [--heap-limit N] [--stats] <file.jns>\n\
         \x20      jns bench-serve [--workers N] [--requests N] [--packets N]"
    );
    ExitCode::FAILURE
}

/// Pulls `--flag N` out of `args`; returns the default when absent.
fn take_opt(args: &mut Vec<String>, flag: &str, default: u64) -> Result<u64, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(default);
    };
    if i + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let v = args.remove(i + 1);
    args.remove(i);
    v.parse::<u64>()
        .map_err(|_| format!("{flag}: bad number `{v}`"))
}

/// Pulls `--flag N` out of `args`; returns `None` when absent.
fn take_opt_maybe(args: &mut Vec<String>, flag: &str) -> Result<Option<u64>, String> {
    if !args.iter().any(|a| a == flag) {
        return Ok(None);
    }
    take_opt(args, flag, 0).map(Some)
}

/// Pulls `--max-depth N` out of `args` (clamped to `u32`), reporting
/// parse errors itself so callers can `?`-style early-return.
fn take_max_depth(args: &mut Vec<String>) -> Result<Option<u32>, ExitCode> {
    match take_opt_maybe(args, "--max-depth") {
        Ok(d) => Ok(d.map(|n| n.min(u64::from(u32::MAX)) as u32)),
        Err(m) => {
            eprintln!("error: {m}");
            Err(ExitCode::FAILURE)
        }
    }
}

/// Pulls `--heap-limit N` (live objects before a tracing collection).
fn take_heap_limit(args: &mut Vec<String>) -> Result<Option<usize>, ExitCode> {
    match take_opt_maybe(args, "--heap-limit") {
        Ok(l) => Ok(l.map(|n| n.max(1) as usize)),
        Err(m) => {
            eprintln!("error: {m}");
            Err(ExitCode::FAILURE)
        }
    }
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != flag);
    args.len() != before
}

fn print_stats(out: &RunOutput) {
    let s = &out.stats;
    eprintln!("steps           {}", s.steps);
    eprintln!("allocs          {}", s.allocs);
    eprintln!("calls           {}", s.calls);
    eprintln!("views explicit  {}", s.views_explicit);
    eprintln!("views implicit  {}", s.views_implicit);
    eprintln!("mask allocs     {}", s.mask_allocs);
    eprintln!("folded ops      {}", s.folded);
    eprintln!("peak live heap  {}", s.peak_live);
    if s.gc_runs > 0 {
        eprintln!(
            "gc              {} runs, {} objects reclaimed",
            s.gc_runs, s.reclaimed
        );
    }
    let probes = s.ic_hits + s.ic_misses;
    if probes > 0 {
        eprintln!(
            "inline caches   {} hits / {} misses ({:.1}% hit rate)",
            s.ic_hits,
            s.ic_misses,
            100.0 * s.ic_hits as f64 / probes as f64
        );
    }
    if !out.chunk_profile.is_empty() {
        eprintln!("hottest chunks:");
        for (name, n) in out.chunk_profile.iter().take(8) {
            eprintln!("  {n:>10}  {name}");
        }
    }
}

fn compile_file(
    path: &str,
    backend: Backend,
    max_depth: Option<u32>,
    heap_limit: Option<usize>,
) -> Result<jns_core::Compiled, ExitCode> {
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return Err(ExitCode::FAILURE);
        }
    };
    let mut compiler = Compiler::new().with_backend(backend);
    if let Some(d) = max_depth {
        compiler = compiler.with_max_depth(d);
    }
    if let Some(l) = heap_limit {
        compiler = compiler.with_heap_limit(l);
    }
    match compiler.compile(&src) {
        Ok(c) => Ok(c),
        Err(e) => {
            eprintln!("{e}");
            if let jns_core::Error::Parse(pe) = &e {
                eprintln!("{}", jns_syntax::render_snippet(&src, pe.span));
            }
            Err(ExitCode::FAILURE)
        }
    }
}

fn cmd_run(mut args: Vec<String>) -> ExitCode {
    let backend = if take_flag(&mut args, "--vm") {
        Backend::Vm
    } else {
        Backend::TreeWalk
    };
    let stats = take_flag(&mut args, "--stats");
    let max_depth = match take_max_depth(&mut args) {
        Ok(d) => d,
        Err(code) => return code,
    };
    let heap_limit = match take_heap_limit(&mut args) {
        Ok(l) => l,
        Err(code) => return code,
    };
    let (check_only, path) = match args.as_slice() {
        [cmd, path] if cmd == "run" || cmd == "check" => (cmd == "check", path.clone()),
        _ => return usage(),
    };
    let compiled = match compile_file(&path, backend, max_depth, heap_limit) {
        Ok(c) => c,
        Err(code) => return code,
    };
    if check_only {
        println!("ok");
        return ExitCode::SUCCESS;
    }
    match compiled.run() {
        Ok(out) => {
            for line in &out.output {
                println!("{line}");
            }
            if stats {
                print_stats(&out);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("runtime error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn report_serve(report: &jns_serve::ServeReport, show_stats: bool) {
    let ok = report.responses.iter().filter(|r| r.is_ok()).count();
    eprintln!(
        "{} requests ({} ok) on {} workers in {:.3}s — {:.1} req/s, {} heap objects reclaimed",
        report.responses.len(),
        ok,
        report.workers,
        report.elapsed.as_secs_f64(),
        report.throughput_rps(),
        report.heap_reclaimed,
    );
    if show_stats {
        let a = &report.aggregate;
        eprintln!(
            "aggregate: steps {} allocs {} calls {} views {}+{} mask allocs {}",
            a.steps, a.allocs, a.calls, a.views_explicit, a.views_implicit, a.mask_allocs
        );
        // Intra-request GC (the per-request region resets are the "heap
        // objects reclaimed" figure in the summary line above).
        eprintln!(
            "aggregate: gc {} runs, {} objects reclaimed in-request, peak live heap {}",
            a.gc_runs, a.reclaimed, a.peak_live
        );
        let probes = a.ic_hits + a.ic_misses;
        if probes > 0 {
            eprintln!(
                "aggregate: inline caches {} hits / {} misses ({:.1}% hit rate)",
                a.ic_hits,
                a.ic_misses,
                100.0 * a.ic_hits as f64 / probes as f64
            );
        }
    }
}

fn cmd_serve(mut args: Vec<String>) -> ExitCode {
    let workers = match take_opt(&mut args, "--workers", 0) {
        Ok(0) => ServeConfig::default().workers as u64,
        Ok(n) => n,
        Err(m) => {
            eprintln!("error: {m}");
            return ExitCode::FAILURE;
        }
    };
    let (requests, queue) = match (
        take_opt(&mut args, "--requests", 64),
        take_opt(&mut args, "--queue", 128),
    ) {
        (Ok(r), Ok(q)) => (r, q),
        (Err(m), _) | (_, Err(m)) => {
            eprintln!("error: {m}");
            return ExitCode::FAILURE;
        }
    };
    let stats = take_flag(&mut args, "--stats");
    let max_depth = match take_max_depth(&mut args) {
        Ok(d) => d,
        Err(code) => return code,
    };
    let heap_limit = match take_heap_limit(&mut args) {
        Ok(l) => l,
        Err(code) => return code,
    };
    let [_, path] = args.as_slice() else {
        return usage();
    };
    let compiled = match compile_file(path, Backend::Vm, max_depth, heap_limit) {
        Ok(c) => c,
        Err(code) => return code,
    };
    let cfg = ServeConfig {
        workers: workers.max(1) as usize,
        queue_cap: queue.max(1) as usize,
        fuel: None,
        max_depth,
        heap_limit,
    };
    let report = serve_batch(&compiled, &cfg, requests);
    // Print one representative output (all requests replay the same
    // entrypoint; the determinism suite asserts they agree).
    if let Some(first) = report.responses.first() {
        for line in &first.output {
            println!("{line}");
        }
        if let Some(err) = &first.error {
            eprintln!("runtime error: {err}");
        }
    }
    report_serve(&report, stats);
    if report.responses.iter().all(|r| r.is_ok()) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_bench_serve(mut args: Vec<String>) -> ExitCode {
    let (workers, requests, packets) = match (
        take_opt(&mut args, "--workers", 4),
        take_opt(&mut args, "--requests", 64),
        take_opt(&mut args, "--packets", 60),
    ) {
        (Ok(w), Ok(r), Ok(p)) => (w.max(1), r.max(1), p.max(1) as u32),
        (Err(m), _, _) | (_, Err(m), _) | (_, _, Err(m)) => {
            eprintln!("error: {m}");
            return ExitCode::FAILURE;
        }
    };
    if args.len() != 1 {
        return usage();
    }
    let src = jns_serve::workload::service_dispatch(packets);
    let compiled = match Compiler::new().with_backend(Backend::Vm).compile(&src) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("internal workload does not compile: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("§2.4 service-dispatch batch: {requests} requests × {packets} packets");
    let single = serve_batch(&compiled, &ServeConfig::with_workers(1), requests);
    report_serve(&single, false);
    let multi = serve_batch(
        &compiled,
        &ServeConfig::with_workers(workers as usize),
        requests,
    );
    report_serve(&multi, false);
    if !single.uniform() || !multi.uniform() {
        eprintln!("error: outputs diverged across requests");
        return ExitCode::FAILURE;
    }
    if single.responses.first().map(|r| (&r.output, &r.value))
        != multi.responses.first().map(|r| (&r.output, &r.value))
    {
        eprintln!("error: outputs diverged between worker counts");
        return ExitCode::FAILURE;
    }
    let speedup = multi.throughput_rps() / single.throughput_rps();
    eprintln!("speedup at {workers} workers: {speedup:.2}x");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") | Some("check") => cmd_run(args),
        Some("serve") => cmd_serve(args),
        Some("bench-serve") => cmd_bench_serve(args),
        _ => usage(),
    }
}
