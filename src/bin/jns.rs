//! `jns` — command-line interpreter for the J&s language.
//!
//! Usage:
//!   jns run <file.jns>        parse, type-check, and run a program
//!                             (tree-walking interpreter)
//!   jns run --vm <file.jns>   same, on the bytecode VM backend
//!   jns check <file.jns>      type-check only
//!   jns --help

use jns_core::{Backend, Compiler};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: jns run [--vm] <file.jns> | jns check <file.jns>");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut backend = Backend::TreeWalk;
    args.retain(|a| {
        if a == "--vm" {
            backend = Backend::Vm;
            false
        } else {
            true
        }
    });
    match args.as_slice() {
        [cmd, path] if cmd == "run" || cmd == "check" => {
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let compiled = match Compiler::new().with_backend(backend).compile(&src) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("{e}");
                    if let jns_core::Error::Parse(pe) = &e {
                        eprintln!("{}", jns_syntax::render_snippet(&src, pe.span));
                    }
                    return ExitCode::FAILURE;
                }
            };
            if cmd == "check" {
                println!("ok");
                return ExitCode::SUCCESS;
            }
            match compiled.run() {
                Ok(out) => {
                    for line in out.output {
                        println!("{line}");
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("runtime error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
