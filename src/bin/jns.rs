//! `jns` — command-line interpreter and serving driver for the J&s
//! language.
//!
//! Usage:
//!   jns run [--vm] [--stats] [--max-depth N] [--heap-limit N]
//!           [--trace PATH] [--profile-json PATH] <file.jns>
//!       parse, type-check, and run a program (tree-walking interpreter
//!       by default; `--vm` selects the bytecode VM; `--stats` prints
//!       execution statistics, inline-cache hit rates, and the VM's
//!       per-chunk instruction profile; `--max-depth` bounds J&s
//!       recursion — both backends run on explicit heap stacks, so deep
//!       limits are safe and exhaustion is a clean runtime error;
//!       `--heap-limit` bounds the live heap — reaching it triggers a
//!       mark-compact tracing collection on the shared heap;
//!       `--trace` writes structured runtime events — compile phases,
//!       GC runs, inline-cache misses — as JSON Lines;
//!       `--profile-json` (VM only) writes the machine-readable
//!       `jns-profile/1` document: counters, per-chunk instruction
//!       counts, and per-site inline-cache hit/miss attribution)
//!   jns check <file.jns>
//!       type-check only
//!   jns serve [--workers N] [--requests N] [--queue N] [--max-depth N]
//!             [--heap-limit N] [--stats] [--trace PATH]
//!             [--profile-json PATH] <file.jns>
//!       compile once, then replay the program's entrypoint N times
//!       across a pool of worker VMs (heap reset per request; with
//!       `--heap-limit`, tracing GC *within* each request too) and
//!       report throughput; `--stats` adds latency percentiles and
//!       queue back-pressure gauges, `--trace` merges every worker's
//!       event buffer into one JSONL stream, `--profile-json` exports
//!       aggregate counters plus queue-wait/exec histograms
//!   jns bench-serve [--workers N] [--requests N] [--packets N]
//!                   [--json PATH]
//!       the §2.4 service-dispatch batch workload on 1 worker and on N
//!       workers, with the speedup; writes throughput and latency
//!       percentiles to PATH (default BENCH_serve.json)
//!   jns --help

use jns_core::{Backend, Compiler, RunOutput, Stats};
use jns_obs::{RunProfile, TraceBuffer, TraceEvent};
use jns_serve::{serve_batch, ServeConfig};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: jns run [--vm] [--stats] [--max-depth N] [--heap-limit N] [--trace PATH] [--profile-json PATH] <file.jns>\n\
         \x20      jns check <file.jns>\n\
         \x20      jns serve [--workers N] [--requests N] [--queue N] [--max-depth N] [--heap-limit N] [--stats] [--trace PATH] [--profile-json PATH] <file.jns>\n\
         \x20      jns bench-serve [--workers N] [--requests N] [--packets N] [--json PATH]"
    );
    ExitCode::FAILURE
}

/// Pulls `--flag N` out of `args`; returns the default when absent.
fn take_opt(args: &mut Vec<String>, flag: &str, default: u64) -> Result<u64, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(default);
    };
    if i + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let v = args.remove(i + 1);
    args.remove(i);
    v.parse::<u64>()
        .map_err(|_| format!("{flag}: bad number `{v}`"))
}

/// Pulls `--flag N` out of `args`; returns `None` when absent.
fn take_opt_maybe(args: &mut Vec<String>, flag: &str) -> Result<Option<u64>, String> {
    if !args.iter().any(|a| a == flag) {
        return Ok(None);
    }
    take_opt(args, flag, 0).map(Some)
}

/// Pulls `--max-depth N` out of `args` (clamped to `u32`), reporting
/// parse errors itself so callers can `?`-style early-return.
fn take_max_depth(args: &mut Vec<String>) -> Result<Option<u32>, ExitCode> {
    match take_opt_maybe(args, "--max-depth") {
        Ok(d) => Ok(d.map(|n| n.min(u64::from(u32::MAX)) as u32)),
        Err(m) => {
            eprintln!("error: {m}");
            Err(ExitCode::FAILURE)
        }
    }
}

/// Pulls `--heap-limit N` (live objects before a tracing collection).
fn take_heap_limit(args: &mut Vec<String>) -> Result<Option<usize>, ExitCode> {
    match take_opt_maybe(args, "--heap-limit") {
        Ok(l) => Ok(l.map(|n| n.max(1) as usize)),
        Err(m) => {
            eprintln!("error: {m}");
            Err(ExitCode::FAILURE)
        }
    }
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != flag);
    args.len() != before
}

/// Pulls `--flag PATH` out of `args`; `None` when absent.
fn take_path(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, ExitCode> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        eprintln!("error: {flag} needs a path");
        return Err(ExitCode::FAILURE);
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Ok(Some(v))
}

/// Writes `contents` to `path`, reporting failure as an exit code.
fn write_text(path: &str, contents: &str) -> Result<(), ExitCode> {
    std::fs::write(path, contents).map_err(|e| {
        eprintln!("error: cannot write {path}: {e}");
        ExitCode::FAILURE
    })
}

/// The flat runtime counters in their stable profile-schema order.
fn stat_counters(s: &Stats) -> Vec<(&'static str, u64)> {
    vec![
        ("steps", s.steps),
        ("allocs", s.allocs),
        ("calls", s.calls),
        ("views_explicit", s.views_explicit),
        ("views_implicit", s.views_implicit),
        ("mask_allocs", s.mask_allocs),
        ("folded", s.folded),
        ("ic_hits", s.ic_hits),
        ("ic_misses", s.ic_misses),
        ("gc_runs", s.gc_runs),
        ("reclaimed", s.reclaimed),
        ("peak_live", s.peak_live),
    ]
}

fn print_stats(out: &RunOutput, total_chunks: usize) {
    let s = &out.stats;
    eprintln!("steps           {}", s.steps);
    eprintln!("allocs          {}", s.allocs);
    eprintln!("calls           {}", s.calls);
    eprintln!("views explicit  {}", s.views_explicit);
    eprintln!("views implicit  {}", s.views_implicit);
    eprintln!("mask allocs     {}", s.mask_allocs);
    eprintln!("folded ops      {}", s.folded);
    eprintln!("peak live heap  {}", s.peak_live);
    if s.gc_runs > 0 {
        eprintln!(
            "gc              {} runs, {} objects reclaimed",
            s.gc_runs, s.reclaimed
        );
    }
    let probes = s.ic_hits + s.ic_misses;
    if probes > 0 {
        eprintln!(
            "inline caches   {} hits / {} misses ({:.1}% hit rate)",
            s.ic_hits,
            s.ic_misses,
            100.0 * s.ic_hits as f64 / probes as f64
        );
    }
    if !out.chunk_profile.is_empty() {
        // The profile is already deterministically ordered (count
        // descending, chunk name as tiebreak), so repeated runs of a
        // deterministic program print identical blocks.
        let total: u64 = out.chunk_profile.iter().map(|(_, n)| n).sum();
        let shown = out.chunk_profile.len().min(8);
        let top: u64 = out.chunk_profile.iter().take(shown).map(|(_, n)| n).sum();
        let pct = if total > 0 {
            100.0 * top as f64 / total as f64
        } else {
            100.0
        };
        eprintln!(
            "hottest chunks ({shown} of {} executed, {total_chunks} compiled; top {shown} cover {pct:.1}% of {total} executed instructions):",
            out.chunk_profile.len(),
        );
        for (name, n) in out.chunk_profile.iter().take(8) {
            eprintln!("  {n:>10}  {name}");
        }
    }
}

fn compile_file(
    path: &str,
    backend: Backend,
    max_depth: Option<u32>,
    heap_limit: Option<usize>,
) -> Result<jns_core::Compiled, ExitCode> {
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return Err(ExitCode::FAILURE);
        }
    };
    let mut compiler = Compiler::new().with_backend(backend);
    if let Some(d) = max_depth {
        compiler = compiler.with_max_depth(d);
    }
    if let Some(l) = heap_limit {
        compiler = compiler.with_heap_limit(l);
    }
    match compiler.compile(&src) {
        Ok(c) => Ok(c),
        Err(e) => {
            eprintln!("{e}");
            if let jns_core::Error::Parse(pe) = &e {
                eprintln!("{}", jns_syntax::render_snippet(&src, pe.span));
            }
            Err(ExitCode::FAILURE)
        }
    }
}

fn cmd_run(mut args: Vec<String>) -> ExitCode {
    let backend = if take_flag(&mut args, "--vm") {
        Backend::Vm
    } else {
        Backend::TreeWalk
    };
    let stats = take_flag(&mut args, "--stats");
    let max_depth = match take_max_depth(&mut args) {
        Ok(d) => d,
        Err(code) => return code,
    };
    let heap_limit = match take_heap_limit(&mut args) {
        Ok(l) => l,
        Err(code) => return code,
    };
    let trace_path = match take_path(&mut args, "--trace") {
        Ok(p) => p,
        Err(code) => return code,
    };
    let profile_path = match take_path(&mut args, "--profile-json") {
        Ok(p) => p,
        Err(code) => return code,
    };
    if profile_path.is_some() && backend != Backend::Vm {
        eprintln!(
            "error: --profile-json needs --vm (chunk and inline-cache profiles are VM state)"
        );
        return ExitCode::FAILURE;
    }
    let (check_only, path) = match args.as_slice() {
        [cmd, path] if cmd == "run" || cmd == "check" => (cmd == "check", path.clone()),
        _ => return usage(),
    };
    let compiled = match compile_file(&path, backend, max_depth, heap_limit) {
        Ok(c) => c,
        Err(code) => return code,
    };
    if check_only {
        println!("ok");
        return ExitCode::SUCCESS;
    }
    // With --trace, seed the buffer with the front-end phase events
    // before the run appends GC and inline-cache-miss events.
    let trace_buf = trace_path.as_ref().map(|_| {
        let mut buf = TraceBuffer::new(jns_obs::DEFAULT_TRACE_CAP);
        let t = compiled.timings();
        buf.push(TraceEvent::Phase {
            name: "parse",
            micros: t.parse_us,
        });
        buf.push(TraceEvent::Phase {
            name: "check",
            micros: t.check_us,
        });
        if backend == Backend::Vm {
            buf.push(TraceEvent::Phase {
                name: "lower",
                micros: compiled.bytecode().lower_micros,
            });
        }
        buf
    });
    match compiled.run_observed(backend, trace_buf) {
        Ok(out) => {
            for line in &out.output {
                println!("{line}");
            }
            if stats {
                let total_chunks = match backend {
                    Backend::Vm => compiled.bytecode().chunks.len(),
                    Backend::TreeWalk => 0,
                };
                print_stats(&out, total_chunks);
            }
            if let (Some(p), Some(buf)) = (&trace_path, &out.trace) {
                if write_text(p, &jns_obs::jsonl(buf.events(), buf.dropped())).is_err() {
                    return ExitCode::FAILURE;
                }
            }
            if let Some(p) = &profile_path {
                let profile = RunProfile {
                    backend: "vm".into(),
                    program: path.clone(),
                    counters: stat_counters(&out.stats),
                    chunks: out.chunk_profile.clone(),
                    ic_sites: out.ic_profile.clone(),
                    histograms: Vec::new(),
                };
                if write_text(p, &(profile.to_json() + "\n")).is_err() {
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("runtime error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn report_serve(report: &jns_serve::ServeReport, show_stats: bool) {
    let ok = report.responses.iter().filter(|r| r.is_ok()).count();
    eprintln!(
        "{} requests ({} ok) on {} workers in {:.3}s — {:.1} req/s, {} heap objects reclaimed",
        report.responses.len(),
        ok,
        report.workers,
        report.elapsed.as_secs_f64(),
        report.throughput_rps(),
        report.heap_reclaimed,
    );
    if show_stats {
        let a = &report.aggregate;
        eprintln!(
            "aggregate: steps {} allocs {} calls {} views {}+{} mask allocs {}",
            a.steps, a.allocs, a.calls, a.views_explicit, a.views_implicit, a.mask_allocs
        );
        // Intra-request GC (the per-request region resets are the "heap
        // objects reclaimed" figure in the summary line above).
        eprintln!(
            "aggregate: gc {} runs, {} objects reclaimed in-request, peak live heap {}",
            a.gc_runs, a.reclaimed, a.peak_live
        );
        let probes = a.ic_hits + a.ic_misses;
        if probes > 0 {
            eprintln!(
                "aggregate: inline caches {} hits / {} misses ({:.1}% hit rate)",
                a.ic_hits,
                a.ic_misses,
                100.0 * a.ic_hits as f64 / probes as f64
            );
        }
        let t = &report.telemetry;
        if t.exec.count() > 0 {
            eprintln!("latency: queue wait  {}", t.queue_wait.render_line("µs"));
            eprintln!("latency: execution   {}", t.exec.render_line("µs"));
        }
        eprintln!(
            "queue: high water {} waiting, {} submits blocked on back-pressure",
            t.queue_high_water, t.submit_blocked
        );
        let per_worker: Vec<String> = t.worker_requests.iter().map(u64::to_string).collect();
        eprintln!("per-worker requests: [{}]", per_worker.join(", "));
    }
}

fn cmd_serve(mut args: Vec<String>) -> ExitCode {
    let workers = match take_opt(&mut args, "--workers", 0) {
        Ok(0) => ServeConfig::default().workers as u64,
        Ok(n) => n,
        Err(m) => {
            eprintln!("error: {m}");
            return ExitCode::FAILURE;
        }
    };
    let (requests, queue) = match (
        take_opt(&mut args, "--requests", 64),
        take_opt(&mut args, "--queue", 128),
    ) {
        (Ok(r), Ok(q)) => (r, q),
        (Err(m), _) | (_, Err(m)) => {
            eprintln!("error: {m}");
            return ExitCode::FAILURE;
        }
    };
    let stats = take_flag(&mut args, "--stats");
    let max_depth = match take_max_depth(&mut args) {
        Ok(d) => d,
        Err(code) => return code,
    };
    let heap_limit = match take_heap_limit(&mut args) {
        Ok(l) => l,
        Err(code) => return code,
    };
    let trace_path = match take_path(&mut args, "--trace") {
        Ok(p) => p,
        Err(code) => return code,
    };
    let profile_path = match take_path(&mut args, "--profile-json") {
        Ok(p) => p,
        Err(code) => return code,
    };
    let [_, path] = args.as_slice() else {
        return usage();
    };
    let compiled = match compile_file(path, Backend::Vm, max_depth, heap_limit) {
        Ok(c) => c,
        Err(code) => return code,
    };
    let cfg = ServeConfig {
        workers: workers.max(1) as usize,
        queue_cap: queue.max(1) as usize,
        fuel: None,
        max_depth,
        heap_limit,
        trace: trace_path.is_some(),
    };
    let report = serve_batch(&compiled, &cfg, requests);
    if let Some(p) = &trace_path {
        let t = &report.telemetry;
        if write_text(p, &jns_obs::jsonl(&t.trace_events, t.trace_dropped)).is_err() {
            return ExitCode::FAILURE;
        }
    }
    if let Some(p) = &profile_path {
        let t = &report.telemetry;
        let profile = RunProfile {
            backend: "serve".into(),
            program: path.clone(),
            counters: stat_counters(&report.aggregate),
            chunks: Vec::new(),
            ic_sites: Vec::new(),
            histograms: vec![
                ("queue_wait_us", t.queue_wait.clone()),
                ("exec_us", t.exec.clone()),
            ],
        };
        if write_text(p, &(profile.to_json() + "\n")).is_err() {
            return ExitCode::FAILURE;
        }
    }
    // Print one representative output (all requests replay the same
    // entrypoint; the determinism suite asserts they agree).
    if let Some(first) = report.responses.first() {
        for line in &first.output {
            println!("{line}");
        }
        if let Some(err) = &first.error {
            eprintln!("runtime error: {err}");
        }
    }
    report_serve(&report, stats);
    if report.responses.iter().all(|r| r.is_ok()) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// One bench arm (`single` / `multi`) as a `jns-bench/1` JSON object.
fn bench_arm_json(report: &jns_serve::ServeReport) -> jns_obs::Json {
    let t = &report.telemetry;
    jns_obs::Json::obj(vec![
        ("workers", report.workers.into()),
        ("requests", report.responses.len().into()),
        ("elapsed_us", (report.elapsed.as_micros() as u64).into()),
        ("rps", report.throughput_rps().into()),
        ("queue_wait_us", t.queue_wait.to_json()),
        ("exec_us", t.exec.to_json()),
        ("queue_high_water", t.queue_high_water.into()),
        ("submit_blocked", t.submit_blocked.into()),
    ])
}

fn cmd_bench_serve(mut args: Vec<String>) -> ExitCode {
    let (workers, requests, packets) = match (
        take_opt(&mut args, "--workers", 4),
        take_opt(&mut args, "--requests", 64),
        take_opt(&mut args, "--packets", 60),
    ) {
        (Ok(w), Ok(r), Ok(p)) => (w.max(1), r.max(1), p.max(1) as u32),
        (Err(m), _, _) | (_, Err(m), _) | (_, _, Err(m)) => {
            eprintln!("error: {m}");
            return ExitCode::FAILURE;
        }
    };
    let json_path = match take_path(&mut args, "--json") {
        Ok(p) => p.unwrap_or_else(|| "BENCH_serve.json".to_string()),
        Err(code) => return code,
    };
    if args.len() != 1 {
        return usage();
    }
    let src = jns_serve::workload::service_dispatch(packets);
    let compiled = match Compiler::new().with_backend(Backend::Vm).compile(&src) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("internal workload does not compile: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("§2.4 service-dispatch batch: {requests} requests × {packets} packets");
    let single = serve_batch(&compiled, &ServeConfig::with_workers(1), requests);
    report_serve(&single, false);
    let multi = serve_batch(
        &compiled,
        &ServeConfig::with_workers(workers as usize),
        requests,
    );
    report_serve(&multi, false);
    if !single.uniform() || !multi.uniform() {
        eprintln!("error: outputs diverged across requests");
        return ExitCode::FAILURE;
    }
    if single.responses.first().map(|r| (&r.output, &r.value))
        != multi.responses.first().map(|r| (&r.output, &r.value))
    {
        eprintln!("error: outputs diverged between worker counts");
        return ExitCode::FAILURE;
    }
    let speedup = multi.throughput_rps() / single.throughput_rps();
    eprintln!(
        "latency at {workers} workers: exec {}",
        multi.telemetry.exec.render_line("µs")
    );
    eprintln!("speedup at {workers} workers: {speedup:.2}x");
    let doc = jns_obs::Json::obj(vec![
        ("schema", "jns-bench/1".into()),
        ("workload", "service_dispatch".into()),
        ("packets", packets.into()),
        ("single", bench_arm_json(&single)),
        ("multi", bench_arm_json(&multi)),
        ("speedup", speedup.into()),
    ]);
    if write_text(&json_path, &(doc.to_string() + "\n")).is_err() {
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {json_path}");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") | Some("check") => cmd_run(args),
        Some("serve") => cmd_serve(args),
        Some("bench-serve") => cmd_bench_serve(args),
        _ => usage(),
    }
}
