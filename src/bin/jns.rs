//! `jns` — command-line interpreter and serving driver for the J&s
//! language.
//!
//! Usage:
//!   jns run [--vm] [--stats] [--no-fuse] [--no-quicken] [--max-depth N]
//!           [--heap-limit N] [--trace PATH] [--profile-json PATH]
//!           <file.jns>
//!       parse, type-check, and run a program (tree-walking interpreter
//!       by default; `--vm` selects the bytecode VM; `--stats` prints
//!       execution statistics, inline-cache hit rates, the dispatch
//!       engine's fusion/quickening counters, and the VM's per-chunk
//!       instruction profile; `--no-fuse` / `--no-quicken` disable the
//!       dispatch engine's superinstruction fusion and IC-guided
//!       quickening stages (ablation knobs); `--max-depth` bounds J&s
//!       recursion — both backends run on explicit heap stacks, so deep
//!       limits are safe and exhaustion is a clean runtime error;
//!       `--heap-limit` bounds the live heap — reaching it triggers a
//!       mark-compact tracing collection on the shared heap;
//!       `--nursery` makes that collector generational (with a heap
//!       limit set): new objects bump-allocate into a nursery of N
//!       objects, a full nursery runs a cheap minor collection that
//!       promotes survivors, and the full mark-compact becomes the
//!       major collection (defaults from `JNS_NURSERY` when unset);
//!       `--trace` writes structured runtime events — compile phases,
//!       GC runs, inline-cache misses — as JSON Lines;
//!       `--profile-json` (VM only) writes the machine-readable
//!       `jns-profile/1` document: counters, per-chunk instruction
//!       counts, and per-site inline-cache hit/miss attribution)
//!   jns check <file.jns>
//!       type-check only
//!   jns serve [--workers N] [--requests N] [--queue N] [--max-depth N]
//!             [--heap-limit N] [--stats] [--trace PATH]
//!             [--profile-json PATH] <file.jns>
//!       compile once, then replay the program's entrypoint N times
//!       across a pool of worker VMs (heap reset per request; with
//!       `--heap-limit`, tracing GC *within* each request too, each
//!       worker auto-sizing its effective limit from the peak live
//!       heap it observes, and `--nursery` making the collector
//!       generational) and report throughput; `--stats` adds latency
//!       percentiles, per-worker effective heap limits, and
//!       queue back-pressure gauges, `--trace` merges every worker's
//!       event buffer into one JSONL stream, `--profile-json` exports
//!       aggregate counters plus queue-wait/exec histograms
//!   jns bench [--suite NAME]… [--repeat N] [--warmup N] [--out-dir DIR]
//!       the performance-trajectory driver: runs the benchmark suites
//!       (`vm`, `dispatch`, `gc`, `serve` — all four by default) with
//!       warmup passes and repeated measured runs, and writes one
//!       `jns-bench/2` document per suite (`BENCH_<suite>.json`)
//!   jns bench --compare OLD.json NEW.json [--frac F] [--gate NAME]...
//!       compares two `jns-bench/2` documents with the noise-tolerant
//!       comparator (relative band `--frac`, default 0.25, widened by
//!       the observed MAD); exit 0 = within tolerance, 2 = regression,
//!       3 = a `--gate`-named benchmark regressed (hard CI failure),
//!       1 = malformed document or I/O error
//!   jns bench-serve [--workers N] [--requests N] [--packets N]
//!                   [--repeat N] [--json PATH]
//!       the §2.4 service-dispatch batch workload on 1 worker and on N
//!       workers, `--repeat` timed batches each; writes a `jns-bench/2`
//!       suite with the speedup to PATH (default BENCH_serve.json)
//!   jns trace-report <file.jsonl>
//!       analyzes a `--trace` JSONL stream: phase timings, request
//!       latency table, GC pauses, the top inline-cache-miss sites, and
//!       a warning when events were dropped
//!   jns --help

use jns_core::{Backend, Compiler, RunOptions, RunOutput, Stats};
use jns_obs::{
    BenchDoc, BenchEntry, Histogram, Json, RunProfile, SampleConfig, Tolerance, TraceBuffer,
    TraceEvent,
};
use jns_serve::{serve_batch, ServeConfig};
use std::process::ExitCode;

/// Default sampling stride when `--profile-folded` is given without
/// `--sample-stride`: prime, so the sampler never locks onto loop
/// harmonics of small power-of-two bodies.
const DEFAULT_SAMPLE_STRIDE: u64 = 101;

fn usage() -> ExitCode {
    eprintln!(
        "usage: jns run [--vm] [--stats] [--no-fuse] [--no-quicken] [--max-depth N] [--heap-limit N] [--nursery N] [--trace PATH] [--profile-json PATH] [--profile-folded PATH] [--sample-stride N] <file.jns>\n\
         \x20      jns check <file.jns>\n\
         \x20      jns serve [--workers N] [--requests N] [--queue N] [--no-fuse] [--no-quicken] [--max-depth N] [--heap-limit N] [--nursery N] [--stats] [--trace PATH] [--profile-json PATH] [--profile-folded PATH] [--sample-stride N] <file.jns>\n\
         \x20      jns bench [--suite NAME]... [--repeat N] [--warmup N] [--out-dir DIR]\n\
         \x20      jns bench --compare OLD.json NEW.json [--frac F] [--gate NAME]...\n\
         \x20      jns bench-serve [--workers N] [--requests N] [--packets N] [--repeat N] [--json PATH]\n\
         \x20      jns trace-report <file.jsonl>"
    );
    ExitCode::FAILURE
}

/// Pulls `--flag N` out of `args`; returns the default when absent.
fn take_opt(args: &mut Vec<String>, flag: &str, default: u64) -> Result<u64, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(default);
    };
    if i + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let v = args.remove(i + 1);
    args.remove(i);
    v.parse::<u64>()
        .map_err(|_| format!("{flag}: bad number `{v}`"))
}

/// Pulls `--flag N` out of `args`; returns `None` when absent.
fn take_opt_maybe(args: &mut Vec<String>, flag: &str) -> Result<Option<u64>, String> {
    if !args.iter().any(|a| a == flag) {
        return Ok(None);
    }
    take_opt(args, flag, 0).map(Some)
}

/// Pulls `--max-depth N` out of `args` (clamped to `u32`), reporting
/// parse errors itself so callers can `?`-style early-return.
fn take_max_depth(args: &mut Vec<String>) -> Result<Option<u32>, ExitCode> {
    match take_opt_maybe(args, "--max-depth") {
        Ok(d) => Ok(d.map(|n| n.min(u64::from(u32::MAX)) as u32)),
        Err(m) => {
            eprintln!("error: {m}");
            Err(ExitCode::FAILURE)
        }
    }
}

/// Pulls `--heap-limit N` (live objects before a tracing collection).
fn take_heap_limit(args: &mut Vec<String>) -> Result<Option<usize>, ExitCode> {
    match take_opt_maybe(args, "--heap-limit") {
        Ok(l) => Ok(l.map(|n| n.max(1) as usize)),
        Err(m) => {
            eprintln!("error: {m}");
            Err(ExitCode::FAILURE)
        }
    }
}

/// Pulls `--nursery N` (nursery capacity for generational collection;
/// effective only alongside `--heap-limit`). Falls back to the
/// `JNS_NURSERY` environment variable when the flag is absent.
fn take_nursery(args: &mut Vec<String>) -> Result<Option<usize>, ExitCode> {
    match take_opt_maybe(args, "--nursery") {
        Ok(n) => Ok(n.map(|n| n.max(1) as usize).or_else(jns_core::env_nursery)),
        Err(m) => {
            eprintln!("error: {m}");
            Err(ExitCode::FAILURE)
        }
    }
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != flag);
    args.len() != before
}

/// Pulls `--flag PATH` out of `args`; `None` when absent.
fn take_path(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, ExitCode> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        eprintln!("error: {flag} needs a path");
        return Err(ExitCode::FAILURE);
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Ok(Some(v))
}

/// Writes `contents` to `path`, reporting failure as an exit code.
fn write_text(path: &str, contents: &str) -> Result<(), ExitCode> {
    std::fs::write(path, contents).map_err(|e| {
        eprintln!("error: cannot write {path}: {e}");
        ExitCode::FAILURE
    })
}

/// The flat runtime counters in their stable profile-schema order. The
/// dispatch-engine counters (`fused`, `quickened`, `dequickened`) are
/// emitted only when nonzero, so documents from `--no-fuse` /
/// `--no-quicken` runs (and old readers) keep their exact shape.
fn stat_counters(s: &Stats) -> Vec<(&'static str, u64)> {
    let mut counters = vec![
        ("steps", s.steps),
        ("allocs", s.allocs),
        ("calls", s.calls),
        ("views_explicit", s.views_explicit),
        ("views_implicit", s.views_implicit),
        ("mask_allocs", s.mask_allocs),
        ("folded", s.folded),
        ("ic_hits", s.ic_hits),
        ("ic_misses", s.ic_misses),
        ("gc_runs", s.gc_runs),
        ("reclaimed", s.reclaimed),
        ("peak_live", s.peak_live),
    ];
    // The generational-GC counters appear only when the nursery actually
    // engaged (a minor collection ran or the barrier fired), so
    // stop-the-world and GC-off runs keep their exact pre-generational
    // document shape — the same rule the engine counters follow.
    if s.minor_runs > 0 || s.barrier_hits > 0 {
        counters.push(("minor_runs", s.minor_runs));
        counters.push(("major_runs", s.major_runs));
        counters.push(("promoted", s.promoted));
        counters.push(("barrier_hits", s.barrier_hits));
    }
    for (key, v) in [
        ("fused", s.fused),
        ("quickened", s.quickened),
        ("dequickened", s.dequickened),
    ] {
        if v > 0 {
            counters.push((key, v));
        }
    }
    counters
}

fn print_stats(out: &RunOutput, total_chunks: usize) {
    let s = &out.stats;
    eprintln!("steps           {}", s.steps);
    eprintln!("allocs          {}", s.allocs);
    eprintln!("calls           {}", s.calls);
    eprintln!("views explicit  {}", s.views_explicit);
    eprintln!("views implicit  {}", s.views_implicit);
    eprintln!("mask allocs     {}", s.mask_allocs);
    eprintln!("folded ops      {}", s.folded);
    eprintln!("peak live heap  {}", s.peak_live);
    if s.gc_runs > 0 {
        if s.minor_runs > 0 {
            eprintln!(
                "gc              {} runs ({} minor / {} major), {} objects reclaimed",
                s.gc_runs, s.minor_runs, s.major_runs, s.reclaimed
            );
            eprintln!(
                "gc nursery      {} promoted, {} write-barrier hits",
                s.promoted, s.barrier_hits
            );
        } else {
            eprintln!(
                "gc              {} runs, {} objects reclaimed",
                s.gc_runs, s.reclaimed
            );
        }
    }
    let probes = s.ic_hits + s.ic_misses;
    if probes > 0 {
        eprintln!(
            "inline caches   {} hits / {} misses ({:.1}% hit rate)",
            s.ic_hits,
            s.ic_misses,
            100.0 * s.ic_hits as f64 / probes as f64
        );
    }
    if s.fused > 0 || s.quickened > 0 || s.dequickened > 0 {
        eprintln!(
            "dispatch engine {} fused sites, {} quickened, {} de-quickened",
            s.fused, s.quickened, s.dequickened
        );
        // The still-polymorphic sites are the ones the engine cannot
        // quicken; listing them points at the next optimisation target.
        let mut poly: Vec<_> = out.ic_profile.iter().filter(|p| p.entries >= 2).collect();
        poly.sort_by(|a, b| {
            (b.hits + b.misses)
                .cmp(&(a.hits + a.misses))
                .then(a.name.cmp(&b.name))
        });
        if !poly.is_empty() {
            eprintln!("  still-polymorphic sites:");
            for p in poly.iter().take(8) {
                eprintln!(
                    "  {:>10}  {} ({} views, {} misses)",
                    p.hits + p.misses,
                    p.name,
                    p.entries,
                    p.misses
                );
            }
        }
    }
    if !out.chunk_profile.is_empty() {
        // The profile is already deterministically ordered (count
        // descending, chunk name as tiebreak), so repeated runs of a
        // deterministic program print identical blocks.
        let total: u64 = out.chunk_profile.iter().map(|(_, n)| n).sum();
        let shown = out.chunk_profile.len().min(8);
        let top: u64 = out.chunk_profile.iter().take(shown).map(|(_, n)| n).sum();
        let pct = if total > 0 {
            100.0 * top as f64 / total as f64
        } else {
            100.0
        };
        eprintln!(
            "hottest chunks ({shown} of {} executed, {total_chunks} compiled; top {shown} cover {pct:.1}% of {total} executed instructions):",
            out.chunk_profile.len(),
        );
        for (name, n) in out.chunk_profile.iter().take(8) {
            eprintln!("  {n:>10}  {name}");
        }
    }
}

/// The dispatch-engine ablation knobs (`--no-fuse`, `--no-quicken`).
#[derive(Debug, Clone, Copy)]
struct EngineKnobs {
    fuse: bool,
    quicken: bool,
}

impl EngineKnobs {
    fn take(args: &mut Vec<String>) -> Self {
        EngineKnobs {
            fuse: !take_flag(args, "--no-fuse"),
            quicken: !take_flag(args, "--no-quicken"),
        }
    }
}

fn compile_file(
    path: &str,
    backend: Backend,
    max_depth: Option<u32>,
    heap_limit: Option<usize>,
    nursery: Option<usize>,
    knobs: EngineKnobs,
) -> Result<jns_core::Compiled, ExitCode> {
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return Err(ExitCode::FAILURE);
        }
    };
    let mut compiler = Compiler::new()
        .with_backend(backend)
        .with_fusion(knobs.fuse)
        .with_quickening(knobs.quicken);
    if let Some(d) = max_depth {
        compiler = compiler.with_max_depth(d);
    }
    if let Some(l) = heap_limit {
        compiler = compiler.with_heap_limit(l);
    }
    if let Some(n) = nursery {
        compiler = compiler.with_nursery(n);
    }
    match compiler.compile(&src) {
        Ok(c) => Ok(c),
        Err(e) => {
            eprintln!("{e}");
            if let jns_core::Error::Parse(pe) = &e {
                eprintln!("{}", jns_syntax::render_snippet(&src, pe.span));
            }
            Err(ExitCode::FAILURE)
        }
    }
}

fn cmd_run(mut args: Vec<String>) -> ExitCode {
    let backend = if take_flag(&mut args, "--vm") {
        Backend::Vm
    } else {
        Backend::TreeWalk
    };
    let stats = take_flag(&mut args, "--stats");
    let knobs = EngineKnobs::take(&mut args);
    let max_depth = match take_max_depth(&mut args) {
        Ok(d) => d,
        Err(code) => return code,
    };
    let heap_limit = match take_heap_limit(&mut args) {
        Ok(l) => l,
        Err(code) => return code,
    };
    let nursery = match take_nursery(&mut args) {
        Ok(n) => n,
        Err(code) => return code,
    };
    let trace_path = match take_path(&mut args, "--trace") {
        Ok(p) => p,
        Err(code) => return code,
    };
    let profile_path = match take_path(&mut args, "--profile-json") {
        Ok(p) => p,
        Err(code) => return code,
    };
    let folded_path = match take_path(&mut args, "--profile-folded") {
        Ok(p) => p,
        Err(code) => return code,
    };
    let sample_stride = match take_opt_maybe(&mut args, "--sample-stride") {
        Ok(s) => s.map(|n| n.max(1)),
        Err(m) => {
            eprintln!("error: {m}");
            return ExitCode::FAILURE;
        }
    };
    if profile_path.is_some() && backend != Backend::Vm {
        eprintln!(
            "error: --profile-json needs --vm (chunk and inline-cache profiles are VM state)"
        );
        return ExitCode::FAILURE;
    }
    if (folded_path.is_some() || sample_stride.is_some()) && backend != Backend::Vm {
        eprintln!("error: --profile-folded / --sample-stride need --vm (the sampler lives in the VM dispatch loop)");
        return ExitCode::FAILURE;
    }
    // Sampling is only armed when the folded output was requested (or a
    // profile document that will carry the samples section).
    let stride = (folded_path.is_some() || (profile_path.is_some() && sample_stride.is_some()))
        .then(|| sample_stride.unwrap_or(DEFAULT_SAMPLE_STRIDE));
    let (check_only, path) = match args.as_slice() {
        [cmd, path] if cmd == "run" || cmd == "check" => (cmd == "check", path.clone()),
        _ => return usage(),
    };
    let compiled = match compile_file(&path, backend, max_depth, heap_limit, nursery, knobs) {
        Ok(c) => c,
        Err(code) => return code,
    };
    if check_only {
        println!("ok");
        return ExitCode::SUCCESS;
    }
    // With --trace, seed the buffer with the front-end phase events
    // before the run appends GC and inline-cache-miss events.
    let trace_buf = trace_path.as_ref().map(|_| {
        let mut buf = TraceBuffer::new(jns_obs::DEFAULT_TRACE_CAP);
        let t = compiled.timings();
        buf.push(TraceEvent::Phase {
            name: "parse",
            micros: t.parse_us,
        });
        buf.push(TraceEvent::Phase {
            name: "check",
            micros: t.check_us,
        });
        if backend == Backend::Vm {
            buf.push(TraceEvent::Phase {
                name: "lower",
                micros: compiled.bytecode().lower_micros,
            });
        }
        buf
    });
    let opts = RunOptions {
        trace: trace_buf,
        sample_stride: stride,
    };
    match compiled.run_with(backend, opts) {
        Ok(out) => {
            for line in &out.output {
                println!("{line}");
            }
            if stats {
                let total_chunks = match backend {
                    Backend::Vm => compiled.bytecode().chunks.len(),
                    Backend::TreeWalk => 0,
                };
                print_stats(&out, total_chunks);
            }
            if let (Some(p), Some(buf)) = (&trace_path, &out.trace) {
                if write_text(p, &jns_obs::jsonl(buf.events(), buf.dropped())).is_err() {
                    return ExitCode::FAILURE;
                }
            }
            if let Some(p) = &folded_path {
                let stacks = out.samples.as_ref().map(|s| &s.stacks[..]).unwrap_or(&[]);
                if stacks.is_empty() {
                    eprintln!(
                        "warning: no samples taken — the program executed fewer \
                         instructions than the sampling stride ({}); lower \
                         --sample-stride",
                        stride.unwrap_or(DEFAULT_SAMPLE_STRIDE)
                    );
                }
                if write_text(p, &jns_obs::folded_lines(stacks)).is_err() {
                    return ExitCode::FAILURE;
                }
            }
            if let Some(p) = &profile_path {
                let profile = RunProfile {
                    backend: "vm".into(),
                    program: path.clone(),
                    counters: stat_counters(&out.stats),
                    chunks: out.chunk_profile.clone(),
                    ic_sites: out.ic_profile.clone(),
                    histograms: Vec::new(),
                    samples: out.samples.clone(),
                };
                if write_text(p, &(profile.to_json() + "\n")).is_err() {
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("runtime error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn report_serve(report: &jns_serve::ServeReport, show_stats: bool) {
    let ok = report.responses.iter().filter(|r| r.is_ok()).count();
    eprintln!(
        "{} requests ({} ok) on {} workers in {:.3}s — {:.1} req/s, {} heap objects reclaimed",
        report.responses.len(),
        ok,
        report.workers,
        report.elapsed.as_secs_f64(),
        report.throughput_rps(),
        report.heap_reclaimed,
    );
    if show_stats {
        let a = &report.aggregate;
        eprintln!(
            "aggregate: steps {} allocs {} calls {} views {}+{} mask allocs {}",
            a.steps, a.allocs, a.calls, a.views_explicit, a.views_implicit, a.mask_allocs
        );
        // Intra-request GC (the per-request region resets are the "heap
        // objects reclaimed" figure in the summary line above).
        if a.minor_runs > 0 {
            eprintln!(
                "aggregate: gc {} runs ({} minor / {} major), {} objects reclaimed in-request, peak live heap {}, {} promoted, {} barrier hits",
                a.gc_runs, a.minor_runs, a.major_runs, a.reclaimed, a.peak_live, a.promoted, a.barrier_hits
            );
        } else {
            eprintln!(
                "aggregate: gc {} runs, {} objects reclaimed in-request, peak live heap {}",
                a.gc_runs, a.reclaimed, a.peak_live
            );
        }
        let probes = a.ic_hits + a.ic_misses;
        if probes > 0 {
            eprintln!(
                "aggregate: inline caches {} hits / {} misses ({:.1}% hit rate)",
                a.ic_hits,
                a.ic_misses,
                100.0 * a.ic_hits as f64 / probes as f64
            );
        }
        let t = &report.telemetry;
        if t.exec.count() > 0 {
            eprintln!("latency: queue wait  {}", t.queue_wait.render_line("µs"));
            eprintln!("latency: execution   {}", t.exec.render_line("µs"));
        }
        eprintln!(
            "queue: high water {} waiting, {} submits blocked on back-pressure",
            t.queue_high_water, t.submit_blocked
        );
        let per_worker: Vec<String> = t.worker_requests.iter().map(u64::to_string).collect();
        eprintln!("per-worker requests: [{}]", per_worker.join(", "));
        // The auto-sizer's chosen per-worker effective heap limits (see
        // ServeConfig::heap_limit) — observable, not silent.
        if t.worker_heap_limits.iter().any(Option::is_some) {
            let limits: Vec<String> = t
                .worker_heap_limits
                .iter()
                .map(|l| l.map_or("-".to_string(), |n| n.to_string()))
                .collect();
            eprintln!(
                "per-worker effective heap limit (auto-sized): [{}]",
                limits.join(", ")
            );
        }
        if t.trace_dropped > 0 {
            eprintln!(
                "warning: {} trace events dropped (per-worker ring buffers filled; \
                 raise the trace capacity or shorten the run)",
                t.trace_dropped
            );
        }
    }
}

fn cmd_serve(mut args: Vec<String>) -> ExitCode {
    let workers = match take_opt(&mut args, "--workers", 0) {
        Ok(0) => ServeConfig::default().workers as u64,
        Ok(n) => n,
        Err(m) => {
            eprintln!("error: {m}");
            return ExitCode::FAILURE;
        }
    };
    let (requests, queue) = match (
        take_opt(&mut args, "--requests", 64),
        take_opt(&mut args, "--queue", 128),
    ) {
        (Ok(r), Ok(q)) => (r, q),
        (Err(m), _) | (_, Err(m)) => {
            eprintln!("error: {m}");
            return ExitCode::FAILURE;
        }
    };
    let stats = take_flag(&mut args, "--stats");
    let knobs = EngineKnobs::take(&mut args);
    let max_depth = match take_max_depth(&mut args) {
        Ok(d) => d,
        Err(code) => return code,
    };
    let heap_limit = match take_heap_limit(&mut args) {
        Ok(l) => l,
        Err(code) => return code,
    };
    let nursery = match take_nursery(&mut args) {
        Ok(n) => n,
        Err(code) => return code,
    };
    let trace_path = match take_path(&mut args, "--trace") {
        Ok(p) => p,
        Err(code) => return code,
    };
    let profile_path = match take_path(&mut args, "--profile-json") {
        Ok(p) => p,
        Err(code) => return code,
    };
    let folded_path = match take_path(&mut args, "--profile-folded") {
        Ok(p) => p,
        Err(code) => return code,
    };
    let sample_stride = match take_opt_maybe(&mut args, "--sample-stride") {
        Ok(s) => s.map(|n| n.max(1)),
        Err(m) => {
            eprintln!("error: {m}");
            return ExitCode::FAILURE;
        }
    };
    let stride = (folded_path.is_some() || sample_stride.is_some())
        .then(|| sample_stride.unwrap_or(DEFAULT_SAMPLE_STRIDE));
    let [_, path] = args.as_slice() else {
        return usage();
    };
    let compiled = match compile_file(path, Backend::Vm, max_depth, heap_limit, nursery, knobs) {
        Ok(c) => c,
        Err(code) => return code,
    };
    let cfg = ServeConfig {
        workers: workers.max(1) as usize,
        queue_cap: queue.max(1) as usize,
        fuel: None,
        max_depth,
        heap_limit,
        nursery,
        trace: trace_path.is_some(),
        trace_cap: jns_obs::DEFAULT_TRACE_CAP,
        sample_stride: stride,
    };
    let report = serve_batch(&compiled, &cfg, requests);
    if let Some(p) = &folded_path {
        let t = &report.telemetry;
        let stacks = t.samples.as_ref().map(|s| &s.stacks[..]).unwrap_or(&[]);
        if stacks.is_empty() {
            eprintln!(
                "warning: no samples taken — requests executed fewer \
                 instructions than the sampling stride ({}); lower \
                 --sample-stride",
                stride.unwrap_or(DEFAULT_SAMPLE_STRIDE)
            );
        }
        if write_text(p, &jns_obs::folded_lines(stacks)).is_err() {
            return ExitCode::FAILURE;
        }
    }
    if let Some(p) = &trace_path {
        let t = &report.telemetry;
        if write_text(p, &jns_obs::jsonl(&t.trace_events, t.trace_dropped)).is_err() {
            return ExitCode::FAILURE;
        }
    }
    if let Some(p) = &profile_path {
        let t = &report.telemetry;
        let profile = RunProfile {
            backend: "serve".into(),
            program: path.clone(),
            counters: stat_counters(&report.aggregate),
            chunks: Vec::new(),
            ic_sites: Vec::new(),
            histograms: vec![
                ("queue_wait_us", t.queue_wait.clone()),
                ("exec_us", t.exec.clone()),
            ],
            samples: t.samples.clone(),
        };
        if write_text(p, &(profile.to_json() + "\n")).is_err() {
            return ExitCode::FAILURE;
        }
    }
    // Print one representative output (all requests replay the same
    // entrypoint; the determinism suite asserts they agree).
    if let Some(first) = report.responses.first() {
        for line in &first.output {
            println!("{line}");
        }
        if let Some(err) = &first.error {
            eprintln!("runtime error: {err}");
        }
    }
    report_serve(&report, stats);
    if report.responses.iter().all(|r| r.is_ok()) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Reads and parses one JSON document, mapping failures to exit code 1
/// (a broken artifact, distinct from a regression's exit code 2).
fn read_json(path: &str) -> Result<Json, ExitCode> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        eprintln!("error: cannot read {path}: {e}");
        ExitCode::FAILURE
    })?;
    jns_obs::json::parse(text.trim()).map_err(|e| {
        eprintln!("error: {path}: {e}");
        ExitCode::FAILURE
    })
}

/// `jns bench --compare OLD NEW [--frac F] [--gate NAME]...`: the
/// regression gate. Exit 0 = within tolerance, 1 = unreadable/malformed
/// document, 2 = at least one benchmark regressed beyond tolerance,
/// 3 = a `--gate`-named benchmark regressed (a hard CI failure even
/// where plain regressions only warn).
fn cmd_bench_compare(mut args: Vec<String>) -> ExitCode {
    let frac = match take_path(&mut args, "--frac") {
        Ok(Some(v)) => match v.parse::<f64>() {
            Ok(f) if f.is_finite() && f >= 0.0 => f,
            _ => {
                eprintln!("error: --frac: bad fraction `{v}`");
                return ExitCode::FAILURE;
            }
        },
        Ok(None) => Tolerance::default().frac,
        Err(code) => return code,
    };
    let mut gates: Vec<String> = Vec::new();
    loop {
        match take_path(&mut args, "--gate") {
            Ok(Some(g)) => gates.push(g),
            Ok(None) => break,
            Err(code) => return code,
        }
    }
    let [_, old_path, new_path] = args.as_slice() else {
        return usage();
    };
    let (old, new) = match (read_json(old_path), read_json(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    let tol = Tolerance::with_frac(frac);
    let report = match jns_obs::compare_docs(&old, &new, &tol) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    for l in &report.lines {
        eprintln!(
            "{:<10} {:<44} {:>8} -> {:>8} µs ({:+.1}%, mad {}/{})",
            l.verdict.as_str(),
            l.name,
            l.old.median,
            l.new.median,
            100.0 * l.delta_frac,
            l.old.mad,
            l.new.mad,
        );
    }
    for name in &report.missing_in_new {
        eprintln!("missing    {name} (in baseline only)");
    }
    for name in &report.added_in_new {
        eprintln!("added      {name} (not in baseline)");
    }
    // A gate name must resolve: a silently missing gated benchmark would
    // turn the hard gate into a no-op.
    for g in &gates {
        if !report.lines.iter().any(|l| &l.name == g) {
            eprintln!("error: --gate {g}: no such benchmark in both documents");
            return ExitCode::FAILURE;
        }
    }
    let gated: Vec<&str> = report
        .lines
        .iter()
        .filter(|l| l.verdict.as_str() == "regressed" && gates.iter().any(|g| g == &l.name))
        .map(|l| l.name.as_str())
        .collect();
    if !gated.is_empty() {
        eprintln!(
            "gated benchmark(s) regressed beyond tolerance: {}",
            gated.join(", ")
        );
        return ExitCode::from(3);
    }
    let n = report.regressions();
    if n > 0 {
        eprintln!(
            "{n} of {} benchmark(s) regressed beyond tolerance (frac {frac}, \
             {}×MAD noise band, {}µs floor)",
            report.lines.len(),
            tol.mad_sigmas,
            tol.abs_floor_us,
        );
        return ExitCode::from(2);
    }
    eprintln!(
        "no regressions across {} benchmark(s) (frac {frac})",
        report.lines.len()
    );
    ExitCode::SUCCESS
}

/// `jns bench`: measures the requested suites with warmup + repeated
/// runs and writes one pinned `BENCH_<suite>.json` per suite.
fn cmd_bench(mut args: Vec<String>) -> ExitCode {
    if take_flag(&mut args, "--compare") {
        return cmd_bench_compare(args);
    }
    let mut suites: Vec<String> = Vec::new();
    loop {
        match take_path(&mut args, "--suite") {
            Ok(Some(s)) => suites.push(s),
            Ok(None) => break,
            Err(code) => return code,
        }
    }
    let (repeat, warmup) = match (
        take_opt(&mut args, "--repeat", 5),
        take_opt(&mut args, "--warmup", 1),
    ) {
        (Ok(r), Ok(w)) => (r.max(1) as u32, w as u32),
        (Err(m), _) | (_, Err(m)) => {
            eprintln!("error: {m}");
            return ExitCode::FAILURE;
        }
    };
    let out_dir = match take_path(&mut args, "--out-dir") {
        Ok(d) => d.unwrap_or_else(|| ".".to_string()),
        Err(code) => return code,
    };
    if args.len() != 1 {
        return usage();
    }
    if suites.is_empty() {
        suites = bench::workloads::SUITES
            .iter()
            .map(|s| s.to_string())
            .collect();
    }
    let cfg = SampleConfig {
        warmup,
        runs: repeat,
    };
    for suite_name in &suites {
        let Some(workloads) = bench::workloads::suite(suite_name) else {
            eprintln!(
                "error: unknown suite `{suite_name}` (valid: {})",
                bench::workloads::SUITES.join(", ")
            );
            return ExitCode::FAILURE;
        };
        eprintln!(
            "suite {suite_name}: {} benchmarks × {repeat} runs (+{warmup} warmup)",
            workloads.len()
        );
        let mut doc = BenchDoc::new(suite_name, repeat, warmup);
        for mut w in workloads {
            let samples = jns_obs::sample_us(cfg, || w.run_once());
            let entry = BenchEntry {
                name: w.name.clone(),
                unit: "us",
                workload: w.workload.clone(),
                backend: w.backend.clone(),
                samples,
            };
            let s = entry.summary();
            eprintln!(
                "  {:<44} median {:>8} µs (min {}, mad {})",
                entry.name, s.median, s.min, s.mad
            );
            doc.benchmarks.push(entry);
        }
        let path = format!("{out_dir}/BENCH_{suite_name}.json");
        if write_text(&path, &(doc.to_json() + "\n")).is_err() {
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}

/// One bench arm (`single` / `multi`) as a detail JSON object (carried
/// as extra keys on the `jns-bench/2` serve document).
fn bench_arm_json(report: &jns_serve::ServeReport) -> jns_obs::Json {
    let t = &report.telemetry;
    jns_obs::Json::obj(vec![
        ("workers", report.workers.into()),
        ("requests", report.responses.len().into()),
        ("elapsed_us", (report.elapsed.as_micros() as u64).into()),
        ("rps", report.throughput_rps().into()),
        ("queue_wait_us", t.queue_wait.to_json()),
        ("exec_us", t.exec.to_json()),
        ("queue_high_water", t.queue_high_water.into()),
        ("submit_blocked", t.submit_blocked.into()),
    ])
}

fn cmd_bench_serve(mut args: Vec<String>) -> ExitCode {
    let (workers, requests, packets, repeat) = match (
        take_opt(&mut args, "--workers", 4),
        take_opt(&mut args, "--requests", 64),
        take_opt(&mut args, "--packets", 60),
        take_opt(&mut args, "--repeat", 5),
    ) {
        (Ok(w), Ok(r), Ok(p), Ok(n)) => (w.max(1), r.max(1), p.max(1) as u32, n.max(1) as u32),
        (Err(m), _, _, _) | (_, Err(m), _, _) | (_, _, Err(m), _) | (_, _, _, Err(m)) => {
            eprintln!("error: {m}");
            return ExitCode::FAILURE;
        }
    };
    let json_path = match take_path(&mut args, "--json") {
        Ok(p) => p.unwrap_or_else(|| "BENCH_serve.json".to_string()),
        Err(code) => return code,
    };
    if args.len() != 1 {
        return usage();
    }
    let src = jns_serve::workload::service_dispatch(packets);
    let compiled = match Compiler::new().with_backend(Backend::Vm).compile(&src) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("internal workload does not compile: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "§2.4 service-dispatch batch: {requests} requests × {packets} packets, \
         {repeat} timed batches per arm"
    );
    // One warmup batch plus `repeat` timed batches per arm; each timed
    // batch contributes one whole-batch wall-clock sample.
    let measure = |workers: usize| -> (Vec<u64>, jns_serve::ServeReport) {
        let cfg = ServeConfig::with_workers(workers);
        let mut last = serve_batch(&compiled, &cfg, requests);
        let mut samples = Vec::with_capacity(repeat as usize);
        for _ in 0..repeat {
            last = serve_batch(&compiled, &cfg, requests);
            samples.push(last.elapsed.as_micros().min(u64::MAX as u128) as u64);
        }
        (samples, last)
    };
    let (single_samples, single) = measure(1);
    report_serve(&single, false);
    let (multi_samples, multi) = measure(workers as usize);
    report_serve(&multi, false);
    if !single.uniform() || !multi.uniform() {
        eprintln!("error: outputs diverged across requests");
        return ExitCode::FAILURE;
    }
    if single.responses.first().map(|r| (&r.output, &r.value))
        != multi.responses.first().map(|r| (&r.output, &r.value))
    {
        eprintln!("error: outputs diverged between worker counts");
        return ExitCode::FAILURE;
    }
    let median_single = jns_obs::median(&single_samples).max(1);
    let median_multi = jns_obs::median(&multi_samples).max(1);
    let speedup = median_single as f64 / median_multi as f64;
    eprintln!(
        "latency at {workers} workers: exec {}",
        multi.telemetry.exec.render_line("µs")
    );
    eprintln!("speedup at {workers} workers (median batch): {speedup:.2}x");
    let mut doc = BenchDoc::new("serve", repeat, 1);
    for (samples, pool) in [(single_samples, 1u64), (multi_samples, workers)] {
        doc.benchmarks.push(BenchEntry {
            name: format!("serve_batch/pool{pool}"),
            unit: "us",
            workload: "serve_batch".to_string(),
            backend: format!("pool{pool}"),
            samples,
        });
    }
    doc.extra = vec![
        ("workload", "service_dispatch".into()),
        ("packets", packets.into()),
        ("requests", requests.into()),
        ("speedup", speedup.into()),
        ("single", bench_arm_json(&single)),
        ("multi", bench_arm_json(&multi)),
    ];
    if write_text(&json_path, &(doc.to_json() + "\n")).is_err() {
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {json_path}");
    ExitCode::SUCCESS
}

/// Accumulated GC figures for the trace report, split by collection
/// kind. Events without a `kind` field (traces from before generational
/// collection) count as major — every collection was a full one then.
#[derive(Default)]
struct GcSummary {
    runs: u64,
    minor_runs: u64,
    major_runs: u64,
    minor_pause_us: u64,
    major_pause_us: u64,
    reclaimed: u64,
    peak_live: u64,
}

/// `jns trace-report`: a human-readable digest of a `--trace` stream.
fn cmd_trace_report(args: Vec<String>) -> ExitCode {
    let [_, path] = args.as_slice() else {
        return usage();
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut lines = text.lines();
    let header = match lines.next().map(jns_obs::json::parse) {
        Some(Ok(h)) => h,
        Some(Err(e)) => {
            eprintln!("error: {path}: bad header: {e}");
            return ExitCode::FAILURE;
        }
        None => {
            eprintln!("error: {path}: empty trace file");
            return ExitCode::FAILURE;
        }
    };
    if header.get("ev").and_then(Json::as_str) != Some("trace_start")
        || header.get("schema").and_then(Json::as_str) != Some(jns_obs::TRACE_SCHEMA)
    {
        eprintln!(
            "error: {path}: first line must be a {} trace_start header",
            jns_obs::TRACE_SCHEMA
        );
        return ExitCode::FAILURE;
    }
    let dropped = header.get("dropped").and_then(Json::as_u64).unwrap_or(0);

    let mut phases: Vec<(String, u64)> = Vec::new();
    let mut queue_wait = Histogram::new();
    let mut exec = Histogram::new();
    let mut requests = 0u64;
    let mut failed = 0u64;
    let mut gc = GcSummary::default();
    let mut ic_misses: std::collections::BTreeMap<(String, u64), u64> =
        std::collections::BTreeMap::new();
    let mut events = 0u64;
    for (i, line) in lines.enumerate() {
        let ev = match jns_obs::json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("error: {path}: line {}: {e}", i + 2);
                return ExitCode::FAILURE;
            }
        };
        events += 1;
        let num = |key: &str| ev.get(key).and_then(Json::as_u64).unwrap_or(0);
        match ev.get("ev").and_then(Json::as_str) {
            Some("phase") => {
                let name = ev
                    .get("name")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string();
                phases.push((name, num("micros")));
            }
            Some("request_start") => {}
            Some("request_end") => {
                requests += 1;
                if ev.get("ok").and_then(Json::as_bool) == Some(false) {
                    failed += 1;
                }
                queue_wait.record(num("queue_us"));
                exec.record(num("exec_us"));
            }
            Some("gc") => {
                gc.runs += 1;
                gc.reclaimed += num("reclaimed");
                gc.peak_live = gc.peak_live.max(num("peak_live"));
                if ev.get("kind").and_then(Json::as_str) == Some("minor") {
                    gc.minor_runs += 1;
                    gc.minor_pause_us += num("pause_us");
                } else {
                    gc.major_runs += 1;
                    gc.major_pause_us += num("pause_us");
                }
            }
            Some("ic_miss") => {
                let kind = ev
                    .get("kind")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string();
                *ic_misses.entry((kind, num("site"))).or_insert(0) += 1;
            }
            _ => {
                eprintln!("error: {path}: line {}: missing or unknown ev tag", i + 2);
                return ExitCode::FAILURE;
            }
        }
    }

    println!("trace: {events} events");
    if !phases.is_empty() {
        println!("phases:");
        for (name, us) in &phases {
            println!("  {name:<8} {us:>8} µs");
        }
    }
    if requests > 0 {
        println!("requests: {requests} ({} failed)", failed);
        println!("  queue wait {}", queue_wait.render_line("µs"));
        println!("  execution  {}", exec.render_line("µs"));
    }
    if gc.runs > 0 {
        println!(
            "gc: {} runs, {} objects reclaimed, peak live {}",
            gc.runs, gc.reclaimed, gc.peak_live
        );
        println!(
            "  minor {:>4} runs, {:>8} µs paused",
            gc.minor_runs, gc.minor_pause_us
        );
        println!(
            "  major {:>4} runs, {:>8} µs paused",
            gc.major_runs, gc.major_pause_us
        );
    }
    if !ic_misses.is_empty() {
        let total: u64 = ic_misses.values().sum();
        // Hottest miss sites first; site index breaks ties so the order
        // is deterministic.
        let mut sites: Vec<(&(String, u64), &u64)> = ic_misses.iter().collect();
        sites.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        println!("inline-cache misses: {total} across {} sites", sites.len());
        for ((kind, site), n) in sites.into_iter().take(8) {
            println!("  {n:>8}  {kind} site {site}");
        }
    }
    if dropped > 0 {
        println!(
            "warning: {dropped} events were dropped at capture time — the \
             figures above undercount (raise the trace capacity)"
        );
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") | Some("check") => cmd_run(args),
        Some("serve") => cmd_serve(args),
        Some("bench") => cmd_bench(args),
        Some("bench-serve") => cmd_bench_serve(args),
        Some("trace-report") => cmd_trace_report(args),
        _ => usage(),
    }
}
