//! `jns` — command-line interpreter for the J&s language.
//!
//! Usage:
//!   jns run <file.jns>       parse, type-check, and run a program
//!   jns check <file.jns>     type-check only
//!   jns --help

use jns_core::Compiler;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [cmd, path] if cmd == "run" || cmd == "check" => {
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let compiled = match Compiler::new().compile(&src) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("{e}");
                    if let jns_core::Error::Parse(pe) = &e {
                        eprintln!("{}", jns_syntax::render_snippet(&src, pe.span));
                    }
                    return ExitCode::FAILURE;
                }
            };
            if cmd == "check" {
                println!("ok");
                return ExitCode::SUCCESS;
            }
            match compiled.run() {
                Ok(out) => {
                    for line in out.output {
                        println!("{line}");
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("runtime error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprintln!("usage: jns run <file.jns> | jns check <file.jns>");
            ExitCode::FAILURE
        }
    }
}
