pub use jns_core as core_api;
pub use jns_serve as serve_api;
