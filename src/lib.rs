pub use jns_core as core_api;
