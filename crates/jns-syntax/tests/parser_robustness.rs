//! Robustness: the parser must return errors, never panic, on arbitrary
//! input; and parsing is deterministic.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary strings never panic the lexer or parser.
    #[test]
    fn parser_never_panics(s in "\\PC*") {
        let _ = jns_syntax::parse(&s);
    }

    /// Token-shaped soup never panics either.
    #[test]
    fn token_soup_never_panics(words in prop::collection::vec(
        prop::sample::select(vec![
            "class", "extends", "shares", "adapts", "sharing", "view",
            "cast", "new", "final", "if", "else", "while", "return",
            "print", "this", "main", "int", "str", "{", "}", "(", ")",
            "[", "]", ";", ",", ".", "!", "&", "=", "==", "+", "\\",
            "->", "A", "B", "x", "f", "1", "\"s\"",
        ]),
        0..40,
    )) {
        let src = words.join(" ");
        let _ = jns_syntax::parse(&src);
    }

    /// Parsing is deterministic.
    #[test]
    fn parsing_is_deterministic(s in "\\PC{0,200}") {
        let a = jns_syntax::parse(&s);
        let b = jns_syntax::parse(&s);
        match (a, b) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
            (Err(x), Err(y)) => prop_assert_eq!(x, y),
            _ => prop_assert!(false, "nondeterministic parse"),
        }
    }
}

/// Nesting within the limit parses; adversarial nesting is rejected with
/// an error instead of a stack overflow.
#[test]
fn deep_nesting_is_handled() {
    let nest = |n: usize| {
        let mut src = String::from("main { print ");
        for _ in 0..n {
            src.push('(');
        }
        src.push('1');
        for _ in 0..n {
            src.push(')');
        }
        src.push_str("; }");
        src
    };
    assert!(jns_syntax::parse(&nest(50)).is_ok());
    let err = jns_syntax::parse(&nest(5000)).unwrap_err();
    assert!(err.message.contains("too deep"));
}

/// Error spans point into the source.
#[test]
fn error_spans_are_in_bounds() {
    for bad in [
        "class A {",
        "main { 1 + ; }",
        "class { }",
        "main { (view )x; }",
    ] {
        if let Err(e) = jns_syntax::parse(bad) {
            assert!((e.span.lo as usize) <= bad.len(), "{bad}");
            assert!((e.span.hi as usize) <= bad.len() + 1, "{bad}");
        }
    }
}
