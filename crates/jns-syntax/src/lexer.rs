//! A hand-rolled lexer for the J&s surface language.
//!
//! Supports `//` line comments and `/* ... */` block comments, decimal
//! integer literals, double-quoted string literals with `\n`, `\t`, `\"`,
//! `\\` escapes, and the operator set of the grammar.

use crate::span::Span;
use crate::token::{Token, TokenKind};
use std::fmt;

/// An error produced while lexing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// What went wrong.
    pub message: String,
    /// Where it went wrong.
    pub span: Span,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error: {} at {}", self.message, self.span)
    }
}

impl std::error::Error for LexError {}

/// Lexes `src` into a token stream terminated by [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns a [`LexError`] on unterminated strings/comments, invalid escape
/// sequences, out-of-range integers, or unexpected characters.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Result<Vec<Token>, LexError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let lo = self.pos as u32;
            let Some(b) = self.peek() else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    span: Span::new(lo, lo),
                });
                return Ok(out);
            };
            let kind = self.next_token(b)?;
            out.push(Token {
                kind,
                span: Span::new(lo, self.pos as u32),
            });
        }
    }

    fn next_token(&mut self, b: u8) -> Result<TokenKind, LexError> {
        use TokenKind::*;
        if b.is_ascii_alphabetic() || b == b'_' {
            let start = self.pos;
            while self
                .peek()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
            {
                self.pos += 1;
            }
            let text = &self.src[start..self.pos];
            return Ok(TokenKind::keyword(text).unwrap_or_else(|| Ident(text.to_string())));
        }
        if b.is_ascii_digit() {
            let start = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
            let text = &self.src[start..self.pos];
            return text.parse::<i64>().map(Int).map_err(|_| LexError {
                message: format!("integer literal `{text}` out of range"),
                span: Span::new(start as u32, self.pos as u32),
            });
        }
        if b == b'"' {
            return self.string();
        }
        self.pos += 1;
        let two = |l: &Self, c: u8| l.peek() == Some(c);
        Ok(match b {
            b'{' => LBrace,
            b'}' => RBrace,
            b'(' => LParen,
            b')' => RParen,
            b'[' => LBracket,
            b']' => RBracket,
            b';' => Semi,
            b',' => Comma,
            b'.' => Dot,
            b'\\' => Backslash,
            b'+' => Plus,
            b'*' => Star,
            b'/' => Slash,
            b'%' => Percent,
            b'-' => {
                if two(self, b'>') {
                    self.pos += 1;
                    Arrow
                } else {
                    Minus
                }
            }
            b'!' => {
                if two(self, b'=') {
                    self.pos += 1;
                    NotEq
                } else {
                    Bang
                }
            }
            b'&' => {
                if two(self, b'&') {
                    self.pos += 1;
                    AmpAmp
                } else {
                    Amp
                }
            }
            b'|' => {
                if two(self, b'|') {
                    self.pos += 1;
                    Pipe2
                } else {
                    return Err(self.err_at("unexpected character `|` (did you mean `||`?)"));
                }
            }
            b'=' => {
                if two(self, b'=') {
                    self.pos += 1;
                    EqEq
                } else {
                    Eq
                }
            }
            b'<' => {
                if two(self, b'=') {
                    self.pos += 1;
                    Le
                } else {
                    Lt
                }
            }
            b'>' => {
                if two(self, b'=') {
                    self.pos += 1;
                    Ge
                } else {
                    Gt
                }
            }
            other => {
                return Err(self.err_at(&format!("unexpected character `{}`", char::from(other))))
            }
        })
    }

    fn string(&mut self) -> Result<TokenKind, LexError> {
        let start = self.pos;
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None => {
                    return Err(LexError {
                        message: "unterminated string literal".into(),
                        span: Span::new(start as u32, self.pos as u32),
                    })
                }
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(TokenKind::Str(out));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| LexError {
                        message: "unterminated escape".into(),
                        span: Span::new(start as u32, self.pos as u32),
                    })?;
                    self.pos += 1;
                    out.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        b'"' => '"',
                        b'\\' => '\\',
                        other => {
                            return Err(LexError {
                                message: format!("invalid escape `\\{}`", char::from(other)),
                                span: Span::new((self.pos - 2) as u32, self.pos as u32),
                            })
                        }
                    });
                }
                Some(_) => {
                    let ch = self.src[self.pos..].chars().next().expect("in bounds");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => self.pos += 1,
                Some(b'/') if self.peek_at(1) == Some(b'/') => {
                    while self.peek().is_some_and(|c| c != b'\n') {
                        self.pos += 1;
                    }
                }
                Some(b'/') if self.peek_at(1) == Some(b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        if self.peek().is_none() {
                            return Err(LexError {
                                message: "unterminated block comment".into(),
                                span: Span::new(start as u32, self.pos as u32),
                            });
                        }
                        if self.peek() == Some(b'*') && self.peek_at(1) == Some(b'/') {
                            self.pos += 2;
                            break;
                        }
                        self.pos += 1;
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    fn err_at(&self, msg: &str) -> LexError {
        LexError {
            message: msg.to_string(),
            span: Span::new((self.pos - 1) as u32, self.pos as u32),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("class Foo extends bar"),
            vec![
                KwClass,
                Ident("Foo".into()),
                KwExtends,
                Ident("bar".into()),
                Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("== = != ! && & -> - \\"),
            vec![EqEq, Eq, NotEq, Bang, AmpAmp, Amp, Arrow, Minus, Backslash, Eof]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("1 // two\n 3 /* 4 \n 5 */ 6"),
            vec![Int(1), Int(3), Int(6), Eof]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(kinds(r#""a\nb""#), vec![Str("a\nb".into()), Eof]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("\"abc").is_err());
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("/* abc").is_err());
    }

    #[test]
    fn bad_char_errors() {
        assert!(lex("#").is_err());
    }

    #[test]
    fn exact_type_tokens() {
        // `AST!.Exp` lexes as Ident Bang Dot Ident.
        assert_eq!(
            kinds("AST!.Exp"),
            vec![Ident("AST".into()), Bang, Dot, Ident("Exp".into()), Eof]
        );
    }

    #[test]
    fn spans_cover_tokens() {
        let toks = lex("ab cd").unwrap();
        assert_eq!(toks[0].span, crate::span::Span::new(0, 2));
        assert_eq!(toks[1].span, crate::span::Span::new(3, 5));
    }

    #[test]
    fn int_overflow_errors() {
        assert!(lex("99999999999999999999999").is_err());
    }
}
