//! Source positions and spans.
//!
//! Every token and AST node carries a [`Span`] into the original source text
//! so that diagnostics can point at the offending code.

use std::fmt;

/// A half-open byte range `[lo, hi)` into a source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub lo: u32,
    /// Byte offset one past the last character.
    pub hi: u32,
}

impl Span {
    /// Creates a span covering bytes `lo..hi`.
    pub fn new(lo: u32, hi: u32) -> Self {
        Span { lo, hi }
    }

    /// A zero-width placeholder span (used for synthesised nodes).
    pub fn dummy() -> Self {
        Span { lo: 0, hi: 0 }
    }

    /// Smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.lo, self.hi)
    }
}

/// Computes the 1-based `(line, column)` of byte offset `pos` in `src`.
pub fn line_col(src: &str, pos: u32) -> (usize, usize) {
    let pos = (pos as usize).min(src.len());
    let mut line = 1;
    let mut col = 1;
    for (i, ch) in src.char_indices() {
        if i >= pos {
            break;
        }
        if ch == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

/// Renders a single-line caret diagnostic for `span` in `src`.
///
/// The output looks like:
/// ```text
///  --> 3:14
///   |  class C extends D {
///   |                  ^
/// ```
pub fn render_snippet(src: &str, span: Span) -> String {
    let (line, col) = line_col(src, span.lo);
    let text = src.lines().nth(line - 1).unwrap_or("");
    let width = ((span.hi - span.lo) as usize)
        .max(1)
        .min(text.len().saturating_sub(col - 1).max(1));
    let mut out = String::new();
    out.push_str(&format!(" --> {line}:{col}\n"));
    out.push_str(&format!("  |  {text}\n"));
    out.push_str(&format!(
        "  |  {}{}",
        " ".repeat(col - 1),
        "^".repeat(width)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join() {
        let a = Span::new(3, 5);
        let b = Span::new(7, 9);
        assert_eq!(a.to(b), Span::new(3, 9));
        assert_eq!(b.to(a), Span::new(3, 9));
    }

    #[test]
    fn line_col_basics() {
        let src = "ab\ncd\nef";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 1), (1, 2));
        assert_eq!(line_col(src, 3), (2, 1));
        assert_eq!(line_col(src, 7), (3, 2));
    }

    #[test]
    fn line_col_past_end_clamps() {
        let src = "x";
        assert_eq!(line_col(src, 100), (1, 2));
    }

    #[test]
    fn snippet_renders_caret() {
        let src = "class A {}";
        let snip = render_snippet(src, Span::new(6, 7));
        assert!(snip.contains("1:7"));
        assert!(snip.contains('^'));
    }
}
