//! # jns-syntax
//!
//! Front end for the J&s surface language from *Sharing Classes Between
//! Families* (Qi & Myers, PLDI 2009): lexer, parser, and surface AST.
//!
//! The surface language is the calculus of the paper (Fig. 8) plus the
//! conveniences needed to write the paper's own examples: primitives,
//! blocks, `if`/`while`, record-style `new`, and `print`. See `DESIGN.md`
//! at the repository root for the exact scope.
//!
//! # Examples
//!
//! ```
//! let program = jns_syntax::parse(
//!     "class A { class C { int x = 1; } }
//!      class B extends A { class C shares A.C { int twice() { return this.x * 2; } } }
//!      main { final A.C a = new A.C(); print a.x; }",
//! )?;
//! assert_eq!(program.classes.len(), 2);
//! # Ok::<(), jns_syntax::ParseError>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod token;

pub use ast::{
    BinOp, Block, ClassDecl, Expr, FieldDecl, Ident, Member, MethodDecl, Param, PathExpr, PrimTy,
    Program, QualName, SharingConstraint, Stmt, TypeExpr, UnOp,
};
pub use lexer::{lex, LexError};
pub use parser::{parse, ParseError};
pub use span::{line_col, render_snippet, Span};
pub use token::{Token, TokenKind};
