//! Abstract syntax for the J&s surface language.
//!
//! This is the *unresolved* surface AST: type names are still contextual
//! (an unqualified `Exp` is resolved to `Fam[this.class].Exp` later, by the
//! type checker in `jns-types`).

use crate::span::Span;
use std::fmt;

/// An identifier with its source span.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ident {
    /// The identifier text.
    pub text: String,
    /// Source location.
    pub span: Span,
}

impl Ident {
    /// Creates an identifier with a dummy span (for synthesised nodes).
    pub fn synth(text: impl Into<String>) -> Self {
        Ident {
            text: text.into(),
            span: Span::dummy(),
        }
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.text)
    }
}

/// A whole program: a set of top-level class (family) declarations and an
/// optional `main { ... }` block (the calculus' "main expression").
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Top-level classes, i.e. the families.
    pub classes: Vec<ClassDecl>,
    /// The optional main block.
    pub main: Option<Block>,
}

/// A class declaration, possibly nested.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDecl {
    /// The simple name of the class.
    pub name: Ident,
    /// Declared supertypes; `extends A & B` yields two entries.
    pub extends: Vec<TypeExpr>,
    /// The `shares T` clause, if any (the type may be masked: `shares A.C\g`).
    pub shares: Option<TypeExpr>,
    /// `adapts P` clauses: shorthand that shares every inherited member
    /// class with the corresponding class of `P` (paper §2.2).
    pub adapts: Vec<QualName>,
    /// Nested classes, fields, and methods.
    pub members: Vec<Member>,
    /// Source location of the whole declaration.
    pub span: Span,
}

/// A dot-separated, fully explicit class name such as `A.B.C`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QualName {
    /// The name segments, outermost first.
    pub parts: Vec<Ident>,
}

impl fmt::Display for QualName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for p in &self.parts {
            if !first {
                write!(f, ".")?;
            }
            write!(f, "{p}")?;
            first = false;
        }
        Ok(())
    }
}

/// A class member.
#[derive(Debug, Clone, PartialEq)]
pub enum Member {
    /// A nested class.
    Class(ClassDecl),
    /// A field.
    Field(FieldDecl),
    /// A method.
    Method(MethodDecl),
}

/// A field declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDecl {
    /// Whether the field is `final` (usable in dependent paths).
    pub is_final: bool,
    /// Declared type.
    pub ty: TypeExpr,
    /// Field name.
    pub name: Ident,
    /// Optional initialiser. Fields without one start masked in `new`.
    pub init: Option<Expr>,
    /// Source location.
    pub span: Span,
}

/// A method declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodDecl {
    /// Return type (`void` for none).
    pub ret: TypeExpr,
    /// Method name.
    pub name: Ident,
    /// Formal parameters.
    pub params: Vec<Param>,
    /// `sharing T1 = T2` / `sharing T1 -> T2` constraints.
    pub constraints: Vec<SharingConstraint>,
    /// The body; `None` for abstract methods (declared with `;`).
    pub body: Option<Block>,
    /// Source location.
    pub span: Span,
}

/// A formal parameter (always final, as in the calculus).
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Declared type.
    pub ty: TypeExpr,
    /// Parameter name.
    pub name: Ident,
}

/// A sharing constraint on a method (paper §2.5, §3.3).
#[derive(Debug, Clone, PartialEq)]
pub struct SharingConstraint {
    /// Left type.
    pub lhs: TypeExpr,
    /// Right type.
    pub rhs: TypeExpr,
    /// `true` for the directional form `T1 -> T2`; `false` for `T1 = T2`
    /// (which is sugar for both directions).
    pub directional: bool,
    /// Source location.
    pub span: Span,
}

/// Primitive types (an extension over the calculus; see DESIGN.md §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PrimTy {
    /// 64-bit signed integer.
    Int,
    /// Boolean.
    Bool,
    /// Immutable string.
    Str,
    /// Unit / no value.
    Void,
}

impl fmt::Display for PrimTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PrimTy::Int => "int",
            PrimTy::Bool => "bool",
            PrimTy::Str => "str",
            PrimTy::Void => "void",
        })
    }
}

/// A final access path: a variable (or `this`) followed by final fields,
/// e.g. `this.left.right`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PathExpr {
    /// The base variable (`this` is spelled literally).
    pub base: Ident,
    /// Field accesses applied to the base.
    pub fields: Vec<Ident>,
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.base)?;
        for fld in &self.fields {
            write!(f, ".{fld}")?;
        }
        Ok(())
    }
}

/// Surface type expressions (Fig. 8 `T`, plus primitives).
#[derive(Debug, Clone, PartialEq)]
pub enum TypeExpr {
    /// A primitive type.
    Prim(PrimTy, Span),
    /// A (possibly dotted) class name to be resolved contextually.
    Name(QualName),
    /// A dependent class `p.class`.
    DepClass(PathExpr, Span),
    /// A prefix type `P[T]`; the first component must name a class.
    Prefix(QualName, Box<TypeExpr>, Span),
    /// An exact type `T!`.
    Exact(Box<TypeExpr>, Span),
    /// A nested member of a non-simple type, e.g. `AST!.Exp` or `P[x.class].C`.
    Nested(Box<TypeExpr>, Ident),
    /// An intersection `T & T`.
    Meet(Vec<TypeExpr>, Span),
    /// A masked type `T\f1\f2`.
    Masked(Box<TypeExpr>, Vec<Ident>),
}

impl TypeExpr {
    /// The source span of this type expression.
    pub fn span(&self) -> Span {
        match self {
            TypeExpr::Prim(_, s) | TypeExpr::DepClass(_, s) | TypeExpr::Prefix(_, _, s) => *s,
            TypeExpr::Exact(_, s) | TypeExpr::Meet(_, s) => *s,
            TypeExpr::Name(q) => q
                .parts
                .first()
                .map(|a| a.span.to(q.parts.last().expect("nonempty").span))
                .unwrap_or_default(),
            TypeExpr::Nested(t, id) => t.span().to(id.span),
            TypeExpr::Masked(t, fs) => fs
                .last()
                .map(|f| t.span().to(f.span))
                .unwrap_or_else(|| t.span()),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (int addition or string concatenation)
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==` (primitive equality, or reference *identity* on objects)
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `!`
    Not,
    /// `-`
    Neg,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Span),
    /// Boolean literal.
    Bool(bool, Span),
    /// String literal.
    Str(String, Span),
    /// A variable or `this`.
    Var(Ident),
    /// Field access `e.f`.
    Field(Box<Expr>, Ident),
    /// Field assignment `x.f = e` (receiver is a variable, per T-SET).
    Assign {
        /// Receiver variable (may be `this`).
        recv: Ident,
        /// Assigned field.
        field: Ident,
        /// Right-hand side.
        value: Box<Expr>,
    },
    /// Method call `e.m(args)`.
    Call(Box<Expr>, Ident, Vec<Expr>),
    /// Allocation `new T { f = e, ... }`.
    New(TypeExpr, Vec<(Ident, Expr)>, Span),
    /// View change `(view T)e` (paper §2.3).
    View(TypeExpr, Box<Expr>, Span),
    /// Checked cast `(cast T)e`.
    Cast(TypeExpr, Box<Expr>, Span),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>, Span),
    /// Unary operation.
    Unary(UnOp, Box<Expr>, Span),
    /// Conditional; an expression (both arms must agree) or statement.
    If(Box<Expr>, Block, Option<Block>, Span),
    /// A nested block.
    Block(Block),
}

impl Expr {
    /// The source span of this expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Int(_, s)
            | Expr::Bool(_, s)
            | Expr::Str(_, s)
            | Expr::New(_, _, s)
            | Expr::View(_, _, s)
            | Expr::Cast(_, _, s)
            | Expr::Binary(_, _, _, s)
            | Expr::Unary(_, _, s)
            | Expr::If(_, _, _, s) => *s,
            Expr::Var(id) => id.span,
            Expr::Field(e, f) => e.span().to(f.span),
            Expr::Assign { recv, value, .. } => recv.span.to(value.span()),
            Expr::Call(e, m, args) => {
                let end = args.last().map(|a| a.span()).unwrap_or(m.span);
                e.span().to(end)
            }
            Expr::Block(b) => b.span,
        }
    }
}

impl Expr {
    /// Whether this node owns no child expressions or blocks.
    fn is_leaf(&self) -> bool {
        matches!(
            self,
            Expr::Int(..) | Expr::Bool(..) | Expr::Str(..) | Expr::Var(_)
        )
    }

    /// Moves every non-leaf direct child out of `e` onto the worklists.
    /// Leaf children stay in place (they drop trivially with the
    /// hollowed parent), so a harvested node's own `Drop` re-entry finds
    /// nothing to push and the worklists never allocate for it.
    fn take_children(e: &mut Expr, exprs: &mut Vec<Expr>, stmts: &mut Vec<Stmt>) {
        fn take(b: &mut Expr, exprs: &mut Vec<Expr>) {
            if !b.is_leaf() {
                let filler = Expr::Bool(false, b.span());
                exprs.push(std::mem::replace(b, filler));
            }
        }
        match e {
            Expr::Int(..) | Expr::Bool(..) | Expr::Str(..) | Expr::Var(_) => {}
            Expr::Field(b, _) => take(b, exprs),
            Expr::Assign { value, .. } => take(value, exprs),
            Expr::View(_, b, _) | Expr::Cast(_, b, _) | Expr::Unary(_, b, _) => take(b, exprs),
            Expr::Binary(_, l, r, _) => {
                take(l, exprs);
                take(r, exprs);
            }
            Expr::Call(b, _, args) => {
                take(b, exprs);
                exprs.extend(args.drain(..).filter(|a| !a.is_leaf()));
            }
            Expr::New(_, inits, _) => exprs.extend(
                std::mem::take(inits)
                    .into_iter()
                    .map(|(_, i)| i)
                    .filter(|i| !i.is_leaf()),
            ),
            Expr::If(c, then, els, _) => {
                take(c, exprs);
                stmts.append(&mut then.stmts);
                if let Some(b) = els {
                    stmts.append(&mut b.stmts);
                }
            }
            Expr::Block(b) => stmts.append(&mut b.stmts),
        }
    }
}

/// Iterative teardown, mirroring the checked IR's: long operator or
/// statement chains produce deeply nested parse trees, and the derived
/// (recursive) drop would overflow the host stack freeing them. Children
/// are moved onto heap worklists before each node is freed.
impl Drop for Expr {
    fn drop(&mut self) {
        if self.is_leaf() {
            return;
        }
        let mut exprs: Vec<Expr> = Vec::new();
        let mut stmts: Vec<Stmt> = Vec::new();
        Expr::take_children(self, &mut exprs, &mut stmts);
        loop {
            if let Some(mut e) = exprs.pop() {
                Expr::take_children(&mut e, &mut exprs, &mut stmts);
            } else if let Some(s) = stmts.pop() {
                match s {
                    Stmt::Let { init: e, .. }
                    | Stmt::Expr(e)
                    | Stmt::Print(e, _)
                    | Stmt::Return(e, _) => {
                        if !e.is_leaf() {
                            exprs.push(e);
                        }
                    }
                    Stmt::While(c, mut b, _) => {
                        if !c.is_leaf() {
                            exprs.push(c);
                        }
                        stmts.append(&mut b.stmts);
                    }
                }
            } else {
                break;
            }
        }
    }
}

/// A block of statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// The statements in order.
    pub stmts: Vec<Stmt>,
    /// Source location.
    pub span: Span,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local binding `final T x = e;` (locals are always final, as in the
    /// calculus; the `final` keyword may be omitted in the surface syntax).
    Let {
        /// Declared type.
        ty: TypeExpr,
        /// Variable name.
        name: Ident,
        /// Initialiser.
        init: Expr,
    },
    /// An expression statement.
    Expr(Expr),
    /// `while (e) { ... }`.
    While(Expr, Block, Span),
    /// `print e;` — writes the value's display form plus newline.
    Print(Expr, Span),
    /// `return e;` — only allowed in tail position.
    Return(Expr, Span),
}

impl Stmt {
    /// The source span of this statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Let { ty, init, .. } => ty.span().to(init.span()),
            Stmt::Expr(e) => e.span(),
            Stmt::While(_, _, s) | Stmt::Print(_, s) | Stmt::Return(_, s) => *s,
        }
    }
}
