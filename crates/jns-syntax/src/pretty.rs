//! Pretty-printing of surface types and expressions, used in diagnostics
//! and golden tests.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a [`TypeExpr`] in source-like notation.
pub fn type_to_string(t: &TypeExpr) -> String {
    let mut s = String::new();
    write_type(&mut s, t);
    s
}

fn write_type(out: &mut String, t: &TypeExpr) {
    match t {
        TypeExpr::Prim(p, _) => {
            let _ = write!(out, "{p}");
        }
        TypeExpr::Name(q) => {
            let _ = write!(out, "{q}");
        }
        TypeExpr::DepClass(p, _) => {
            let _ = write!(out, "{p}.class");
        }
        TypeExpr::Prefix(p, idx, _) => {
            let _ = write!(out, "{p}[");
            write_type(out, idx);
            out.push(']');
        }
        TypeExpr::Exact(t, _) => {
            write_type(out, t);
            out.push('!');
        }
        TypeExpr::Nested(t, c) => {
            write_type(out, t);
            let _ = write!(out, ".{c}");
        }
        TypeExpr::Meet(ts, _) => {
            for (i, t) in ts.iter().enumerate() {
                if i > 0 {
                    out.push_str(" & ");
                }
                write_type(out, t);
            }
        }
        TypeExpr::Masked(t, fs) => {
            write_type(out, t);
            for f in fs {
                let _ = write!(out, "\\{f}");
            }
        }
    }
}

/// Renders an expression in compact source-like notation (single line).
pub fn expr_to_string(e: &Expr) -> String {
    let mut s = String::new();
    write_expr(&mut s, e);
    s
}

fn write_expr(out: &mut String, e: &Expr) {
    match e {
        Expr::Int(n, _) => {
            let _ = write!(out, "{n}");
        }
        Expr::Bool(b, _) => {
            let _ = write!(out, "{b}");
        }
        Expr::Str(s, _) => {
            let _ = write!(out, "{s:?}");
        }
        Expr::Var(x) => {
            let _ = write!(out, "{x}");
        }
        Expr::Field(e, f) => {
            write_expr(out, e);
            let _ = write!(out, ".{f}");
        }
        Expr::Assign { recv, field, value } => {
            let _ = write!(out, "{recv}.{field} = ");
            write_expr(out, value);
        }
        Expr::Call(e, m, args) => {
            write_expr(out, e);
            let _ = write!(out, ".{m}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, a);
            }
            out.push(')');
        }
        Expr::New(t, inits, _) => {
            out.push_str("new ");
            write_type(out, t);
            if !inits.is_empty() {
                out.push_str(" { ");
                for (i, (f, v)) in inits.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{f} = ");
                    write_expr(out, v);
                }
                out.push_str(" }");
            }
        }
        Expr::View(t, e, _) => {
            out.push_str("(view ");
            write_type(out, t);
            out.push(')');
            write_expr(out, e);
        }
        Expr::Cast(t, e, _) => {
            out.push_str("(cast ");
            write_type(out, t);
            out.push(')');
            write_expr(out, e);
        }
        Expr::Binary(op, l, r, _) => {
            out.push('(');
            write_expr(out, l);
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Rem => "%",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::And => "&&",
                BinOp::Or => "||",
            };
            let _ = write!(out, " {sym} ");
            write_expr(out, r);
            out.push(')');
        }
        Expr::Unary(op, e, _) => {
            out.push(match op {
                UnOp::Not => '!',
                UnOp::Neg => '-',
            });
            write_expr(out, e);
        }
        Expr::If(c, _, _, _) => {
            out.push_str("if (");
            write_expr(out, c);
            out.push_str(") {...}");
        }
        Expr::Block(_) => out.push_str("{...}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn roundtrip_types() {
        let p = parse("class F { void f(AST[this.class].Exp\\l e, base!.Abs\\e b, A & B m) { } }")
            .unwrap();
        let Member::Method(m) = &p.classes[0].members[0] else {
            panic!()
        };
        assert_eq!(type_to_string(&m.params[0].ty), "AST[this.class].Exp\\l");
        assert_eq!(type_to_string(&m.params[1].ty), "base!.Abs\\e");
        assert_eq!(type_to_string(&m.params[2].ty), "A & B");
    }

    #[test]
    fn roundtrip_exprs() {
        let p = parse("main { print (view B!.C)a; x.f = 1 + 2 * 3; }").unwrap();
        let main = p.main.unwrap();
        let Stmt::Print(e, _) = &main.stmts[0] else {
            panic!()
        };
        assert_eq!(expr_to_string(e), "(view B!.C)a");
        let Stmt::Expr(e2) = &main.stmts[1] else {
            panic!()
        };
        assert_eq!(expr_to_string(e2), "x.f = (1 + (2 * 3))");
    }
}
