//! Recursive-descent parser for the J&s surface language.
//!
//! The grammar is LL with one point of backtracking: a statement beginning
//! with a type-looking token sequence is tried as a local declaration
//! (`T x = e;`) and re-parsed as an expression statement on failure.

use crate::ast::*;
use crate::lexer::{lex, LexError};
use crate::span::Span;
use crate::token::{Token, TokenKind};
use std::fmt;

/// A parse (or lex) error with a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Location of the offending token.
    pub span: Span,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {} at {}", self.message, self.span)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            span: e.span,
        }
    }
}

/// Parses a whole program.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered.
///
/// # Examples
///
/// ```
/// let prog = jns_syntax::parse(
///     "class A { class C { int x = 0; } } main { final A.C c = new A.C(); print c.x; }",
/// )?;
/// assert_eq!(prog.classes.len(), 1);
/// # Ok::<(), jns_syntax::ParseError>(())
/// ```
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    Parser {
        tokens,
        pos: 0,
        depth: 0,
    }
    .program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: u32,
}

type PResult<T> = Result<T, ParseError>;

impl Parser {
    fn program(&mut self) -> PResult<Program> {
        let mut classes = Vec::new();
        let mut main = None;
        loop {
            match self.peek() {
                TokenKind::KwClass => classes.push(self.class_decl()?),
                TokenKind::KwMain => {
                    self.bump();
                    main = Some(self.block()?);
                }
                TokenKind::Eof => break,
                _ => return Err(self.unexpected("`class`, `main`, or end of input")),
            }
        }
        Ok(Program { classes, main })
    }

    fn class_decl(&mut self) -> PResult<ClassDecl> {
        let start = self.span();
        self.expect(TokenKind::KwClass)?;
        let name = self.ident()?;
        let mut extends = Vec::new();
        if self.eat(&TokenKind::KwExtends) {
            // Parse one full type; `A & B` arrives as a Meet and is
            // flattened (masks are kept so the checker can reject them
            // with a proper diagnostic).
            match self.ty()? {
                TypeExpr::Meet(parts, _) => extends.extend(parts),
                other => extends.push(other),
            }
        }
        let mut shares = None;
        let mut adapts = Vec::new();
        loop {
            if self.eat(&TokenKind::KwShares) {
                if shares.is_some() {
                    return Err(self.error_here("duplicate `shares` clause"));
                }
                shares = Some(self.ty()?);
            } else if self.eat(&TokenKind::KwAdapts) {
                adapts.push(self.qual_name()?);
                while self.eat(&TokenKind::Amp) {
                    adapts.push(self.qual_name()?);
                }
            } else {
                break;
            }
        }
        self.expect(TokenKind::LBrace)?;
        let mut members = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            members.push(self.member()?);
        }
        let span = start.to(self.prev_span());
        Ok(ClassDecl {
            name,
            extends,
            shares,
            adapts,
            members,
            span,
        })
    }

    fn member(&mut self) -> PResult<Member> {
        if self.peek() == &TokenKind::KwClass {
            return Ok(Member::Class(self.class_decl()?));
        }
        let start = self.span();
        let is_abstract = self.eat(&TokenKind::KwAbstract);
        let is_final = self.eat(&TokenKind::KwFinal);
        let ty = self.ty()?;
        let name = self.ident()?;
        if self.peek() == &TokenKind::LParen {
            if is_final {
                return Err(self.error_here("methods cannot be `final`"));
            }
            self.method_rest(start, ty, name).map(Member::Method)
        } else {
            if is_abstract {
                return Err(self.error_here("only methods can be abstract"));
            }
            let init = if self.eat(&TokenKind::Eq) {
                Some(self.expr()?)
            } else {
                None
            };
            self.expect(TokenKind::Semi)?;
            let span = start.to(self.prev_span());
            Ok(Member::Field(FieldDecl {
                is_final,
                ty,
                name,
                init,
                span,
            }))
        }
    }

    fn method_rest(&mut self, start: Span, ret: TypeExpr, name: Ident) -> PResult<MethodDecl> {
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &TokenKind::RParen {
            loop {
                let ty = self.ty()?;
                let pname = self.ident()?;
                params.push(Param { ty, name: pname });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        let mut constraints = Vec::new();
        if self.eat(&TokenKind::KwSharing) {
            loop {
                let cstart = self.span();
                let lhs = self.ty()?;
                let directional = if self.eat(&TokenKind::Arrow) {
                    true
                } else {
                    self.expect(TokenKind::Eq)?;
                    false
                };
                let rhs = self.ty()?;
                let span = cstart.to(self.prev_span());
                constraints.push(SharingConstraint {
                    lhs,
                    rhs,
                    directional,
                    span,
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let body = if self.eat(&TokenKind::Semi) {
            None
        } else {
            Some(self.block()?)
        };
        let span = start.to(self.prev_span());
        Ok(MethodDecl {
            ret,
            name,
            params,
            constraints,
            body,
            span,
        })
    }

    // ---------------------------------------------------------------- types

    /// `Type := Meet ('\' Ident)*` where `Meet := Postfix ('&' Postfix)*`.
    fn ty(&mut self) -> PResult<TypeExpr> {
        let start = self.span();
        let first = self.ty_postfix()?;
        let mut parts = vec![first];
        while self.eat(&TokenKind::Amp) {
            parts.push(self.ty_postfix()?);
        }
        let mut t = if parts.len() == 1 {
            parts.pop().expect("one element")
        } else {
            let span = start.to(self.prev_span());
            TypeExpr::Meet(parts, span)
        };
        let mut masks = Vec::new();
        while self.eat(&TokenKind::Backslash) {
            masks.push(self.ident()?);
        }
        if !masks.is_empty() {
            t = TypeExpr::Masked(Box::new(t), masks);
        }
        Ok(t)
    }

    /// A type without meets or masks: atom plus `!` / `.C` suffixes.
    fn ty_postfix(&mut self) -> PResult<TypeExpr> {
        let mut t = self.ty_atom()?;
        loop {
            if self.peek() == &TokenKind::Bang {
                let sp = self.span();
                self.bump();
                let span = t.span().to(sp);
                t = TypeExpr::Exact(Box::new(t), span);
            } else if self.peek() == &TokenKind::Dot {
                self.bump();
                let id = self.ident()?;
                t = TypeExpr::Nested(Box::new(t), id);
            } else {
                break;
            }
        }
        Ok(t)
    }

    fn ty_atom(&mut self) -> PResult<TypeExpr> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::KwInt => {
                self.bump();
                Ok(TypeExpr::Prim(PrimTy::Int, start))
            }
            TokenKind::KwBool => {
                self.bump();
                Ok(TypeExpr::Prim(PrimTy::Bool, start))
            }
            TokenKind::KwStr => {
                self.bump();
                Ok(TypeExpr::Prim(PrimTy::Str, start))
            }
            TokenKind::KwVoid => {
                self.bump();
                Ok(TypeExpr::Prim(PrimTy::Void, start))
            }
            TokenKind::KwThis => {
                self.bump();
                self.dep_class_rest(Ident {
                    text: "this".into(),
                    span: start,
                })
            }
            TokenKind::Ident(_) => {
                // Either a class path `A.B.C` (possibly a prefix type
                // `A.B[T]`), or a dependent class `x.f.class`.
                let first = self.ident()?;
                let mut segs = vec![first];
                loop {
                    if self.peek() == &TokenKind::Dot {
                        // Lookahead: `.class` ends a dependent path;
                        // `.Ident` continues the dotted name.
                        match self.peek_at(1) {
                            TokenKind::KwClass => {
                                self.bump(); // `.`
                                let csp = self.span();
                                self.bump(); // `class`
                                let base = segs.remove(0);
                                let span = start.to(csp);
                                return Ok(TypeExpr::DepClass(
                                    PathExpr { base, fields: segs },
                                    span,
                                ));
                            }
                            TokenKind::Ident(_) => {
                                self.bump();
                                segs.push(self.ident()?);
                            }
                            _ => break,
                        }
                    } else {
                        break;
                    }
                }
                if self.peek() == &TokenKind::LBracket {
                    self.bump();
                    let index = self.ty()?;
                    self.expect(TokenKind::RBracket)?;
                    let span = start.to(self.prev_span());
                    return Ok(TypeExpr::Prefix(
                        QualName { parts: segs },
                        Box::new(index),
                        span,
                    ));
                }
                Ok(TypeExpr::Name(QualName { parts: segs }))
            }
            _ => Err(self.unexpected("a type")),
        }
    }

    /// After `this` or in a context known to be a path, parse
    /// `(.f)* .class`.
    fn dep_class_rest(&mut self, base: Ident) -> PResult<TypeExpr> {
        let start = base.span;
        let mut fields = Vec::new();
        loop {
            self.expect(TokenKind::Dot)?;
            if self.peek() == &TokenKind::KwClass {
                let csp = self.span();
                self.bump();
                let span = start.to(csp);
                return Ok(TypeExpr::DepClass(PathExpr { base, fields }, span));
            }
            fields.push(self.ident()?);
        }
    }

    fn qual_name(&mut self) -> PResult<QualName> {
        let mut parts = vec![self.ident()?];
        while self.peek() == &TokenKind::Dot && matches!(self.peek_at(1), TokenKind::Ident(_)) {
            self.bump();
            parts.push(self.ident()?);
        }
        Ok(QualName { parts })
    }

    // ----------------------------------------------------------- statements

    fn block(&mut self) -> PResult<Block> {
        let start = self.span();
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            stmts.push(self.stmt()?);
        }
        let span = start.to(self.prev_span());
        Ok(Block { stmts, span })
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        let start = self.span();
        match self.peek() {
            TokenKind::KwFinal => {
                self.bump();
                let ty = self.ty()?;
                let name = self.ident()?;
                self.expect(TokenKind::Eq)?;
                let init = self.expr()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Let { ty, name, init })
            }
            TokenKind::KwWhile => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let body = self.block()?;
                let span = start.to(self.prev_span());
                Ok(Stmt::While(cond, body, span))
            }
            TokenKind::KwPrint => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::Semi)?;
                let span = start.to(self.prev_span());
                Ok(Stmt::Print(e, span))
            }
            TokenKind::KwReturn => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::Semi)?;
                let span = start.to(self.prev_span());
                Ok(Stmt::Return(e, span))
            }
            TokenKind::KwIf => {
                let e = self.expr()?;
                self.eat(&TokenKind::Semi);
                Ok(Stmt::Expr(e))
            }
            TokenKind::LBrace => {
                let b = self.block()?;
                Ok(Stmt::Expr(Expr::Block(b)))
            }
            _ => {
                // Try `T x = e;` (local declaration without `final`).
                let save = self.pos;
                if let Some(stmt) = self.try_let() {
                    return Ok(stmt);
                }
                self.pos = save;
                let e = self.expr()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    /// Attempts to parse `Type Ident = Expr ;`; returns `None` (without
    /// consuming input commitment) if the shape does not match.
    fn try_let(&mut self) -> Option<Stmt> {
        let ty = self.ty().ok()?;
        let name = match self.peek() {
            TokenKind::Ident(_) => self.ident().ok()?,
            _ => return None,
        };
        if !self.eat(&TokenKind::Eq) {
            return None;
        }
        let init = self.expr().ok()?;
        if !self.eat(&TokenKind::Semi) {
            return None;
        }
        Some(Stmt::Let { ty, name, init })
    }

    // ---------------------------------------------------------- expressions

    /// Maximum expression/type nesting depth (keeps recursive descent
    /// from overflowing the stack on adversarial input).
    const MAX_DEPTH: u32 = 64;

    fn expr(&mut self) -> PResult<Expr> {
        self.depth += 1;
        if self.depth > Self::MAX_DEPTH {
            self.depth -= 1;
            return Err(self.error_here("expression nesting too deep"));
        }
        let r = self.expr_inner();
        self.depth -= 1;
        r
    }

    fn expr_inner(&mut self) -> PResult<Expr> {
        // Assignment `x.f = e` (receiver must be a variable or `this`).
        if matches!(self.peek(), TokenKind::Ident(_) | TokenKind::KwThis)
            && self.peek_at(1) == &TokenKind::Dot
            && matches!(self.peek_at(2), TokenKind::Ident(_))
            && self.peek_at(3) == &TokenKind::Eq
        {
            let recv = self.ident_or_this()?;
            self.expect(TokenKind::Dot)?;
            let field = self.ident()?;
            self.expect(TokenKind::Eq)?;
            let value = self.expr()?;
            return Ok(Expr::Assign {
                recv,
                field,
                value: Box::new(value),
            });
        }
        self.or_expr()
    }

    fn or_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.and_expr()?;
        while self.peek() == &TokenKind::Pipe2 {
            self.bump();
            let rhs = self.and_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.cmp_expr()?;
        while self.peek() == &TokenKind::AmpAmp {
            self.bump();
            let rhs = self.cmp_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> PResult<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            TokenKind::EqEq => BinOp::Eq,
            TokenKind::NotEq => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        let span = lhs.span().to(rhs.span());
        Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs), span))
    }

    fn add_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> PResult<Expr> {
        let start = self.span();
        match self.peek() {
            TokenKind::Bang => {
                self.bump();
                let e = self.unary_expr()?;
                let span = start.to(e.span());
                Ok(Expr::Unary(UnOp::Not, Box::new(e), span))
            }
            TokenKind::Minus => {
                self.bump();
                let e = self.unary_expr()?;
                let span = start.to(e.span());
                Ok(Expr::Unary(UnOp::Neg, Box::new(e), span))
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> PResult<Expr> {
        let mut e = self.primary_expr()?;
        loop {
            if self.peek() == &TokenKind::Dot {
                self.bump();
                let name = self.ident()?;
                if self.peek() == &TokenKind::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != &TokenKind::RParen {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                    e = Expr::Call(Box::new(e), name, args);
                } else {
                    e = Expr::Field(Box::new(e), name);
                }
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> PResult<Expr> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::Int(n) => {
                self.bump();
                Ok(Expr::Int(n, start))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Str(s, start))
            }
            TokenKind::KwTrue => {
                self.bump();
                Ok(Expr::Bool(true, start))
            }
            TokenKind::KwFalse => {
                self.bump();
                Ok(Expr::Bool(false, start))
            }
            TokenKind::KwThis => {
                self.bump();
                Ok(Expr::Var(Ident {
                    text: "this".into(),
                    span: start,
                }))
            }
            TokenKind::Ident(_) => Ok(Expr::Var(self.ident()?)),
            TokenKind::KwNew => {
                self.bump();
                let ty = self.ty_postfix()?;
                let mut inits = Vec::new();
                if self.eat(&TokenKind::LParen) {
                    self.expect(TokenKind::RParen)?;
                } else if self.eat(&TokenKind::LBrace) {
                    if self.peek() != &TokenKind::RBrace {
                        loop {
                            let f = self.ident()?;
                            self.expect(TokenKind::Eq)?;
                            let v = self.expr()?;
                            inits.push((f, v));
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(TokenKind::RBrace)?;
                }
                let span = start.to(self.prev_span());
                Ok(Expr::New(ty, inits, span))
            }
            TokenKind::KwIf => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let then = self.block()?;
                let els = if self.eat(&TokenKind::KwElse) {
                    if self.peek() == &TokenKind::KwIf {
                        // `else if` sugar: wrap in a block.
                        let e = self.primary_expr()?;
                        let span = e.span();
                        Some(Block {
                            stmts: vec![Stmt::Expr(e)],
                            span,
                        })
                    } else {
                        Some(self.block()?)
                    }
                } else {
                    None
                };
                let span = start.to(self.prev_span());
                Ok(Expr::If(Box::new(cond), then, els, span))
            }
            TokenKind::LParen => {
                self.bump();
                match self.peek() {
                    TokenKind::KwView => {
                        self.bump();
                        let ty = self.ty()?;
                        self.expect(TokenKind::RParen)?;
                        let e = self.unary_expr()?;
                        let span = start.to(e.span());
                        Ok(Expr::View(ty, Box::new(e), span))
                    }
                    TokenKind::KwCast => {
                        self.bump();
                        let ty = self.ty()?;
                        self.expect(TokenKind::RParen)?;
                        let e = self.unary_expr()?;
                        let span = start.to(e.span());
                        Ok(Expr::Cast(ty, Box::new(e), span))
                    }
                    _ => {
                        let e = self.expr()?;
                        self.expect(TokenKind::RParen)?;
                        Ok(e)
                    }
                }
            }
            _ => Err(self.unexpected("an expression")),
        }
    }

    // ------------------------------------------------------------- plumbing

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, off: usize) -> &TokenKind {
        let i = (self.pos + off).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) {
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> PResult<()> {
        if self.peek() == &kind {
            self.bump();
            Ok(())
        } else {
            Err(self.unexpected(&kind.describe()))
        }
    }

    fn ident(&mut self) -> PResult<Ident> {
        match self.peek().clone() {
            TokenKind::Ident(text) => {
                let span = self.span();
                self.bump();
                Ok(Ident { text, span })
            }
            _ => Err(self.unexpected("an identifier")),
        }
    }

    fn ident_or_this(&mut self) -> PResult<Ident> {
        if self.peek() == &TokenKind::KwThis {
            let span = self.span();
            self.bump();
            Ok(Ident {
                text: "this".into(),
                span,
            })
        } else {
            self.ident()
        }
    }

    fn unexpected(&self, wanted: &str) -> ParseError {
        ParseError {
            message: format!("expected {wanted}, found {}", self.peek().describe()),
            span: self.span(),
        }
    }

    fn error_here(&self, msg: &str) -> ParseError {
        ParseError {
            message: msg.to_string(),
            span: self.span(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(src: &str) -> Program {
        parse(src).unwrap_or_else(|e| panic!("parse failed: {e}\nsource: {src}"))
    }

    #[test]
    fn empty_class() {
        let p = ok("class A { }");
        assert_eq!(p.classes.len(), 1);
        assert_eq!(p.classes[0].name.text, "A");
    }

    #[test]
    fn nested_classes_and_extends() {
        let p = ok("class A { class C extends D { } } class B extends A { }");
        assert_eq!(p.classes.len(), 2);
        let a = &p.classes[0];
        assert!(matches!(a.members[0], Member::Class(_)));
    }

    #[test]
    fn intersection_extends() {
        let p = ok("class ASTDisplay extends AST & TreeDisplay { }");
        assert_eq!(p.classes[0].extends.len(), 2);
    }

    #[test]
    fn shares_with_mask() {
        let p = ok("class B extends A { class C shares A.C\\g { } }");
        let Member::Class(c) = &p.classes[0].members[0] else {
            panic!("expected class")
        };
        assert!(matches!(c.shares, Some(TypeExpr::Masked(_, _))));
    }

    #[test]
    fn adapts_clause() {
        let p = ok("class ASTDisplay extends AST adapts AST { }");
        assert_eq!(p.classes[0].adapts.len(), 1);
    }

    #[test]
    fn fields_and_methods() {
        let p = ok(
            "class A { class C { int x = 1; final str name = \"n\"; int get() { return x; } } }",
        );
        let Member::Class(c) = &p.classes[0].members[0] else {
            panic!()
        };
        assert_eq!(c.members.len(), 3);
    }

    #[test]
    fn method_with_sharing_constraint() {
        let p = ok(
            "class F { void show(AST!.Exp e) sharing AST!.Exp = Exp { final Exp t = (view Exp)e; t.display(); } }",
        );
        let Member::Method(m) = &p.classes[0].members[0] else {
            panic!()
        };
        assert_eq!(m.constraints.len(), 1);
        assert!(!m.constraints[0].directional);
    }

    #[test]
    fn directional_constraint() {
        let p = ok("class F { void go(int x) sharing A!.C -> B!.C { } }");
        let Member::Method(m) = &p.classes[0].members[0] else {
            panic!()
        };
        assert!(m.constraints[0].directional);
    }

    #[test]
    fn exact_and_prefix_types() {
        let p = ok("class F { AST[this.class].Exp f(base!.Exp e, this.class t) { return e; } }");
        let Member::Method(m) = &p.classes[0].members[0] else {
            panic!()
        };
        assert!(matches!(m.ret, TypeExpr::Nested(_, _)));
        assert!(matches!(m.params[0].ty, TypeExpr::Nested(_, _)));
        assert!(matches!(m.params[1].ty, TypeExpr::DepClass(_, _)));
    }

    #[test]
    fn dependent_path_type() {
        let p = ok("class F { void f(int z) { final x.f.class y = x.f; } }");
        let Member::Method(m) = &p.classes[0].members[0] else {
            panic!()
        };
        let Stmt::Let { ty, .. } = &m.body.as_ref().unwrap().stmts[0] else {
            panic!()
        };
        let TypeExpr::DepClass(path, _) = ty else {
            panic!("got {ty:?}")
        };
        assert_eq!(path.base.text, "x");
        assert_eq!(path.fields.len(), 1);
    }

    #[test]
    fn view_and_cast_expressions() {
        let p = ok("main { final B!.C b = (view B!.C)a; final A!.C c = (cast A!.C)b; }");
        let main = p.main.unwrap();
        assert_eq!(main.stmts.len(), 2);
    }

    #[test]
    fn new_with_record_inits() {
        let p = ok("main { final A.C c = new A.C { x = 1, y = \"s\" }; final A.C d = new A.C(); }");
        let Stmt::Let { init, .. } = &p.main.as_ref().unwrap().stmts[0] else {
            panic!()
        };
        let Expr::New(_, inits, _) = init else {
            panic!()
        };
        assert_eq!(inits.len(), 2);
    }

    #[test]
    fn assignment_statement() {
        let p = ok("main { temp.e = exp; this.x = 1; }");
        let stmts = &p.main.unwrap().stmts;
        assert!(matches!(stmts[0], Stmt::Expr(Expr::Assign { .. })));
        assert!(matches!(stmts[1], Stmt::Expr(Expr::Assign { .. })));
    }

    #[test]
    fn let_without_final_keyword() {
        let p = ok("main { base!.Exp exp = e.translate(v); }");
        assert!(matches!(p.main.unwrap().stmts[0], Stmt::Let { .. }));
    }

    #[test]
    fn if_else_and_while() {
        let p =
            ok("main { if (a == b) { print 1; } else { print 2; } while (i < 10) { i.bump(); } }");
        assert_eq!(p.main.unwrap().stmts.len(), 2);
    }

    #[test]
    fn else_if_chain() {
        ok("main { if (a) { } else if (b) { } else { } }");
    }

    #[test]
    fn operator_precedence() {
        let p = ok("main { print 1 + 2 * 3 == 7 && true; }");
        let Stmt::Print(e, _) = &p.main.unwrap().stmts[0] else {
            panic!()
        };
        // top must be `&&`
        assert!(matches!(e, Expr::Binary(BinOp::And, _, _, _)));
    }

    #[test]
    fn method_call_chains() {
        ok("main { a.b().c(1, x.y).d; }");
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse("class A { ] }").is_err());
        assert!(parse("main { 1 + ; }").is_err());
        assert!(parse("class A").is_err());
    }

    #[test]
    fn error_message_mentions_expectation() {
        let err = parse("class { }").unwrap_err();
        assert!(err.message.contains("identifier"), "{}", err.message);
    }

    #[test]
    fn masked_meet_binds_mask_outside() {
        let p = ok("class F { void f(A & B\\g x) { } }");
        let Member::Method(m) = &p.classes[0].members[0] else {
            panic!()
        };
        assert!(matches!(m.params[0].ty, TypeExpr::Masked(_, _)));
    }

    #[test]
    fn figure3_show_method_parses() {
        // Directly from paper Figure 3.
        ok("class ASTDisplay extends AST & TreeDisplay {
              class Exp extends Node shares AST.Exp { }
              class Value extends Exp & Leaf shares AST.Value { }
              class Binary extends Exp & Composite shares AST.Binary {
                void display() { this.l.display(); }
              }
              void show(AST!.Exp e) sharing AST!.Exp = Exp {
                final Exp temp = (view Exp)e;
                temp.display();
              }
           }");
    }
}
