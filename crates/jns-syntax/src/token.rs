//! Token definitions for the J&s surface language.

use crate::span::Span;
use std::fmt;

/// A lexical token paired with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is (including any literal payload).
    pub kind: TokenKind,
    /// Where in the source it came from.
    pub span: Span,
}

/// The kinds of tokens produced by the [`lexer`](crate::lexer).
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // keyword and punctuation variants are self-describing
pub enum TokenKind {
    /// An identifier (class name, variable, field, or method name).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A string literal (contents, unescaped).
    Str(String),

    // Keywords.
    #[allow(missing_docs)]
    KwAbstract,
    KwClass,
    KwExtends,
    KwShares,
    KwAdapts,
    KwSharing,
    KwView,
    KwCast,
    KwNew,
    KwFinal,
    KwIf,
    KwElse,
    KwWhile,
    KwReturn,
    KwPrint,
    KwTrue,
    KwFalse,
    KwThis,
    KwMain,
    KwInt,
    KwBool,
    KwStr,
    KwVoid,

    // Punctuation and operators.
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Bang,
    Amp,
    AmpAmp,
    Pipe2,
    Eq,
    EqEq,
    NotEq,
    Lt,
    Gt,
    Le,
    Ge,
    Plus,
    Minus,
    Star,
    Slash,
    Backslash,
    Arrow,
    Percent,

    /// End of input sentinel.
    Eof,
}

impl TokenKind {
    /// Keyword lookup used by the lexer.
    pub fn keyword(text: &str) -> Option<TokenKind> {
        use TokenKind::*;
        Some(match text {
            "abstract" => KwAbstract,
            "class" => KwClass,
            "extends" => KwExtends,
            "shares" => KwShares,
            "adapts" => KwAdapts,
            "sharing" => KwSharing,
            "view" => KwView,
            "cast" => KwCast,
            "new" => KwNew,
            "final" => KwFinal,
            "if" => KwIf,
            "else" => KwElse,
            "while" => KwWhile,
            "return" => KwReturn,
            "print" => KwPrint,
            "true" => KwTrue,
            "false" => KwFalse,
            "this" => KwThis,
            "main" => KwMain,
            "int" => KwInt,
            "bool" => KwBool,
            "str" => KwStr,
            "void" => KwVoid,
            _ => return None,
        })
    }

    /// A short human-readable description used in parse errors.
    pub fn describe(&self) -> String {
        use TokenKind::*;
        match self {
            Ident(s) => format!("identifier `{s}`"),
            Int(n) => format!("integer `{n}`"),
            Str(_) => "string literal".to_string(),
            Eof => "end of input".to_string(),
            other => format!("`{}`", other.symbol()),
        }
    }

    fn symbol(&self) -> &'static str {
        use TokenKind::*;
        match self {
            KwAbstract => "abstract",
            KwClass => "class",
            KwExtends => "extends",
            KwShares => "shares",
            KwAdapts => "adapts",
            KwSharing => "sharing",
            KwView => "view",
            KwCast => "cast",
            KwNew => "new",
            KwFinal => "final",
            KwIf => "if",
            KwElse => "else",
            KwWhile => "while",
            KwReturn => "return",
            KwPrint => "print",
            KwTrue => "true",
            KwFalse => "false",
            KwThis => "this",
            KwMain => "main",
            KwInt => "int",
            KwBool => "bool",
            KwStr => "str",
            KwVoid => "void",
            LBrace => "{",
            RBrace => "}",
            LParen => "(",
            RParen => ")",
            LBracket => "[",
            RBracket => "]",
            Semi => ";",
            Comma => ",",
            Dot => ".",
            Bang => "!",
            Amp => "&",
            AmpAmp => "&&",
            Pipe2 => "||",
            Eq => "=",
            EqEq => "==",
            NotEq => "!=",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            Plus => "+",
            Minus => "-",
            Star => "*",
            Slash => "/",
            Backslash => "\\",
            Arrow => "->",
            Percent => "%",
            Ident(_) | Int(_) | Str(_) | Eof => unreachable!(),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}
