//! Backend shoot-out: the bytecode VM (`jns-vm`, the §6 machinery applied
//! to the surface language) against the tree-walking reference
//! interpreter (`jns-eval`), on the paper's two flagship workloads:
//!
//! - the §7.3 **lambda compiler** — in-place translation of a deep term
//!   with node reuse (sharing-heavy: every reconstruct call re-views);
//! - the §2.4 **service evolution** — a hot dispatch loop before and
//!   after the live view-change evolution (dispatch-heavy: the VM's
//!   view-keyed inline caches should dominate).
//!
//! Both backends run the *same* compiled program via
//! `Compiled::run_on(backend)`, so the comparison isolates execution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jns_core::{lambda, service, Backend, Compiled, Compiler};

const BACKENDS: [(Backend, &str); 2] = [(Backend::TreeWalk, "treewalk"), (Backend::Vm, "vm")];

/// A left spine of `Abs` with a `Pair` at the bottom: everything above
/// the pair is reusable in place (same shape as the `lambda` bench).
fn deep_term(depth: u32) -> String {
    let mut t =
        "new pair.Pair { fst = new pair.Var { x = \"a\" }, snd = new pair.Var { x = \"b\" } }"
            .to_string();
    for i in 0..depth {
        t = format!("new pair.Abs {{ x = \"x{i}\", e = {t} }}");
    }
    t
}

fn lambda_workload() -> Compiled {
    let main_body = format!(
        "final pair!.Exp root = {};
         final pair!.Translator tr = new pair.Translator();
         final base!.Exp out = root.translate(tr);
         print out == root;",
        deep_term(24)
    );
    Compiler::new()
        .compile(&lambda::program(&main_body))
        .expect("lambda workload typechecks")
}

fn service_workload() -> Compiled {
    let main_body = r#"
        final service!.SomeService s = new service.SomeService();
        final service!.EchoService e = new service.EchoService();
        final service!.Dispatcher d = new service.Dispatcher { s = s, e = e };
        final Server srv = new Server { disp = d };
        final service!.Packet p0 = new service.Packet { kind = 0, payload = "x" };
        while (s.handled < 400) {
          final str r = d.dispatch(p0);
        }
        srv.evolve();
        final logService!.Dispatcher d2 = (cast logService!.Dispatcher)srv.disp;
        final logService!.Packet q0 = (view logService!.Packet)p0;
        while (s.handled < 800) {
          final str r2 = d2.dispatch(q0);
        }
        print s.handled;"#;
    Compiler::new()
        .compile(&service::program(main_body))
        .expect("service workload typechecks")
}

fn bench_vm_vs_treewalk(c: &mut Criterion) {
    let mut g = c.benchmark_group("vm_vs_treewalk");
    g.sample_size(10);

    let lambda = lambda_workload();
    for (backend, label) in BACKENDS {
        g.bench_with_input(
            BenchmarkId::new("lambda_translate", label),
            &backend,
            |b, &be| b.iter(|| lambda.run_on(be).expect("runs")),
        );
    }

    let service = service_workload();
    for (backend, label) in BACKENDS {
        g.bench_with_input(
            BenchmarkId::new("service_evolution", label),
            &backend,
            |b, &be| b.iter(|| service.run_on(be).expect("runs")),
        );
    }

    // Lowering cost: what the VM pays once per program before its faster
    // execution amortises it.
    g.bench_function("lambda_lower_to_bytecode", |b| {
        b.iter(|| jns_vm::compile(&lambda.program))
    });

    g.finish();
}

criterion_group!(benches, bench_vm_vs_treewalk);
criterion_main!(benches);
