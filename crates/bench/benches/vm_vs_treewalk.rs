//! Backend shoot-out: the bytecode VM (`jns-vm`, the §6 machinery applied
//! to the surface language) against the tree-walking reference
//! interpreter (`jns-eval`), on the paper's two flagship workloads:
//!
//! - the §7.3 **lambda compiler** — in-place translation of a deep term
//!   with node reuse (sharing-heavy: every reconstruct call re-views);
//! - the §2.4 **service evolution** — a hot dispatch loop before and
//!   after the live view-change evolution (dispatch-heavy: the VM's
//!   view-keyed inline caches should dominate).
//!
//! Both backends run the *same* compiled program via
//! `Compiled::run_on(backend)`, so the comparison isolates execution.
//! The workloads themselves live in `bench::workloads`, shared with the
//! `jns bench` baseline driver.

use bench::workloads::{lambda_workload, service_workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jns_core::Backend;

const BACKENDS: [(Backend, &str); 2] = [(Backend::TreeWalk, "treewalk"), (Backend::Vm, "vm")];

fn bench_vm_vs_treewalk(c: &mut Criterion) {
    let mut g = c.benchmark_group("vm_vs_treewalk");
    g.sample_size(10);

    let lambda = lambda_workload();
    for (backend, label) in BACKENDS {
        g.bench_with_input(
            BenchmarkId::new("lambda_translate", label),
            &backend,
            |b, &be| b.iter(|| lambda.run_on(be).expect("runs")),
        );
    }

    let service = service_workload();
    for (backend, label) in BACKENDS {
        g.bench_with_input(
            BenchmarkId::new("service_evolution", label),
            &backend,
            |b, &be| b.iter(|| service.run_on(be).expect("runs")),
        );
    }

    // Lowering cost: what the VM pays once per program before its faster
    // execution amortises it.
    g.bench_function("lambda_lower_to_bytecode", |b| {
        b.iter(|| jns_vm::compile(&lambda.program))
    });

    g.finish();
}

criterion_group!(benches, bench_vm_vs_treewalk);
criterion_main!(benches);
