//! Serving-layer throughput: the §2.4 service-dispatch batch replayed
//! through `jns-serve` worker pools of increasing size, against the
//! single-threaded baseline of running the same compiled program in a
//! loop. On multi-core hosts the pool should scale close to linearly
//! until the core count; on a single core it measures the pool's
//! queueing overhead (which should be small).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jns_core::{Backend, Compiler};
use jns_serve::{serve_batch, workload, ServeConfig};

const REQUESTS: u64 = 16;

fn bench_serve(c: &mut Criterion) {
    let compiled = Compiler::new()
        .with_backend(Backend::Vm)
        .compile(&workload::service_dispatch(40))
        .expect("workload compiles");

    let mut g = c.benchmark_group("serve");
    g.sample_size(10);

    g.bench_function("single_thread_loop", |b| {
        b.iter(|| {
            for _ in 0..REQUESTS {
                compiled.run().expect("runs");
            }
        })
    });

    for workers in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("pool", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let report =
                        serve_batch(&compiled, &ServeConfig::with_workers(workers), REQUESTS);
                    assert_eq!(report.responses.len(), REQUESTS as usize);
                })
            },
        );
    }

    g.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
