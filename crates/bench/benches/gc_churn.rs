//! GC overhead on an allocation-heavy workload: the same churn program
//! (a loop allocating short-lived objects) run with the collector off
//! (unbounded heap), and under live-heap limits of decreasing size, on
//! both backends. The program generator lives in `bench::workloads`,
//! shared with the `jns bench` baseline driver.
//!
//! What to look for: the *limited* runs trade peak memory (bounded at
//! the limit instead of growing to ~N objects) for collection time —
//! the cost should stay a modest constant factor, and shrinking the
//! limit should increase collection count without changing output.

use bench::workloads::{churn_program, CHURN};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jns_core::{Backend, Compiler};

fn bench_gc_churn(c: &mut Criterion) {
    let src = churn_program(CHURN);
    let mut g = c.benchmark_group("gc_churn");
    g.sample_size(10);

    for (name, backend) in [("treewalk", Backend::TreeWalk), ("vm", Backend::Vm)] {
        let unlimited = Compiler::new()
            .with_backend(backend)
            .compile(&src)
            .expect("churn compiles");
        g.bench_function(BenchmarkId::new(name, "unlimited"), |b| {
            b.iter(|| {
                let out = unlimited.run().expect("runs");
                assert_eq!(out.stats.gc_runs, 0);
            })
        });
        for limit in [4_096usize, 256] {
            let limited = Compiler::new()
                .with_backend(backend)
                .with_heap_limit(limit)
                .compile(&src)
                .expect("churn compiles");
            g.bench_with_input(BenchmarkId::new(name, limit), &limit, |b, &limit| {
                b.iter(|| {
                    let out = limited.run().expect("runs");
                    assert!(out.stats.gc_runs > 0);
                    assert!(out.stats.peak_live <= limit as u64);
                })
            });
        }
    }

    g.finish();
}

criterion_group!(benches, bench_gc_churn);
criterion_main!(benches);
