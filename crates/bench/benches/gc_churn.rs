//! GC overhead on an allocation-heavy workload: the same churn program
//! (a loop allocating short-lived objects) run with the collector off
//! (unbounded heap), and under live-heap limits of decreasing size, on
//! both backends. The program generator lives in `bench::workloads`,
//! shared with the `jns bench` baseline driver.
//!
//! What to look for: the *limited* runs trade peak memory (bounded at
//! the limit instead of growing to ~N objects) for collection time —
//! the cost should stay a modest constant factor, and shrinking the
//! limit should increase collection count without changing output.

use bench::workloads::{
    churn_program, retained_churn_program, CHURN, GC_GEN_LIMIT, GC_GEN_NURSERY, GC_GEN_RETAINED,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jns_core::{Backend, Compiler};

fn bench_gc_churn(c: &mut Criterion) {
    let src = churn_program(CHURN);
    let mut g = c.benchmark_group("gc_churn");
    g.sample_size(10);

    for (name, backend) in [("treewalk", Backend::TreeWalk), ("vm", Backend::Vm)] {
        let unlimited = Compiler::new()
            .with_backend(backend)
            .compile(&src)
            .expect("churn compiles");
        g.bench_function(BenchmarkId::new(name, "unlimited"), |b| {
            b.iter(|| {
                let out = unlimited.run().expect("runs");
                assert_eq!(out.stats.gc_runs, 0);
            })
        });
        for limit in [4_096usize, 256] {
            let limited = Compiler::new()
                .with_backend(backend)
                .with_heap_limit(limit)
                .compile(&src)
                .expect("churn compiles");
            g.bench_with_input(BenchmarkId::new(name, limit), &limit, |b, &limit| {
                b.iter(|| {
                    let out = limited.run().expect("runs");
                    assert!(out.stats.gc_runs > 0);
                    assert!(out.stats.peak_live <= limit as u64);
                })
            });
        }
    }

    g.finish();

    // Generational ablation: retained-set churn where a stop-the-world
    // collection re-traces a ~200-object live chain on every run, while
    // minor collections scan only the nursery. `Compiler::default()` so
    // an ambient `JNS_NURSERY` cannot turn the stop-the-world arm
    // generational.
    let gen_src = retained_churn_program(GC_GEN_RETAINED, CHURN);
    let mut g = c.benchmark_group("gc_gen_churn");
    g.sample_size(10);
    for (name, backend) in [("treewalk", Backend::TreeWalk), ("vm", Backend::Vm)] {
        for (mode, nursery) in [("stw", None), ("gen", Some(GC_GEN_NURSERY))] {
            let mut compiler = Compiler::default()
                .with_backend(backend)
                .with_heap_limit(GC_GEN_LIMIT);
            if let Some(n) = nursery {
                compiler = compiler.with_nursery(n);
            }
            let compiled = compiler.compile(&gen_src).expect("retained churn compiles");
            let generational = nursery.is_some();
            g.bench_function(BenchmarkId::new(name, mode), |b| {
                b.iter(|| {
                    let out = compiled.run().expect("runs");
                    assert!(out.stats.gc_runs > 0);
                    assert!(out.stats.peak_live <= GC_GEN_LIMIT as u64);
                    assert_eq!(out.stats.minor_runs > 0, generational);
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_gc_churn);
criterion_main!(benches);
