//! Criterion bench for the §7.3 lambda compiler: in-place translation vs
//! the cost of rebuilding, via the interpreter.

use criterion::{criterion_group, criterion_main, Criterion};
use jns_core::{lambda, Compiler};

fn deep_term(depth: u32) -> String {
    // A left spine of Abs with a Pair at the bottom: everything above the
    // pair is reusable in place.
    let mut t =
        "new pair.Pair { fst = new pair.Var { x = \"a\" }, snd = new pair.Var { x = \"b\" } }"
            .to_string();
    for i in 0..depth {
        t = format!("new pair.Abs {{ x = \"x{i}\", e = {t} }}");
    }
    t
}

fn bench_lambda(c: &mut Criterion) {
    let mut g = c.benchmark_group("lambda");
    g.sample_size(10);
    let main_body = format!(
        "final pair!.Exp root = {};
         final pair!.Translator tr = new pair.Translator();
         final base!.Exp out = root.translate(tr);
         print out == root;",
        deep_term(24)
    );
    let src = lambda::program(&main_body);
    g.bench_function("compile", |b| {
        b.iter(|| Compiler::new().compile(&src).expect("typechecks"))
    });
    let compiled = Compiler::new().compile(&src).expect("typechecks");
    g.bench_function("translate_in_place", |b| {
        b.iter(|| compiled.run().expect("runs"))
    });
    g.finish();
}

criterion_group!(benches, bench_lambda);
criterion_main!(benches);
