//! Criterion bench for Table 2: tree creation, view-change sweep, and
//! memoised traversal at a reduced height.

use criterion::{criterion_group, criterion_main, Criterion};
use jns_rt::shared::TreeBench;

const HEIGHT: u32 = 12;

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("creation", |b| {
        b.iter(|| {
            let mut tb = TreeBench::new();
            tb.create(HEIGHT)
        })
    });
    g.bench_function("traversal_before", |b| {
        let mut tb = TreeBench::new();
        let root = tb.create(HEIGHT);
        b.iter(|| tb.traverse(root))
    });
    g.bench_function("view_change_sweep", |b| {
        b.iter_with_setup(
            || {
                let mut tb = TreeBench::new();
                let root = tb.create(HEIGHT);
                let viewed = tb.view_root(root);
                (tb, viewed)
            },
            |(mut tb, viewed)| tb.traverse(viewed),
        )
    });
    g.bench_function("traversal_after", |b| {
        let mut tb = TreeBench::new();
        let root = tb.create(HEIGHT);
        let viewed = tb.view_root(root);
        tb.traverse(viewed); // trigger all lazy view changes
        b.iter(|| tb.traverse(viewed))
    });
    g.bench_function("explicit_translation", |b| {
        let mut tb = TreeBench::new();
        let root = tb.create(HEIGHT);
        b.iter(|| tb.explicit_translate(root))
    });
    g.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
