//! Criterion bench for Table 1: each jolden kernel under each strategy,
//! at reduced sizes (criterion repeats many times).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jns_rt::Strategy;

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    for k in jolden::kernels() {
        for s in Strategy::ALL {
            g.bench_with_input(
                BenchmarkId::new(k.name, s.paper_row()),
                &(k, s),
                |b, (k, s)| b.iter(|| (k.run)(*s, k.test_size)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
