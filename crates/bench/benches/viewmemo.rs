//! §6.3 ablation: view-change memoisation — repeated re-viewing of the
//! same reference should be nearly free after the first change. The
//! fixture lives in `bench::workloads`, shared with the `jns bench`
//! baseline driver.

use bench::workloads::{viewmemo_setup, viewmemo_spin};
use criterion::{criterion_group, criterion_main, Criterion};
use jns_rt::{Runtime, Strategy};

fn bench_viewmemo(c: &mut Criterion) {
    let mut g = c.benchmark_group("viewmemo");
    g.bench_function("repeated_view_changes_memoised", |b| {
        let (mut rt, o, f1, f2) = viewmemo_setup();
        b.iter(|| viewmemo_spin(&mut rt, o, f1, f2, 1000))
    });
    g.bench_function("first_view_change_per_object", |b| {
        b.iter_with_setup(
            || {
                let mut rt = Runtime::new(Strategy::SharedFamily);
                let f1 = rt.family();
                let f2 = rt.family();
                let base = rt.class("b.C", f1).fields(&["x"]).build();
                let _d = rt.class("d.C", f2).extends(base).shares(base).build();
                let objs: Vec<_> = (0..1000).map(|_| rt.alloc(base)).collect();
                (rt, objs, f2)
            },
            |(mut rt, objs, f2)| {
                for o in objs {
                    rt.view_as(o, f2);
                }
            },
        )
    });
    g.finish();
}

criterion_group!(benches, bench_viewmemo);
criterion_main!(benches);
