//! §6.3 ablation: isolates pure dispatch cost per strategy (a tight loop
//! of virtual calls on one object). The fixture and call loop live in
//! `bench::workloads`, shared with the `jns bench` baseline driver.

use bench::workloads::{dispatch_setup, dispatch_spin};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jns_rt::Strategy;

fn bench_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("dispatch");
    for s in Strategy::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(s.paper_row()), &s, |b, &s| {
            let (mut rt, o, m) = dispatch_setup(s);
            b.iter(|| dispatch_spin(&mut rt, o, m, 1000))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
