//! §6.3 ablation: isolates pure dispatch cost per strategy (a tight loop
//! of virtual calls on one object).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jns_rt::{MethodId, Runtime, Strategy, Val};

const M: MethodId = MethodId(0);

fn bench_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("dispatch");
    for s in Strategy::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(s.paper_row()), &s, |b, &s| {
            let mut rt = Runtime::new(s);
            let fam = rt.family();
            let m = rt.method("inc");
            assert_eq!(m, M);
            let sup = rt
                .class("Sup", fam)
                .fields(&["v"])
                .method(M, |rt, r, _| {
                    let v = rt.get(r, "v").int();
                    rt.set(r, "v", Val::Int(v + 1));
                    Val::Int(v)
                })
                .build();
            let sub = rt.class("Sub", fam).extends(sup).build();
            let o = rt.alloc(sub);
            rt.set(o, "v", Val::Int(0));
            b.iter(|| {
                for _ in 0..1000 {
                    rt.call(o, M, &[]);
                }
                rt.get(o, "v")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
