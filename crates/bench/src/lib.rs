//! # bench
//!
//! The benchmark harness for every table and figure of the paper's
//! evaluation (§7). Each binary prints the corresponding table; the
//! criterion benches provide statistically robust timings of the same
//! workloads.
//!
//! | Artifact | Binary | Criterion bench |
//! |----------|--------|-----------------|
//! | Table 1 (jolden) | `table1` | `table1` |
//! | Table 2 (tree traversal) | `table2` | `table2` |
//! | §7.3 / Fig. 20 (lambda compiler) | `lambda_stats` | `lambda` |
//! | §7.4 (CorONA evolution) | `corona_evolution` | — |
//! | §6.3 ablations | — | `dispatch`, `viewmemo` |

#![warn(missing_docs)]

pub mod workloads;

use std::time::Instant;

/// Times a closure, returning (result, seconds).
pub fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// Formats seconds like the paper's tables (two decimals).
pub fn fmt_secs(s: f64) -> String {
    if s < 0.0001 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 0.1 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}
