//! The benchmark workloads as reusable, nameable closures — one source
//! of truth shared by the criterion benches (`benches/`) and the
//! `jns bench` CLI driver that pins `BENCH_*.json` baselines.
//!
//! Four suites (see [`SUITES`]):
//!
//! - **`vm`** — backend shoot-out on the paper's two flagship programs:
//!   the §7.3 lambda compiler and the §2.4 service evolution, each on
//!   the tree-walking interpreter and the bytecode VM, plus the VM's
//!   one-time bytecode-lowering cost.
//! - **`dispatch`** — the §6.3 ablations over the four Table 1
//!   implementation strategies (a tight virtual-call loop per strategy)
//!   and the view-change memoisation microbenchmarks.
//! - **`gc`** — the allocation-churn program with the collector off and
//!   under shrinking live-heap limits, on both backends.
//! - **`serve`** — whole-batch serving throughput over the worker pool
//!   (fixed worker count, so numbers compare across machines with
//!   different core counts).
//!
//! Every workload is deterministic in its *work* (identical instruction
//! streams run to run); only wall-clock varies, which is what the
//! `jns-obs` robust statistics are for.

use jns_core::{lambda, service, Backend, Compiled, Compiler};
use jns_rt::{MethodId, ObjRef, Runtime, Strategy, Val};
use jns_serve::{serve_batch, ServeConfig};
use std::rc::Rc;

/// Suite names [`suite`] accepts, in canonical order.
pub const SUITES: [&str; 4] = ["vm", "dispatch", "gc", "serve"];

/// One runnable benchmark workload: a closure plus the naming metadata
/// a `jns-bench/2` entry carries.
pub struct Workload {
    /// Full entry name, `workload/backend` (unique within a suite).
    pub name: String,
    /// The workload half of the name (what is being measured).
    pub workload: String,
    /// The backend/strategy half (what is executing it).
    pub backend: String,
    run: Box<dyn FnMut()>,
}

impl Workload {
    fn new(workload: &str, backend: &str, run: Box<dyn FnMut()>) -> Workload {
        Workload {
            name: format!("{workload}/{backend}"),
            workload: workload.to_string(),
            backend: backend.to_string(),
            run,
        }
    }

    /// Executes the workload once (one timed pass = one sample).
    pub fn run_once(&mut self) {
        (self.run)()
    }
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// The workloads of one suite, or `None` for an unknown suite name.
pub fn suite(name: &str) -> Option<Vec<Workload>> {
    match name {
        "vm" => Some(vm_suite()),
        "dispatch" => Some(dispatch_suite()),
        "gc" => Some(gc_suite()),
        "serve" => Some(serve_suite()),
        _ => None,
    }
}

// ------------------------------------------------------------------- vm

/// A left spine of `Abs` with a `Pair` at the bottom: everything above
/// the pair is reusable in place by the §7.3 in-place translation.
pub fn deep_term(depth: u32) -> String {
    let mut t =
        "new pair.Pair { fst = new pair.Var { x = \"a\" }, snd = new pair.Var { x = \"b\" } }"
            .to_string();
    for i in 0..depth {
        t = format!("new pair.Abs {{ x = \"x{i}\", e = {t} }}");
    }
    t
}

/// The J&s source of the lambda-compiler workload: translate a
/// `depth`-deep term in place and check node reuse.
pub fn lambda_source(depth: u32) -> String {
    let main_body = format!(
        "final pair!.Exp root = {};
         final pair!.Translator tr = new pair.Translator();
         final base!.Exp out = root.translate(tr);
         print out == root;",
        deep_term(depth)
    );
    lambda::program(&main_body)
}

/// The compiled lambda-compiler workload (24-deep term, the benched
/// size).
pub fn lambda_workload() -> Compiled {
    Compiler::new()
        .compile(&lambda_source(24))
        .expect("lambda workload typechecks")
}

/// The J&s source of the service-evolution workload: a hot dispatch
/// loop, a live evolution, then the same loop through the evolved
/// dispatcher.
pub fn service_source() -> String {
    let main_body = r#"
        final service!.SomeService s = new service.SomeService();
        final service!.EchoService e = new service.EchoService();
        final service!.Dispatcher d = new service.Dispatcher { s = s, e = e };
        final Server srv = new Server { disp = d };
        final service!.Packet p0 = new service.Packet { kind = 0, payload = "x" };
        while (s.handled < 400) {
          final str r = d.dispatch(p0);
        }
        srv.evolve();
        final logService!.Dispatcher d2 = (cast logService!.Dispatcher)srv.disp;
        final logService!.Packet q0 = (view logService!.Packet)p0;
        while (s.handled < 800) {
          final str r2 = d2.dispatch(q0);
        }
        print s.handled;"#;
    service::program(main_body)
}

/// The compiled service-evolution workload.
pub fn service_workload() -> Compiled {
    Compiler::new()
        .compile(&service_source())
        .expect("service workload typechecks")
}

fn backend_pair() -> [(Backend, &'static str); 2] {
    [(Backend::TreeWalk, "treewalk"), (Backend::Vm, "vm")]
}

fn vm_suite() -> Vec<Workload> {
    let mut out = Vec::new();
    let lambda = Rc::new(lambda_workload());
    for (be, label) in backend_pair() {
        let c = Rc::clone(&lambda);
        out.push(Workload::new(
            "lambda_translate",
            label,
            Box::new(move || {
                c.run_on(be).expect("lambda workload runs");
            }),
        ));
    }
    let service = Rc::new(service_workload());
    for (be, label) in backend_pair() {
        let c = Rc::clone(&service);
        out.push(Workload::new(
            "service_evolution",
            label,
            Box::new(move || {
                c.run_on(be).expect("service workload runs");
            }),
        ));
    }
    // Lowering cost: what the VM pays once per program before its faster
    // execution amortises it.
    let c = Rc::clone(&lambda);
    out.push(Workload::new(
        "lambda_lower",
        "vm",
        Box::new(move || {
            jns_vm::compile(&c.program);
        }),
    ));
    out
}

// ------------------------------------------------------------- dispatch

/// Stable machine-friendly slug for a Table 1 strategy row.
pub fn strategy_slug(s: Strategy) -> &'static str {
    match s {
        Strategy::Direct => "direct",
        Strategy::NaiveFamily => "naive_family",
        Strategy::LoaderFamily => "loader_family",
        Strategy::SharedFamily => "shared_family",
    }
}

/// Builds the dispatch microbenchmark fixture for one strategy: a
/// two-class hierarchy with one counter-bumping method, plus the object
/// the call loop spins on.
pub fn dispatch_setup(s: Strategy) -> (Runtime, ObjRef, MethodId) {
    let mut rt = Runtime::new(s);
    let fam = rt.family();
    let m = rt.method("inc");
    let sup = rt
        .class("Sup", fam)
        .fields(&["v"])
        .method(m, |rt, r, _| {
            let v = rt.get(r, "v").int();
            rt.set(r, "v", Val::Int(v + 1));
            Val::Int(v)
        })
        .build();
    let sub = rt.class("Sub", fam).extends(sup).build();
    let o = rt.alloc(sub);
    rt.set(o, "v", Val::Int(0));
    (rt, o, m)
}

/// Spins `iters` virtual calls on the dispatch fixture (the measured
/// inner loop of the dispatch benchmark).
pub fn dispatch_spin(rt: &mut Runtime, o: ObjRef, m: MethodId, iters: u32) -> Val {
    for _ in 0..iters {
        rt.call(o, m, &[]);
    }
    rt.get(o, "v")
}

/// Builds the view-memoisation fixture: a base class and a sharing
/// derived class in another family, plus one allocated object.
pub fn viewmemo_setup() -> (Runtime, ObjRef, u32, u32) {
    let mut rt = Runtime::new(Strategy::SharedFamily);
    let f1 = rt.family();
    let f2 = rt.family();
    let base = rt.class("b.C", f1).fields(&["x"]).build();
    let _derived = rt.class("d.C", f2).extends(base).shares(base).build();
    let o = rt.alloc(base);
    (rt, o, f1, f2)
}

/// Flips one reference between the two families `iters` times (after
/// the first round trip, every change is a memo hit).
pub fn viewmemo_spin(rt: &mut Runtime, o: ObjRef, f1: u32, f2: u32, iters: u32) -> ObjRef {
    let mut v = o;
    for _ in 0..iters {
        v = rt.view_as(v, f2);
        v = rt.view_as(v, f1);
    }
    v
}

const DISPATCH_CALLS: u32 = 50_000;
const VIEWMEMO_FLIPS: u32 = 50_000;

/// The real-VM dispatch-engine ablation program: a hot virtual-call
/// loop whose every get/set/call site is monomorphic — exactly the
/// shape superinstruction fusion and IC-guided quickening exist for.
pub fn vm_dispatch_source(iters: u32) -> String {
    format!(
        "class A {{
           class C {{
             int v = 0;
             int inc() {{
               this.v = this.v + 1;
               return this.v;
             }}
           }}
         }}
         main {{
           final A.C o = new A.C();
           while (o.v < {iters}) {{
             final int x = o.inc();
           }}
           print o.v;
         }}"
    )
}

/// Iterations of the `vm_dispatch` loop, calibrated so the fully
/// generic arm costs about as much as the committed
/// `dispatch/shared_family` median — which makes the engine arm's
/// speed-up directly comparable against that baseline.
pub const VM_DISPATCH_ITERS: u32 = 4_000;

fn dispatch_suite() -> Vec<Workload> {
    let mut out = Vec::new();
    for s in Strategy::ALL {
        let (mut rt, o, m) = dispatch_setup(s);
        out.push(Workload::new(
            "dispatch",
            strategy_slug(s),
            Box::new(move || {
                dispatch_spin(&mut rt, o, m, DISPATCH_CALLS);
            }),
        ));
    }
    // The bytecode VM's dispatch-engine ablation: one program, the
    // fusion/quickening stages toggled pairwise, so the pinned baseline
    // records the win each stage contributes.
    let src = vm_dispatch_source(VM_DISPATCH_ITERS);
    for (label, fuse, quicken) in [
        ("engine", true, true),
        ("nofuse", false, true),
        ("noquicken", true, false),
        ("generic", false, false),
    ] {
        let compiled = Compiler::new()
            .with_backend(Backend::Vm)
            .with_fusion(fuse)
            .with_quickening(quicken)
            .compile(&src)
            .expect("vm_dispatch compiles");
        // Force the one-time lowering out of the timed region.
        compiled.bytecode();
        out.push(Workload::new(
            "vm_dispatch",
            label,
            Box::new(move || {
                let r = compiled.run().expect("vm_dispatch runs");
                assert_eq!(r.output, vec![VM_DISPATCH_ITERS.to_string()]);
            }),
        ));
    }
    let (mut rt, o, f1, f2) = viewmemo_setup();
    out.push(Workload::new(
        "viewmemo_repeated",
        "shared_family",
        Box::new(move || {
            viewmemo_spin(&mut rt, o, f1, f2, VIEWMEMO_FLIPS);
        }),
    ));
    // First-change cost: setup (fresh runtime + 1000 objects) is part of
    // the timed pass, since a first view change is by definition
    // unrepeatable on one object.
    out.push(Workload::new(
        "viewmemo_first",
        "shared_family",
        Box::new(move || {
            let mut rt = Runtime::new(Strategy::SharedFamily);
            let f1 = rt.family();
            let f2 = rt.family();
            let base = rt.class("b.C", f1).fields(&["x"]).build();
            let _d = rt.class("d.C", f2).extends(base).shares(base).build();
            let objs: Vec<_> = (0..1000).map(|_| rt.alloc(base)).collect();
            for o in objs {
                rt.view_as(o, f2);
            }
        }),
    ));
    out
}

// ------------------------------------------------------------------- gc

/// Allocation-churn program: a loop allocating `n` short-lived objects
/// (J&s locals are final, so the loop counter is itself a heap cell).
pub fn churn_program(n: u64) -> String {
    format!(
        "class W {{
           class Cell {{ int v = 0; }}
           class Junk {{ }}
         }}
         main {{
           final W.Cell c = new W.Cell();
           while (c.v < {n}) {{
             final W.Junk j = new W.Junk();
             c.v = c.v + 1;
           }}
           print c.v;
         }}"
    )
}

/// Short-lived allocations per churn pass (the benched size).
pub const CHURN: u64 = 20_000;

/// Retained-set churn program: builds a `retained`-long linked chain
/// held live through a field (the tenured survivors), then allocates
/// `churn` short-lived objects. Under a stop-the-world collector every
/// collection re-traces the whole retained chain; a generational
/// collector's minor collections scan only the nursery and never touch
/// it. Growing the chain through `s.head = new Cons { next = s.head }`
/// also exercises the write barrier: the tenured holder points at each
/// nursery-fresh node.
pub fn retained_churn_program(retained: u64, churn: u64) -> String {
    let total = retained + churn;
    format!(
        "class L {{
           class Nil {{ }}
           class Cons extends Nil {{ Nil next; }}
           class St {{ Nil head = new Nil(); int n = 0; }}
         }}
         main {{
           final L!.St s = new L.St();
           while (s.n < {retained}) {{
             s.head = new L.Cons {{ next = s.head }};
             s.n = s.n + 1;
           }}
           while (s.n < {total}) {{
             final L.Nil j = new L.Nil();
             s.n = s.n + 1;
           }}
           print s.n;
         }}"
    )
}

/// Live chain length the `gc_gen_churn` arms retain (the tenured set).
pub const GC_GEN_RETAINED: u64 = 2_000;
/// Heap limit of the `gc_gen_churn` arms — tight enough above the
/// retained set that stop-the-world collections fire every few dozen
/// allocations, each re-tracing the whole retained chain.
pub const GC_GEN_LIMIT: usize = 2_048;
/// Nursery capacity of the generational `gc_gen_churn` arms.
pub const GC_GEN_NURSERY: usize = 32;

fn gc_suite() -> Vec<Workload> {
    let src = churn_program(CHURN);
    let mut out = Vec::new();
    for (be, label) in backend_pair() {
        let unlimited = Compiler::new()
            .with_backend(be)
            .compile(&src)
            .expect("churn compiles");
        out.push(Workload::new(
            "gc_churn_unlimited",
            label,
            Box::new(move || {
                let r = unlimited.run().expect("churn runs");
                assert_eq!(r.stats.gc_runs, 0);
            }),
        ));
        for limit in [4_096usize, 256] {
            let limited = Compiler::new()
                .with_backend(be)
                .with_heap_limit(limit)
                .compile(&src)
                .expect("churn compiles");
            out.push(Workload::new(
                &format!("gc_churn_limit{limit}"),
                label,
                Box::new(move || {
                    let r = limited.run().expect("churn runs");
                    assert!(r.stats.gc_runs > 0);
                    assert!(r.stats.peak_live <= limit as u64);
                }),
            ));
        }
    }
    // Generational ablation: the same retained-set churn under the
    // stop-the-world collector versus a nursery. `Compiler::default()`
    // (not `new()`) so a `JNS_NURSERY` in the environment cannot turn
    // the stop-the-world arm generational — each arm pins its own mode.
    let gen_src = retained_churn_program(GC_GEN_RETAINED, CHURN);
    for (be, label) in backend_pair() {
        for (mode, nursery) in [("stw", None), ("gen", Some(GC_GEN_NURSERY))] {
            let mut compiler = Compiler::default()
                .with_backend(be)
                .with_heap_limit(GC_GEN_LIMIT);
            if let Some(n) = nursery {
                compiler = compiler.with_nursery(n);
            }
            let compiled = compiler.compile(&gen_src).expect("retained churn compiles");
            let generational = nursery.is_some();
            out.push(Workload::new(
                "gc_gen_churn",
                &format!("{label}_{mode}"),
                Box::new(move || {
                    let r = compiled.run().expect("retained churn runs");
                    assert!(r.stats.gc_runs > 0);
                    assert!(r.stats.peak_live <= GC_GEN_LIMIT as u64);
                    assert_eq!(r.stats.minor_runs > 0, generational);
                }),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------- serve

/// Worker count the serve suite pins (fixed so baselines compare across
/// machines with different core counts).
pub const SERVE_WORKERS: usize = 4;
/// Requests per timed batch in the serve suite.
pub const SERVE_REQUESTS: u64 = 64;

fn serve_suite() -> Vec<Workload> {
    let src = jns_serve::workload::service_dispatch(10);
    let compiled = Rc::new(
        Compiler::new()
            .with_backend(Backend::Vm)
            .compile(&src)
            .expect("serve workload compiles"),
    );
    // Force the one-time bytecode lowering out of the timed region.
    compiled.bytecode();
    let mut out = Vec::new();
    for (label, workers) in [("pool4", SERVE_WORKERS), ("pool1", 1)] {
        let c = Rc::clone(&compiled);
        let cfg = ServeConfig {
            workers,
            queue_cap: 32,
            ..ServeConfig::default()
        };
        out.push(Workload::new(
            "serve_batch",
            label,
            Box::new(move || {
                let report = serve_batch(&c, &cfg, SERVE_REQUESTS);
                assert_eq!(report.responses.len(), SERVE_REQUESTS as usize);
            }),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_suite_resolves_and_names_are_unique() {
        for s in SUITES {
            let ws = suite(s).expect("known suite");
            assert!(!ws.is_empty());
            let mut names: Vec<&str> = ws.iter().map(|w| w.name.as_str()).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), ws.len(), "duplicate names in suite {s}");
        }
        assert!(suite("nope").is_none());
    }

    #[test]
    fn dispatch_fixture_counts_calls() {
        let (mut rt, o, m) = dispatch_setup(Strategy::Direct);
        let v = dispatch_spin(&mut rt, o, m, 10);
        assert_eq!(v.int(), 10);
    }
}
