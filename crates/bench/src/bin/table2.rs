//! Regenerates **Table 2** (§7.2): tree creation, traversal before view
//! changes, the view-change sweep, traversal after (memoised), and the
//! explicit-translation baseline, for complete trees of heights 16/18/20.

use bench::{fmt_secs, time};
use jns_rt::shared::TreeBench;

fn main() {
    let heights: Vec<u32> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let heights = if heights.is_empty() {
        vec![16, 18, 20]
    } else {
        heights
    };
    println!("Table 2: tree traversal (seconds)");
    print!("{:<34}", "Height");
    for h in &heights {
        print!("{:>12}", h);
    }
    println!();
    let mut rows: Vec<(&str, Vec<f64>)> = vec![
        ("Tree creation", vec![]),
        ("Traversal before view changes", vec![]),
        ("View changes", vec![]),
        ("Traversal after view changes", vec![]),
        ("Explicit translation", vec![]),
    ];
    for &h in &heights {
        let mut tb = TreeBench::new();
        let (root, t_create) = time(|| tb.create(h));
        let (sum_before, t_before) = time(|| tb.traverse(root));
        assert_eq!(sum_before, TreeBench::node_count(h) as i64);
        let viewed = tb.view_root(root);
        // First traversal after the root view change triggers every lazy
        // implicit view change — the paper's "View changes" row.
        let (sum_viewed, t_views) = time(|| tb.traverse(viewed));
        assert_eq!(sum_viewed, 2 * TreeBench::node_count(h) as i64);
        let (_, t_after) = time(|| tb.traverse(viewed));
        let (_, t_explicit) = time(|| tb.explicit_translate(root));
        for (row, v) in rows
            .iter_mut()
            .zip([t_create, t_before, t_views, t_after, t_explicit])
        {
            row.1.push(v);
        }
    }
    for (name, vals) in &rows {
        print!("{name:<34}");
        for v in vals {
            print!("{:>12}", fmt_secs(*v));
        }
        println!();
    }
    println!();
    println!("Expected shape (paper): view-change sweep ≈ creation time;");
    println!("traversal-after ≈ traversal-before (memoised); explicit");
    println!("translation slower than in-place adaptation.");
}
