//! Regenerates the **§7.4 CorONA** experiment: a running PCCorONA system
//! evolves to BeeCorONA at run time; lookup latency and evolution costs
//! are reported.

use corona::{run_evolution, ExperimentConfig};

fn main() {
    for &(nodes, zipf) in &[(64usize, 0.8f64), (128, 1.0), (256, 1.2)] {
        let cfg = ExperimentConfig {
            nodes,
            objects: 1000,
            queries: 5000,
            zipf,
            seed: 42,
        };
        let r = run_evolution(cfg);
        println!("nodes={nodes} zipf={zipf}");
        println!(
            "  plain corona    : {:.2} avg hops ({:.0}% early hits)",
            r.plain.avg_hops,
            r.plain.early_hit_rate * 100.0
        );
        println!(
            "  PCCorONA        : {:.2} avg hops ({:.0}% early hits)",
            r.passive.avg_hops,
            r.passive.early_hit_rate * 100.0
        );
        println!(
            "  BeeCorONA       : {:.2} avg hops ({:.0}% early hits)",
            r.active.avg_hops,
            r.active.early_hit_rate * 100.0
        );
        println!(
            "  evolution: {} node objects explicitly re-viewed, {} lazy implicit views, identity preserved: {}",
            r.nodes_touched, r.implicit_views, r.identity_preserved
        );
        println!();
    }
    println!("Expected shape (paper): evolution happens on a running system,");
    println!("touches only the host-node objects, and active replication");
    println!("improves lookup latency over passive caching.");
    println!();
    // CorONA's other half: cooperative feed polling (NSDI'06) — the
    // allocation CorONA installs after evolution.
    let feeds = corona::feeds::make_feeds(200, 11);
    let uniform = corona::feeds::uniform_plan(&feeds, 800);
    let coop = corona::feeds::corona_plan(&feeds, 800);
    let lu = corona::feeds::weighted_latency(&feeds, &uniform, 300.0);
    let lc = corona::feeds::weighted_latency(&feeds, &coop, 300.0);
    println!("feed polling (200 feeds, 800 polling slots, period 300 ticks):");
    println!("  uniform allocation    : {lu:.1} ticks mean update latency");
    println!("  cooperative (CorONA)  : {lc:.1} ticks mean update latency");
    println!("  improvement           : {:.1}x", lu / lc);
}
