//! Regenerates the **§7.3 lambda compiler** experiment (Fig. 20): builds
//! random terms in the pair/sum/sumpair families, translates them in
//! place, and reports node-reuse statistics and composition behaviour.

use jns_core::{lambda, Compiler};

fn term(depth: u32, fam: &str, seed: &mut u64) -> String {
    *seed = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let pick = (*seed >> 33) % 10;
    if depth == 0 {
        return format!("new {fam}.Var {{ x = \"v{}\" }}", (*seed >> 40) % 5);
    }
    match pick {
        0..=2 => format!(
            "new {fam}.Abs {{ x = \"x{}\", e = {} }}",
            pick,
            term(depth - 1, fam, seed)
        ),
        3..=5 => format!(
            "new {fam}.App {{ f = {}, a = {} }}",
            term(depth - 1, fam, seed),
            term(depth - 1, fam, seed)
        ),
        6..=7 if fam != "sum" => format!(
            "new {fam}.Pair {{ fst = {}, snd = {} }}",
            term(depth - 1, fam, seed),
            term(depth - 1, fam, seed)
        ),
        _ if fam != "pair" => format!("new {fam}.Inj1 {{ e = {} }}", term(depth - 1, fam, seed)),
        _ => format!(
            "new {fam}.Abs {{ x = \"y\", e = {} }}",
            term(depth - 1, fam, seed)
        ),
    }
}

fn main() {
    println!("§7.3 lambda compiler: in-place translation statistics\n");
    for (fam, depth) in [("pair", 6), ("sum", 6), ("sumpair", 5)] {
        let mut seed = 0x5eed ^ depth as u64;
        let t = term(depth, fam, &mut seed);
        let main_body = format!(
            "final {fam}!.Exp root = {t};
             final {fam}!.Translator tr = new {fam}.Translator();
             final base!.Exp out = root.translate(tr);
             print tr.reusedAbs;
             print tr.reusedApp;
             print tr.rebuilt;
             print root == out;"
        );
        let src = lambda::program(&main_body);
        let compiled = Compiler::new().compile(&src).expect("typechecks");
        let start = std::time::Instant::now();
        let out = compiled.run().expect("runs");
        let dt = start.elapsed().as_secs_f64();
        println!(
            "family {fam:<8} depth {depth}: reusedAbs={} reusedApp={} rebuilt={} root-identity-preserved={} ({:.3}s)",
            out.output[0], out.output[1], out.output[2], out.output[3], dt
        );
    }
    println!();
    println!("A pure λ-term (no pairs/sums) translates with 100% reuse:");
    let main_body =
        "final pair!.Exp id = new pair.Abs { x = \"z\", e = new pair.Var { x = \"z\" } };
         final pair!.Translator tr = new pair.Translator();
         final base!.Exp out = id.translate(tr);
         print id == out;";
    let src = lambda::program(main_body);
    let out = Compiler::new().compile(&src).unwrap().run().unwrap();
    println!("  identity preserved: {}", out.output[0]);
    println!("\nsumpair composes sum+pair sharing with zero translation code (Fig. 20).");
}
