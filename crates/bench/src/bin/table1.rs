//! Regenerates **Table 1** (§7.1): the ten jolden kernels under the four
//! implementation strategies. Compare row ratios, not absolute times.

use bench::{fmt_secs, time};
use jns_rt::Strategy;

fn main() {
    let kernels = jolden::kernels();
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    println!("Table 1: jolden benchmarks (average of 3 runs, seconds)");
    print!("{:<22}", "");
    for k in &kernels {
        print!("{:>10}", k.name);
    }
    println!();
    let mut rows = Vec::new();
    for s in Strategy::ALL {
        let mut cols = Vec::new();
        for k in &kernels {
            let size = k.default_size.saturating_sub(scale).max(k.test_size);
            // warm-up + 3 timed runs
            (k.run)(s, size);
            let mut total = 0.0;
            let mut check = 0;
            for _ in 0..3 {
                let (c, t) = time(|| (k.run)(s, size));
                total += t;
                check = c;
            }
            let _ = check;
            cols.push(total / 3.0);
        }
        rows.push((s, cols));
    }
    for (s, cols) in &rows {
        print!("{:<22}", s.paper_row());
        for c in cols {
            print!("{:>10}", fmt_secs(*c));
        }
        println!();
    }
    // Geometric-mean slowdowns vs the Java row (the paper's headline).
    let java = &rows[0].1;
    println!();
    for (s, cols) in &rows[1..] {
        let gm: f64 = cols
            .iter()
            .zip(java)
            .map(|(c, j)| (c / j).ln())
            .sum::<f64>()
            / cols.len() as f64;
        println!(
            "{:<22} geometric-mean slowdown vs Java: {:.2}x",
            s.paper_row(),
            gm.exp()
        );
    }
}
