//! The Table 2 **tree traversal** workload (§7.2): two families sharing
//! binary-tree classes. A complete tree is created in the base family, the
//! root is explicitly re-viewed into the display family, and a depth-first
//! traversal triggers all the lazy implicit view changes. An explicit
//! translation (fresh objects) is the baseline the paper compares against.

use crate::model::{ClassId, MethodId, ObjRef, Runtime, Strategy, Val};

/// The tree-traversal benchmark fixture.
#[derive(Debug)]
pub struct TreeBench {
    /// The underlying runtime (public so harnesses can read stats).
    pub rt: Runtime,
    base_fam: u32,
    disp_fam: u32,
    base_node: ClassId,
    disp_node: ClassId,
    m_sum: MethodId,
}

impl TreeBench {
    /// Sets up the two families. Always uses [`Strategy::SharedFamily`]
    /// (the benchmark measures J&s view-change costs).
    pub fn new() -> Self {
        let mut rt = Runtime::new(Strategy::SharedFamily);
        let base_fam = rt.family();
        let disp_fam = rt.family();
        let m_sum = rt.method("sum");
        let base_node = rt
            .class("base.Node", base_fam)
            .fields(&["left", "right", "value"])
            .method(m_sum, |rt, r, _| {
                let mut total = rt.get(r, "value").int();
                if let Some(l) = rt.get(r, "left").obj() {
                    total += rt.call(l, MID_SUM, &[]).int();
                }
                if let Some(rch) = rt.get(r, "right").obj() {
                    total += rt.call(rch, MID_SUM, &[]).int();
                }
                Val::Int(total)
            })
            .build();
        let disp_node = rt
            .class("display.Node", disp_fam)
            .extends(base_node)
            .shares(base_node)
            .method(m_sum, |rt, r, _| {
                // The display family doubles values: traversals through a
                // display view observably use the new behaviour.
                let mut total = rt.get(r, "value").int() * 2;
                if let Some(l) = rt.get(r, "left").obj() {
                    total += rt.call(l, MID_SUM, &[]).int();
                }
                if let Some(rch) = rt.get(r, "right").obj() {
                    total += rt.call(rch, MID_SUM, &[]).int();
                }
                Val::Int(total)
            })
            .build();
        assert_eq!(m_sum, MID_SUM, "sum must be the first interned selector");
        TreeBench {
            rt,
            base_fam,
            disp_fam,
            base_node,
            disp_node,
            m_sum,
        }
    }

    /// Builds a complete binary tree of the given height in the base
    /// family; returns the root. Height 0 is a single node.
    pub fn create(&mut self, height: u32) -> ObjRef {
        self.build_node(height)
    }

    fn build_node(&mut self, height: u32) -> ObjRef {
        let n = self.rt.alloc(self.base_node);
        self.rt.set(n, "value", Val::Int(1));
        if height > 0 {
            let l = self.build_node(height - 1);
            let r = self.build_node(height - 1);
            self.rt.set(n, "left", Val::Obj(l));
            self.rt.set(n, "right", Val::Obj(r));
        }
        n
    }

    /// Depth-first traversal through whatever family the reference views.
    pub fn traverse(&mut self, root: ObjRef) -> i64 {
        self.rt.call(root, self.m_sum, &[]).int()
    }

    /// Explicit view change of the root into the display family (O(1)).
    pub fn view_root(&mut self, root: ObjRef) -> ObjRef {
        self.rt.view_as(root, self.disp_fam)
    }

    /// Explicit translation baseline: rebuilds the whole tree as new
    /// display-family objects (what one must do *without* class sharing).
    pub fn explicit_translate(&mut self, root: ObjRef) -> ObjRef {
        let value = self.rt.get(root, "value");
        let left = self.rt.get(root, "left").obj();
        let right = self.rt.get(root, "right").obj();
        let n = self.rt.alloc(self.disp_node);
        self.rt.set(n, "value", value);
        if let Some(l) = left {
            let nl = self.explicit_translate(l);
            self.rt.set(n, "left", Val::Obj(nl));
        }
        if let Some(r) = right {
            let nr = self.explicit_translate(r);
            self.rt.set(n, "right", Val::Obj(nr));
        }
        n
    }

    /// Number of nodes in a complete tree of the given height.
    pub fn node_count(height: u32) -> u64 {
        (1u64 << (height + 1)) - 1
    }

    /// The base family tag.
    pub fn base_family(&self) -> u32 {
        self.base_fam
    }

    /// The display family tag.
    pub fn display_family(&self) -> u32 {
        self.disp_fam
    }
}

impl Default for TreeBench {
    fn default() -> Self {
        Self::new()
    }
}

/// `sum` is interned first, so kernels can name it from method bodies.
const MID_SUM: MethodId = MethodId(0);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_traversal_counts_nodes() {
        let mut tb = TreeBench::new();
        let root = tb.create(4);
        assert_eq!(tb.traverse(root), TreeBench::node_count(4) as i64);
    }

    #[test]
    fn view_change_switches_whole_tree_behaviour() {
        let mut tb = TreeBench::new();
        let root = tb.create(4);
        let viewed = tb.view_root(root);
        // Display family doubles every node's contribution.
        assert_eq!(tb.traverse(viewed), 2 * TreeBench::node_count(4) as i64);
        // The original reference is untouched.
        assert_eq!(tb.traverse(root), TreeBench::node_count(4) as i64);
        assert_eq!(root.inst, viewed.inst, "identity preserved");
    }

    #[test]
    fn lazy_views_trigger_once_then_memoise() {
        let mut tb = TreeBench::new();
        let root = tb.create(6);
        let viewed = tb.view_root(root);
        tb.traverse(viewed);
        let implicit_first = tb.rt.stats.views_implicit;
        assert!(implicit_first > 0);
        let hits_before = tb.rt.stats.view_memo_hits;
        tb.traverse(viewed);
        assert!(
            tb.rt.stats.view_memo_hits > hits_before,
            "second traversal memoised"
        );
    }

    #[test]
    fn explicit_translation_creates_new_objects() {
        let mut tb = TreeBench::new();
        let root = tb.create(3);
        let allocs_before = tb.rt.stats.allocs;
        let copy = tb.explicit_translate(root);
        let created = tb.rt.stats.allocs - allocs_before;
        assert_eq!(created, TreeBench::node_count(3));
        assert_ne!(copy.inst, root.inst);
        assert_eq!(tb.traverse(copy), 2 * TreeBench::node_count(3) as i64);
    }
}
