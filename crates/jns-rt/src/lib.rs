//! # jns-rt
//!
//! The §6 **runtime object model** of *Sharing Classes Between Families*
//! (Qi & Myers, PLDI 2009), as a Rust library: instance objects, class
//! classes with dispatch tables, reference objects (instance + view),
//! lazily synthesised vtables ("custom classloader"), memoised view
//! changes, and representative instance classes whose field layout is the
//! union of all shared partners.
//!
//! Four [`Strategy`] values reproduce the four implementations measured in
//! the paper's Table 1:
//!
//! | Strategy | Paper row | Dispatch | Field access |
//! |----------|-----------|----------|--------------|
//! | [`Strategy::Direct`] | Java (HotSpot) | direct vtable slot | direct slot |
//! | [`Strategy::NaiveFamily`] | J& \[31\] | re-resolved by hierarchy walk per call | map lookup |
//! | [`Strategy::LoaderFamily`] | J& with classloader | lazily built vtable | direct slot |
//! | [`Strategy::SharedFamily`] | J&s | reference-object indirection + view vtable | view-dependent getter |
//!
//! The jolden kernels (`jolden` crate) and the Table 2 tree-traversal
//! benchmark are written against this API.
//!
//! # Examples
//!
//! ```
//! use jns_rt::{Runtime, Strategy, Val};
//!
//! let mut rt = Runtime::new(Strategy::SharedFamily);
//! let base_fam = rt.family();
//! let log_fam = rt.family();
//! let greet = rt.method("greet");
//! let base = rt
//!     .class("base.Node", base_fam)
//!     .fields(&["n"])
//!     .method(greet, |_rt, _r, _a| Val::Int(1))
//!     .build();
//! let logged = rt
//!     .class("log.Node", log_fam)
//!     .extends(base)
//!     .shares(base)
//!     .method(greet, |_rt, _r, _a| Val::Int(2))
//!     .build();
//! # let _ = logged;
//! let o = rt.alloc(base);
//! assert_eq!(rt.call(o, greet, &[]), Val::Int(1));
//! let viewed = rt.view_as(o, log_fam); // same object, new behaviour
//! assert_eq!(rt.call(viewed, greet, &[]), Val::Int(2));
//! assert_eq!(o.inst, viewed.inst);
//! ```

#![warn(missing_docs)]

pub mod model;
pub mod shared;

pub use model::{
    ClassBuilder, ClassId, MethodFn, MethodId, ObjRef, RtStats, Runtime, Strategy, Val,
};
