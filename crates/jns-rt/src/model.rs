//! The dynamic object model: classes, instances, reference objects, and
//! the four dispatch strategies.

use std::collections::HashMap;

/// Identifies a registered class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u32);

/// Identifies a method selector (name), global to a [`Runtime`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MethodId(pub u32);

/// A method implementation. Receives the runtime, the receiver reference,
/// and the arguments.
pub type MethodFn = fn(&mut Runtime, ObjRef, &[Val]) -> Val;

/// A reference object: heap instance plus the *view* that determines
/// behaviour (§6.3). Under non-sharing strategies the view always equals
/// the instance's class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjRef {
    /// Index of the instance.
    pub inst: u32,
    /// The view class.
    pub view: ClassId,
}

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Val {
    /// Absent/null (used for uninitialised or terminator fields).
    Nil,
    /// Integer.
    Int(i64),
    /// Floating point.
    F(f64),
    /// Object reference.
    Obj(ObjRef),
}

impl Val {
    /// Integer payload or panic (kernels run on checked shapes).
    pub fn int(self) -> i64 {
        match self {
            Val::Int(n) => n,
            other => panic!("expected Int, got {other:?}"),
        }
    }

    /// Float payload.
    pub fn f(self) -> f64 {
        match self {
            Val::F(x) => x,
            Val::Int(n) => n as f64,
            other => panic!("expected F, got {other:?}"),
        }
    }

    /// Object payload, or `None` for `Nil`.
    pub fn obj(self) -> Option<ObjRef> {
        match self {
            Val::Obj(r) => Some(r),
            Val::Nil => None,
            other => panic!("expected Obj/Nil, got {other:?}"),
        }
    }
}

/// The four implementation strategies of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Direct dispatch and direct slots (the "Java" baseline).
    Direct,
    /// Per-call method re-resolution by walking the class hierarchy with
    /// hashed lookups (the 2006 J& translation without a classloader).
    NaiveFamily,
    /// Lazily synthesised vtables, then direct dispatch (J& + classloader).
    LoaderFamily,
    /// Reference objects with views: double indirection on dispatch,
    /// view-dependent field accessors, memoised view changes (J&s).
    SharedFamily,
}

impl Strategy {
    /// All strategies, in Table 1 row order.
    pub const ALL: [Strategy; 4] = [
        Strategy::Direct,
        Strategy::NaiveFamily,
        Strategy::LoaderFamily,
        Strategy::SharedFamily,
    ];

    /// The paper's name for this row.
    pub fn paper_row(&self) -> &'static str {
        match self {
            Strategy::Direct => "Java",
            Strategy::NaiveFamily => "J& [31]",
            Strategy::LoaderFamily => "J& with classloader",
            Strategy::SharedFamily => "J&s",
        }
    }
}

/// Runtime statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct RtStats {
    /// Objects allocated.
    pub allocs: u64,
    /// Method dispatches.
    pub calls: u64,
    /// Explicit view changes.
    pub views_explicit: u64,
    /// Implicit (lazy) view changes on field reads.
    pub views_implicit: u64,
    /// View-change memoisation hits (§6.3).
    pub view_memo_hits: u64,
    /// vtables synthesised by the "classloader".
    pub vtables_built: u64,
}

#[derive(Debug)]
struct RtClass {
    name: String,
    family: u32,
    direct_supers: Vec<ClassId>,
    /// All superclasses including self (linearised, self first).
    supers: Vec<ClassId>,
    /// Own methods.
    own_methods: Vec<(MethodId, MethodFn)>,
    /// Own methods as a hash table (the per-class method tables the 2006
    /// J& translation consulted at run time).
    own_map: HashMap<MethodId, MethodFn>,
    /// Own fields only (used by the naive strategy's per-access walk).
    own_slots: HashMap<&'static str, u32>,
    /// Compiled slot list for direct-offset access (Java/classloader
    /// strategies): pointer-compared scan, like a compiled field offset.
    slot_list: Vec<(&'static str, u32)>,
    /// Lazily built vtable indexed by MethodId.
    vtable: Option<Vec<Option<MethodFn>>>,
    /// Sharing partners (same instance set), including self.
    partners: Vec<ClassId>,
    /// Field name -> global slot for this class's view.
    slots: HashMap<&'static str, u32>,
}

#[derive(Debug)]
struct Instance {
    class: ClassId,
    fields: Vec<Val>,
}

/// The object-model runtime.
#[derive(Debug)]
pub struct Runtime {
    strategy: Strategy,
    classes: Vec<RtClass>,
    instances: Vec<Instance>,
    method_names: HashMap<&'static str, MethodId>,
    n_methods: u32,
    /// Memo of the most recent view change per instance (§6.3).
    view_memo: Vec<(u32, ClassId)>,
    /// Statistics.
    pub stats: RtStats,
    next_family: u32,
}

impl Runtime {
    /// Creates an empty runtime with the given strategy.
    pub fn new(strategy: Strategy) -> Self {
        Runtime {
            strategy,
            classes: Vec::new(),
            instances: Vec::new(),
            method_names: HashMap::new(),
            n_methods: 0,
            view_memo: Vec::new(),
            stats: RtStats::default(),
            next_family: 0,
        }
    }

    /// The active strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Allocates a fresh family tag (a namespace for classes).
    pub fn family(&mut self) -> u32 {
        let f = self.next_family;
        self.next_family += 1;
        f
    }

    /// Interns a method selector.
    pub fn method(&mut self, name: &'static str) -> MethodId {
        if let Some(&m) = self.method_names.get(name) {
            return m;
        }
        let m = MethodId(self.n_methods);
        self.n_methods += 1;
        self.method_names.insert(name, m);
        m
    }

    /// Starts building a class.
    pub fn class(&mut self, name: &str, family: u32) -> ClassBuilder<'_> {
        ClassBuilder {
            rt: self,
            name: name.to_string(),
            family,
            extends: Vec::new(),
            shares: None,
            fields: Vec::new(),
            methods: Vec::new(),
        }
    }

    fn add_class(
        &mut self,
        name: String,
        family: u32,
        extends: Vec<ClassId>,
        shares: Option<ClassId>,
        fields: Vec<&'static str>,
        methods: Vec<(MethodId, MethodFn)>,
    ) -> ClassId {
        let id = ClassId(self.classes.len() as u32);
        // Linearised supers: self, then BFS over direct supers.
        let mut supers = vec![id];
        let mut queue: Vec<ClassId> = extends.clone();
        while let Some(s) = queue.pop() {
            if !supers.contains(&s) {
                supers.push(s);
                queue.extend(self.classes[s.0 as usize].direct_supers.iter().copied());
            }
        }
        // Representative instance class (§6.2): shared partners use one
        // layout; shared fields inherit the partner's slot, new fields get
        // fresh slots appended.
        let mut slots: HashMap<&'static str, u32> = HashMap::new();
        let mut next_slot = 0u32;
        // Inherited fields first (from supers' layouts).
        for s in supers.iter().skip(1) {
            for (f, slot) in &self.classes[s.0 as usize].slots {
                slots.entry(f).or_insert(*slot);
                next_slot = next_slot.max(*slot + 1);
            }
        }
        if let Some(base) = shares {
            for (f, slot) in &self.classes[base.0 as usize].slots {
                slots.entry(f).or_insert(*slot);
                next_slot = next_slot.max(*slot + 1);
            }
        }
        let mut own_slots = HashMap::new();
        for f in fields {
            if !slots.contains_key(f) {
                slots.insert(f, next_slot);
                own_slots.insert(f, next_slot);
                next_slot += 1;
            } else {
                own_slots.insert(f, slots[f]);
            }
        }
        let partners = vec![id];
        let own_map: HashMap<MethodId, MethodFn> = methods.iter().copied().collect();
        let mut slot_list: Vec<(&'static str, u32)> = slots.iter().map(|(f, s)| (*f, *s)).collect();
        slot_list.sort_by_key(|(_, s)| *s);
        self.classes.push(RtClass {
            name,
            family,
            direct_supers: extends,
            supers,
            own_methods: methods,
            own_map,
            own_slots,
            vtable: None,
            partners,
            slots,
            slot_list,
        });
        if let Some(base) = shares {
            // Equivalence closure.
            let mut group = self.classes[base.0 as usize].partners.clone();
            group.push(id);
            for &c in &group {
                self.classes[c.0 as usize].partners = group.clone();
            }
        }
        id
    }

    /// Whether `sub` is `sup` or inherits from it.
    pub fn is_subclass(&self, sub: ClassId, sup: ClassId) -> bool {
        self.classes[sub.0 as usize].supers.contains(&sup)
    }

    /// The number of field slots of a class layout (for tests).
    pub fn layout_size(&self, class: ClassId) -> usize {
        self.classes[class.0 as usize].slots.len()
    }

    /// The class name (for diagnostics).
    pub fn class_name(&self, class: ClassId) -> &str {
        &self.classes[class.0 as usize].name
    }

    // -------------------------------------------------------------- alloc

    /// Allocates an instance of `class`; every slot starts `Nil`.
    pub fn alloc(&mut self, class: ClassId) -> ObjRef {
        self.stats.allocs += 1;
        // Representative instance class: room for every partner's fields.
        let mut size = self.classes[class.0 as usize].slots.len();
        for &p in &self.classes[class.0 as usize].partners.clone() {
            size = size.max(self.classes[p.0 as usize].slots.len());
        }
        let inst = self.instances.len() as u32;
        self.instances.push(Instance {
            class,
            fields: vec![Val::Nil; size.max(1)],
        });
        self.view_memo.push((inst, class));
        ObjRef { inst, view: class }
    }

    // ------------------------------------------------------------- fields

    #[inline]
    fn slot(&self, view: ClassId, field: &'static str) -> u32 {
        *self.classes[view.0 as usize]
            .slots
            .get(field)
            .unwrap_or_else(|| {
                panic!(
                    "class `{}` has no field `{field}`",
                    self.classes[view.0 as usize].name
                )
            })
    }

    /// Fast slot resolution: pointer-compared scan over the compiled slot
    /// list — the cost shape of a direct field offset after JIT.
    #[inline]
    fn slot_fast(&self, class: ClassId, field: &'static str) -> u32 {
        for &(f, slot) in &self.classes[class.0 as usize].slot_list {
            if std::ptr::eq(f.as_ptr(), field.as_ptr()) || f == field {
                return slot;
            }
        }
        panic!(
            "class `{}` has no field `{field}`",
            self.classes[class.0 as usize].name
        )
    }

    /// Slot resolution for the naive strategy: re-linearise the hierarchy
    /// and re-resolve the member on every access (the 2006 J& translation
    /// re-synthesised run-time class information at use sites, with no
    /// classloader cache).
    fn slot_naive(&self, class: ClassId, field: &'static str) -> u32 {
        let mut order: Vec<ClassId> = vec![class];
        let mut queue: Vec<ClassId> = self.classes[class.0 as usize].direct_supers.clone();
        while let Some(s) = queue.pop() {
            if !order.contains(&s) {
                order.push(s);
                queue.extend(self.classes[s.0 as usize].direct_supers.iter().copied());
            }
        }
        for s in order {
            if let Some(&slot) = self.classes[s.0 as usize].own_slots.get(field) {
                return slot;
            }
        }
        self.slot(class, field)
    }

    /// Reads a field through the reference's view. Under
    /// [`Strategy::SharedFamily`] the result is lazily re-viewed into the
    /// reader's family (§6.3) and the view change memoised.
    pub fn get(&mut self, r: ObjRef, field: &'static str) -> Val {
        let v = match self.strategy {
            Strategy::SharedFamily => {
                // View-dependent getter: the slot is looked up through the
                // *view* class (duplicated fields resolve per family).
                let slot = self.slot(r.view, field);
                self.instances[r.inst as usize].fields[slot as usize]
            }
            Strategy::NaiveFamily => {
                let class = self.instances[r.inst as usize].class;
                let slot = self.slot_naive(class, field);
                self.instances[r.inst as usize].fields[slot as usize]
            }
            _ => {
                let slot = self.slot_fast(self.instances[r.inst as usize].class, field);
                self.instances[r.inst as usize].fields[slot as usize]
            }
        };
        match (self.strategy, v) {
            (Strategy::SharedFamily, Val::Obj(child)) => {
                Val::Obj(self.implicit_view(child, r.view))
            }
            _ => v,
        }
    }

    /// Writes a field through the reference's view.
    pub fn set(&mut self, r: ObjRef, field: &'static str, v: Val) {
        let slot = match self.strategy {
            Strategy::SharedFamily => self.slot(r.view, field),
            Strategy::NaiveFamily => self.slot_naive(self.instances[r.inst as usize].class, field),
            _ => self.slot_fast(self.instances[r.inst as usize].class, field),
        };
        self.instances[r.inst as usize].fields[slot as usize] = v;
    }

    // -------------------------------------------------------------- views

    /// Explicit view change: produces a reference with the partner view in
    /// `target_family`. Memoised per instance (§6.3).
    pub fn view_as(&mut self, r: ObjRef, target_family: u32) -> ObjRef {
        self.stats.views_explicit += 1;
        self.change_view(r, target_family)
    }

    fn implicit_view(&mut self, child: ObjRef, parent_view: ClassId) -> ObjRef {
        let fam = self.classes[parent_view.0 as usize].family;
        if self.classes[child.view.0 as usize].family == fam {
            return child;
        }
        self.stats.views_implicit += 1;
        self.change_view(child, fam)
    }

    fn change_view(&mut self, r: ObjRef, target_family: u32) -> ObjRef {
        if self.classes[r.view.0 as usize].family == target_family {
            return r;
        }
        // Memo: the most recent view change per instance.
        let (memo_inst, memo_view) = self.view_memo[r.inst as usize];
        if memo_inst == r.inst && self.classes[memo_view.0 as usize].family == target_family {
            self.stats.view_memo_hits += 1;
            return ObjRef {
                inst: r.inst,
                view: memo_view,
            };
        }
        let partners = self.classes[r.view.0 as usize].partners.clone();
        for p in partners {
            if self.classes[p.0 as usize].family == target_family {
                self.view_memo[r.inst as usize] = (r.inst, p);
                return ObjRef {
                    inst: r.inst,
                    view: p,
                };
            }
        }
        panic!(
            "no shared view of `{}` in family {target_family}",
            self.classes[r.view.0 as usize].name
        );
    }

    // ----------------------------------------------------------- dispatch

    /// Calls method `m` on `r`, dispatching per the strategy.
    pub fn call(&mut self, r: ObjRef, m: MethodId, args: &[Val]) -> Val {
        self.stats.calls += 1;
        let dispatch_class = match self.strategy {
            // Reference-object indirection: behaviour follows the view.
            Strategy::SharedFamily => r.view,
            _ => self.instances[r.inst as usize].class,
        };
        let f = match self.strategy {
            Strategy::NaiveFamily => self.resolve_slow(dispatch_class, m),
            _ => self.resolve_vtable(dispatch_class, m),
        };
        let Some(f) = f else {
            panic!(
                "no method {m:?} on `{}`",
                self.classes[dispatch_class.0 as usize].name
            )
        };
        f(self, r, args)
    }

    /// Slow path: re-linearise the hierarchy (BFS with allocation) and
    /// consult each class's hashed method table — the cost model of the
    /// classloader-less 2006 J& translation, which re-synthesised implicit
    /// class information at use sites.
    fn resolve_slow(&self, class: ClassId, m: MethodId) -> Option<MethodFn> {
        let mut order: Vec<ClassId> = vec![class];
        let mut queue: Vec<ClassId> = self.classes[class.0 as usize].direct_supers.clone();
        while let Some(s) = queue.pop() {
            if !order.contains(&s) {
                order.push(s);
                queue.extend(self.classes[s.0 as usize].direct_supers.iter().copied());
            }
        }
        for s in order {
            if let Some(f) = self.classes[s.0 as usize].own_map.get(&m) {
                return Some(*f);
            }
        }
        None
    }

    /// Fast path: lazily build the vtable once ("classloader"), then index.
    fn resolve_vtable(&mut self, class: ClassId, m: MethodId) -> Option<MethodFn> {
        if self.classes[class.0 as usize].vtable.is_none() {
            self.build_vtable(class);
        }
        self.classes[class.0 as usize]
            .vtable
            .as_ref()
            .expect("just built")
            .get(m.0 as usize)
            .copied()
            .flatten()
    }

    fn build_vtable(&mut self, class: ClassId) {
        self.stats.vtables_built += 1;
        let mut table = vec![None; self.n_methods as usize];
        let supers = self.classes[class.0 as usize].supers.clone();
        // Most-derived first: self is first in `supers`.
        for s in supers {
            for (mid, f) in self.classes[s.0 as usize].own_methods.clone() {
                let e = &mut table[mid.0 as usize];
                if e.is_none() {
                    *e = Some(f);
                }
            }
        }
        self.classes[class.0 as usize].vtable = Some(table);
    }
}

/// Builder for class registration.
#[derive(Debug)]
pub struct ClassBuilder<'r> {
    rt: &'r mut Runtime,
    name: String,
    family: u32,
    extends: Vec<ClassId>,
    shares: Option<ClassId>,
    fields: Vec<&'static str>,
    methods: Vec<(MethodId, MethodFn)>,
}

impl<'r> ClassBuilder<'r> {
    /// Adds a direct superclass.
    pub fn extends(mut self, sup: ClassId) -> Self {
        self.extends.push(sup);
        self
    }

    /// Declares sharing with a class of another family.
    pub fn shares(mut self, base: ClassId) -> Self {
        self.shares = Some(base);
        self
    }

    /// Adds fields.
    pub fn fields(mut self, names: &[&'static str]) -> Self {
        self.fields.extend_from_slice(names);
        self
    }

    /// Adds a method implementation.
    pub fn method(mut self, m: MethodId, f: MethodFn) -> Self {
        self.methods.push((m, f));
        self
    }

    /// Registers the class.
    pub fn build(self) -> ClassId {
        self.rt.add_class(
            self.name,
            self.family,
            self.extends,
            self.shares,
            self.fields,
            self.methods,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_families(strategy: Strategy) -> (Runtime, ClassId, ClassId, MethodId) {
        let mut rt = Runtime::new(strategy);
        let f1 = rt.family();
        let f2 = rt.family();
        let m = rt.method("describe");
        let base = rt
            .class("base.Node", f1)
            .fields(&["v", "next"])
            .method(m, |_rt, _r, _a| Val::Int(1))
            .build();
        let derived = rt
            .class("disp.Node", f2)
            .extends(base)
            .shares(base)
            .method(m, |_rt, _r, _a| Val::Int(2))
            .build();
        (rt, base, derived, m)
    }

    #[test]
    fn direct_dispatch_ignores_views() {
        let (mut rt, base, _derived, m) = two_families(Strategy::Direct);
        let o = rt.alloc(base);
        assert_eq!(rt.call(o, m, &[]), Val::Int(1));
    }

    #[test]
    fn all_strategies_dispatch_own_methods() {
        for s in Strategy::ALL {
            let (mut rt, base, _d, m) = two_families(s);
            let o = rt.alloc(base);
            assert_eq!(rt.call(o, m, &[]), Val::Int(1), "{s:?}");
        }
    }

    #[test]
    fn shared_family_view_switches_behaviour() {
        let (mut rt, base, _derived, m) = two_families(Strategy::SharedFamily);
        let o = rt.alloc(base);
        assert_eq!(rt.call(o, m, &[]), Val::Int(1));
        let o2 = rt.view_as(o, 1);
        assert_eq!(rt.call(o2, m, &[]), Val::Int(2), "view-based dispatch");
        assert_eq!(rt.call(o, m, &[]), Val::Int(1), "old reference unchanged");
        assert_eq!(o.inst, o2.inst, "identity preserved");
    }

    #[test]
    fn implicit_view_change_on_field_read() {
        let (mut rt, base, _derived, m) = two_families(Strategy::SharedFamily);
        let child = rt.alloc(base);
        let parent = rt.alloc(base);
        rt.set(parent, "next", Val::Obj(child));
        let parent2 = rt.view_as(parent, 1);
        let child2 = rt.get(parent2, "next").obj().unwrap();
        assert_eq!(rt.call(child2, m, &[]), Val::Int(2), "child re-viewed");
        assert!(rt.stats.views_implicit >= 1);
    }

    #[test]
    fn view_memo_hits_on_repeat_traversal() {
        let (mut rt, base, _derived, _m) = two_families(Strategy::SharedFamily);
        let child = rt.alloc(base);
        let parent = rt.alloc(base);
        rt.set(parent, "next", Val::Obj(child));
        let parent2 = rt.view_as(parent, 1);
        let _ = rt.get(parent2, "next");
        let before = rt.stats.view_memo_hits;
        let _ = rt.get(parent2, "next");
        assert!(rt.stats.view_memo_hits > before, "second read memoised");
    }

    #[test]
    fn loader_builds_vtable_once() {
        let (mut rt, base, _d, m) = two_families(Strategy::LoaderFamily);
        let o = rt.alloc(base);
        rt.call(o, m, &[]);
        rt.call(o, m, &[]);
        rt.call(o, m, &[]);
        assert_eq!(rt.stats.vtables_built, 1);
    }

    #[test]
    fn inherited_methods_found_by_all_strategies() {
        for s in Strategy::ALL {
            let mut rt = Runtime::new(s);
            let f = rt.family();
            let m = rt.method("val");
            let sup = rt.class("Sup", f).method(m, |_, _, _| Val::Int(7)).build();
            let sub = rt.class("Sub", f).extends(sup).build();
            let o = rt.alloc(sub);
            assert_eq!(rt.call(o, m, &[]), Val::Int(7), "{s:?}");
        }
    }

    #[test]
    fn shared_layout_holds_both_families_fields() {
        let mut rt = Runtime::new(Strategy::SharedFamily);
        let f1 = rt.family();
        let f2 = rt.family();
        let base = rt.class("b.C", f1).fields(&["x"]).build();
        let derived = rt
            .class("d.C", f2)
            .extends(base)
            .shares(base)
            .fields(&["extra"])
            .build();
        let o = rt.alloc(base);
        // The representative instance class has room for `extra`.
        rt.set(
            ObjRef {
                inst: o.inst,
                view: derived,
            },
            "extra",
            Val::Int(5),
        );
        rt.set(o, "x", Val::Int(3));
        assert_eq!(rt.get(o, "x"), Val::Int(3));
        let o2 = rt.view_as(o, f2);
        assert_eq!(rt.get(o2, "extra"), Val::Int(5));
        assert_eq!(rt.get(o2, "x"), Val::Int(3), "shared field, same slot");
    }

    #[test]
    fn fields_hold_floats_and_ints() {
        let mut rt = Runtime::new(Strategy::Direct);
        let f = rt.family();
        let c = rt.class("C", f).fields(&["a", "b"]).build();
        let o = rt.alloc(c);
        rt.set(o, "a", Val::F(1.5));
        rt.set(o, "b", Val::Int(2));
        assert_eq!(rt.get(o, "a").f(), 1.5);
        assert_eq!(rt.get(o, "b").int(), 2);
    }
}
