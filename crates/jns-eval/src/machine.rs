//! The evaluator: a big-step interpreter implementing the operational
//! semantics of Fig. 17, instrumented with step counting and an optional
//! CONFIG well-formedness checker (Fig. 19).
//!
//! The heap is the shared [`crate::heap::Heap`] (one store for both
//! backends); the interpreter keys every cell by ⟨ℓ, P, f⟩ where
//! `P = fclass(view, f)` selects the copy of a possibly duplicated field
//! (§4.15). Implicit view changes are *lazy*: a field read re-views the
//! stored value against the field type interpreted in the reader's view
//! (R-GET). With a configured heap limit ([`Machine::with_heap_limit`]),
//! allocation triggers the heap's mark-compact collector, with roots
//! enumerated from the explicit stacks described below.
//!
//! # Execution model: an explicit-stack machine
//!
//! Evaluation does **not** recurse on the host stack. The machine is a
//! CEK-style loop over two heap-allocated stacks — a control stack of
//! pending work ([`Work`]: expressions to evaluate and continuation
//! frames [`Kont`]) and a value stack — plus the current environment
//! frame, which is swapped out (and saved inside `Kont::Return` /
//! `Kont::AllocInit`) at method-call and field-initialiser boundaries.
//! J&s call depth and expression nesting are therefore bounded only by
//! heap memory and by one uniformly enforced, configurable limit
//! ([`Machine::with_max_depth`], default [`DEFAULT_MAX_DEPTH`]) that
//! returns [`RtError::DepthExceeded`] instead of aborting the process.
//! The limit counts *recursion units*: method activations and nested
//! field-initialiser evaluations — the same units the bytecode VM counts,
//! so both backends report the identical error at the identical depth.
//!
//! A failed evaluation cannot poison the machine: all control state lives
//! in locals of the evaluation loop, and the shared depth counter is
//! restored to its entry value on error, so a `Machine` can be reused
//! after any `RtError`.

use crate::error::RtError;
use crate::heap::Heap;
use crate::typeeval;
use crate::value::{Loc, MaskSet, RefVal, Value};
use jns_syntax::{BinOp, UnOp};
use jns_types::{CExpr, CheckedProgram, ClassId, Judge, Name, Ty, Type, TypeEnv};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Execution statistics (used by tests and benches).
#[derive(Debug, Default, Clone, Copy)]
pub struct Stats {
    /// Evaluation steps (one per expression node evaluated).
    pub steps: u64,
    /// Objects allocated.
    pub allocs: u64,
    /// Explicit view-change operations executed.
    pub views_explicit: u64,
    /// Implicit (lazy) view changes triggered by field reads.
    pub views_implicit: u64,
    /// Method calls dispatched.
    pub calls: u64,
    /// Inline-cache hits across field-read, field-write, and call sites
    /// (VM backend only; the tree-walker has no site caches).
    pub ic_hits: u64,
    /// Inline-cache misses (resolutions through the global tables).
    pub ic_misses: u64,
    /// Fresh mask-set materialisations. The VM interns view-transition
    /// mask sets, so repeated transitions reuse one `Arc` and this stays
    /// far below `views_explicit + views_implicit`; the tree-walker pays
    /// one per transition.
    pub mask_allocs: u64,
    /// Tracing collections run by the shared heap (0 with no
    /// `--heap-limit`; see [`crate::heap::Heap`]).
    pub gc_runs: u64,
    /// Objects reclaimed by tracing collections (whole-heap per-request
    /// resets are reported separately by the serving layer).
    pub reclaimed: u64,
    /// High-water mark of live heap objects.
    pub peak_live: u64,
    /// Operators constant-folded away at lowering time (VM backend only;
    /// a property of the compiled program, stamped onto every run).
    pub folded: u64,
    /// Superinstructions fused at lowering time (VM backend only; like
    /// `folded`, a property of the compiled program).
    pub fused: u64,
    /// Sites rewritten into their quickened form after staying
    /// monomorphic (VM backend only; counts install events, so a site
    /// that de-quickens and re-quickens counts each time).
    pub quickened: u64,
    /// Quickened sites restored to their generic form by a view-guard
    /// failure (VM backend only).
    pub dequickened: u64,
    /// Minor (nursery) collections run by the shared heap (0 unless a
    /// `--nursery` is configured alongside a heap limit).
    pub minor_runs: u64,
    /// Major (full mark-compact) collections; every non-generational
    /// collection counts here, so `minor_runs + major_runs == gc_runs`.
    pub major_runs: u64,
    /// Nursery objects promoted to the tenured region by minor
    /// collections.
    pub promoted: u64,
    /// Write-barrier hits: stores of a nursery reference into a tenured
    /// object.
    pub barrier_hits: u64,
}

impl Stats {
    /// Accumulates `other` into `self` (used by `jns-serve` to aggregate
    /// per-request statistics across a worker pool).
    pub fn merge(&mut self, other: &Stats) {
        self.steps += other.steps;
        self.allocs += other.allocs;
        self.views_explicit += other.views_explicit;
        self.views_implicit += other.views_implicit;
        self.calls += other.calls;
        self.ic_hits += other.ic_hits;
        self.ic_misses += other.ic_misses;
        self.mask_allocs += other.mask_allocs;
        self.gc_runs += other.gc_runs;
        self.reclaimed += other.reclaimed;
        // High-water marks aggregate by maximum, not by sum.
        self.peak_live = self.peak_live.max(other.peak_live);
        // Folding and fusion happen once per program, so "merging" runs
        // keeps the program-wide count instead of summing it.
        self.folded = self.folded.max(other.folded);
        self.fused = self.fused.max(other.fused);
        self.quickened += other.quickened;
        self.dequickened += other.dequickened;
        self.minor_runs += other.minor_runs;
        self.major_runs += other.major_runs;
        self.promoted += other.promoted;
        self.barrier_hits += other.barrier_hits;
    }

    /// The statistics that must be identical for every execution of the
    /// same program, regardless of backend warm-up state (inline-cache
    /// and interning counters depend on how warm a reused VM is, so they
    /// are excluded).
    pub fn semantic(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.steps,
            self.allocs,
            self.views_explicit,
            self.views_implicit,
            self.calls,
        )
    }
}

/// The default recursion-depth limit, shared by both backends (method
/// activations plus nested field-initialiser evaluations).
pub const DEFAULT_MAX_DEPTH: u32 = 2_000;

/// The abstract machine.
#[derive(Debug)]
pub struct Machine<'p> {
    prog: &'p CheckedProgram,
    /// The shared heap ([`crate::heap::Heap`], the same type the bytecode
    /// VM uses). The interpreter allocates slot-less objects and keys
    /// every cell by ⟨fclass-owner, field⟩, its ⟨ℓ, P, f⟩ representation.
    heap: Heap,
    /// Captured `print` output.
    pub output: Vec<String>,
    /// Execution statistics.
    pub stats: Stats,
    fuel: Option<u64>,
    depth: u32,
    max_depth: u32,
    sub_memo: HashMap<(ClassId, Ty), bool>,
    /// Optional structured-event sink (`None` keeps every hook a single
    /// branch, with byte-identical outputs and statistics).
    trace: Option<jns_obs::TraceBuffer>,
}

type Frame = HashMap<Name, Value>;

/// One unit of pending work on the control stack.
enum Work<'a> {
    /// Evaluate an expression (its result lands on the value stack).
    Eval(&'a CExpr),
    /// Allocate an object whose field initialisers (if any) run next.
    Alloc {
        class: ClassId,
        provided: Vec<(Name, Value)>,
    },
    /// Resume a suspended context with the value(s) on the value stack.
    Kont(Kont<'a>),
}

/// A continuation frame: what to do with the value just produced.
enum Kont<'a> {
    /// R-GET: the receiver is on the value stack.
    GetField(Name),
    /// R-SET: the stored value is on the value stack.
    SetField { x: Name, f: Name },
    /// The call receiver is on the value stack; arguments come next.
    CallRecv { m: Name, args: &'a [CExpr] },
    /// Argument `idx` is on the value stack; `argv` holds earlier ones.
    CallArgs {
        r: RefVal,
        m: Name,
        args: &'a [CExpr],
        idx: usize,
        argv: Vec<Value>,
    },
    /// Method return: restore the caller's frame and depth.
    Return { saved: Frame },
    /// Record initialiser `idx` of a `new` and evaluate the next one.
    NewInits {
        class: ClassId,
        inits: &'a [(Name, CExpr)],
        idx: usize,
        provided: Vec<(Name, Value)>,
    },
    /// A declared field initialiser finished; write it and run the next.
    AllocInit(Box<AllocState<'a>>),
    /// The viewed expression is on the value stack.
    View(&'a Type),
    /// The cast expression is on the value stack.
    Cast(&'a Type),
    /// Short-circuit `&&`: left operand is on the value stack.
    And(&'a CExpr),
    /// Short-circuit `||`: left operand is on the value stack.
    Or(&'a CExpr),
    /// Strict binary operator: both operands are on the value stack.
    BinOp(BinOp),
    /// Unary operator: the operand is on the value stack.
    Un(UnOp),
    /// Conditional: the scrutinee is on the value stack.
    If { t: &'a CExpr, e: &'a CExpr },
    /// Loop condition evaluated: run the body or yield unit.
    WhileCond { c: &'a CExpr, body: &'a CExpr },
    /// Loop body evaluated: discard it and re-test the condition.
    WhileBody { c: &'a CExpr, body: &'a CExpr },
    /// `let` initialiser evaluated: bind it and run the body.
    LetBind { x: Name, body: &'a CExpr },
    /// `let` body evaluated: restore the shadowed binding.
    LetRestore { x: Name, old: Option<Value> },
    /// Sequence element `idx` evaluated: discard it unless it is last.
    Seq { parts: &'a [CExpr], idx: usize },
    /// The printed expression is on the value stack.
    Print,
}

/// In-flight allocation: R-ALLOC suspended between field initialisers.
/// The object's ℓ lives in `this_ref` (a GC root, so a collection during
/// an initialiser forwards it like any other reference).
struct AllocState<'a> {
    class: ClassId,
    /// `this` during initialisation: all fields masked (F-OK).
    this_ref: RefVal,
    masks: BTreeSet<Name>,
    /// Declared initialisers in execution order (base-most first).
    inits: Vec<(Name, &'a CExpr)>,
    idx: usize,
    provided: Vec<(Name, Value)>,
    /// The frame to restore once every initialiser has run.
    saved: Frame,
}

/// Applies `visit` to every live [`RefVal`] reachable from one
/// evaluation's state: the current environment frame, the value stack,
/// every suspended continuation on the control stack, and the record
/// values of an allocation in flight. This is the interpreter's GC root
/// set — possible only because evaluation runs on explicit heap stacks
/// (the CEK refactor), which makes every live reference enumerable.
fn visit_roots(
    frame: &mut Frame,
    ctrl: &mut [Work<'_>],
    vals: &mut [Value],
    provided: &mut [(Name, Value)],
    visit: &mut dyn FnMut(&mut RefVal),
) {
    fn value(v: &mut Value, visit: &mut dyn FnMut(&mut RefVal)) {
        if let Value::Ref(r) = v {
            visit(r);
        }
    }
    for v in frame.values_mut() {
        value(v, visit);
    }
    for v in vals.iter_mut() {
        value(v, visit);
    }
    for (_, v) in provided.iter_mut() {
        value(v, visit);
    }
    for w in ctrl.iter_mut() {
        match w {
            Work::Eval(_) => {}
            Work::Alloc { provided, .. } => {
                for (_, v) in provided.iter_mut() {
                    value(v, visit);
                }
            }
            Work::Kont(k) => match k {
                Kont::CallArgs { r, argv, .. } => {
                    visit(r);
                    for v in argv.iter_mut() {
                        value(v, visit);
                    }
                }
                Kont::Return { saved } => {
                    for v in saved.values_mut() {
                        value(v, visit);
                    }
                }
                Kont::NewInits { provided, .. } => {
                    for (_, v) in provided.iter_mut() {
                        value(v, visit);
                    }
                }
                Kont::AllocInit(st) => {
                    visit(&mut st.this_ref);
                    for (_, v) in st.provided.iter_mut() {
                        value(v, visit);
                    }
                    for v in st.saved.values_mut() {
                        value(v, visit);
                    }
                }
                Kont::LetRestore { old, .. } => {
                    if let Some(v) = old {
                        value(v, visit);
                    }
                }
                // Value-free continuations (their operands are already on
                // the value stack, which is visited above).
                Kont::GetField(_)
                | Kont::SetField { .. }
                | Kont::CallRecv { .. }
                | Kont::View(_)
                | Kont::Cast(_)
                | Kont::And(_)
                | Kont::Or(_)
                | Kont::BinOp(_)
                | Kont::Un(_)
                | Kont::If { .. }
                | Kont::WhileCond { .. }
                | Kont::WhileBody { .. }
                | Kont::LetBind { .. }
                | Kont::Seq { .. }
                | Kont::Print => {}
            },
        }
    }
}

impl<'p> Machine<'p> {
    /// Creates a machine for a checked program.
    pub fn new(prog: &'p CheckedProgram) -> Self {
        Machine {
            prog,
            heap: Heap::new(),
            output: Vec::new(),
            stats: Stats::default(),
            fuel: None,
            depth: 0,
            max_depth: DEFAULT_MAX_DEPTH,
            sub_memo: HashMap::new(),
            trace: None,
        }
    }

    /// Attaches a structured-event trace buffer: the machine records one
    /// [`jns_obs::TraceEvent::Gc`] per tracing collection. With no buffer
    /// attached (the default) the hook is a branch on `None` and
    /// behaviour — output, value, statistics — is byte-identical.
    pub fn set_trace(&mut self, buf: jns_obs::TraceBuffer) {
        self.trace = Some(buf);
    }

    /// Detaches and returns the trace buffer, if one was attached.
    pub fn take_trace(&mut self) -> Option<jns_obs::TraceBuffer> {
        self.trace.take()
    }

    /// The attached trace buffer, for callers that push their own events.
    pub fn trace_mut(&mut self) -> Option<&mut jns_obs::TraceBuffer> {
        self.trace.as_mut()
    }

    /// Limits execution to `fuel` steps (for property tests).
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = Some(fuel);
        self
    }

    /// Sets the live-heap threshold: once this many objects are live, the
    /// next allocation first runs a mark-compact collection over roots
    /// enumerated from the machine's explicit control/value stacks and
    /// environment frames. With no limit the collector never runs and
    /// behaviour is byte-identical to an unlimited heap.
    pub fn with_heap_limit(mut self, limit: usize) -> Self {
        self.heap.set_limit(Some(limit));
        self
    }

    /// Sets the nursery capacity for generational collection (effective
    /// only alongside a heap limit): allocations go to the nursery and a
    /// full nursery triggers a minor collection; see
    /// [`crate::heap::Heap::set_nursery`].
    pub fn with_nursery(mut self, nursery: usize) -> Self {
        self.heap.set_nursery(Some(nursery));
        self
    }

    /// Region-style reclamation between top-level invocations (the same
    /// surface as `jns_vm::Vm::reset_for_request`): drops every heap
    /// object and clears per-request state — output, statistics, call
    /// depth — while keeping the subtype memo warm. Returns the number of
    /// heap objects reclaimed.
    pub fn reset_for_request(&mut self) -> usize {
        let reclaimed = self.heap.reset();
        self.output.clear();
        self.stats = Stats::default();
        self.depth = 0;
        reclaimed
    }

    /// Copies the heap's collector counters into [`Machine::stats`]
    /// (called at the end of every public evaluation entry point).
    fn sync_gc_stats(&mut self) {
        let g = self.heap.gc_stats();
        self.stats.gc_runs = g.runs;
        self.stats.reclaimed = g.reclaimed;
        self.stats.peak_live = g.peak_live;
        self.stats.minor_runs = g.minor_runs;
        self.stats.major_runs = g.major_runs;
        self.stats.promoted = g.promoted;
        self.stats.barrier_hits = g.barrier_hits;
    }

    /// Sets the recursion-depth limit (method activations plus nested
    /// field-initialiser evaluations). The control stack lives on the
    /// heap, so large limits are safe; exceeding the limit returns
    /// [`RtError::DepthExceeded`].
    pub fn with_max_depth(mut self, max_depth: u32) -> Self {
        self.max_depth = max_depth;
        self
    }

    /// Runs the program's `main` expression.
    ///
    /// # Errors
    ///
    /// See [`RtError`]; for well-typed programs only the benign variants
    /// can occur.
    pub fn run(&mut self) -> Result<Value, RtError> {
        let prog = self.prog;
        let main = prog
            .main
            .as_ref()
            .ok_or_else(|| RtError::BadType("program has no main".into()))?;
        self.eval_root(main)
    }

    /// Evaluates an arbitrary expression in an empty frame (for tests).
    pub fn eval_expr(&mut self, e: &CExpr) -> Result<Value, RtError> {
        self.eval_root(e)
    }

    /// Evaluates `e` from a fresh frame on fresh control/value stacks,
    /// restoring the shared depth counter on error so the machine stays
    /// reusable after a failure.
    fn eval_root<'a>(&mut self, e: &'a CExpr) -> Result<Value, RtError>
    where
        'p: 'a,
    {
        let entry_depth = self.depth;
        let mut frame = Frame::new();
        let mut ctrl: Vec<Work<'a>> = vec![Work::Eval(e)];
        let mut vals: Vec<Value> = Vec::new();
        let r = self.exec_loop(&mut frame, &mut ctrl, &mut vals);
        self.sync_gc_stats();
        if r.is_err() {
            self.depth = entry_depth;
        }
        r
    }

    fn tick(&mut self) -> Result<(), RtError> {
        self.stats.steps += 1;
        if let Some(f) = self.fuel {
            if self.stats.steps > f {
                return Err(RtError::OutOfFuel);
            }
        }
        Ok(())
    }

    /// The evaluation loop. Pops one [`Work`] item per round; expression
    /// nodes push their continuations and subexpressions instead of
    /// recursing, so the host stack stays at a constant depth no matter
    /// how deeply the program nests or recurses.
    fn exec_loop<'a>(
        &mut self,
        frame: &mut Frame,
        ctrl: &mut Vec<Work<'a>>,
        vals: &mut Vec<Value>,
    ) -> Result<Value, RtError>
    where
        'p: 'a,
    {
        while let Some(w) = ctrl.pop() {
            match w {
                Work::Eval(e) => {
                    self.tick()?;
                    match e {
                        CExpr::Int(n) => vals.push(Value::Int(*n)),
                        CExpr::Bool(b) => vals.push(Value::Bool(*b)),
                        CExpr::Str(s) => vals.push(Value::Str(Arc::from(s.as_str()))),
                        CExpr::Unit => vals.push(Value::Unit),
                        CExpr::Var(x) => {
                            let v = frame.get(x).cloned().ok_or_else(|| {
                                RtError::UnboundVariable(self.prog.table.name_str(*x))
                            })?;
                            vals.push(v);
                        }
                        CExpr::GetField(recv, f) => {
                            ctrl.push(Work::Kont(Kont::GetField(*f)));
                            ctrl.push(Work::Eval(recv));
                        }
                        CExpr::SetField(x, f, value) => {
                            ctrl.push(Work::Kont(Kont::SetField { x: *x, f: *f }));
                            ctrl.push(Work::Eval(value));
                        }
                        CExpr::Call(recv, m, args) => {
                            ctrl.push(Work::Kont(Kont::CallRecv { m: *m, args }));
                            ctrl.push(Work::Eval(recv));
                        }
                        CExpr::New(ty, inits) => {
                            let class = typeeval::eval_type_class(self, frame, ty)?;
                            match inits.first() {
                                None => ctrl.push(Work::Alloc {
                                    class,
                                    provided: Vec::new(),
                                }),
                                Some((_, e0)) => {
                                    ctrl.push(Work::Kont(Kont::NewInits {
                                        class,
                                        inits,
                                        idx: 0,
                                        provided: Vec::with_capacity(inits.len()),
                                    }));
                                    ctrl.push(Work::Eval(e0));
                                }
                            }
                        }
                        CExpr::View(ty, inner) => {
                            ctrl.push(Work::Kont(Kont::View(ty)));
                            ctrl.push(Work::Eval(inner));
                        }
                        CExpr::Cast(ty, inner) => {
                            ctrl.push(Work::Kont(Kont::Cast(ty)));
                            ctrl.push(Work::Eval(inner));
                        }
                        CExpr::Bin(op, l, r) => match op {
                            BinOp::And => {
                                ctrl.push(Work::Kont(Kont::And(r)));
                                ctrl.push(Work::Eval(l));
                            }
                            BinOp::Or => {
                                ctrl.push(Work::Kont(Kont::Or(r)));
                                ctrl.push(Work::Eval(l));
                            }
                            _ => {
                                ctrl.push(Work::Kont(Kont::BinOp(*op)));
                                ctrl.push(Work::Eval(r));
                                ctrl.push(Work::Eval(l));
                            }
                        },
                        CExpr::Un(op, inner) => {
                            ctrl.push(Work::Kont(Kont::Un(*op)));
                            ctrl.push(Work::Eval(inner));
                        }
                        CExpr::If(c, t, e2) => {
                            ctrl.push(Work::Kont(Kont::If { t, e: e2 }));
                            ctrl.push(Work::Eval(c));
                        }
                        CExpr::While(c, body) => {
                            // Loop-head tick: one per condition test, as in
                            // the big-step rule.
                            self.tick()?;
                            ctrl.push(Work::Kont(Kont::WhileCond { c, body }));
                            ctrl.push(Work::Eval(c));
                        }
                        CExpr::Let(x, init, body) => {
                            ctrl.push(Work::Kont(Kont::LetBind { x: *x, body }));
                            ctrl.push(Work::Eval(init));
                        }
                        CExpr::Seq(parts) => match parts.first() {
                            None => vals.push(Value::Unit),
                            Some(p0) => {
                                ctrl.push(Work::Kont(Kont::Seq { parts, idx: 0 }));
                                ctrl.push(Work::Eval(p0));
                            }
                        },
                        CExpr::Print(inner) => {
                            ctrl.push(Work::Kont(Kont::Print));
                            ctrl.push(Work::Eval(inner));
                        }
                    }
                }
                Work::Alloc { class, provided } => {
                    self.begin_alloc(class, provided, frame, ctrl, vals)?;
                }
                Work::Kont(k) => match k {
                    Kont::GetField(f) => {
                        let v = vals.pop().expect("getfield receiver");
                        let r = self.expect_ref(v)?;
                        let out = self.get_field(&r, f)?;
                        vals.push(out);
                    }
                    Kont::SetField { x, f } => {
                        let v = vals.pop().expect("setfield value");
                        let Some(Value::Ref(r)) = frame.get(&x).cloned() else {
                            return Err(RtError::UnboundVariable(self.prog.table.name_str(x)));
                        };
                        let copy = self.prog.sharing.fclass(r.view, f);
                        self.heap.set(r.loc, copy, None, f, v.clone());
                        // grant(σ, x.f): the stack binding loses the mask (R-SET).
                        if let Some(Value::Ref(r2)) = frame.get_mut(&x) {
                            if r2.grant(&f) {
                                self.stats.mask_allocs += 1;
                            }
                        }
                        vals.push(v);
                    }
                    Kont::CallRecv { m, args } => {
                        let v = vals.pop().expect("call receiver");
                        let r = self.expect_ref(v)?;
                        match args.first() {
                            None => self.begin_call(r, m, Vec::new(), frame, ctrl)?,
                            Some(a0) => {
                                ctrl.push(Work::Kont(Kont::CallArgs {
                                    r,
                                    m,
                                    args,
                                    idx: 0,
                                    argv: Vec::with_capacity(args.len()),
                                }));
                                ctrl.push(Work::Eval(a0));
                            }
                        }
                    }
                    Kont::CallArgs {
                        r,
                        m,
                        args,
                        idx,
                        mut argv,
                    } => {
                        argv.push(vals.pop().expect("call argument"));
                        let next = idx + 1;
                        match args.get(next) {
                            Some(a) => {
                                ctrl.push(Work::Kont(Kont::CallArgs {
                                    r,
                                    m,
                                    args,
                                    idx: next,
                                    argv,
                                }));
                                ctrl.push(Work::Eval(a));
                            }
                            None => self.begin_call(r, m, argv, frame, ctrl)?,
                        }
                    }
                    Kont::Return { saved } => {
                        self.depth -= 1;
                        *frame = saved;
                    }
                    Kont::NewInits {
                        class,
                        inits,
                        idx,
                        mut provided,
                    } => {
                        provided.push((inits[idx].0, vals.pop().expect("record value")));
                        let next = idx + 1;
                        match inits.get(next) {
                            Some((_, e)) => {
                                ctrl.push(Work::Kont(Kont::NewInits {
                                    class,
                                    inits,
                                    idx: next,
                                    provided,
                                }));
                                ctrl.push(Work::Eval(e));
                            }
                            None => ctrl.push(Work::Alloc { class, provided }),
                        }
                    }
                    Kont::AllocInit(mut st) => {
                        self.depth -= 1;
                        let v = vals.pop().expect("field initialiser value");
                        let fname = st.inits[st.idx].0;
                        let copy = self.prog.sharing.fclass(st.class, fname);
                        // `this_ref.loc` is the object's current ℓ (a GC
                        // during the initialiser may have forwarded it).
                        self.heap.set(st.this_ref.loc, copy, None, fname, v);
                        st.masks.remove(&fname);
                        st.idx += 1;
                        match st.inits.get(st.idx) {
                            Some(&(_, init)) => {
                                if self.depth >= self.max_depth {
                                    return Err(RtError::DepthExceeded(self.max_depth));
                                }
                                self.depth += 1;
                                // Each initialiser runs in its own frame
                                // holding only `this`.
                                let mut f = Frame::new();
                                f.insert(
                                    self.prog.table.this_name,
                                    Value::Ref(st.this_ref.clone()),
                                );
                                *frame = f;
                                ctrl.push(Work::Kont(Kont::AllocInit(st)));
                                ctrl.push(Work::Eval(init));
                            }
                            None => {
                                *frame = std::mem::take(&mut st.saved);
                                let st = *st;
                                let v = self.finalize_alloc(
                                    st.class,
                                    st.this_ref.loc,
                                    st.masks,
                                    st.provided,
                                );
                                vals.push(v);
                            }
                        }
                    }
                    Kont::View(ty) => {
                        let v = vals.pop().expect("view operand");
                        let r = self.expect_ref(v)?;
                        self.stats.views_explicit += 1;
                        let (target, mut masks) = typeeval::eval_type(self, frame, &ty.ty)?;
                        masks.extend(ty.masks.iter().copied());
                        let out = self.apply_view(r, &target, masks)?;
                        vals.push(Value::Ref(out));
                    }
                    Kont::Cast(ty) => {
                        let v = vals.pop().expect("cast operand");
                        match v {
                            Value::Ref(r) => {
                                let (target, _masks) = typeeval::eval_type(self, frame, &ty.ty)?;
                                if self.view_subtype(r.view, &target) {
                                    vals.push(Value::Ref(r));
                                } else {
                                    return Err(RtError::CastFailed(format!(
                                        "view `{}` is not a `{}`",
                                        self.prog.table.class_name(r.view),
                                        self.prog.table.show_ty(&target)
                                    )));
                                }
                            }
                            prim => vals.push(prim), // primitive casts are no-ops
                        }
                    }
                    Kont::And(r) => {
                        let lv = vals.pop().expect("&& operand");
                        if lv.as_bool().ok_or_else(|| type_err("&& needs bool"))? {
                            ctrl.push(Work::Eval(r));
                        } else {
                            vals.push(Value::Bool(false));
                        }
                    }
                    Kont::Or(r) => {
                        let lv = vals.pop().expect("|| operand");
                        if lv.as_bool().ok_or_else(|| type_err("|| needs bool"))? {
                            vals.push(Value::Bool(true));
                        } else {
                            ctrl.push(Work::Eval(r));
                        }
                    }
                    Kont::BinOp(op) => {
                        let rv = vals.pop().expect("binary rhs");
                        let lv = vals.pop().expect("binary lhs");
                        vals.push(self.binop(op, lv, rv)?);
                    }
                    Kont::Un(op) => {
                        let v = vals.pop().expect("unary operand");
                        let out = match (op, v) {
                            (UnOp::Not, Value::Bool(b)) => Value::Bool(!b),
                            (UnOp::Neg, Value::Int(n)) => Value::Int(n.wrapping_neg()),
                            _ => return Err(type_err("bad unary operand")),
                        };
                        vals.push(out);
                    }
                    Kont::If { t, e } => {
                        let cv = vals.pop().expect("if condition");
                        if cv.as_bool().ok_or_else(|| type_err("if needs bool"))? {
                            ctrl.push(Work::Eval(t));
                        } else {
                            ctrl.push(Work::Eval(e));
                        }
                    }
                    Kont::WhileCond { c, body } => {
                        let cv = vals.pop().expect("while condition");
                        if cv.as_bool().ok_or_else(|| type_err("while needs bool"))? {
                            ctrl.push(Work::Kont(Kont::WhileBody { c, body }));
                            ctrl.push(Work::Eval(body));
                        } else {
                            vals.push(Value::Unit);
                        }
                    }
                    Kont::WhileBody { c, body } => {
                        vals.pop(); // the body's value is discarded
                        self.tick()?;
                        ctrl.push(Work::Kont(Kont::WhileCond { c, body }));
                        ctrl.push(Work::Eval(c));
                    }
                    Kont::LetBind { x, body } => {
                        let v = vals.pop().expect("let initialiser");
                        let old = frame.insert(x, v);
                        ctrl.push(Work::Kont(Kont::LetRestore { x, old }));
                        ctrl.push(Work::Eval(body));
                    }
                    Kont::LetRestore { x, old } => match old {
                        Some(o) => {
                            frame.insert(x, o);
                        }
                        None => {
                            frame.remove(&x);
                        }
                    },
                    Kont::Seq { parts, idx } => {
                        let next = idx + 1;
                        if let Some(p) = parts.get(next) {
                            vals.pop(); // discard all but the last value
                            ctrl.push(Work::Kont(Kont::Seq { parts, idx: next }));
                            ctrl.push(Work::Eval(p));
                        }
                    }
                    Kont::Print => {
                        let v = vals.pop().expect("print operand");
                        let s = self.display_value(&v);
                        self.output.push(s);
                        vals.push(Value::Unit);
                    }
                },
            }
        }
        Ok(vals.pop().expect("evaluation produced a value"))
    }

    /// Formats a value the way `print` shows it.
    pub fn display_value(&self, v: &Value) -> String {
        match v {
            Value::Ref(r) => format!("{}@{}", self.prog.table.class_name(r.view), r.loc),
            other => other.to_string(),
        }
    }

    // -------------------------------------------------------------- fields

    /// R-GET: reads `r.f` through `r`'s view, applying the lazy implicit
    /// view change to the result.
    pub fn get_field(&mut self, r: &RefVal, f: Name) -> Result<Value, RtError> {
        let copy = self.prog.sharing.fclass(r.view, f);
        let stored = match self.heap.get(r.loc, copy, None, f) {
            Some(v) => v,
            None => {
                // §3.3 forwarding: read the other family's copy and re-view.
                let mut found = None;
                for alt in self.prog.sharing.forwards(r.view, f).to_vec() {
                    if let Some(v) = self.heap.get(r.loc, alt, None, f) {
                        found = Some(v);
                        break;
                    }
                }
                found.ok_or_else(|| {
                    RtError::UninitialisedField(format!(
                        "{}.{} (view {})",
                        r.loc,
                        self.prog.table.name_str(f),
                        self.prog.table.class_name(r.view)
                    ))
                })?
            }
        };
        match stored {
            Value::Ref(inner) => {
                // ftype(∅, P!\f0, f) evaluated in the current view.
                let ft = self.field_view_type(r.view, f)?;
                let (ty, masks) = ft;
                self.stats.views_implicit += 1;
                self.apply_view(inner, &ty, masks).map(Value::Ref)
            }
            prim => Ok(prim),
        }
    }

    /// The field type of `f` interpreted in view `view`, as a runtime type.
    fn field_view_type(&self, view: ClassId, f: Name) -> Result<(Ty, BTreeSet<Name>), RtError> {
        let env = TypeEnv::new();
        let judge = Judge::new(&self.prog.table, &env);
        let recv = Ty::Class(view).exact().unmasked();
        let ft = judge.ftype(&recv, f).map_err(RtError::BadType)?;
        Ok((judge.canon(&ft.ty), ft.masks))
    }

    // -------------------------------------------------------------- alloc

    /// R-ALLOC: allocates an `S` instance, runs declared field
    /// initialisers (most-base first), then the provided record values.
    ///
    /// Initialisers run on a fresh explicit control stack, so deep
    /// initialiser chains cannot exhaust the host stack either.
    pub fn alloc(
        &mut self,
        class: ClassId,
        provided: Vec<(Name, Value)>,
    ) -> Result<Value, RtError> {
        let entry_depth = self.depth;
        let mut frame = Frame::new();
        let mut ctrl: Vec<Work<'p>> = vec![Work::Alloc { class, provided }];
        let mut vals: Vec<Value> = Vec::new();
        let r = self.exec_loop(&mut frame, &mut ctrl, &mut vals);
        self.sync_gc_stats();
        if r.is_err() {
            self.depth = entry_depth;
        }
        r
    }

    /// Starts R-ALLOC on the explicit stack: claims a location, then
    /// either finishes immediately (no declared initialisers) or swaps in
    /// the first initialiser's frame and suspends into `Kont::AllocInit`.
    /// Each nested initialiser evaluation counts one recursion unit
    /// against the depth limit (mirroring the VM's accounting).
    fn begin_alloc<'a>(
        &mut self,
        class: ClassId,
        mut provided: Vec<(Name, Value)>,
        frame: &mut Frame,
        ctrl: &mut Vec<Work<'a>>,
        vals: &mut Vec<Value>,
    ) -> Result<(), RtError>
    where
        'p: 'a,
    {
        self.stats.allocs += 1;
        // GC point: the only place the interpreter grows the heap. Roots
        // are the machine's explicit stacks plus the record values about
        // to be stored; the new object does not exist yet.
        if let Some(kind) = self.heap.pending_collection() {
            // Pause timing feeds the trace event only, so the clock is
            // read just when a buffer is attached.
            let start = self.trace.as_ref().map(|_| std::time::Instant::now());
            let reclaimed = self.heap.collect_kind(kind, |visit| {
                visit_roots(frame, ctrl, vals, &mut provided, visit);
            });
            if let Some(t) = self.trace.as_mut() {
                t.push(jns_obs::TraceEvent::Gc {
                    kind: kind.label(),
                    reclaimed: reclaimed as u64,
                    live: self.heap.len() as u64,
                    peak_live: self.heap.gc_stats().peak_live,
                    pause_us: start.map_or(0, |s| s.elapsed().as_micros() as u64),
                });
            }
        }
        let loc = self.heap.alloc(0);
        let prog = self.prog;
        let all_fields: Vec<(ClassId, jns_types::FieldInfo)> = prog.table.fields_of(class);
        let masks: BTreeSet<Name> = all_fields.iter().map(|(_, fi)| fi.name).collect();
        // `this` during initialisation: all fields masked (F-OK).
        self.stats.mask_allocs += 1;
        let this_ref = RefVal {
            loc,
            view: class,
            masks: Arc::new(masks.clone()),
        };
        // Declared initialisers, base-most classes first.
        let inits: Vec<(Name, &'a CExpr)> = all_fields
            .iter()
            .rev()
            .filter(|(_, fi)| fi.has_init)
            .filter_map(|(owner, fi)| {
                prog.field_inits
                    .get(&(*owner, fi.name))
                    .map(|e| (fi.name, e))
            })
            .collect();
        match inits.first() {
            None => {
                let v = self.finalize_alloc(class, loc, masks, provided);
                vals.push(v);
            }
            Some(&(_, first)) => {
                if self.depth >= self.max_depth {
                    return Err(RtError::DepthExceeded(self.max_depth));
                }
                self.depth += 1;
                let mut st = Box::new(AllocState {
                    class,
                    this_ref,
                    masks,
                    inits,
                    idx: 0,
                    provided,
                    saved: Frame::new(),
                });
                let mut f0 = Frame::new();
                f0.insert(prog.table.this_name, Value::Ref(st.this_ref.clone()));
                st.saved = std::mem::replace(frame, f0);
                ctrl.push(Work::Kont(Kont::AllocInit(st)));
                ctrl.push(Work::Eval(first));
            }
        }
        Ok(())
    }

    /// Writes the provided record values and produces the new reference.
    fn finalize_alloc(
        &mut self,
        class: ClassId,
        loc: Loc,
        mut masks: BTreeSet<Name>,
        provided: Vec<(Name, Value)>,
    ) -> Value {
        for (fname, v) in provided {
            let copy = self.prog.sharing.fclass(class, fname);
            self.heap.set(loc, copy, None, fname, v);
            masks.remove(&fname);
        }
        self.stats.mask_allocs += 1;
        Value::Ref(RefVal {
            loc,
            view: class,
            masks: Arc::new(masks),
        })
    }

    // -------------------------------------------------------------- calls

    /// R-CALL with view-based dispatch: `mbody(S, m)` looks up the body
    /// starting from the receiver's *view*, not its allocation class.
    ///
    /// The body runs on a fresh explicit control stack; the depth counter
    /// is restored on error so the machine stays reusable.
    pub fn call(&mut self, r: RefVal, m: Name, args: Vec<Value>) -> Result<Value, RtError> {
        let entry_depth = self.depth;
        let mut frame = Frame::new();
        let mut ctrl: Vec<Work<'p>> = Vec::new();
        let mut vals: Vec<Value> = Vec::new();
        let res = self
            .begin_call(r, m, args, &mut frame, &mut ctrl)
            .and_then(|()| self.exec_loop(&mut frame, &mut ctrl, &mut vals));
        self.sync_gc_stats();
        if res.is_err() {
            self.depth = entry_depth;
        }
        res
    }

    /// Dispatches a method call on the explicit stack: pushes the return
    /// continuation (holding the caller's frame) and the body.
    fn begin_call<'a>(
        &mut self,
        r: RefVal,
        m: Name,
        args: Vec<Value>,
        frame: &mut Frame,
        ctrl: &mut Vec<Work<'a>>,
    ) -> Result<(), RtError>
    where
        'p: 'a,
    {
        self.stats.calls += 1;
        if self.depth >= self.max_depth {
            return Err(RtError::DepthExceeded(self.max_depth));
        }
        let prog = self.prog;
        let Some((_owner, method)) = prog.mbody(r.view, m) else {
            return Err(RtError::TypeMismatch(format!(
                "no method `{}` on view `{}`",
                self.prog.table.name_str(m),
                self.prog.table.class_name(r.view)
            )));
        };
        if method.params.len() != args.len() {
            return Err(RtError::TypeMismatch("arity".into()));
        }
        let mut callee = Frame::new();
        callee.insert(prog.table.this_name, Value::Ref(r));
        for (x, v) in method.params.iter().zip(args) {
            callee.insert(*x, v);
        }
        self.depth += 1;
        ctrl.push(Work::Kont(Kont::Return {
            saved: std::mem::replace(frame, callee),
        }));
        ctrl.push(Work::Eval(&method.body));
        Ok(())
    }

    // -------------------------------------------------------------- views

    /// The `view` function (§4.15): re-views `r` at target type `target`.
    /// The tree-walker materialises one shared mask set per transition
    /// (the VM interns them instead — see `Stats::mask_allocs`).
    pub fn apply_view(
        &mut self,
        r: RefVal,
        target: &Ty,
        masks: BTreeSet<Name>,
    ) -> Result<RefVal, RtError> {
        self.stats.mask_allocs += 1;
        let masks: MaskSet = Arc::new(masks);
        // Case 1: current view already compatible.
        if self.view_subtype(r.view, target) && r.masks.is_subset(&masks) {
            return Ok(RefVal {
                loc: r.loc,
                view: r.view,
                masks,
            });
        }
        // Case 2: the unique shared partner below the target.
        let partners = self.prog.sharing.partners(r.view);
        let mut candidates = Vec::new();
        for p in partners {
            if p != r.view && self.view_subtype(p, target) {
                candidates.push(p);
            }
        }
        match candidates.len() {
            1 => Ok(RefVal {
                loc: r.loc,
                view: candidates[0],
                masks,
            }),
            0 => Err(RtError::ViewFailed(format!(
                "`{}` has no shared view under `{}`",
                self.prog.table.class_name(r.view),
                self.prog.table.show_ty(target)
            ))),
            _ => Err(RtError::ViewFailed(format!(
                "ambiguous view change from `{}` to `{}`",
                self.prog.table.class_name(r.view),
                self.prog.table.show_ty(target)
            ))),
        }
    }

    /// Whether view class `view` satisfies `view! ≤ target` (memoised).
    pub fn view_subtype(&mut self, view: ClassId, target: &Ty) -> bool {
        if let Some(&b) = self.sub_memo.get(&(view, target.clone())) {
            return b;
        }
        let env = TypeEnv::new();
        let judge = Judge::new(&self.prog.table, &env);
        let b = judge.sub_pure(&Ty::Class(view).exact(), target);
        self.sub_memo.insert((view, target.clone()), b);
        b
    }

    fn expect_ref(&self, v: Value) -> Result<RefVal, RtError> {
        match v {
            Value::Ref(r) => Ok(r),
            other => Err(RtError::TypeMismatch(format!(
                "expected an object, got `{other}`"
            ))),
        }
    }

    fn binop(&mut self, op: BinOp, l: Value, r: Value) -> Result<Value, RtError> {
        use BinOp::*;
        Ok(match (op, &l, &r) {
            (Add, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_add(*b)),
            (Sub, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_sub(*b)),
            (Mul, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_mul(*b)),
            (Div, Value::Int(a), Value::Int(b)) => {
                if *b == 0 {
                    return Err(RtError::DivisionByZero);
                }
                Value::Int(a.wrapping_div(*b))
            }
            (Rem, Value::Int(a), Value::Int(b)) => {
                if *b == 0 {
                    return Err(RtError::DivisionByZero);
                }
                Value::Int(a.wrapping_rem(*b))
            }
            (Add, Value::Str(a), Value::Str(b)) => {
                Value::Str(Arc::from(format!("{a}{b}").as_str()))
            }
            (Lt, Value::Int(a), Value::Int(b)) => Value::Bool(a < b),
            (Le, Value::Int(a), Value::Int(b)) => Value::Bool(a <= b),
            (Gt, Value::Int(a), Value::Int(b)) => Value::Bool(a > b),
            (Ge, Value::Int(a), Value::Int(b)) => Value::Bool(a >= b),
            (Eq, a, b) => Value::Bool(self.value_eq(a, b)?),
            (Ne, a, b) => Value::Bool(!self.value_eq(a, b)?),
            _ => return Err(type_err("bad binary operands")),
        })
    }

    /// `==`: primitive equality, or *location* equality on references —
    /// object identity is independent of the view (§2.3).
    fn value_eq(&self, l: &Value, r: &Value) -> Result<bool, RtError> {
        Ok(match (l, r) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Unit, Value::Unit) => true,
            (Value::Ref(a), Value::Ref(b)) => a.loc == b.loc,
            _ => return Err(type_err("`==` on mismatched values")),
        })
    }

    // --------------------------------------------------- CONFIG invariant

    /// Checks the CONFIG well-formedness invariant (Fig. 19): every stored
    /// object value must be re-viewable at its field's interpreted type
    /// for every view whose `fclass` owns that copy.
    ///
    /// Returns descriptions of violations (empty = well-formed). Property
    /// tests assert emptiness after every run.
    pub fn check_config(&mut self) -> Vec<String> {
        let mut bad = Vec::new();
        let entries: Vec<((Loc, ClassId, Name), Value)> = self
            .heap
            .iter()
            .flat_map(|(loc, obj)| {
                obj.open_cells()
                    .map(move |(&(copy, f), v)| ((loc, copy, f), v.clone()))
            })
            .collect();
        for ((loc, copy, f), v) in entries {
            let Value::Ref(inner) = v else { continue };
            // Every partner view that reads this copy must be able to
            // re-view the stored value.
            for view in self.prog.sharing.partners(copy) {
                if self.prog.sharing.fclass(view, f) != copy {
                    continue;
                }
                let Ok((ty, masks)) = self.field_view_type(view, f) else {
                    continue;
                };
                if self.apply_view(inner.clone(), &ty, masks).is_err() {
                    bad.push(format!(
                        "heap[{loc}, {}, {}] holds `{}` not viewable at `{}`",
                        self.prog.table.class_name(copy),
                        self.prog.table.name_str(f),
                        self.prog.table.class_name(inner.view),
                        self.prog.table.show_ty(&ty)
                    ));
                }
            }
        }
        bad
    }

    /// Number of live heap objects (for tests).
    pub fn heap_size(&self) -> usize {
        self.heap.len()
    }

    /// The program being executed.
    pub fn program(&self) -> &'p CheckedProgram {
        self.prog
    }
}

fn type_err(m: &str) -> RtError {
    RtError::TypeMismatch(m.to_string())
}
