//! The evaluator: a big-step interpreter implementing the operational
//! semantics of Fig. 17, instrumented with step counting and an optional
//! CONFIG well-formedness checker (Fig. 19).
//!
//! The heap is keyed by ⟨ℓ, P, f⟩ where `P = fclass(view, f)` selects the
//! copy of a possibly duplicated field (§4.15). Implicit view changes are
//! *lazy*: a field read re-views the stored value against the field type
//! interpreted in the reader's view (R-GET).

use crate::error::RtError;
use crate::typeeval;
use crate::value::{Loc, MaskSet, RefVal, Value};
use jns_syntax::{BinOp, UnOp};
use jns_types::{CExpr, CheckedProgram, ClassId, Judge, Name, Ty, TypeEnv};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Execution statistics (used by tests and benches).
#[derive(Debug, Default, Clone, Copy)]
pub struct Stats {
    /// Evaluation steps (one per expression node evaluated).
    pub steps: u64,
    /// Objects allocated.
    pub allocs: u64,
    /// Explicit view-change operations executed.
    pub views_explicit: u64,
    /// Implicit (lazy) view changes triggered by field reads.
    pub views_implicit: u64,
    /// Method calls dispatched.
    pub calls: u64,
    /// Inline-cache hits across field-read, field-write, and call sites
    /// (VM backend only; the tree-walker has no site caches).
    pub ic_hits: u64,
    /// Inline-cache misses (resolutions through the global tables).
    pub ic_misses: u64,
    /// Fresh mask-set materialisations. The VM interns view-transition
    /// mask sets, so repeated transitions reuse one `Arc` and this stays
    /// far below `views_explicit + views_implicit`; the tree-walker pays
    /// one per transition.
    pub mask_allocs: u64,
}

impl Stats {
    /// Accumulates `other` into `self` (used by `jns-serve` to aggregate
    /// per-request statistics across a worker pool).
    pub fn merge(&mut self, other: &Stats) {
        self.steps += other.steps;
        self.allocs += other.allocs;
        self.views_explicit += other.views_explicit;
        self.views_implicit += other.views_implicit;
        self.calls += other.calls;
        self.ic_hits += other.ic_hits;
        self.ic_misses += other.ic_misses;
        self.mask_allocs += other.mask_allocs;
    }

    /// The statistics that must be identical for every execution of the
    /// same program, regardless of backend warm-up state (inline-cache
    /// and interning counters depend on how warm a reused VM is, so they
    /// are excluded).
    pub fn semantic(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.steps,
            self.allocs,
            self.views_explicit,
            self.views_implicit,
            self.calls,
        )
    }
}

/// The abstract machine.
#[derive(Debug)]
pub struct Machine<'p> {
    prog: &'p CheckedProgram,
    heap: HashMap<(Loc, ClassId, Name), Value>,
    next_loc: Loc,
    /// Captured `print` output.
    pub output: Vec<String>,
    /// Execution statistics.
    pub stats: Stats,
    fuel: Option<u64>,
    depth: u32,
    sub_memo: HashMap<(ClassId, Ty), bool>,
}

type Frame = HashMap<Name, Value>;

const MAX_DEPTH: u32 = 2_000;

impl<'p> Machine<'p> {
    /// Creates a machine for a checked program.
    pub fn new(prog: &'p CheckedProgram) -> Self {
        Machine {
            prog,
            heap: HashMap::new(),
            next_loc: 0,
            output: Vec::new(),
            stats: Stats::default(),
            fuel: None,
            depth: 0,
            sub_memo: HashMap::new(),
        }
    }

    /// Limits execution to `fuel` steps (for property tests).
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = Some(fuel);
        self
    }

    /// Runs the program's `main` expression.
    ///
    /// # Errors
    ///
    /// See [`RtError`]; for well-typed programs only the benign variants
    /// can occur.
    pub fn run(&mut self) -> Result<Value, RtError> {
        let main = self
            .prog
            .main
            .as_ref()
            .ok_or_else(|| RtError::BadType("program has no main".into()))?
            .clone();
        let mut frame = Frame::new();
        self.eval(&mut frame, &main)
    }

    /// Evaluates an arbitrary expression in an empty frame (for tests).
    pub fn eval_expr(&mut self, e: &CExpr) -> Result<Value, RtError> {
        let mut frame = Frame::new();
        self.eval(&mut frame, e)
    }

    fn tick(&mut self) -> Result<(), RtError> {
        self.stats.steps += 1;
        if let Some(f) = self.fuel {
            if self.stats.steps > f {
                return Err(RtError::OutOfFuel);
            }
        }
        Ok(())
    }

    fn eval(&mut self, frame: &mut Frame, e: &CExpr) -> Result<Value, RtError> {
        self.tick()?;
        match e {
            CExpr::Int(n) => Ok(Value::Int(*n)),
            CExpr::Bool(b) => Ok(Value::Bool(*b)),
            CExpr::Str(s) => Ok(Value::Str(Arc::from(s.as_str()))),
            CExpr::Unit => Ok(Value::Unit),
            CExpr::Var(x) => frame
                .get(x)
                .cloned()
                .ok_or_else(|| RtError::UnboundVariable(self.prog.table.name_str(*x))),
            CExpr::GetField(recv, f) => {
                let v = self.eval(frame, recv)?;
                let r = self.expect_ref(v)?;
                self.get_field(&r, *f)
            }
            CExpr::SetField(x, f, value) => {
                let v = self.eval(frame, value)?;
                let Some(Value::Ref(r)) = frame.get(x).cloned() else {
                    return Err(RtError::UnboundVariable(self.prog.table.name_str(*x)));
                };
                let copy = self.prog.sharing.fclass(r.view, *f);
                self.heap.insert((r.loc, copy, *f), v.clone());
                // grant(σ, x.f): the stack binding loses the mask (R-SET).
                if let Some(Value::Ref(r2)) = frame.get_mut(x) {
                    if r2.grant(f) {
                        self.stats.mask_allocs += 1;
                    }
                }
                Ok(v)
            }
            CExpr::Call(recv, m, args) => {
                let v = self.eval(frame, recv)?;
                let r = self.expect_ref(v)?;
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(frame, a)?);
                }
                self.call(r, *m, argv)
            }
            CExpr::New(ty, inits) => {
                let class = typeeval::eval_type_class(self, frame, ty)?;
                let mut provided = Vec::with_capacity(inits.len());
                for (f, e) in inits {
                    provided.push((*f, self.eval(frame, e)?));
                }
                self.alloc(class, provided)
            }
            CExpr::View(ty, inner) => {
                let v = self.eval(frame, inner)?;
                let r = self.expect_ref(v)?;
                self.stats.views_explicit += 1;
                let (target, masks) = typeeval::eval_type(self, frame, &ty.ty)?;
                let mut masks = masks;
                masks.extend(ty.masks.iter().copied());
                self.apply_view(r, &target, masks).map(Value::Ref)
            }
            CExpr::Cast(ty, inner) => {
                let v = self.eval(frame, inner)?;
                match v {
                    Value::Ref(r) => {
                        let (target, _masks) = typeeval::eval_type(self, frame, &ty.ty)?;
                        if self.view_subtype(r.view, &target) {
                            Ok(Value::Ref(r))
                        } else {
                            Err(RtError::CastFailed(format!(
                                "view `{}` is not a `{}`",
                                self.prog.table.class_name(r.view),
                                self.prog.table.show_ty(&target)
                            )))
                        }
                    }
                    prim => Ok(prim), // primitive casts are no-ops
                }
            }
            CExpr::Bin(op, l, r) => {
                // Short-circuit first.
                match op {
                    BinOp::And => {
                        let lv = self.eval(frame, l)?;
                        if !lv.as_bool().ok_or_else(|| type_err("&& needs bool"))? {
                            return Ok(Value::Bool(false));
                        }
                        return self.eval(frame, r);
                    }
                    BinOp::Or => {
                        let lv = self.eval(frame, l)?;
                        if lv.as_bool().ok_or_else(|| type_err("|| needs bool"))? {
                            return Ok(Value::Bool(true));
                        }
                        return self.eval(frame, r);
                    }
                    _ => {}
                }
                let lv = self.eval(frame, l)?;
                let rv = self.eval(frame, r)?;
                self.binop(*op, lv, rv)
            }
            CExpr::Un(op, inner) => {
                let v = self.eval(frame, inner)?;
                match (op, v) {
                    (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
                    (UnOp::Neg, Value::Int(n)) => Ok(Value::Int(n.wrapping_neg())),
                    _ => Err(type_err("bad unary operand")),
                }
            }
            CExpr::If(c, t, e) => {
                let cv = self.eval(frame, c)?;
                if cv.as_bool().ok_or_else(|| type_err("if needs bool"))? {
                    self.eval(frame, t)
                } else {
                    self.eval(frame, e)
                }
            }
            CExpr::While(c, body) => {
                loop {
                    self.tick()?;
                    let cv = self.eval(frame, c)?;
                    if !cv.as_bool().ok_or_else(|| type_err("while needs bool"))? {
                        break;
                    }
                    self.eval(frame, body)?;
                }
                Ok(Value::Unit)
            }
            CExpr::Let(x, init, body) => {
                let v = self.eval(frame, init)?;
                let old = frame.insert(*x, v);
                let r = self.eval(frame, body);
                match old {
                    Some(o) => {
                        frame.insert(*x, o);
                    }
                    None => {
                        frame.remove(x);
                    }
                }
                r
            }
            CExpr::Seq(parts) => {
                let mut last = Value::Unit;
                for p in parts {
                    last = self.eval(frame, p)?;
                }
                Ok(last)
            }
            CExpr::Print(inner) => {
                let v = self.eval(frame, inner)?;
                let s = self.display_value(&v);
                self.output.push(s);
                Ok(Value::Unit)
            }
        }
    }

    /// Formats a value the way `print` shows it.
    pub fn display_value(&self, v: &Value) -> String {
        match v {
            Value::Ref(r) => format!("{}@{}", self.prog.table.class_name(r.view), r.loc),
            other => other.to_string(),
        }
    }

    // -------------------------------------------------------------- fields

    /// R-GET: reads `r.f` through `r`'s view, applying the lazy implicit
    /// view change to the result.
    pub fn get_field(&mut self, r: &RefVal, f: Name) -> Result<Value, RtError> {
        let copy = self.prog.sharing.fclass(r.view, f);
        let stored = match self.heap.get(&(r.loc, copy, f)) {
            Some(v) => v.clone(),
            None => {
                // §3.3 forwarding: read the other family's copy and re-view.
                let mut found = None;
                for alt in self.prog.sharing.forwards(r.view, f).to_vec() {
                    if let Some(v) = self.heap.get(&(r.loc, alt, f)) {
                        found = Some(v.clone());
                        break;
                    }
                }
                found.ok_or_else(|| {
                    RtError::UninitialisedField(format!(
                        "{}.{} (view {})",
                        r.loc,
                        self.prog.table.name_str(f),
                        self.prog.table.class_name(r.view)
                    ))
                })?
            }
        };
        match stored {
            Value::Ref(inner) => {
                // ftype(∅, P!\f0, f) evaluated in the current view.
                let ft = self.field_view_type(r.view, f)?;
                let (ty, masks) = ft;
                self.stats.views_implicit += 1;
                self.apply_view(inner, &ty, masks).map(Value::Ref)
            }
            prim => Ok(prim),
        }
    }

    /// The field type of `f` interpreted in view `view`, as a runtime type.
    fn field_view_type(&self, view: ClassId, f: Name) -> Result<(Ty, BTreeSet<Name>), RtError> {
        let env = TypeEnv::new();
        let judge = Judge::new(&self.prog.table, &env);
        let recv = Ty::Class(view).exact().unmasked();
        let ft = judge.ftype(&recv, f).map_err(RtError::BadType)?;
        Ok((judge.canon(&ft.ty), ft.masks))
    }

    // -------------------------------------------------------------- alloc

    /// R-ALLOC: allocates an `S` instance, runs declared field
    /// initialisers (most-base first), then the provided record values.
    pub fn alloc(
        &mut self,
        class: ClassId,
        provided: Vec<(Name, Value)>,
    ) -> Result<Value, RtError> {
        self.stats.allocs += 1;
        let loc = self.next_loc;
        self.next_loc += 1;
        let all_fields: Vec<(ClassId, jns_types::FieldInfo)> = self.prog.table.fields_of(class);
        let mut masks: BTreeSet<Name> = all_fields.iter().map(|(_, fi)| fi.name).collect();
        // `this` during initialisation: all fields masked (F-OK).
        self.stats.mask_allocs += 1;
        let this_ref = RefVal {
            loc,
            view: class,
            masks: Arc::new(masks.clone()),
        };
        // Declared initialisers, base-most classes first.
        for (owner, fi) in all_fields.iter().rev() {
            if !fi.has_init {
                continue;
            }
            let Some(init) = self.prog.field_inits.get(&(*owner, fi.name)).cloned() else {
                continue;
            };
            let mut f = Frame::new();
            f.insert(self.prog.table.this_name, Value::Ref(this_ref.clone()));
            let v = self.eval(&mut f, &init)?;
            let copy = self.prog.sharing.fclass(class, fi.name);
            self.heap.insert((loc, copy, fi.name), v);
            masks.remove(&fi.name);
        }
        for (fname, v) in provided {
            let copy = self.prog.sharing.fclass(class, fname);
            self.heap.insert((loc, copy, fname), v);
            masks.remove(&fname);
        }
        self.stats.mask_allocs += 1;
        Ok(Value::Ref(RefVal {
            loc,
            view: class,
            masks: Arc::new(masks),
        }))
    }

    // -------------------------------------------------------------- calls

    /// R-CALL with view-based dispatch: `mbody(S, m)` looks up the body
    /// starting from the receiver's *view*, not its allocation class.
    pub fn call(&mut self, r: RefVal, m: Name, args: Vec<Value>) -> Result<Value, RtError> {
        self.stats.calls += 1;
        if self.depth >= MAX_DEPTH {
            return Err(RtError::StackOverflow);
        }
        let Some((owner, method)) = self.prog.mbody(r.view, m) else {
            return Err(RtError::TypeMismatch(format!(
                "no method `{}` on view `{}`",
                self.prog.table.name_str(m),
                self.prog.table.class_name(r.view)
            )));
        };
        let params = method.params.clone();
        let body = method.body.clone();
        let _ = owner;
        if params.len() != args.len() {
            return Err(RtError::TypeMismatch("arity".into()));
        }
        let mut frame = Frame::new();
        frame.insert(self.prog.table.this_name, Value::Ref(r));
        for (x, v) in params.into_iter().zip(args) {
            frame.insert(x, v);
        }
        self.depth += 1;
        let out = self.eval(&mut frame, &body);
        self.depth -= 1;
        out
    }

    // -------------------------------------------------------------- views

    /// The `view` function (§4.15): re-views `r` at target type `target`.
    /// The tree-walker materialises one shared mask set per transition
    /// (the VM interns them instead — see `Stats::mask_allocs`).
    pub fn apply_view(
        &mut self,
        r: RefVal,
        target: &Ty,
        masks: BTreeSet<Name>,
    ) -> Result<RefVal, RtError> {
        self.stats.mask_allocs += 1;
        let masks: MaskSet = Arc::new(masks);
        // Case 1: current view already compatible.
        if self.view_subtype(r.view, target) && r.masks.is_subset(&masks) {
            return Ok(RefVal {
                loc: r.loc,
                view: r.view,
                masks,
            });
        }
        // Case 2: the unique shared partner below the target.
        let partners = self.prog.sharing.partners(r.view);
        let mut candidates = Vec::new();
        for p in partners {
            if p != r.view && self.view_subtype(p, target) {
                candidates.push(p);
            }
        }
        match candidates.len() {
            1 => Ok(RefVal {
                loc: r.loc,
                view: candidates[0],
                masks,
            }),
            0 => Err(RtError::ViewFailed(format!(
                "`{}` has no shared view under `{}`",
                self.prog.table.class_name(r.view),
                self.prog.table.show_ty(target)
            ))),
            _ => Err(RtError::ViewFailed(format!(
                "ambiguous view change from `{}` to `{}`",
                self.prog.table.class_name(r.view),
                self.prog.table.show_ty(target)
            ))),
        }
    }

    /// Whether view class `view` satisfies `view! ≤ target` (memoised).
    pub fn view_subtype(&mut self, view: ClassId, target: &Ty) -> bool {
        if let Some(&b) = self.sub_memo.get(&(view, target.clone())) {
            return b;
        }
        let env = TypeEnv::new();
        let judge = Judge::new(&self.prog.table, &env);
        let b = judge.sub_pure(&Ty::Class(view).exact(), target);
        self.sub_memo.insert((view, target.clone()), b);
        b
    }

    fn expect_ref(&self, v: Value) -> Result<RefVal, RtError> {
        match v {
            Value::Ref(r) => Ok(r),
            other => Err(RtError::TypeMismatch(format!(
                "expected an object, got `{other}`"
            ))),
        }
    }

    fn binop(&mut self, op: BinOp, l: Value, r: Value) -> Result<Value, RtError> {
        use BinOp::*;
        Ok(match (op, &l, &r) {
            (Add, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_add(*b)),
            (Sub, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_sub(*b)),
            (Mul, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_mul(*b)),
            (Div, Value::Int(a), Value::Int(b)) => {
                if *b == 0 {
                    return Err(RtError::DivisionByZero);
                }
                Value::Int(a.wrapping_div(*b))
            }
            (Rem, Value::Int(a), Value::Int(b)) => {
                if *b == 0 {
                    return Err(RtError::DivisionByZero);
                }
                Value::Int(a.wrapping_rem(*b))
            }
            (Add, Value::Str(a), Value::Str(b)) => {
                Value::Str(Arc::from(format!("{a}{b}").as_str()))
            }
            (Lt, Value::Int(a), Value::Int(b)) => Value::Bool(a < b),
            (Le, Value::Int(a), Value::Int(b)) => Value::Bool(a <= b),
            (Gt, Value::Int(a), Value::Int(b)) => Value::Bool(a > b),
            (Ge, Value::Int(a), Value::Int(b)) => Value::Bool(a >= b),
            (Eq, a, b) => Value::Bool(self.value_eq(a, b)?),
            (Ne, a, b) => Value::Bool(!self.value_eq(a, b)?),
            _ => return Err(type_err("bad binary operands")),
        })
    }

    /// `==`: primitive equality, or *location* equality on references —
    /// object identity is independent of the view (§2.3).
    fn value_eq(&self, l: &Value, r: &Value) -> Result<bool, RtError> {
        Ok(match (l, r) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Unit, Value::Unit) => true,
            (Value::Ref(a), Value::Ref(b)) => a.loc == b.loc,
            _ => return Err(type_err("`==` on mismatched values")),
        })
    }

    // --------------------------------------------------- CONFIG invariant

    /// Checks the CONFIG well-formedness invariant (Fig. 19): every stored
    /// object value must be re-viewable at its field's interpreted type
    /// for every view whose `fclass` owns that copy.
    ///
    /// Returns descriptions of violations (empty = well-formed). Property
    /// tests assert emptiness after every run.
    pub fn check_config(&mut self) -> Vec<String> {
        let mut bad = Vec::new();
        let entries: Vec<((Loc, ClassId, Name), Value)> =
            self.heap.iter().map(|(k, v)| (*k, v.clone())).collect();
        for ((loc, copy, f), v) in entries {
            let Value::Ref(inner) = v else { continue };
            // Every partner view that reads this copy must be able to
            // re-view the stored value.
            for view in self.prog.sharing.partners(copy) {
                if self.prog.sharing.fclass(view, f) != copy {
                    continue;
                }
                let Ok((ty, masks)) = self.field_view_type(view, f) else {
                    continue;
                };
                if self.apply_view(inner.clone(), &ty, masks).is_err() {
                    bad.push(format!(
                        "heap[{loc}, {}, {}] holds `{}` not viewable at `{}`",
                        self.prog.table.class_name(copy),
                        self.prog.table.name_str(f),
                        self.prog.table.class_name(inner.view),
                        self.prog.table.show_ty(&ty)
                    ));
                }
            }
        }
        bad
    }

    /// Number of live heap cells (for tests).
    pub fn heap_size(&self) -> usize {
        self.heap.len()
    }

    /// The program being executed.
    pub fn program(&self) -> &'p CheckedProgram {
        self.prog
    }
}

fn type_err(m: &str) -> RtError {
    RtError::TypeMismatch(m.to_string())
}
