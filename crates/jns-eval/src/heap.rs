//! The shared heap: one store of objects for **both** execution backends,
//! with an optional mark-compact tracing collector.
//!
//! The paper's semantics treat the heap as a single store of
//! ⟨ℓ, fclass, f⟩ cells (§3, §6); this module is that store. A heap
//! [`Obj`] carries two kinds of cells behind one `get`/`set` surface:
//!
//! - **Layout slots** (`slots`): the VM's union field layout per sharing
//!   group (§6.2) — every partner view reads and writes fixed indices.
//! - **Open cells** (`overflow`): a map keyed by `(fclass-owner, field)` —
//!   the tree-walking interpreter's ⟨ℓ, P, f⟩ representation (it allocates
//!   with zero slots and keeps every field here), and the VM's spill
//!   storage for writes outside the static layout.
//!
//! A backend chooses per allocation how many slots the object gets; the
//! rest of the surface (`get`, `set`, `len`, [`Heap::reset`],
//! [`Heap::collect`]) is identical, so `jns-serve` workers, the CLI, and
//! the test suites see one accounting path regardless of engine.
//!
//! # Garbage collection
//!
//! [`Heap::collect`] is a stop-the-world **mark-compact** collector:
//!
//! 1. **Mark.** The caller enumerates its roots — every live [`RefVal`]
//!    reachable from its explicit control/value/frame stacks (both
//!    backends run on heap-allocated stacks since the CEK refactor, so
//!    roots are precisely enumerable). Marking traces object cells
//!    transitively.
//! 2. **Compact.** Live objects slide down in allocation order; dead ones
//!    are dropped in place.
//! 3. **Forward.** Every `Loc` — in heap cells and, via the same root
//!    callback, in the caller's stacks — is rewritten through the
//!    forwarding table. Aliased references to one object are rewritten to
//!    the *same* new location, so reference identity (`==` is location
//!    equality, views share ℓ) survives compaction.
//!
//! Collection triggers when the live-object count reaches the configured
//! [`Heap::set_limit`] threshold (`--heap-limit` on the CLI); with no
//! limit the collector never runs and behaviour is byte-identical to the
//! pre-GC heaps.

use crate::value::{Loc, RefVal, Value};
use jns_types::{ClassId, Name};
use std::collections::HashMap;

/// A heap object: a fixed slot vector (union layout) plus open cells.
#[derive(Debug, Default)]
pub struct Obj {
    /// Union-layout slots (empty for the interpreter's map-style objects).
    slots: Box<[Option<Value>]>,
    /// Open ⟨fclass-owner, field⟩ cells. Boxed so the slot-only common
    /// case costs one pointer per object, not an inline map.
    #[allow(clippy::box_collection)]
    overflow: Option<Box<HashMap<(ClassId, Name), Value>>>,
}

impl Obj {
    /// Reads one cell: by slot when the layout has one, by key otherwise.
    pub fn read(&self, copy: ClassId, slot: Option<u32>, f: Name) -> Option<Value> {
        match slot {
            Some(s) => self.slots.get(s as usize).cloned().flatten(),
            None => self
                .overflow
                .as_ref()
                .and_then(|m| m.get(&(copy, f)).cloned()),
        }
    }

    /// Writes one cell (spilling to the open map when the slot is absent
    /// or out of the static layout).
    pub fn write(&mut self, copy: ClassId, slot: Option<u32>, f: Name, v: Value) {
        match slot {
            Some(s) if (s as usize) < self.slots.len() => self.slots[s as usize] = Some(v),
            _ => {
                self.overflow
                    .get_or_insert_with(Default::default)
                    .insert((copy, f), v);
            }
        }
    }

    /// The open ⟨fclass-owner, field⟩ cells (the interpreter's CONFIG
    /// checker walks these; slot-backed cells have no symbolic key).
    pub fn open_cells(&self) -> impl Iterator<Item = (&(ClassId, Name), &Value)> {
        self.overflow.iter().flat_map(|m| m.iter())
    }

    /// Every stored value (slots and open cells), for tracing.
    fn values(&self) -> impl Iterator<Item = &Value> {
        self.slots
            .iter()
            .filter_map(|v| v.as_ref())
            .chain(self.overflow.iter().flat_map(|m| m.values()))
    }

    /// Every stored value, mutably (for `Loc` forwarding).
    fn values_mut(&mut self) -> impl Iterator<Item = &mut Value> {
        self.slots
            .iter_mut()
            .filter_map(|v| v.as_mut())
            .chain(self.overflow.iter_mut().flat_map(|m| m.values_mut()))
    }
}

/// Collector counters (cumulative since creation or the last
/// [`Heap::reset`]); mirrored into `Stats` by the backends.
#[derive(Debug, Default, Clone, Copy)]
pub struct GcStats {
    /// Completed collections.
    pub runs: u64,
    /// Objects reclaimed by collections (not counting whole-heap resets).
    pub reclaimed: u64,
    /// High-water mark of live objects.
    pub peak_live: u64,
}

/// The shared object store. See the module docs for the design.
#[derive(Debug, Default)]
pub struct Heap {
    objs: Vec<Obj>,
    limit: Option<usize>,
    /// The adaptive trigger: collection fires when `objs.len()` reaches
    /// this (meaningful only while `limit` is set). Starts at `limit`
    /// and returns to it whenever a collection's survivors fit strictly
    /// under the limit — so `peak_live ≤ limit` holds for any workload
    /// whose live set does. Once survivors fill the limit it grows to
    /// twice the live size (classic heap-growth policy), so an
    /// almost-all-live heap does not re-collect on every allocation.
    next_gc: usize,
    gc: GcStats,
}

impl Heap {
    /// An empty heap with no collection threshold (GC disabled).
    pub fn new() -> Self {
        Heap::default()
    }

    /// Sets the live-heap threshold: once this many objects are live, the
    /// next allocation first runs a collection. `None` disables GC.
    pub fn set_limit(&mut self, limit: Option<usize>) {
        self.limit = limit.map(|l| l.max(1));
        self.next_gc = self.limit.unwrap_or(0);
    }

    /// The configured live-heap threshold.
    pub fn limit(&self) -> Option<usize> {
        self.limit
    }

    /// Allocates an object with `n_slots` layout slots, returning its ℓ.
    pub fn alloc(&mut self, n_slots: u32) -> Loc {
        let loc = self.objs.len() as Loc;
        self.objs.push(Obj {
            slots: vec![None; n_slots as usize].into_boxed_slice(),
            overflow: None,
        });
        self.gc.peak_live = self.gc.peak_live.max(self.objs.len() as u64);
        loc
    }

    /// The object at `loc`, if it exists.
    pub fn obj(&self, loc: Loc) -> Option<&Obj> {
        self.objs.get(loc as usize)
    }

    /// Reads cell ⟨`loc`, `copy`, `f`⟩ (via `slot` when laid out).
    pub fn get(&self, loc: Loc, copy: ClassId, slot: Option<u32>, f: Name) -> Option<Value> {
        self.objs.get(loc as usize)?.read(copy, slot, f)
    }

    /// Writes cell ⟨`loc`, `copy`, `f`⟩; silently ignores a dangling `loc`
    /// (unreachable through the typed surface).
    pub fn set(&mut self, loc: Loc, copy: ClassId, slot: Option<u32>, f: Name, v: Value) {
        if let Some(obj) = self.objs.get_mut(loc as usize) {
            obj.write(copy, slot, f, v);
        }
    }

    /// Live objects.
    pub fn len(&self) -> usize {
        self.objs.len()
    }

    /// Whether the heap holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objs.is_empty()
    }

    /// Iterates ⟨ℓ, object⟩ (the CONFIG invariant checker uses this).
    pub fn iter(&self) -> impl Iterator<Item = (Loc, &Obj)> {
        self.objs.iter().enumerate().map(|(i, o)| (i as Loc, o))
    }

    /// Collector counters since creation or the last [`Heap::reset`].
    pub fn gc_stats(&self) -> GcStats {
        self.gc
    }

    /// Whole-heap reclamation (the per-request region reset): drops every
    /// object and zeroes the collector counters, returning how many
    /// objects were reclaimed.
    pub fn reset(&mut self) -> usize {
        let reclaimed = self.objs.len();
        self.objs.clear();
        self.gc = GcStats::default();
        self.next_gc = self.limit.unwrap_or(0);
        reclaimed
    }

    /// Whether the next allocation should first collect.
    pub fn should_collect(&self) -> bool {
        self.limit.is_some() && self.objs.len() >= self.next_gc
    }

    /// Mark-compact collection. `for_each_root` must apply the given
    /// visitor to **every** live [`RefVal`] the caller can reach; it is
    /// called twice — once to mark, once to forward the compacted `Loc`s
    /// back through the roots. Returns the number of objects reclaimed.
    pub fn collect<F>(&mut self, mut for_each_root: F) -> usize
    where
        F: FnMut(&mut dyn FnMut(&mut RefVal)),
    {
        let n = self.objs.len();
        let mut marked = vec![false; n];
        let mut work: Vec<Loc> = Vec::new();
        // Mark phase: roots, then transitive cells.
        for_each_root(&mut |r: &mut RefVal| {
            let i = r.loc as usize;
            if i < n && !marked[i] {
                marked[i] = true;
                work.push(r.loc);
            }
        });
        while let Some(l) = work.pop() {
            // `marked` and `work` are disjoint from `objs`, so the trace
            // borrows the object immutably while it queues children.
            for v in self.objs[l as usize].values() {
                if let Value::Ref(r) = v {
                    let i = r.loc as usize;
                    if i < n && !marked[i] {
                        marked[i] = true;
                        work.push(r.loc);
                    }
                }
            }
        }
        // Forwarding table + sliding compaction (allocation order kept).
        let mut fwd: Vec<Loc> = vec![Loc::MAX; n];
        let mut next: usize = 0;
        for (i, m) in marked.iter().enumerate() {
            if *m {
                fwd[i] = next as Loc;
                if next != i {
                    self.objs.swap(next, i);
                }
                next += 1;
            }
        }
        self.objs.truncate(next);
        // Forward every surviving reference: heap cells, then roots. A
        // dangling ℓ (stale reference held across a reset — the same
        // misuse `Heap::set` silently ignores) stays unchanged, which
        // keeps it out of bounds and therefore still benign, instead of
        // panicking here where the mark pass deliberately skipped it.
        for obj in &mut self.objs {
            for v in obj.values_mut() {
                if let Value::Ref(r) = v {
                    if let Some(&to) = fwd.get(r.loc as usize) {
                        r.loc = to;
                    }
                }
            }
        }
        for_each_root(&mut |r: &mut RefVal| {
            if let Some(&to) = fwd.get(r.loc as usize) {
                r.loc = to;
            }
        });
        let reclaimed = n - next;
        self.gc.runs += 1;
        self.gc.reclaimed += reclaimed as u64;
        // Re-arm the trigger: back at the limit while the survivors fit
        // strictly under it (so `peak_live` stays bounded by the limit),
        // doubling the live size once they fill it (so an all-live heap
        // completes instead of collecting on every allocation).
        if let Some(l) = self.limit {
            self.next_gc = if next >= l { 2 * next } else { l };
        }
        reclaimed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::MaskSet;
    use std::collections::BTreeSet;
    use std::sync::Arc;

    fn no_masks() -> MaskSet {
        Arc::new(BTreeSet::new())
    }

    fn rv(loc: Loc) -> RefVal {
        RefVal {
            loc,
            view: ClassId::ROOT,
            masks: no_masks(),
        }
    }

    #[test]
    fn slot_and_open_cells_roundtrip() {
        let mut h = Heap::new();
        let a = h.alloc(2);
        let b = h.alloc(0);
        let f = Name(7);
        h.set(a, ClassId::ROOT, Some(1), f, Value::Int(5));
        h.set(b, ClassId::ROOT, None, f, Value::Int(9));
        assert_eq!(h.get(a, ClassId::ROOT, Some(1), f), Some(Value::Int(5)));
        assert_eq!(h.get(b, ClassId::ROOT, None, f), Some(Value::Int(9)));
        assert_eq!(h.get(a, ClassId::ROOT, Some(0), f), None);
        // A slot index outside the layout spills to the open cells.
        h.set(a, ClassId::ROOT, Some(9), f, Value::Bool(true));
        assert_eq!(h.get(a, ClassId::ROOT, None, f), Some(Value::Bool(true)));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn collect_drops_garbage_and_forwards_roots() {
        let mut h = Heap::new();
        let f = Name(1);
        let _garbage = h.alloc(0);
        let live = h.alloc(0);
        let child = h.alloc(0);
        h.set(live, ClassId::ROOT, None, f, Value::Ref(rv(child)));
        let mut root = rv(live);
        let mut alias = rv(live);
        let reclaimed = h.collect(|visit| {
            visit(&mut root);
            visit(&mut alias);
        });
        assert_eq!(reclaimed, 1);
        assert_eq!(h.len(), 2);
        // Both aliases forward to the same compacted location (identity).
        assert_eq!(root.loc, alias.loc);
        assert_eq!(root.loc, 0);
        // The traced child moved too, and the stored cell was forwarded.
        let inner = h.get(root.loc, ClassId::ROOT, None, f).unwrap();
        assert_eq!(inner, Value::Ref(rv(1)));
        let stats = h.gc_stats();
        assert_eq!((stats.runs, stats.reclaimed), (1, 1));
    }

    #[test]
    fn collect_preserves_allocation_order_of_survivors() {
        let mut h = Heap::new();
        let keep: Vec<Loc> = (0..6).map(|_| h.alloc(0)).collect();
        let mut roots: Vec<RefVal> = keep.iter().step_by(2).map(|&l| rv(l)).collect();
        h.collect(|visit| roots.iter_mut().for_each(&mut *visit));
        let locs: Vec<Loc> = roots.iter().map(|r| r.loc).collect();
        assert_eq!(locs, vec![0, 1, 2], "sliding compaction keeps order");
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn dangling_root_is_tolerated_not_panicked_on() {
        let mut h = Heap::new();
        h.alloc(0);
        let live = h.alloc(0);
        // A stale reference from before a reset: its ℓ is out of bounds.
        let mut stale = rv(9999);
        let mut root = rv(live);
        let reclaimed = h.collect(|visit| {
            visit(&mut stale);
            visit(&mut root);
        });
        assert_eq!(reclaimed, 1);
        assert_eq!(root.loc, 0);
        // The dangling ℓ is left alone — still out of bounds, so every
        // heap entry point keeps degrading to a benign miss.
        assert_eq!(stale.loc, 9999);
        assert!(h.obj(stale.loc).is_none());
    }

    #[test]
    fn trigger_returns_to_limit_while_live_set_fits_under_it() {
        let mut h = Heap::new();
        h.set_limit(Some(10));
        let mut roots: Vec<RefVal> = (0..7).map(|_| rv(h.alloc(0))).collect();
        for _ in 0..3 {
            h.alloc(0);
        }
        assert!(h.should_collect());
        h.collect(|visit| roots.iter_mut().for_each(&mut *visit));
        assert_eq!(h.len(), 7);
        // 7 survivors fit under the limit of 10: the trigger re-arms at
        // the limit, so the heap never grows past it (the bound
        // `peak_live <= limit` that tests/gc.rs asserts).
        for _ in 0..2 {
            h.alloc(0);
            assert!(!h.should_collect());
        }
        h.alloc(0);
        assert!(h.should_collect());
        h.collect(|visit| roots.iter_mut().for_each(&mut *visit));
        assert_eq!(h.gc_stats().peak_live, 10);
        // An all-live heap instead doubles the trigger (no thrash).
        roots.extend((0..3).map(|_| rv(h.alloc(0))));
        assert!(h.should_collect());
        h.collect(|visit| roots.iter_mut().for_each(&mut *visit));
        assert_eq!(h.len(), 10);
        assert!(!h.should_collect());
        for _ in 0..9 {
            h.alloc(0);
            assert!(!h.should_collect());
        }
        h.alloc(0);
        assert!(h.should_collect(), "trigger doubled to 2x the live size");
    }

    #[test]
    fn limit_gates_should_collect_and_reset_clears_counters() {
        let mut h = Heap::new();
        assert!(!h.should_collect());
        h.set_limit(Some(2));
        h.alloc(0);
        assert!(!h.should_collect());
        h.alloc(0);
        assert!(h.should_collect());
        assert_eq!(h.gc_stats().peak_live, 2);
        assert_eq!(h.reset(), 2);
        assert!(h.is_empty());
        assert_eq!(h.gc_stats().peak_live, 0);
        assert_eq!(h.limit(), Some(2), "reset keeps the configured limit");
    }
}
