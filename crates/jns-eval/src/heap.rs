//! The shared heap: one store of objects for **both** execution backends,
//! with an optional mark-compact tracing collector.
//!
//! The paper's semantics treat the heap as a single store of
//! ⟨ℓ, fclass, f⟩ cells (§3, §6); this module is that store. A heap
//! [`Obj`] carries two kinds of cells behind one `get`/`set` surface:
//!
//! - **Layout slots** (`slots`): the VM's union field layout per sharing
//!   group (§6.2) — every partner view reads and writes fixed indices.
//! - **Open cells** (`overflow`): a map keyed by `(fclass-owner, field)` —
//!   the tree-walking interpreter's ⟨ℓ, P, f⟩ representation (it allocates
//!   with zero slots and keeps every field here), and the VM's spill
//!   storage for writes outside the static layout.
//!
//! A backend chooses per allocation how many slots the object gets; the
//! rest of the surface (`get`, `set`, `len`, [`Heap::reset`],
//! [`Heap::collect`]) is identical, so `jns-serve` workers, the CLI, and
//! the test suites see one accounting path regardless of engine.
//!
//! # Garbage collection
//!
//! [`Heap::collect`] is a stop-the-world **mark-compact** collector:
//!
//! 1. **Mark.** The caller enumerates its roots — every live [`RefVal`]
//!    reachable from its explicit control/value/frame stacks (both
//!    backends run on heap-allocated stacks since the CEK refactor, so
//!    roots are precisely enumerable). Marking traces object cells
//!    transitively.
//! 2. **Compact.** Live objects slide down in allocation order; dead ones
//!    are dropped in place.
//! 3. **Forward.** Every `Loc` — in heap cells and, via the same root
//!    callback, in the caller's stacks — is rewritten through the
//!    forwarding table. Aliased references to one object are rewritten to
//!    the *same* new location, so reference identity (`==` is location
//!    equality, views share ℓ) survives compaction.
//!
//! Collection triggers when the live-object count reaches the configured
//! [`Heap::set_limit`] threshold (`--heap-limit` on the CLI); with no
//! limit the collector never runs and behaviour is byte-identical to the
//! pre-GC heaps.
//!
//! # Generational collection
//!
//! With [`Heap::set_nursery`] configured (and a limit set — the nursery
//! subdivides a GC-managed heap, it does not enable GC by itself), the
//! heap becomes **generational**. Allocation already appends, so the
//! *nursery* is simply the vector's tail above the [`Heap::tenured`]
//! boundary; everything below the boundary is the *tenured* region.
//!
//! - **Minor collection** ([`GcKind::Minor`]) runs when the nursery
//!   fills. It marks only nursery objects — from the caller's roots plus
//!   the *remembered set* (below) — then slides survivors down onto the
//!   boundary with the same order-preserving compaction the full
//!   collector uses. Sliding a survivor to the boundary **is** promotion:
//!   the boundary then advances past it, tenured objects never move, and
//!   only nursery ℓs are forwarded (in promoted cells, remembered-set
//!   cells, and the caller's roots).
//! - **Major collection** ([`GcKind::Major`]) is the unchanged full
//!   mark-compact above; it fires on the same live-count trigger as
//!   before (minor collections never grow the heap, so the
//!   `peak_live ≤ limit` bound is preserved verbatim). All of a major's
//!   survivors become tenured.
//!
//! The **write barrier** lives in [`Heap::set`] — the single mutation
//! choke point for both backends: storing a reference to a nursery
//! object into a tenured object records the tenured ℓ in a deduplicated
//! remembered set (insertion-ordered `Vec` + bitmap; card-free, which is
//! fine at this heap's scale). Minor collections scan remembered
//! objects' cells as extra roots, so a tenured object that is the only
//! path to a nursery object keeps it alive without tracing the tenured
//! region. The nursery is emptied by every collection, so the remembered
//! set is cleared afterwards; dead entries merely persist until the next
//! major (ordinary floating garbage).

use crate::value::{Loc, RefVal, Value};
use jns_types::{ClassId, Name};
use std::collections::HashMap;

/// A heap object: a fixed slot vector (union layout) plus open cells.
#[derive(Debug, Default)]
pub struct Obj {
    /// Union-layout slots (empty for the interpreter's map-style objects).
    slots: Box<[Option<Value>]>,
    /// Open ⟨fclass-owner, field⟩ cells. Boxed so the slot-only common
    /// case costs one pointer per object, not an inline map.
    #[allow(clippy::box_collection)]
    overflow: Option<Box<HashMap<(ClassId, Name), Value>>>,
}

impl Obj {
    /// Reads one cell: by slot when the layout has one, by key otherwise.
    pub fn read(&self, copy: ClassId, slot: Option<u32>, f: Name) -> Option<Value> {
        match slot {
            Some(s) => self.slots.get(s as usize).cloned().flatten(),
            None => self
                .overflow
                .as_ref()
                .and_then(|m| m.get(&(copy, f)).cloned()),
        }
    }

    /// Writes one cell (spilling to the open map when the slot is absent
    /// or out of the static layout).
    pub fn write(&mut self, copy: ClassId, slot: Option<u32>, f: Name, v: Value) {
        match slot {
            Some(s) if (s as usize) < self.slots.len() => self.slots[s as usize] = Some(v),
            _ => {
                self.overflow
                    .get_or_insert_with(Default::default)
                    .insert((copy, f), v);
            }
        }
    }

    /// The open ⟨fclass-owner, field⟩ cells (the interpreter's CONFIG
    /// checker walks these; slot-backed cells have no symbolic key).
    pub fn open_cells(&self) -> impl Iterator<Item = (&(ClassId, Name), &Value)> {
        self.overflow.iter().flat_map(|m| m.iter())
    }

    /// Every stored value (slots and open cells), for tracing.
    fn values(&self) -> impl Iterator<Item = &Value> {
        self.slots
            .iter()
            .filter_map(|v| v.as_ref())
            .chain(self.overflow.iter().flat_map(|m| m.values()))
    }

    /// Every stored value, mutably (for `Loc` forwarding).
    fn values_mut(&mut self) -> impl Iterator<Item = &mut Value> {
        self.slots
            .iter_mut()
            .filter_map(|v| v.as_mut())
            .chain(self.overflow.iter_mut().flat_map(|m| m.values_mut()))
    }
}

/// Collector counters (cumulative since creation or the last
/// [`Heap::reset`]); mirrored into `Stats` by the backends.
#[derive(Debug, Default, Clone, Copy)]
pub struct GcStats {
    /// Completed collections (minor and major).
    pub runs: u64,
    /// Objects reclaimed by collections (not counting whole-heap resets).
    pub reclaimed: u64,
    /// High-water mark of live objects.
    pub peak_live: u64,
    /// Completed nursery (minor) collections.
    pub minor_runs: u64,
    /// Completed full (major) collections — every non-generational
    /// collection counts here too.
    pub major_runs: u64,
    /// Nursery objects promoted into the tenured region by minor
    /// collections.
    pub promoted: u64,
    /// Write-barrier hits: stores of a nursery reference into a tenured
    /// object (counted per store, before remembered-set deduplication).
    pub barrier_hits: u64,
}

/// Which collector a trigger asks for (see [`Heap::pending_collection`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcKind {
    /// Nursery-only collection: marks and compacts the region above the
    /// [`Heap::tenured`] boundary, promoting survivors.
    Minor,
    /// Full mark-compact over the whole heap (the pre-generational
    /// collector); all survivors become tenured.
    Major,
}

impl GcKind {
    /// Stable lower-case label (`"minor"` / `"major"`) used in trace
    /// events and reports.
    pub fn label(self) -> &'static str {
        match self {
            GcKind::Minor => "minor",
            GcKind::Major => "major",
        }
    }
}

/// The shared object store. See the module docs for the design.
#[derive(Debug, Default)]
pub struct Heap {
    objs: Vec<Obj>,
    limit: Option<usize>,
    /// The adaptive trigger: collection fires when `objs.len()` reaches
    /// this (meaningful only while `limit` is set). Starts at `limit`
    /// and returns to it whenever a collection's survivors fit strictly
    /// under the limit — so `peak_live ≤ limit` holds for any workload
    /// whose live set does. Once survivors fill the limit it grows to
    /// twice the live size (classic heap-growth policy), so an
    /// almost-all-live heap does not re-collect on every allocation.
    next_gc: usize,
    gc: GcStats,
    /// Nursery capacity: a minor collection fires once this many objects
    /// sit above the tenured boundary. `None` disables the generational
    /// split (every collection is major — the pre-generational
    /// behaviour). Only meaningful while a limit is set.
    nursery: Option<usize>,
    /// The generational boundary: `objs[..tenured]` is the tenured
    /// region (never moved by minor collections), `objs[tenured..]` is
    /// the nursery.
    tenured: usize,
    /// Remembered set: tenured ℓs whose cells may hold nursery
    /// references, in insertion order (scanned as extra minor roots).
    remembered: Vec<Loc>,
    /// Dedup bitmap for `remembered`, grown on demand.
    rem_bits: Vec<bool>,
}

impl Heap {
    /// An empty heap with no collection threshold (GC disabled).
    pub fn new() -> Self {
        Heap::default()
    }

    /// Sets the live-heap threshold: once this many objects are live, the
    /// next allocation first runs a collection. `None` disables GC.
    pub fn set_limit(&mut self, limit: Option<usize>) {
        self.limit = limit.map(|l| l.max(1));
        self.next_gc = self.limit.unwrap_or(0);
    }

    /// The configured live-heap threshold.
    pub fn limit(&self) -> Option<usize> {
        self.limit
    }

    /// Sets the nursery capacity (clamped to ≥ 1): once this many
    /// objects sit above the tenured boundary, the next allocation first
    /// runs a *minor* collection. `None` (the default) keeps every
    /// collection major. The nursery only takes effect while a
    /// [`Heap::set_limit`] is configured — without a limit the collector
    /// (minor or major) never runs, preserving the documented
    /// byte-identical no-GC behaviour.
    pub fn set_nursery(&mut self, nursery: Option<usize>) {
        self.nursery = nursery.map(|c| c.max(1));
    }

    /// The configured nursery capacity.
    pub fn nursery(&self) -> Option<usize> {
        self.nursery
    }

    /// The generational boundary: objects at ℓ < `tenured()` are in the
    /// tenured region, the rest are in the nursery.
    pub fn tenured(&self) -> usize {
        self.tenured
    }

    /// Allocates an object with `n_slots` layout slots, returning its ℓ.
    pub fn alloc(&mut self, n_slots: u32) -> Loc {
        let loc = self.objs.len() as Loc;
        self.objs.push(Obj {
            slots: vec![None; n_slots as usize].into_boxed_slice(),
            overflow: None,
        });
        self.gc.peak_live = self.gc.peak_live.max(self.objs.len() as u64);
        loc
    }

    /// The object at `loc`, if it exists.
    pub fn obj(&self, loc: Loc) -> Option<&Obj> {
        self.objs.get(loc as usize)
    }

    /// Reads cell ⟨`loc`, `copy`, `f`⟩ (via `slot` when laid out).
    pub fn get(&self, loc: Loc, copy: ClassId, slot: Option<u32>, f: Name) -> Option<Value> {
        self.objs.get(loc as usize)?.read(copy, slot, f)
    }

    /// Writes cell ⟨`loc`, `copy`, `f`⟩; silently ignores a dangling `loc`
    /// (unreachable through the typed surface).
    ///
    /// This is the write barrier: when generational collection is active
    /// and the store puts a nursery reference into a tenured object, the
    /// tenured ℓ is recorded in the remembered set so minor collections
    /// can find the nursery object without tracing the tenured region.
    pub fn set(&mut self, loc: Loc, copy: ClassId, slot: Option<u32>, f: Name, v: Value) {
        if self.nursery.is_some() && self.limit.is_some() {
            if let Value::Ref(r) = &v {
                if (loc as usize) < self.tenured && r.loc as usize >= self.tenured {
                    self.gc.barrier_hits += 1;
                    let i = loc as usize;
                    if self.rem_bits.len() <= i {
                        self.rem_bits.resize(i + 1, false);
                    }
                    if !self.rem_bits[i] {
                        self.rem_bits[i] = true;
                        self.remembered.push(loc);
                    }
                }
            }
        }
        if let Some(obj) = self.objs.get_mut(loc as usize) {
            obj.write(copy, slot, f, v);
        }
    }

    /// Live objects.
    pub fn len(&self) -> usize {
        self.objs.len()
    }

    /// Whether the heap holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objs.is_empty()
    }

    /// Iterates ⟨ℓ, object⟩ (the CONFIG invariant checker uses this).
    pub fn iter(&self) -> impl Iterator<Item = (Loc, &Obj)> {
        self.objs.iter().enumerate().map(|(i, o)| (i as Loc, o))
    }

    /// Collector counters since creation or the last [`Heap::reset`].
    pub fn gc_stats(&self) -> GcStats {
        self.gc
    }

    /// Whole-heap reclamation (the per-request region reset): drops every
    /// object and zeroes the collector counters, returning how many
    /// objects were reclaimed.
    pub fn reset(&mut self) -> usize {
        let reclaimed = self.objs.len();
        self.objs.clear();
        self.gc = GcStats::default();
        self.next_gc = self.limit.unwrap_or(0);
        self.tenured = 0;
        self.remembered.clear();
        self.rem_bits.clear();
        reclaimed
    }

    /// Whether the next allocation should first collect. This is the
    /// *major* (live-count) trigger only; generational callers should
    /// ask [`Heap::pending_collection`] instead.
    pub fn should_collect(&self) -> bool {
        self.limit.is_some() && self.objs.len() >= self.next_gc
    }

    /// Which collection, if any, the next allocation should run first.
    /// The major trigger wins (it is what bounds `peak_live ≤ limit` —
    /// a minor collection never grows the heap, so checking it second
    /// cannot break the bound); otherwise a full nursery asks for a
    /// minor collection. `None` without a configured limit: GC off.
    pub fn pending_collection(&self) -> Option<GcKind> {
        self.limit?;
        if self.objs.len() >= self.next_gc {
            return Some(GcKind::Major);
        }
        let cap = self.nursery?;
        if self.objs.len() - self.tenured >= cap {
            return Some(GcKind::Minor);
        }
        None
    }

    /// Runs the requested collection: [`GcKind::Major`] is
    /// [`Heap::collect`], [`GcKind::Minor`] the nursery-only pass. Same
    /// root-callback contract as `collect`; returns objects reclaimed.
    pub fn collect_kind<F>(&mut self, kind: GcKind, for_each_root: F) -> usize
    where
        F: FnMut(&mut dyn FnMut(&mut RefVal)),
    {
        match kind {
            GcKind::Major => self.collect(for_each_root),
            GcKind::Minor => self.collect_minor(for_each_root),
        }
    }

    /// Minor collection: mark the nursery (`objs[tenured..]`) from the
    /// caller's roots plus the remembered set, slide survivors down onto
    /// the tenured boundary (promotion — allocation order kept, tenured
    /// objects untouched), then forward nursery ℓs in promoted cells,
    /// remembered cells, and the roots. Empties the nursery, so the
    /// remembered set is cleared afterwards.
    fn collect_minor<F>(&mut self, mut for_each_root: F) -> usize
    where
        F: FnMut(&mut dyn FnMut(&mut RefVal)),
    {
        let n = self.objs.len();
        let t = self.tenured.min(n);
        let nn = n - t;
        let mut marked = vec![false; nn];
        let mut work: Vec<Loc> = Vec::new();
        // Mark phase: the caller's roots…
        for_each_root(&mut |r: &mut RefVal| {
            let i = r.loc as usize;
            if i >= t && i < n && !marked[i - t] {
                marked[i - t] = true;
                work.push(r.loc);
            }
        });
        // …plus every cell of a remembered tenured object (the only
        // tenured→nursery edges, by the write-barrier invariant)…
        for &rem in &self.remembered {
            let ri = rem as usize;
            if ri >= t {
                continue;
            }
            for v in self.objs[ri].values() {
                if let Value::Ref(r) = v {
                    let i = r.loc as usize;
                    if i >= t && i < n && !marked[i - t] {
                        marked[i - t] = true;
                        work.push(r.loc);
                    }
                }
            }
        }
        // …traced transitively within the nursery (a nursery object's
        // reference *into* the tenured region needs no work: its target
        // does not move).
        while let Some(l) = work.pop() {
            for v in self.objs[l as usize].values() {
                if let Value::Ref(r) = v {
                    let i = r.loc as usize;
                    if i >= t && i < n && !marked[i - t] {
                        marked[i - t] = true;
                        work.push(r.loc);
                    }
                }
            }
        }
        // Promotion: slide survivors down onto the boundary (the same
        // order-preserving compaction as the major collector, restricted
        // to the nursery slice).
        let mut fwd: Vec<Loc> = vec![Loc::MAX; nn];
        let mut next = t;
        for (j, m) in marked.iter().enumerate() {
            if *m {
                fwd[j] = next as Loc;
                if next != t + j {
                    self.objs.swap(next, t + j);
                }
                next += 1;
            }
        }
        self.objs.truncate(next);
        // Forward nursery ℓs in the promoted objects' cells… (tenured
        // ℓs, and dangling ℓs ≥ the old length, stay unchanged — same
        // benign-miss policy as the major collector)
        for obj in &mut self.objs[t..] {
            for v in obj.values_mut() {
                if let Value::Ref(r) = v {
                    let i = r.loc as usize;
                    if i >= t && i < n && fwd[i - t] != Loc::MAX {
                        r.loc = fwd[i - t];
                    }
                }
            }
        }
        // …in the remembered tenured objects' cells…
        for &rem in &self.remembered {
            let ri = rem as usize;
            if ri >= t {
                continue;
            }
            for v in self.objs[ri].values_mut() {
                if let Value::Ref(r) = v {
                    let i = r.loc as usize;
                    if i >= t && i < n && fwd[i - t] != Loc::MAX {
                        r.loc = fwd[i - t];
                    }
                }
            }
        }
        // …and in the caller's roots.
        for_each_root(&mut |r: &mut RefVal| {
            let i = r.loc as usize;
            if i >= t && i < n && fwd[i - t] != Loc::MAX {
                r.loc = fwd[i - t];
            }
        });
        let reclaimed = n - next;
        self.gc.runs += 1;
        self.gc.minor_runs += 1;
        self.gc.promoted += (next - t) as u64;
        self.gc.reclaimed += reclaimed as u64;
        // The nursery is now empty: no tenured→nursery edge can exist,
        // so the remembered set restarts from scratch. The major trigger
        // (`next_gc`) is deliberately untouched — a minor collection
        // never grows the heap.
        for &rem in &self.remembered {
            if let Some(b) = self.rem_bits.get_mut(rem as usize) {
                *b = false;
            }
        }
        self.remembered.clear();
        self.tenured = next;
        reclaimed
    }

    /// Mark-compact collection. `for_each_root` must apply the given
    /// visitor to **every** live [`RefVal`] the caller can reach; it is
    /// called twice — once to mark, once to forward the compacted `Loc`s
    /// back through the roots. Returns the number of objects reclaimed.
    pub fn collect<F>(&mut self, mut for_each_root: F) -> usize
    where
        F: FnMut(&mut dyn FnMut(&mut RefVal)),
    {
        let n = self.objs.len();
        let mut marked = vec![false; n];
        let mut work: Vec<Loc> = Vec::new();
        // Mark phase: roots, then transitive cells.
        for_each_root(&mut |r: &mut RefVal| {
            let i = r.loc as usize;
            if i < n && !marked[i] {
                marked[i] = true;
                work.push(r.loc);
            }
        });
        while let Some(l) = work.pop() {
            // `marked` and `work` are disjoint from `objs`, so the trace
            // borrows the object immutably while it queues children.
            for v in self.objs[l as usize].values() {
                if let Value::Ref(r) = v {
                    let i = r.loc as usize;
                    if i < n && !marked[i] {
                        marked[i] = true;
                        work.push(r.loc);
                    }
                }
            }
        }
        // Forwarding table + sliding compaction (allocation order kept).
        let mut fwd: Vec<Loc> = vec![Loc::MAX; n];
        let mut next: usize = 0;
        for (i, m) in marked.iter().enumerate() {
            if *m {
                fwd[i] = next as Loc;
                if next != i {
                    self.objs.swap(next, i);
                }
                next += 1;
            }
        }
        self.objs.truncate(next);
        // Forward every surviving reference: heap cells, then roots. A
        // dangling ℓ (stale reference held across a reset — the same
        // misuse `Heap::set` silently ignores) stays unchanged, which
        // keeps it out of bounds and therefore still benign, instead of
        // panicking here where the mark pass deliberately skipped it.
        for obj in &mut self.objs {
            for v in obj.values_mut() {
                if let Value::Ref(r) = v {
                    if let Some(&to) = fwd.get(r.loc as usize) {
                        r.loc = to;
                    }
                }
            }
        }
        for_each_root(&mut |r: &mut RefVal| {
            if let Some(&to) = fwd.get(r.loc as usize) {
                r.loc = to;
            }
        });
        let reclaimed = n - next;
        self.gc.runs += 1;
        self.gc.major_runs += 1;
        self.gc.reclaimed += reclaimed as u64;
        // Everything that survived a full collection is tenured, and the
        // now-empty nursery means no tenured→nursery edge survives: the
        // remembered set restarts from scratch.
        self.tenured = next;
        for &rem in &self.remembered {
            if let Some(b) = self.rem_bits.get_mut(rem as usize) {
                *b = false;
            }
        }
        self.remembered.clear();
        // Re-arm the trigger: back at the limit while the survivors fit
        // strictly under it (so `peak_live` stays bounded by the limit),
        // doubling the live size once they fill it (so an all-live heap
        // completes instead of collecting on every allocation).
        if let Some(l) = self.limit {
            self.next_gc = if next >= l { 2 * next } else { l };
        }
        reclaimed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::MaskSet;
    use std::collections::BTreeSet;
    use std::sync::Arc;

    fn no_masks() -> MaskSet {
        Arc::new(BTreeSet::new())
    }

    fn rv(loc: Loc) -> RefVal {
        RefVal {
            loc,
            view: ClassId::ROOT,
            masks: no_masks(),
        }
    }

    #[test]
    fn slot_and_open_cells_roundtrip() {
        let mut h = Heap::new();
        let a = h.alloc(2);
        let b = h.alloc(0);
        let f = Name(7);
        h.set(a, ClassId::ROOT, Some(1), f, Value::Int(5));
        h.set(b, ClassId::ROOT, None, f, Value::Int(9));
        assert_eq!(h.get(a, ClassId::ROOT, Some(1), f), Some(Value::Int(5)));
        assert_eq!(h.get(b, ClassId::ROOT, None, f), Some(Value::Int(9)));
        assert_eq!(h.get(a, ClassId::ROOT, Some(0), f), None);
        // A slot index outside the layout spills to the open cells.
        h.set(a, ClassId::ROOT, Some(9), f, Value::Bool(true));
        assert_eq!(h.get(a, ClassId::ROOT, None, f), Some(Value::Bool(true)));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn collect_drops_garbage_and_forwards_roots() {
        let mut h = Heap::new();
        let f = Name(1);
        let _garbage = h.alloc(0);
        let live = h.alloc(0);
        let child = h.alloc(0);
        h.set(live, ClassId::ROOT, None, f, Value::Ref(rv(child)));
        let mut root = rv(live);
        let mut alias = rv(live);
        let reclaimed = h.collect(|visit| {
            visit(&mut root);
            visit(&mut alias);
        });
        assert_eq!(reclaimed, 1);
        assert_eq!(h.len(), 2);
        // Both aliases forward to the same compacted location (identity).
        assert_eq!(root.loc, alias.loc);
        assert_eq!(root.loc, 0);
        // The traced child moved too, and the stored cell was forwarded.
        let inner = h.get(root.loc, ClassId::ROOT, None, f).unwrap();
        assert_eq!(inner, Value::Ref(rv(1)));
        let stats = h.gc_stats();
        assert_eq!((stats.runs, stats.reclaimed), (1, 1));
    }

    #[test]
    fn collect_preserves_allocation_order_of_survivors() {
        let mut h = Heap::new();
        let keep: Vec<Loc> = (0..6).map(|_| h.alloc(0)).collect();
        let mut roots: Vec<RefVal> = keep.iter().step_by(2).map(|&l| rv(l)).collect();
        h.collect(|visit| roots.iter_mut().for_each(&mut *visit));
        let locs: Vec<Loc> = roots.iter().map(|r| r.loc).collect();
        assert_eq!(locs, vec![0, 1, 2], "sliding compaction keeps order");
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn dangling_root_is_tolerated_not_panicked_on() {
        let mut h = Heap::new();
        h.alloc(0);
        let live = h.alloc(0);
        // A stale reference from before a reset: its ℓ is out of bounds.
        let mut stale = rv(9999);
        let mut root = rv(live);
        let reclaimed = h.collect(|visit| {
            visit(&mut stale);
            visit(&mut root);
        });
        assert_eq!(reclaimed, 1);
        assert_eq!(root.loc, 0);
        // The dangling ℓ is left alone — still out of bounds, so every
        // heap entry point keeps degrading to a benign miss.
        assert_eq!(stale.loc, 9999);
        assert!(h.obj(stale.loc).is_none());
    }

    #[test]
    fn trigger_returns_to_limit_while_live_set_fits_under_it() {
        let mut h = Heap::new();
        h.set_limit(Some(10));
        let mut roots: Vec<RefVal> = (0..7).map(|_| rv(h.alloc(0))).collect();
        for _ in 0..3 {
            h.alloc(0);
        }
        assert!(h.should_collect());
        h.collect(|visit| roots.iter_mut().for_each(&mut *visit));
        assert_eq!(h.len(), 7);
        // 7 survivors fit under the limit of 10: the trigger re-arms at
        // the limit, so the heap never grows past it (the bound
        // `peak_live <= limit` that tests/gc.rs asserts).
        for _ in 0..2 {
            h.alloc(0);
            assert!(!h.should_collect());
        }
        h.alloc(0);
        assert!(h.should_collect());
        h.collect(|visit| roots.iter_mut().for_each(&mut *visit));
        assert_eq!(h.gc_stats().peak_live, 10);
        // An all-live heap instead doubles the trigger (no thrash).
        roots.extend((0..3).map(|_| rv(h.alloc(0))));
        assert!(h.should_collect());
        h.collect(|visit| roots.iter_mut().for_each(&mut *visit));
        assert_eq!(h.len(), 10);
        assert!(!h.should_collect());
        for _ in 0..9 {
            h.alloc(0);
            assert!(!h.should_collect());
        }
        h.alloc(0);
        assert!(h.should_collect(), "trigger doubled to 2x the live size");
    }

    #[test]
    fn limit_gates_should_collect_and_reset_clears_counters() {
        let mut h = Heap::new();
        assert!(!h.should_collect());
        h.set_limit(Some(2));
        h.alloc(0);
        assert!(!h.should_collect());
        h.alloc(0);
        assert!(h.should_collect());
        assert_eq!(h.gc_stats().peak_live, 2);
        assert_eq!(h.reset(), 2);
        assert!(h.is_empty());
        assert_eq!(h.gc_stats().peak_live, 0);
        assert_eq!(h.limit(), Some(2), "reset keeps the configured limit");
    }

    #[test]
    fn minor_collects_nursery_garbage_and_promotes_survivors() {
        let mut h = Heap::new();
        h.set_limit(Some(100));
        h.set_nursery(Some(4));
        let f = Name(1);
        let keep = h.alloc(0);
        let child = h.alloc(0);
        h.set(keep, ClassId::ROOT, None, f, Value::Ref(rv(child)));
        let _garbage = h.alloc(0);
        h.alloc(0);
        // Nursery full (tenured boundary is still 0), limit far away.
        assert_eq!(h.pending_collection(), Some(GcKind::Minor));
        let mut root = rv(keep);
        let reclaimed = h.collect_kind(GcKind::Minor, |visit| visit(&mut root));
        assert_eq!(reclaimed, 2);
        assert_eq!(h.len(), 2);
        // Survivors were promoted in allocation order; the boundary now
        // covers them and the nursery is empty.
        assert_eq!(h.tenured(), 2);
        assert_eq!(root.loc, 0);
        let inner = h.get(root.loc, ClassId::ROOT, None, f).unwrap();
        assert_eq!(inner, Value::Ref(rv(1)), "promoted cell was forwarded");
        let stats = h.gc_stats();
        assert_eq!((stats.minor_runs, stats.major_runs), (1, 0));
        assert_eq!(stats.promoted, 2);
        assert_eq!(stats.runs, 1, "minor runs count into the total");
        assert_eq!(h.pending_collection(), None);
    }

    #[test]
    fn remembered_set_keeps_nursery_object_alive_through_minor() {
        let mut h = Heap::new();
        h.set_limit(Some(100));
        h.set_nursery(Some(8));
        let f = Name(2);
        // Tenure a holder object.
        let holder = h.alloc(0);
        let mut root = rv(holder);
        h.collect_kind(GcKind::Minor, |visit| visit(&mut root));
        assert_eq!(h.tenured(), 1);
        // A nursery child whose ONLY path is the tenured holder's cell:
        // the write barrier must remember the holder.
        let child = h.alloc(0);
        h.set(child, ClassId::ROOT, None, f, Value::Int(7));
        h.set(root.loc, ClassId::ROOT, None, f, Value::Ref(rv(child)));
        assert_eq!(h.gc_stats().barrier_hits, 1);
        let _nursery_garbage = h.alloc(0);
        // Minor collection with NO stack roots at all.
        let reclaimed = h.collect_kind(GcKind::Minor, |_visit| {});
        assert_eq!(reclaimed, 1, "only the unreferenced nursery object died");
        assert_eq!(h.len(), 2);
        // The holder's cell was forwarded to the promoted child, and the
        // child's own state survived the move.
        let inner = h.get(root.loc, ClassId::ROOT, None, f).unwrap();
        let Value::Ref(r) = inner else {
            panic!("holder cell no longer a reference: {inner:?}")
        };
        assert_eq!(h.get(r.loc, ClassId::ROOT, None, f), Some(Value::Int(7)));
        // The nursery is empty again, so the remembered set restarted:
        // a fresh tenured→nursery store re-records the holder.
        let child2 = h.alloc(0);
        h.set(root.loc, ClassId::ROOT, None, f, Value::Ref(rv(child2)));
        assert_eq!(h.gc_stats().barrier_hits, 2);
    }

    #[test]
    fn barrier_ignores_non_nursery_stores_and_is_off_without_nursery() {
        let mut h = Heap::new();
        h.set_limit(Some(100));
        let f = Name(3);
        let a = h.alloc(0);
        let b = h.alloc(0);
        // No nursery configured: no barrier accounting at all.
        h.set(a, ClassId::ROOT, None, f, Value::Ref(rv(b)));
        assert_eq!(h.gc_stats().barrier_hits, 0);
        h.set_nursery(Some(4));
        let mut roots = [rv(a), rv(b)];
        h.collect_kind(GcKind::Minor, |visit| {
            roots.iter_mut().for_each(&mut *visit)
        });
        assert_eq!(h.tenured(), 2);
        // Tenured→tenured and nursery-held stores stay barrier-free.
        h.set(
            roots[0].loc,
            ClassId::ROOT,
            None,
            f,
            Value::Ref(rv(roots[1].loc)),
        );
        let young = h.alloc(0);
        h.set(young, ClassId::ROOT, None, f, Value::Ref(rv(roots[0].loc)));
        assert_eq!(h.gc_stats().barrier_hits, 0);
        // Only the tenured→nursery store hits.
        h.set(roots[0].loc, ClassId::ROOT, None, f, Value::Ref(rv(young)));
        assert_eq!(h.gc_stats().barrier_hits, 1);
    }

    #[test]
    fn major_trigger_wins_over_a_full_nursery_and_tenures_survivors() {
        let mut h = Heap::new();
        h.set_limit(Some(4));
        h.set_nursery(Some(2));
        let mut roots: Vec<RefVal> = (0..2).map(|_| rv(h.alloc(0))).collect();
        // Nursery is full, but so is the heap: the live-count trigger
        // must win (it is what bounds peak_live ≤ limit).
        h.alloc(0);
        h.alloc(0);
        assert_eq!(h.pending_collection(), Some(GcKind::Major));
        h.collect(|visit| roots.iter_mut().for_each(&mut *visit));
        let stats = h.gc_stats();
        assert_eq!((stats.minor_runs, stats.major_runs), (0, 1));
        assert_eq!(h.tenured(), 2, "major tenures every survivor");
        assert_eq!(h.pending_collection(), None);
    }

    #[test]
    fn nursery_without_a_limit_keeps_gc_off() {
        let mut h = Heap::new();
        h.set_nursery(Some(1));
        for _ in 0..16 {
            h.alloc(0);
        }
        assert_eq!(h.pending_collection(), None, "no limit: GC stays off");
        assert_eq!(h.gc_stats().barrier_hits, 0);
        assert_eq!(h.gc_stats().runs, 0);
    }
}
