//! # jns-eval
//!
//! Operational semantics for the J&s language of *Sharing Classes Between
//! Families* (Qi & Myers, PLDI 2009): references are ⟨location, view⟩
//! pairs, the heap is keyed by ⟨ℓ, fclass(view, f), f⟩ so shared classes
//! can keep duplicate copies of unshared fields, method dispatch follows
//! the view, and implicit view changes happen lazily on field access.
//!
//! # Examples
//!
//! ```
//! let prog = jns_syntax::parse(
//!     "class A { class C { int x = 7; } }
//!      main { final A.C c = new A.C(); print c.x; }",
//! ).unwrap();
//! let checked = jns_types::check(&prog).unwrap();
//! let mut m = jns_eval::Machine::new(&checked);
//! m.run()?;
//! assert_eq!(m.output, vec!["7"]);
//! # Ok::<(), jns_eval::RtError>(())
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod heap;
pub mod machine;
pub mod typeeval;
pub mod value;

pub use error::RtError;
pub use heap::{GcStats, Heap, Obj};
pub use machine::{Machine, Stats, DEFAULT_MAX_DEPTH};
pub use value::{Loc, RefVal, Value};

/// Convenience: parse, check, and run a source program, returning the
/// printed output.
///
/// # Errors
///
/// Returns a rendered error string for parse, type, or runtime failures.
pub fn run_source(src: &str) -> Result<Vec<String>, String> {
    let prog = jns_syntax::parse(src).map_err(|e| e.to_string())?;
    let checked = jns_types::check(&prog).map_err(|es| {
        es.iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    })?;
    let mut m = Machine::new(&checked);
    m.run().map_err(|e| e.to_string())?;
    Ok(m.output)
}
