//! Run-time values. A reference is a pair ⟨ℓ, S⟩ of a heap location and a
//! *view* — a non-dependent exact type with masks (§2.3).
//!
//! Values are `Send + Sync` so one compiled program can serve many
//! requests from a pool of worker threads (`jns-serve`): strings are
//! `Arc<str>`, and mask sets are shared `Arc<BTreeSet<_>>`s that are only
//! deep-copied when a `grant` actually shrinks a shared set.
//!
//! # Teardown is iterative by construction
//!
//! A [`Value`] never owns another `Value`: object structure lives in the
//! shared backend heap ([`crate::heap::Heap`] — union-layout slots plus
//! open `⟨ℓ, P, f⟩` cells), and a [`RefVal`] holds a plain [`Loc`]
//! index, not a pointer into it. ([`Loc`]s are *stable under execution*
//! but forwarded by the mark-compact collector — aliases of one object
//! always forward together, so identity is preserved.) Dropping a
//! machine that holds a million-long linked chain
//! therefore iterates a flat container — there is no recursive `Drop` to
//! overflow the host stack on (regression-tested by
//! `tests/deep_recursion.rs`). Keep it that way: if a variant ever owns
//! child `Value`s directly, it needs an iterative `Drop` like the one on
//! `jns_types::CExpr`.

use jns_types::{ClassId, Name};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A heap location ℓ.
pub type Loc = u32;

/// A shared (interned or at least reference-counted) mask set. View
/// transitions hand the same set to many references; `grant` uses
/// copy-on-write.
pub type MaskSet = Arc<BTreeSet<Name>>;

/// A reference value ⟨ℓ, P!\f⟩: identity (`loc`) plus behaviour (`view`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefVal {
    /// The heap location — object identity, preserved across view changes.
    pub loc: Loc,
    /// The current view: the exact class this reference sees.
    pub view: ClassId,
    /// Masked (unreadable) fields of this reference (shared, copy-on-write).
    pub masks: MaskSet,
}

impl RefVal {
    /// `grant(σ, x.f)`: removes the mask on `f`, cloning the shared set
    /// only when it actually contains `f`. Returns `true` if a deep copy
    /// of the mask set was made (for allocation accounting).
    pub fn grant(&mut self, f: &Name) -> bool {
        if !self.masks.contains(f) {
            return false;
        }
        let copied = Arc::strong_count(&self.masks) > 1;
        Arc::make_mut(&mut self.masks).remove(f);
        copied
    }
}

/// A run-time value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// Immutable string.
    Str(Arc<str>),
    /// Unit.
    Unit,
    /// An object reference.
    Ref(RefVal),
}

impl Value {
    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer value, if this is an int.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The reference, if this is an object.
    pub fn as_ref_val(&self) -> Option<&RefVal> {
        match self {
            Value::Ref(r) => Some(r),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Unit => write!(f, "()"),
            Value::Ref(r) => write!(f, "<obj@{} view #{}>", r.loc, r.view.0),
        }
    }
}

// Runtime values cross thread boundaries in `jns-serve`; keep them
// `Send + Sync` (compile error here = a non-shareable type crept in).
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Value>();
    assert_send_sync::<RefVal>();
};
