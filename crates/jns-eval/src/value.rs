//! Run-time values. A reference is a pair ⟨ℓ, S⟩ of a heap location and a
//! *view* — a non-dependent exact type with masks (§2.3).

use jns_types::{ClassId, Name};
use std::collections::BTreeSet;
use std::fmt;
use std::rc::Rc;

/// A heap location ℓ.
pub type Loc = u32;

/// A reference value ⟨ℓ, P!\f⟩: identity (`loc`) plus behaviour (`view`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefVal {
    /// The heap location — object identity, preserved across view changes.
    pub loc: Loc,
    /// The current view: the exact class this reference sees.
    pub view: ClassId,
    /// Masked (unreadable) fields of this reference.
    pub masks: BTreeSet<Name>,
}

/// A run-time value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// Immutable string.
    Str(Rc<str>),
    /// Unit.
    Unit,
    /// An object reference.
    Ref(RefVal),
}

impl Value {
    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer value, if this is an int.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The reference, if this is an object.
    pub fn as_ref_val(&self) -> Option<&RefVal> {
        match self {
            Value::Ref(r) => Some(r),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Unit => write!(f, "()"),
            Value::Ref(r) => write!(f, "<obj@{} view #{}>", r.loc, r.view.0),
        }
    }
}
