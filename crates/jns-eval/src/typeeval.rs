//! Run-time type evaluation (the type evaluation contexts `TE` of Fig. 16).
//!
//! Dependent types embedded in the IR are evaluated against the current
//! stack frame: `p.class` becomes the *view* of the reference stored at
//! `p`, and a prefix `P[v.class]` walks up the enclosing classes of the
//! view — this is how a single view change on a root object implicitly
//! re-families every type mentioned by inherited code.
//!
//! The algorithm is generic over a [`TypeEvalCtx`] so that every
//! execution backend (the tree-walk [`Machine`] here, the bytecode VM in
//! `jns-vm`) evaluates types through the *same* code path — one source of
//! truth for the Fig. 16 semantics and its error messages.

use crate::error::RtError;
use crate::machine::Machine;
use crate::value::{RefVal, Value};
use jns_types::{CheckedProgram, ClassId, Name, Ty};
use std::collections::{BTreeSet, HashMap};

/// What type evaluation needs from an execution backend: field reads
/// (for dependent paths `p.f1…fn.class`, which follow the backend's own
/// heap and view-change machinery) and the program being run.
pub trait TypeEvalCtx {
    /// Reads `r.f` through `r`'s view, with the backend's lazy implicit
    /// view change applied to the result.
    fn read_field(&mut self, r: &RefVal, f: Name) -> Result<Value, RtError>;

    /// The checked program being executed.
    fn checked_program(&self) -> &CheckedProgram;
}

impl TypeEvalCtx for Machine<'_> {
    fn read_field(&mut self, r: &RefVal, f: Name) -> Result<Value, RtError> {
        self.get_field(r, f)
    }

    fn checked_program(&self) -> &CheckedProgram {
        self.program()
    }
}

/// Evaluates a possibly dependent type to a non-dependent runtime type
/// plus the mask set contributed by dependent classes, resolving path
/// roots through `vars`.
pub fn eval_type_in<C: TypeEvalCtx>(
    ctx: &mut C,
    vars: &dyn Fn(Name) -> Option<Value>,
    ty: &Ty,
) -> Result<(Ty, BTreeSet<Name>), RtError> {
    let mut masks = BTreeSet::new();
    let t = go(ctx, vars, ty, &mut masks, 0)?;
    Ok((t, masks))
}

/// Depth bound for the structural type walk. Runtime types mirror the
/// program text (dependent *paths* are iterated, not recursed), so real
/// programs sit far below this; the bound turns any pathological nesting
/// into a benign [`RtError::DepthExceeded`] instead of a host-stack
/// overflow, matching the evaluation loop's guarantee.
const MAX_TYPE_DEPTH: u32 = 2_048;

/// Evaluates a possibly dependent type against a [`Machine`] stack frame.
pub fn eval_type(
    machine: &mut Machine<'_>,
    frame: &HashMap<Name, Value>,
    ty: &Ty,
) -> Result<(Ty, BTreeSet<Name>), RtError> {
    eval_type_in(machine, &|n| frame.get(&n).cloned(), ty)
}

fn go<C: TypeEvalCtx>(
    ctx: &mut C,
    vars: &dyn Fn(Name) -> Option<Value>,
    ty: &Ty,
    masks: &mut BTreeSet<Name>,
    depth: u32,
) -> Result<Ty, RtError> {
    if depth >= MAX_TYPE_DEPTH {
        return Err(RtError::DepthExceeded(MAX_TYPE_DEPTH));
    }
    Ok(match ty {
        Ty::Prim(_) | Ty::Class(_) => ty.clone(),
        Ty::Dep(path) => {
            let mut v = vars(path.base).ok_or_else(|| {
                RtError::UnboundVariable(ctx.checked_program().table.name_str(path.base))
            })?;
            for f in &path.fields {
                let r = v
                    .as_ref_val()
                    .cloned()
                    .ok_or_else(|| RtError::TypeMismatch("path through primitive".into()))?;
                v = ctx.read_field(&r, *f)?;
            }
            let r = v
                .as_ref_val()
                .ok_or_else(|| RtError::TypeMismatch("`.class` of primitive".into()))?;
            masks.extend(r.masks.iter().copied());
            Ty::Class(r.view).exact()
        }
        Ty::Nested(inner, c) => {
            let i = go(ctx, vars, inner, masks, depth + 1)?;
            Ty::Nested(Box::new(i), *c)
        }
        Ty::Prefix(p, idx) => {
            let i = go(ctx, vars, idx, masks, depth + 1)?;
            // Runtime prefix: walk up the enclosing classes of the (unique)
            // member of the evaluated index until one is a subtype of `p`.
            let table = &ctx.checked_program().table;
            let members = table.mem(&i);
            let Some(&m) = members.first() else {
                return Err(RtError::BadType(format!(
                    "prefix index `{}` has no classes",
                    table.show_ty(&i)
                )));
            };
            let mut cur = table.parent(m);
            let mut found = None;
            while let Some(e) = cur {
                if table.is_subclass(e, *p) {
                    found = Some(e);
                    break;
                }
                cur = table.parent(e);
            }
            let e = found.ok_or_else(|| {
                RtError::BadType(format!(
                    "no enclosing class of `{}` is a subtype of `{}`",
                    table.class_name(m),
                    table.class_name(*p)
                ))
            })?;
            if i.prefix_exact(1) {
                Ty::Class(e).exact()
            } else {
                Ty::Class(e)
            }
        }
        Ty::Exact(inner) => go(ctx, vars, inner, masks, depth + 1)?.exact(),
        Ty::Meet(parts) => {
            let mut out = Vec::new();
            for p in parts {
                out.push(go(ctx, vars, p, masks, depth + 1)?);
            }
            Ty::Meet(out)
        }
    })
}

/// Evaluates a type to the single class it denotes (for `new`), resolving
/// path roots through `vars`.
pub fn eval_type_class_in<C: TypeEvalCtx>(
    ctx: &mut C,
    vars: &dyn Fn(Name) -> Option<Value>,
    ty: &Ty,
) -> Result<ClassId, RtError> {
    let (t, _masks) = eval_type_in(ctx, vars, ty)?;
    let table = &ctx.checked_program().table;
    // Canonicalise (resolves Nested over classes, prunes meets).
    let env = jns_types::TypeEnv::new();
    let judge = jns_types::Judge::new(table, &env);
    let c = judge.canon(&strip_exact(&t));
    let members = table.mem(&c);
    match members.len() {
        1 => Ok(members[0]),
        0 => Err(RtError::BadType(format!(
            "`{}` denotes no class",
            table.show_ty(&c)
        ))),
        _ => Err(RtError::BadType(format!(
            "cannot instantiate intersection `{}`",
            table.show_ty(&c)
        ))),
    }
}

/// Evaluates a type to the single class it denotes against a [`Machine`]
/// stack frame.
pub fn eval_type_class(
    machine: &mut Machine<'_>,
    frame: &HashMap<Name, Value>,
    ty: &Ty,
) -> Result<ClassId, RtError> {
    eval_type_class_in(machine, &|n| frame.get(&n).cloned(), ty)
}

fn strip_exact(t: &Ty) -> Ty {
    match t {
        Ty::Exact(i) => strip_exact(i),
        other => other.clone(),
    }
}
