//! Run-time errors.

use std::fmt;

/// A run-time error. Type soundness guarantees that a well-typed program
/// only raises the benign variants — [`RtError::CastFailed`] (casts are
/// checked, §2.3), [`RtError::OutOfFuel`], [`RtError::DepthExceeded`],
/// and [`RtError::DivisionByZero`]; any other variant signals a
/// soundness bug and is asserted against in the property tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtError {
    /// A `(cast T)e` failed its run-time view test.
    CastFailed(String),
    /// Execution exceeded the configured fuel.
    OutOfFuel,
    /// Recursion depth reached the configured limit (the payload). Both
    /// backends run on explicit heap-allocated stacks, so this is a benign,
    /// recoverable error — never a host stack overflow.
    DepthExceeded(u32),
    /// Soundness violation: read of a field with no value in the heap.
    UninitialisedField(String),
    /// Soundness violation: unbound variable at run time.
    UnboundVariable(String),
    /// Soundness violation: a view change had no (or no unique) target.
    ViewFailed(String),
    /// Soundness violation: operand of the wrong shape.
    TypeMismatch(String),
    /// Soundness violation: run-time type evaluation failed.
    BadType(String),
    /// Division or remainder by zero (surface-level arithmetic error).
    DivisionByZero,
}

impl RtError {
    /// Whether this error is allowed for well-typed programs.
    pub fn is_benign(&self) -> bool {
        matches!(
            self,
            RtError::CastFailed(_)
                | RtError::OutOfFuel
                | RtError::DepthExceeded(_)
                | RtError::DivisionByZero
        )
    }
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::CastFailed(m) => write!(f, "cast failed: {m}"),
            RtError::OutOfFuel => write!(f, "out of fuel"),
            RtError::DepthExceeded(limit) => {
                write!(f, "depth limit exceeded: recursion deeper than {limit}")
            }
            RtError::UninitialisedField(m) => write!(f, "uninitialised field: {m}"),
            RtError::UnboundVariable(m) => write!(f, "unbound variable: {m}"),
            RtError::ViewFailed(m) => write!(f, "view change failed: {m}"),
            RtError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            RtError::BadType(m) => write!(f, "bad type: {m}"),
            RtError::DivisionByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for RtError {}
