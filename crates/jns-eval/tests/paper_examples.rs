//! End-to-end executions of the paper's running examples (Figures 1-5)
//! through parse → check → run.

use jns_eval::{Machine, RtError};

fn run(src: &str) -> Vec<String> {
    jns_eval::run_source(src).unwrap_or_else(|e| panic!("{e}"))
}

fn checked(src: &str) -> jns_types::CheckedProgram {
    let prog = jns_syntax::parse(src).unwrap();
    jns_types::check(&prog).unwrap_or_else(|e| {
        panic!(
            "{}",
            e.iter()
                .map(|x| x.message.clone())
                .collect::<Vec<_>>()
                .join("\n")
        )
    })
}

/// Figure 1-3: family adaptation — AST objects gain display behaviour by
/// being viewed from the ASTDisplay family; the child accessed through the
/// new reference is implicitly re-viewed.
#[test]
fn figure3_family_adaptation() {
    let out = run("class AST {
           class Exp { str name = \"exp\"; str show() { return this.name; } }
           class Value extends Exp { }
           class Binary extends Exp { Exp l; Exp r; }
         }
         class TreeDisplay {
           class Node { str display() { return \"node\"; } }
           class Composite extends Node { }
           class Leaf extends Node { }
         }
         class ASTDisplay extends AST & TreeDisplay {
           class Exp extends Node shares AST.Exp {
             str display() { return \"exp:\" + this.name; }
           }
           class Value extends Exp & Leaf shares AST.Value {
             str display() { return \"value:\" + this.name; }
           }
           class Binary extends Exp & Composite shares AST.Binary {
             str display() {
               return \"(\" + this.l.display() + \" \" + this.r.display() + \")\";
             }
           }
           str show(AST!.Exp e) sharing AST!.Exp = Exp {
             final Exp temp = (view Exp)e;
             return temp.display();
           }
         }
         main {
           final AST!.Exp l = new AST.Value { name = \"x\" };
           final AST!.Exp r = new AST.Value { name = \"y\" };
           final AST!.Binary root = new AST.Binary { name = \"+\", l = l, r = r };
           final ASTDisplay d = new ASTDisplay();
           print d.show(root);
         }");
    assert_eq!(out, vec!["(value:x value:y)"]);
}

/// §2.3: view changes preserve object identity.
#[test]
fn view_change_preserves_identity() {
    let out = run("class A { class C { } }
         class B extends A { class C shares A.C { } }
         main {
           final A!.C a = new A.C();
           final B!.C b = (view B!.C)a;
           print a == b;
         }");
    assert_eq!(out, vec!["true"]);
}

/// §2.4: dynamic object evolution — after a single view change on the
/// dispatcher, the overridden method runs, and objects reached through its
/// fields also evolve (transitively, lazily).
#[test]
fn figure4_dynamic_evolution() {
    let out = run("class Service {
           class Handler {
             str handle() { return \"basic\"; }
           }
           class Dispatcher {
             Handler h;
             str dispatch() { return this.h.handle(); }
           }
         }
         class LogService extends Service {
           class Handler shares Service.Handler {
             str handle() { return \"logged\"; }
           }
           class Dispatcher shares Service.Dispatcher {
             str dispatch() { return \"[log] \" + this.h.handle(); }
           }
         }
         main {
           final Service!.Handler h = new Service.Handler();
           final Service!.Dispatcher d = new Service.Dispatcher { h = h };
           print d.dispatch();
           final LogService!.Dispatcher d2 = (view LogService!.Dispatcher)d;
           print d2.dispatch();
           print d.dispatch();
         }");
    // The old reference still sees the old behaviour; the new view sees the
    // new behaviour *and* its handler transitively evolves.
    assert_eq!(out, vec!["basic", "[log] logged", "basic"]);
}

/// Figure 5: a new field in the derived family is masked after the view
/// change and becomes readable only after initialisation.
#[test]
fn figure5_new_field_masking() {
    let out = run("class A1 { class B { int y = 1; } }
         class A2 extends A1 {
           class B shares A1.B { int f; int sum() { return this.y + this.f; } }
         }
         main {
           final A1!.B b1 = new A1.B();
           final A2!.B\\f b2 = (view A2!.B\\f)b1;
           b2.f = 41;
           print b2.sum();
           print b1 == b2;
         }");
    assert_eq!(out, vec!["42", "true"]);
}

/// Duplicated fields: each family reads its own copy (fclass).
#[test]
fn duplicated_fields_are_per_family() {
    let out = run("class A1 {
           class D { int tag = 1; }
           class C { D g = new D(); int read() { return this.g.tag; } }
         }
         class A2 extends A1 {
           class D shares A1.D { }
           class E extends D { int tag2 = 9; }
           class C shares A1.C\\g {
             int read2() { return this.g.tag; }
           }
         }
         main {
           final A1!.C c = new A1.C();
           print c.read();
           // Viewing into A2: g is *forwarded* (A1!.D ⤳ A2!.D holds), so
           // the derived view can still read the base copy.
           final A2!.C c2 = (view A2!.C)c;
           print c2.read2();
         }");
    assert_eq!(out, vec!["1", "1"]);
}

/// Casts check the run-time view; failed casts raise a benign error.
#[test]
fn cast_checks_view() {
    let src = "class A { class C { } class D { } }
         main {
           final A!.C c = new A.C();
           final A.D d = (cast A.D)c;
         }";
    let prog = jns_syntax::parse(src).unwrap();
    let checked = jns_types::check(&prog).unwrap();
    let mut m = Machine::new(&checked);
    let err = m.run().unwrap_err();
    assert!(matches!(err, RtError::CastFailed(_)));
    assert!(err.is_benign());
}

/// The CONFIG heap invariant (Fig. 19) holds after every example run.
#[test]
fn config_invariant_holds() {
    let src = "class AST {
           class Exp { }
           class Binary extends Exp { Exp l; Exp r; }
         }
         class ASTDisplay extends AST adapts AST { }
         main {
           final AST!.Exp a = new AST.Exp();
           final AST!.Exp b = new AST.Exp();
           final AST!.Binary root = new AST.Binary { l = a, r = b };
           final ASTDisplay!.Binary d = (view ASTDisplay!.Binary)root;
           print d.l == a;
         }";
    let checked = checked(src);
    let mut m = Machine::new(&checked);
    m.run().unwrap();
    assert_eq!(m.check_config(), Vec::<String>::new());
    assert_eq!(m.output, vec!["true"]);
}

/// Implicit view changes happen lazily, on field access (§6.3).
#[test]
fn implicit_view_changes_are_lazy_and_counted() {
    let src = "class F1 {
           class N { int depth() { return 1; } }
           class Cons extends N { F1[this.class].N next; }
         }
         class F2 extends F1 adapts F1 {
           class N { int depth() { return 2; } }
         }
         main {
           final F1!.N a = new F1.N();
           final F1!.Cons b = new F1.Cons { next = a };
           final F2!.Cons b2 = (view F2!.Cons)b;
           print b2.depth();
           print b2.next.depth();
         }";
    let checked = checked(src);
    let mut m = Machine::new(&checked);
    m.run().unwrap();
    assert_eq!(m.output, vec!["2", "2"]);
    assert_eq!(m.stats.views_explicit, 1);
}

/// Fuel limits stop runaway programs with a benign error.
#[test]
fn fuel_is_enforced() {
    let src = "main { while (true) { print 1; } }";
    let prog = jns_syntax::parse(src).unwrap();
    let checked = jns_types::check(&prog).unwrap();
    let mut m = Machine::new(&checked).with_fuel(1000);
    assert_eq!(m.run().unwrap_err(), RtError::OutOfFuel);
}

/// Arithmetic and strings work end to end.
#[test]
fn primitives_end_to_end() {
    let out = run("main {
           final int a = 6;
           final int b = 7;
           print a * b;
           print \"x\" + \"y\";
           print 10 % 3;
           print (1 < 2) && !(3 == 4);
         }");
    assert_eq!(out, vec!["42", "xy", "1", "true"]);
}

/// While loops and conditionals compute.
#[test]
fn loops_compute() {
    let out = run("class Counter { class Cell { int v = 0; } }
         main {
           final Counter.Cell c = new Counter.Cell();
           while (c.v < 10) { c.v = c.v + 1; }
           print c.v;
         }");
    assert_eq!(out, vec!["10"]);
}

/// Direct machine-API tests: alloc / view / fclass without surface syntax.
mod machine_api {
    use jns_eval::{Machine, Value};

    fn program() -> jns_types::CheckedProgram {
        let prog = jns_syntax::parse(
            "class A1 {
               class D { int tag = 1; }
               class C { D g = new D(); int probe() { return this.g.tag; } }
             }
             class A2 extends A1 {
               class D shares A1.D { }
               class E extends D { int extra = 2; }
               class C shares A1.C\\g { int probe() { return 100 + this.g.tag; } }
             }
             main { print 0; }",
        )
        .unwrap();
        jns_types::check(&prog).unwrap()
    }

    #[test]
    fn alloc_runs_field_initialisers() {
        let p = program();
        let mut m = Machine::new(&p);
        let c = p
            .table
            .lookup_path(&[p.table.intern("A1"), p.table.intern("C")])
            .unwrap();
        let v = m.alloc(c, vec![]).unwrap();
        let r = v.as_ref_val().unwrap().clone();
        assert!(r.masks.is_empty(), "all fields initialised: {:?}", r.masks);
        let g = p.table.intern("g");
        let gv = m.get_field(&r, g).unwrap();
        assert!(matches!(gv, Value::Ref(_)));
    }

    #[test]
    fn view_function_finds_unique_partner() {
        let p = program();
        let mut m = Machine::new(&p);
        let a1c = p
            .table
            .lookup_path(&[p.table.intern("A1"), p.table.intern("C")])
            .unwrap();
        let a2c = p
            .table
            .lookup_path(&[p.table.intern("A2"), p.table.intern("C")])
            .unwrap();
        let v = m.alloc(a1c, vec![]).unwrap();
        let r = v.as_ref_val().unwrap().clone();
        let target = jns_types::Ty::Class(a2c).exact();
        let viewed = m
            .apply_view(r.clone(), &target, Default::default())
            .unwrap();
        assert_eq!(viewed.loc, r.loc);
        assert_eq!(viewed.view, a2c);
        // Method dispatch through the new view runs A2's override and the
        // forwarded read of g (§3.3).
        let probe = p.table.intern("probe");
        let out = m.call(viewed, probe, vec![]).unwrap();
        assert_eq!(out, Value::Int(101));
    }

    #[test]
    fn view_to_unrelated_class_fails() {
        let p = program();
        let mut m = Machine::new(&p);
        let a1c = p
            .table
            .lookup_path(&[p.table.intern("A1"), p.table.intern("C")])
            .unwrap();
        let a1d = p
            .table
            .lookup_path(&[p.table.intern("A1"), p.table.intern("D")])
            .unwrap();
        let v = m.alloc(a1c, vec![]).unwrap();
        let r = v.as_ref_val().unwrap().clone();
        let target = jns_types::Ty::Class(a1d).exact();
        assert!(m.apply_view(r, &target, Default::default()).is_err());
    }

    #[test]
    fn stats_count_allocations_and_calls() {
        let p = program();
        let mut m = Machine::new(&p);
        let a1c = p
            .table
            .lookup_path(&[p.table.intern("A1"), p.table.intern("C")])
            .unwrap();
        let v = m.alloc(a1c, vec![]).unwrap();
        let r = v.as_ref_val().unwrap().clone();
        let probe = p.table.intern("probe");
        m.call(r, probe, vec![]).unwrap();
        assert_eq!(m.stats.allocs, 2, "C plus its D initialiser");
        assert!(m.stats.calls >= 1);
    }
}
