//! Host-node families over the `jns-rt` object model, mirroring the ported
//! CorONA of §7.4:
//!
//! * family `corona` — plain DHT lookups, no caching;
//! * family `pccorona` — **PC-Pastry** passive caching: responses are
//!   cached along the lookup path;
//! * family `beecorona` — **Beehive** proactive replication: a replication
//!   manager (a *new, unshared field*, masked at evolution time) decides
//!   which objects to replicate based on popularity.
//!
//! Host-node classes are shared between the three families, so a running
//! system evolves from one to another through view changes that preserve
//! node identity and cache state.

use jns_rt::{ClassId, MethodId, ObjRef, Runtime, Strategy, Val};

/// Cache slots per node (direct-mapped by key).
pub const CACHE_SLOTS: usize = 16;
const SLOT_FIELDS: [&str; CACHE_SLOTS] = [
    "k0", "k1", "k2", "k3", "k4", "k5", "k6", "k7", "k8", "k9", "k10", "k11", "k12", "k13", "k14",
    "k15",
];

const M_LOOKUP: MethodId = MethodId(0);
const M_STORE: MethodId = MethodId(1);

/// The three behavioural phases a node can be in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// No caching.
    Corona,
    /// Passive caching along response paths.
    PcCorona,
    /// Popularity-driven proactive replication.
    BeeCorona,
}

/// The host-node object world.
#[derive(Debug)]
pub struct Hosts {
    /// The underlying object model (public for stats).
    pub rt: Runtime,
    fam_corona: u32,
    fam_pc: u32,
    fam_bee: u32,
    #[allow(dead_code)]
    node_corona: ClassId,
    #[allow(dead_code)]
    node_pc: ClassId,
    node_bee: ClassId,
    manager: ClassId,
    /// Current references to the host nodes (re-viewed by evolution).
    pub nodes: Vec<ObjRef>,
}

fn slot_of(key: u64) -> &'static str {
    SLOT_FIELDS[(key % CACHE_SLOTS as u64) as usize]
}

impl Hosts {
    /// Builds `n` host nodes, initially in the plain `corona` family.
    pub fn new(n: usize) -> Self {
        let mut rt = Runtime::new(Strategy::SharedFamily);
        let fam_corona = rt.family();
        let fam_pc = rt.family();
        let fam_bee = rt.family();
        let m_lookup = rt.method("lookup");
        let m_store = rt.method("store");
        assert_eq!((m_lookup, m_store), (M_LOOKUP, M_STORE));

        // lookup(key) -> 1 if served locally (cache/replica hit).
        let cache_probe: jns_rt::MethodFn = |rt, r, a| {
            let key = a[0].int();
            let f = slot_of(key as u64);
            Val::Int(i64::from(rt.get(r, f) == Val::Int(key)))
        };
        let node_corona = rt
            .class("corona.HostNode", fam_corona)
            .fields(&SLOT_FIELDS)
            .fields(&["id", "hits"])
            // No caching: lookups never hit locally, stores are ignored.
            .method(M_LOOKUP, |_rt, _r, _a| Val::Int(0))
            .method(M_STORE, |_rt, _r, _a| Val::Nil)
            .build();
        let node_pc = rt
            .class("pccorona.HostNode", fam_pc)
            .extends(node_corona)
            .shares(node_corona)
            .method(M_LOOKUP, cache_probe)
            // Passive caching: remember everything that passes through.
            .method(M_STORE, |rt, r, a| {
                let key = a[0].int();
                rt.set(r, slot_of(key as u64), Val::Int(key));
                Val::Nil
            })
            .build();
        let manager = rt
            .class("beecorona.ReplicaManager", fam_bee)
            .fields(&["threshold", "replicated"])
            .build();
        let node_bee = rt
            .class("beecorona.HostNode", fam_bee)
            .extends(node_corona)
            .shares(node_corona)
            // New, unshared field: the replication manager (§7.4: "masked
            // types ensure that they are initialized in the evolved
            // system").
            .fields(&["mgr"])
            .method(M_LOOKUP, cache_probe)
            // Proactive: store only objects the manager deems popular.
            .method(M_STORE, |rt, r, a| {
                let key = a[0].int();
                let popularity = a[1].int();
                let mgr = rt.get(r, "mgr").obj().expect("manager initialised");
                let thr = rt.get(mgr, "threshold").int();
                if popularity >= thr {
                    rt.set(r, slot_of(key as u64), Val::Int(key));
                    let n = rt.get(mgr, "replicated").int();
                    rt.set(mgr, "replicated", Val::Int(n + 1));
                }
                Val::Nil
            })
            .build();
        let nodes: Vec<ObjRef> = (0..n)
            .map(|i| {
                let o = rt.alloc(node_corona);
                rt.set(o, "id", Val::Int(i as i64));
                rt.set(o, "hits", Val::Int(0));
                o
            })
            .collect();
        Hosts {
            rt,
            fam_corona,
            fam_pc,
            fam_bee,
            node_corona,
            node_pc,
            node_bee,
            manager,
            nodes,
        }
    }

    /// The family the node references currently view.
    pub fn family(&self) -> Family {
        let f = self.nodes.first().map(|r| r.view);
        match f {
            Some(v) if v == self.node_bee => Family::BeeCorona,
            Some(v) if self.rt.is_subclass(v, self.node_corona) && v != self.node_corona => {
                Family::PcCorona
            }
            _ => Family::Corona,
        }
    }

    /// Evolves every host node to the given family via view changes —
    /// the §7.4 evolution: only the top-level node objects are touched
    /// explicitly; for Beehive, the unshared `mgr` field is initialised
    /// right after the view change (mask discipline).
    pub fn evolve(&mut self, target: Family) {
        let fam = match target {
            Family::Corona => self.fam_corona,
            Family::PcCorona => self.fam_pc,
            Family::BeeCorona => self.fam_bee,
        };
        let nodes = std::mem::take(&mut self.nodes);
        self.nodes = nodes
            .into_iter()
            .map(|r| {
                let nr = self.rt.view_as(r, fam);
                if target == Family::BeeCorona {
                    let mgr = self.rt.alloc(self.manager);
                    self.rt.set(mgr, "threshold", Val::Int(0));
                    self.rt.set(mgr, "replicated", Val::Int(0));
                    self.rt.set(nr, "mgr", Val::Obj(mgr));
                }
                nr
            })
            .collect();
    }

    /// Sets the Beehive popularity threshold on every node's manager.
    pub fn set_threshold(&mut self, thr: i64) {
        for &n in &self.nodes {
            if let Some(mgr) = self.rt.get(n, "mgr").obj() {
                self.rt.set(mgr, "threshold", Val::Int(thr));
            }
        }
    }

    /// Performs a lookup along `path` (node indices). Returns the number
    /// of hops consumed before a local hit or the home node answered.
    /// On the way back, offers the object to every traversed node
    /// (`store`, with the object's popularity rank).
    pub fn lookup(&mut self, path: &[usize], key: u64, popularity: i64) -> usize {
        let mut served_at = path.len() - 1;
        for (i, &n) in path.iter().enumerate() {
            let node = self.nodes[n];
            if i == path.len() - 1
                || self.rt.call(node, M_LOOKUP, &[Val::Int(key as i64)]).int() == 1
            {
                served_at = i;
                let h = self.rt.get(node, "hits").int();
                self.rt.set(node, "hits", Val::Int(h + 1));
                break;
            }
        }
        // Response path: offer the object for caching/replication.
        for &n in &path[..served_at] {
            let node = self.nodes[n];
            self.rt
                .call(node, M_STORE, &[Val::Int(key as i64), Val::Int(popularity)]);
        }
        served_at
    }

    /// Proactively replicates `key` at all nodes (Beehive level-0 push for
    /// top-popularity objects).
    pub fn replicate_everywhere(&mut self, key: u64, popularity: i64) {
        let nodes = self.nodes.clone();
        for node in nodes {
            self.rt
                .call(node, M_STORE, &[Val::Int(key as i64), Val::Int(popularity)]);
        }
    }

    /// Total cache hits recorded across nodes.
    pub fn total_hits(&mut self) -> i64 {
        let nodes = self.nodes.clone();
        nodes.iter().map(|&n| self.rt.get(n, "hits").int()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_in_plain_corona() {
        let h = Hosts::new(8);
        assert_eq!(h.family(), Family::Corona);
    }

    #[test]
    fn plain_corona_never_caches() {
        let mut h = Hosts::new(4);
        let path = [0usize, 1, 2, 3];
        let hops1 = h.lookup(&path, 99, 10);
        let hops2 = h.lookup(&path, 99, 10);
        assert_eq!(hops1, 3);
        assert_eq!(hops2, 3, "no caching in the base family");
    }

    #[test]
    fn pccorona_caches_on_response_path() {
        let mut h = Hosts::new(4);
        h.evolve(Family::PcCorona);
        assert_eq!(h.family(), Family::PcCorona);
        let path = [0usize, 1, 2, 3];
        assert_eq!(h.lookup(&path, 99, 0), 3, "first lookup goes to home");
        assert_eq!(h.lookup(&path, 99, 0), 0, "second lookup hits first hop");
    }

    #[test]
    fn evolution_preserves_node_identity_and_state() {
        let mut h = Hosts::new(4);
        h.evolve(Family::PcCorona);
        let before: Vec<u32> = h.nodes.iter().map(|r| r.inst).collect();
        let path = [0usize, 1, 2, 3];
        h.lookup(&path, 42, 0); // warms caches
        h.evolve(Family::BeeCorona);
        let after: Vec<u32> = h.nodes.iter().map(|r| r.inst).collect();
        assert_eq!(before, after, "same instances, new views");
        // Cache slots are *shared* fields: the passive-cache contents
        // survive the evolution.
        assert_eq!(h.lookup(&path, 42, 0), 0, "cache entry survived evolution");
    }

    #[test]
    fn beehive_replicates_only_popular_objects() {
        let mut h = Hosts::new(4);
        h.evolve(Family::BeeCorona);
        h.set_threshold(5);
        let path = [0usize, 1, 2, 3];
        h.lookup(&path, 7, 1); // unpopular: not replicated
        assert_eq!(h.lookup(&path, 7, 1), 3);
        h.lookup(&path, 8, 9); // popular: replicated on response
        assert_eq!(h.lookup(&path, 8, 9), 0);
    }
}
