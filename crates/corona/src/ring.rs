//! A deterministic **Pastry-style DHT ring**: 64-bit node ids routed by
//! 4-bit digit prefix matching, giving O(log16 N) hops. This is the
//! substrate that Beehive and PC-Pastry extend (§7.4; Rowstron & Druschel
//! 2001, Ramasubramanian & Sirer 2004).

/// Number of bits per routing digit.
pub const DIGIT_BITS: u32 = 4;
/// Number of digits in an id.
pub const DIGITS: u32 = 64 / DIGIT_BITS;

/// Extracts the `i`-th digit (most significant first).
pub fn digit(id: u64, i: u32) -> u64 {
    (id >> (64 - DIGIT_BITS * (i + 1))) & ((1 << DIGIT_BITS) - 1)
}

/// Length of the shared digit prefix of two ids.
pub fn shared_prefix(a: u64, b: u64) -> u32 {
    for i in 0..DIGITS {
        if digit(a, i) != digit(b, i) {
            return i;
        }
    }
    DIGITS
}

/// A Pastry ring over a fixed node set.
#[derive(Debug)]
pub struct Ring {
    /// Sorted node ids.
    pub nodes: Vec<u64>,
    /// routing\[n\]\[row\]\[col\] = index of a node matching `row` digits of
    /// n's id and having digit `col` at position `row` (or `usize::MAX`).
    routing: Vec<Vec<Vec<usize>>>,
    rows: u32,
}

impl Ring {
    /// Builds a ring with `n` nodes, ids derived deterministically from
    /// `seed`.
    pub fn new(n: usize, seed: u64) -> Self {
        let mut ids: Vec<u64> = (0..n as u64)
            .map(|i| splitmix(seed.wrapping_add(i)))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        let rows = {
            // Enough rows that routing always terminates.
            let mut r: u32 = 1;
            while (1usize << (DIGIT_BITS * r)) < ids.len() * 16 && r < DIGITS {
                r += 1;
            }
            (r + 2).min(DIGITS)
        };
        let mut ring = Ring {
            routing: Vec::new(),
            nodes: ids,
            rows,
        };
        ring.build_tables();
        ring
    }

    fn build_tables(&mut self) {
        let n = self.nodes.len();
        let cols = 1usize << DIGIT_BITS;
        self.routing = vec![vec![vec![usize::MAX; cols]; self.rows as usize]; n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let p = shared_prefix(self.nodes[i], self.nodes[j]);
                if p >= self.rows {
                    continue;
                }
                let col = digit(self.nodes[j], p) as usize;
                let slot = &mut self.routing[i][p as usize][col];
                // Prefer the numerically closest candidate (deterministic).
                if *slot == usize::MAX || closer(self.nodes[j], self.nodes[*slot], self.nodes[i]) {
                    *slot = j;
                }
            }
        }
    }

    /// The index of the node responsible for `key` (numerically closest).
    pub fn home_of(&self, key: u64) -> usize {
        let mut best = 0;
        for (i, &id) in self.nodes.iter().enumerate() {
            if id.abs_diff(key) < self.nodes[best].abs_diff(key) {
                best = i;
            }
        }
        best
    }

    /// Routes from node index `from` towards `key`; returns the node-index
    /// path including `from` and the home node.
    pub fn route(&self, from: usize, key: u64) -> Vec<usize> {
        let home = self.home_of(key);
        let mut path = vec![from];
        let mut cur = from;
        let mut guard = 0;
        while cur != home {
            guard += 1;
            if guard > 64 {
                break;
            }
            let p = shared_prefix(self.nodes[cur], self.nodes[home]);
            let next = if p < self.rows {
                let col = digit(self.nodes[home], p) as usize;
                let cand = self.routing[cur][p as usize][col];
                if cand != usize::MAX {
                    cand
                } else {
                    home
                }
            } else {
                home
            };
            if next == cur {
                break;
            }
            path.push(next);
            cur = next;
        }
        if *path.last().expect("nonempty") != home {
            path.push(home);
        }
        path
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

fn closer(a: u64, b: u64, target: u64) -> bool {
    a.abs_diff(target) < b.abs_diff(target)
}

/// splitmix64: deterministic id generation.
pub fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digits_roundtrip() {
        let id = 0x123456789abcdef0u64;
        assert_eq!(digit(id, 0), 0x1);
        assert_eq!(digit(id, 1), 0x2);
        assert_eq!(digit(id, 15), 0x0);
    }

    #[test]
    fn shared_prefix_basics() {
        assert_eq!(shared_prefix(0, 0), DIGITS);
        assert_eq!(shared_prefix(0, 1 << 60), 0);
        let a = 0xab00000000000000u64;
        let b = 0xab10000000000000u64;
        assert_eq!(shared_prefix(a, b), 2);
    }

    #[test]
    fn routes_terminate_at_home() {
        let ring = Ring::new(128, 42);
        for q in 0..200u64 {
            let key = splitmix(q * 7 + 1);
            let from = (q as usize * 13) % ring.len();
            let path = ring.route(from, key);
            assert_eq!(*path.last().unwrap(), ring.home_of(key));
            assert!(path.len() <= 12, "path too long: {}", path.len());
        }
    }

    #[test]
    fn routing_is_logarithmic_on_average() {
        let ring = Ring::new(512, 7);
        let mut total = 0usize;
        let q = 500;
        for i in 0..q {
            let key = splitmix(i as u64 + 1000);
            let path = ring.route(i % ring.len(), key);
            total += path.len() - 1;
        }
        let avg = total as f64 / q as f64;
        assert!(avg < 6.0, "expected few hops for 512 nodes, got {avg}");
        assert!(avg > 1.0);
    }

    #[test]
    fn prefix_improves_along_path() {
        let ring = Ring::new(256, 9);
        let key = splitmix(77);
        let home = ring.home_of(key);
        let path = ring.route(3, key);
        let mut last = 0;
        for w in path.windows(2) {
            let p = shared_prefix(ring.nodes[w[1]], ring.nodes[home]);
            assert!(
                p >= last || w[1] == home,
                "prefix must not regress (except final home hop)"
            );
            last = p;
        }
    }
}
