//! The CorONA **feed aggregation** layer (Ramasubramanian, Peterson &
//! Sirer, NSDI 2006): web feeds polled cooperatively by DHT nodes.
//! Simplified to the piece the §7.4 experiment needs: feeds with update
//! intervals, polling allocation across nodes, and the resulting update
//! detection latency.

use crate::ring::{splitmix, Ring};

/// A syndicated feed.
#[derive(Debug, Clone)]
pub struct Feed {
    /// DHT key of the feed (hash of its URL).
    pub key: u64,
    /// Mean interval between updates, in ticks.
    pub update_interval: u32,
    /// Number of subscribers (drives popularity).
    pub subscribers: u32,
}

/// A cooperative polling allocation: how many nodes poll each feed.
#[derive(Debug)]
pub struct PollingPlan {
    /// pollers\[i\] = number of nodes polling feed i.
    pub pollers: Vec<u32>,
    /// Total polling slots used.
    pub total: u32,
}

/// Builds a deterministic feed population with Zipf-ish subscriber counts.
pub fn make_feeds(n: usize, seed: u64) -> Vec<Feed> {
    (0..n)
        .map(|i| {
            let key = splitmix(seed.wrapping_add(i as u64 * 31));
            Feed {
                key,
                update_interval: 10 + (splitmix(key) % 290) as u32,
                subscribers: (1000.0 / (i as f64 + 1.0)).ceil() as u32,
            }
        })
        .collect()
}

/// Uniform allocation: every feed polled by the same number of nodes
/// (legacy client-side polling behaviour).
pub fn uniform_plan(feeds: &[Feed], budget: u32) -> PollingPlan {
    let per = (budget / feeds.len().max(1) as u32).max(1);
    PollingPlan {
        pollers: vec![per; feeds.len()],
        total: per * feeds.len() as u32,
    }
}

/// CorONA's allocation: polling slots proportional to sqrt(popularity),
/// which minimises aggregate detection latency for a fixed budget.
pub fn corona_plan(feeds: &[Feed], budget: u32) -> PollingPlan {
    let weights: Vec<f64> = feeds
        .iter()
        .map(|f| (f.subscribers as f64).sqrt())
        .collect();
    let wsum: f64 = weights.iter().sum();
    let mut pollers: Vec<u32> = weights
        .iter()
        .map(|w| ((w / wsum) * budget as f64).round().max(1.0) as u32)
        .collect();
    let total: u32 = pollers.iter().sum();
    // Trim overshoot deterministically from the least popular feeds.
    let mut excess = total as i64 - budget as i64;
    let mut i = feeds.len();
    while excess > 0 && i > 0 {
        i -= 1;
        if pollers[i] > 1 {
            pollers[i] -= 1;
            excess -= 1;
        }
        if i == 0 && excess > 0 {
            i = feeds.len();
        }
    }
    let total: u32 = pollers.iter().sum();
    PollingPlan { pollers, total }
}

/// Expected update-detection latency under a plan: each poller polls once
/// per `period` ticks at a random phase, so detection latency for feed i
/// is `period / (pollers_i + 1)` on average; we weight by subscribers
/// (every subscriber experiences the latency).
pub fn weighted_latency(feeds: &[Feed], plan: &PollingPlan, period: f64) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for (f, &p) in feeds.iter().zip(&plan.pollers) {
        let lat = period / (p as f64 + 1.0);
        num += lat * f.subscribers as f64;
        den += f.subscribers as f64;
    }
    num / den.max(1.0)
}

/// Maps each feed to its home node on the ring.
pub fn assign_homes(feeds: &[Feed], ring: &Ring) -> Vec<usize> {
    feeds.iter().map(|f| ring.home_of(f.key)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corona_plan_beats_uniform_latency() {
        let feeds = make_feeds(100, 7);
        let uni = uniform_plan(&feeds, 400);
        let cor = corona_plan(&feeds, 400);
        let lu = weighted_latency(&feeds, &uni, 300.0);
        let lc = weighted_latency(&feeds, &cor, 300.0);
        assert!(
            lc < lu,
            "cooperative polling must reduce weighted latency ({lc} vs {lu})"
        );
    }

    #[test]
    fn plans_respect_budget_roughly() {
        let feeds = make_feeds(50, 3);
        let cor = corona_plan(&feeds, 200);
        assert!(cor.total <= 210, "{}", cor.total);
        assert!(cor.pollers.iter().all(|&p| p >= 1));
    }

    #[test]
    fn popular_feeds_get_more_pollers() {
        let feeds = make_feeds(50, 3);
        let cor = corona_plan(&feeds, 200);
        assert!(cor.pollers[0] > cor.pollers[49]);
    }

    #[test]
    fn homes_are_stable() {
        let feeds = make_feeds(20, 11);
        let ring = crate::ring::Ring::new(64, 5);
        let h1 = assign_homes(&feeds, &ring);
        let h2 = assign_homes(&feeds, &ring);
        assert_eq!(h1, h2);
    }
}
