//! # corona
//!
//! Reproduction substrate for §7.4 of *Sharing Classes Between Families*:
//! a simulated Pastry DHT ring, the CorONA feed-aggregation layer, and the
//! **runtime evolution experiment** — a running PCCorONA system (passive
//! caching) evolves into BeeCorONA (Beehive-style proactive replication)
//! through view changes on the live host-node objects, preserving node
//! identity and cache state.
//!
//! # Examples
//!
//! ```
//! use corona::{run_evolution, ExperimentConfig};
//!
//! let report = run_evolution(ExperimentConfig {
//!     nodes: 32,
//!     objects: 100,
//!     queries: 500,
//!     zipf: 1.0,
//!     seed: 7,
//! });
//! assert!(report.identity_preserved);
//! assert!(report.active.avg_hops <= report.plain.avg_hops);
//! ```

#![warn(missing_docs)]

pub mod feeds;
pub mod hosts;
pub mod ring;

pub use hosts::{Family, Hosts};
pub use ring::Ring;

use ring::splitmix;

/// Parameters of the evolution experiment.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// DHT nodes.
    pub nodes: usize,
    /// Distinct objects (feeds).
    pub objects: usize,
    /// Queries per phase.
    pub queries: usize,
    /// Zipf exponent of the query distribution.
    pub zipf: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            nodes: 128,
            objects: 1000,
            queries: 5000,
            zipf: 1.0,
            seed: 42,
        }
    }
}

/// Per-phase measurements.
#[derive(Debug, Clone, Copy)]
pub struct PhaseReport {
    /// Mean lookup hops.
    pub avg_hops: f64,
    /// Fraction of lookups served before reaching the home node.
    pub early_hit_rate: f64,
}

/// The full experiment report (compare with §7.4's narrative).
#[derive(Debug)]
pub struct EvolutionReport {
    /// Phase 1: plain corona (no caching).
    pub plain: PhaseReport,
    /// Phase 2: PCCorONA (passive caching).
    pub passive: PhaseReport,
    /// Phase 3: BeeCorONA (proactive replication), after evolution.
    pub active: PhaseReport,
    /// Host-node objects explicitly re-viewed by the evolution.
    pub nodes_touched: usize,
    /// Implicit view changes performed lazily by the object model.
    pub implicit_views: u64,
    /// Whether all node identities survived both evolutions.
    pub identity_preserved: bool,
}

/// Draws a Zipf-distributed object index.
fn zipf_index(u: f64, cdf: &[f64]) -> usize {
    match cdf.binary_search_by(|p| p.partial_cmp(&u).expect("finite")) {
        Ok(i) => i,
        Err(i) => i.min(cdf.len() - 1),
    }
}

/// Runs the §7.4 evolution experiment.
pub fn run_evolution(cfg: ExperimentConfig) -> EvolutionReport {
    let ring = Ring::new(cfg.nodes, cfg.seed);
    let n = ring.len();
    let mut hosts = Hosts::new(n);
    let ids_before: Vec<u32> = hosts.nodes.iter().map(|r| r.inst).collect();

    // Objects and their Zipf popularity.
    let keys: Vec<u64> = (0..cfg.objects)
        .map(|i| splitmix(cfg.seed ^ (i as u64 * 977)))
        .collect();
    let mut weights: Vec<f64> = (0..cfg.objects)
        .map(|i| 1.0 / ((i + 1) as f64).powf(cfg.zipf))
        .collect();
    let wsum: f64 = weights.iter().sum();
    let mut acc = 0.0;
    for w in &mut weights {
        acc += *w / wsum;
        *w = acc;
    }
    let cdf = weights;
    // Popularity rank as an integer score (higher = more popular).
    let pop_score = |i: usize| (cfg.objects - i) as i64;

    let mut rng = cfg.seed ^ 0xdead;
    let mut unit = move || {
        rng = splitmix(rng);
        (rng >> 11) as f64 / (1u64 << 53) as f64
    };

    let phase = |hosts: &mut Hosts, queries: usize, unit: &mut dyn FnMut() -> f64| {
        let mut hops = 0usize;
        let mut early = 0usize;
        for q in 0..queries {
            let oi = zipf_index(unit(), &cdf);
            let key = keys[oi];
            let from = (q * 31 + 7) % n;
            let path = ring.route(from, key);
            let served = hosts.lookup(&path, key, pop_score(oi));
            hops += served;
            if served < path.len() - 1 {
                early += 1;
            }
        }
        PhaseReport {
            avg_hops: hops as f64 / queries as f64,
            early_hit_rate: early as f64 / queries as f64,
        }
    };

    // Phase 1: plain corona.
    let plain = phase(&mut hosts, cfg.queries, &mut unit);
    // Phase 2: evolve to PCCorONA at run time, keep serving.
    hosts.evolve(Family::PcCorona);
    let passive = phase(&mut hosts, cfg.queries, &mut unit);
    // Phase 3: evolve to BeeCorONA; the replication controller pushes the
    // top 1% of objects everywhere (Beehive level-0) and sets a popularity
    // threshold for response-path replication.
    hosts.evolve(Family::BeeCorona);
    let thr = (cfg.objects as f64 * 0.9) as i64;
    hosts.set_threshold(thr);
    for (i, key) in keys.iter().enumerate().take((cfg.objects / 100).max(1)) {
        hosts.replicate_everywhere(*key, pop_score(i));
    }
    let active = phase(&mut hosts, cfg.queries, &mut unit);

    let ids_after: Vec<u32> = hosts.nodes.iter().map(|r| r.inst).collect();
    EvolutionReport {
        plain,
        passive,
        active,
        nodes_touched: n * 2, // two evolutions
        implicit_views: hosts.rt.stats.views_implicit,
        identity_preserved: ids_before == ids_after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evolution_improves_lookup_latency() {
        let report = run_evolution(ExperimentConfig {
            nodes: 64,
            objects: 200,
            queries: 2000,
            zipf: 1.0,
            seed: 7,
        });
        assert!(
            report.passive.avg_hops < report.plain.avg_hops,
            "passive caching must help: {:?} vs {:?}",
            report.passive,
            report.plain
        );
        assert!(
            report.active.avg_hops < report.passive.avg_hops,
            "active replication must beat passive caching: {:?} vs {:?}",
            report.active,
            report.passive
        );
        assert!(report.identity_preserved);
    }

    #[test]
    fn evolution_touches_only_top_level_nodes() {
        let report = run_evolution(ExperimentConfig {
            nodes: 32,
            objects: 100,
            queries: 500,
            zipf: 1.1,
            seed: 3,
        });
        assert_eq!(report.nodes_touched, 64);
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = ExperimentConfig::default();
        let a = run_evolution(cfg);
        let b = run_evolution(cfg);
        assert_eq!(a.plain.avg_hops, b.plain.avg_hops);
        assert_eq!(a.active.avg_hops, b.active.avg_hops);
    }
}
