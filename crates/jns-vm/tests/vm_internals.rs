//! VM-specific behaviour: the direct machine API, cache warm-up, layout
//! sharing across views, fuel, and call-depth limits.

use jns_eval::{RtError, Value};
use jns_vm::{compile, Vm};

fn checked(src: &str) -> jns_types::CheckedProgram {
    let prog = jns_syntax::parse(src).unwrap();
    jns_types::check(&prog).unwrap_or_else(|e| {
        panic!(
            "{}",
            e.iter()
                .map(|x| x.message.clone())
                .collect::<Vec<_>>()
                .join("\n")
        )
    })
}

fn sharing_program() -> jns_types::CheckedProgram {
    checked(
        "class A1 {
           class D { int tag = 1; }
           class C { D g = new D(); int probe() { return this.g.tag; } }
         }
         class A2 extends A1 {
           class D shares A1.D { }
           class E extends D { int extra = 2; }
           class C shares A1.C\\g { int probe() { return 100 + this.g.tag; } }
         }
         main { print 0; }",
    )
}

/// Direct API: alloc runs initialisers, view finds the unique partner,
/// dispatch through the new view runs the override with §3.3 forwarding —
/// the same contract as `Machine`'s API tests.
#[test]
fn direct_api_alloc_view_call() {
    let p = sharing_program();
    let code = compile(&p);
    let mut vm = Vm::new(&p, &code);
    let a1c = p
        .table
        .lookup_path(&[p.table.intern("A1"), p.table.intern("C")])
        .unwrap();
    let a2c = p
        .table
        .lookup_path(&[p.table.intern("A2"), p.table.intern("C")])
        .unwrap();
    let v = vm.alloc(a1c, vec![]).unwrap();
    let r = v.as_ref_val().unwrap().clone();
    assert!(r.masks.is_empty(), "all fields initialised: {:?}", r.masks);
    // Dispatch through the allocation view: A1's probe.
    let probe = p.table.intern("probe");
    let out = vm.call(r.clone(), probe, vec![]).unwrap();
    assert_eq!(out, Value::Int(1));
    assert_eq!(vm.stats.allocs, 2, "C plus its D initialiser");
    // Re-view at A2.C: same location, partner view; dispatch runs A2's
    // override, and the read of `g` forwards to the base copy (§3.3).
    let target = jns_types::Ty::Class(a2c).exact();
    let viewed = vm.view_as(r.clone(), &target, Default::default()).unwrap();
    assert_eq!(viewed.loc, r.loc);
    assert_eq!(viewed.view, a2c);
    assert_eq!(vm.call(viewed, probe, vec![]).unwrap(), Value::Int(101));
    // Viewing to an unrelated class fails benignly.
    let a1d = p
        .table
        .lookup_path(&[p.table.intern("A1"), p.table.intern("D")])
        .unwrap();
    let bad = jns_types::Ty::Class(a1d).exact();
    assert!(vm.view_as(r.clone(), &bad, Default::default()).is_err());
    // The tree-walk machine agrees on every result and count.
    let mut m = jns_eval::Machine::new(&p);
    let mv = m.alloc(a1c, vec![]).unwrap();
    let mr = mv.as_ref_val().unwrap().clone();
    assert_eq!(m.call(mr.clone(), probe, vec![]).unwrap(), Value::Int(1));
    let mviewed = m.apply_view(mr, &target, Default::default()).unwrap();
    assert_eq!(m.call(mviewed, probe, vec![]).unwrap(), Value::Int(101));
    assert_eq!(m.stats.allocs, vm.stats.allocs);
    assert_eq!(m.stats.calls, vm.stats.calls);
}

/// A polymorphic call site (two views flowing through one `GetField` +
/// `Call` site) stays correct once both cache entries are installed.
#[test]
fn polymorphic_call_sites() {
    let p = checked(
        "class Base { class C { int f() { return 1; } } }
         class Derived extends Base { class C shares Base.C { int f() { return 2; } } }
         main {
           final Base!.C a = new Base.C();
           final Derived!.C b = (view Derived!.C)a;
           final int r1 = a.f() + b.f();
           final int r2 = a.f() + b.f();
           final int r3 = a.f() + b.f();
           print r1 + r2 + r3;
         }",
    );
    let out = jns_vm::run(&p, None).unwrap();
    assert_eq!(out.output, vec!["9"]);
    assert_eq!(out.stats.calls, 6);
    assert_eq!(out.stats.views_explicit, 1);
}

/// Shared fields occupy one slot in the union layout: a write through one
/// view is visible through every partner view.
#[test]
fn union_layout_shares_slots_across_views() {
    let p = checked(
        "class A { class C { int x = 10; } }
         class B extends A { class C shares A.C { int get() { return this.x; } } }
         main {
           final A!.C a = new A.C();
           final B!.C b = (view B!.C)a;
           a.x = 42;
           print b.get();
           b.x = 7;
           print a.x;
         }",
    );
    let out = jns_vm::run(&p, None).unwrap();
    assert_eq!(out.output, vec!["42", "7"]);
}

/// Fuel interrupts runaway programs (measured in VM instructions).
#[test]
fn fuel_is_enforced() {
    let p = checked("main { while (true) { print 1; } }");
    let err = jns_vm::run(&p, Some(1000)).unwrap_err();
    assert_eq!(err, RtError::OutOfFuel);
    assert!(err.is_benign());
}

/// Unbounded recursion hits the configurable call-depth limit and raises
/// the benign `DepthExceeded` error. (The tree-walk interpreter shares
/// the default limit and error; since its explicit-stack rewrite, the
/// cross-backend differential suite asserts both backends report this
/// error identically.)
#[test]
fn deep_recursion_overflows_benignly() {
    let p = checked(
        "class A { class C { int go() { return this.go(); } } }
         main { final A.C c = new A.C(); print c.go(); }",
    );
    let err = jns_vm::run(&p, None).unwrap_err();
    assert_eq!(err, RtError::DepthExceeded(jns_eval::DEFAULT_MAX_DEPTH));
    assert!(err.is_benign());
    // A tighter limit cuts off sooner; a looser one lets deeper runs
    // finish (bounded by heap, not the host stack).
    let err = jns_vm::run_limited(&p, None, Some(10)).unwrap_err();
    assert_eq!(err, RtError::DepthExceeded(10));
}

/// Compilation is deterministic: two lowerings of the same program
/// produce identical instruction streams.
#[test]
fn compilation_is_deterministic() {
    let p = sharing_program();
    let c1 = compile(&p);
    let c2 = compile(&p);
    assert_eq!(c1.chunks.len(), c2.chunks.len());
    for (a, b) in c1.chunks.iter().zip(c2.chunks.iter()) {
        assert_eq!(a.name, b.name);
        assert_eq!(format!("{:?}", a.code), format!("{:?}", b.code));
    }
    assert_eq!(c1.n_field_ics, c2.n_field_ics);
    assert_eq!(c1.n_call_ics, c2.n_call_ics);
}

/// One compiled program can be executed many times, each run with fresh
/// caches and heap (the unit of reuse for batched execution).
#[test]
fn compiled_program_is_reusable() {
    let p = checked(
        "class K { class C { int v = 0; } }
         main {
           final K.C c = new K.C();
           while (c.v < 5) { c.v = c.v + 1; }
           print c.v;
         }",
    );
    let code = compile(&p);
    for _ in 0..3 {
        let mut vm = Vm::new(&p, &code);
        vm.run().unwrap();
        assert_eq!(vm.output, vec!["5"]);
        assert_eq!(vm.heap_size(), 1);
    }
}

/// Regression (ISSUE 2): the heap must not accumulate across top-level
/// invocations on a *reused* VM. `reset_for_request` reclaims the whole
/// previous region, so `heap_size()` after every run equals the size
/// after the first run — and locations (hence printed identities) are
/// reproduced exactly.
#[test]
fn heap_does_not_accumulate_across_invocations() {
    let p = checked(
        "class K { class C { int v = 0; } class D { C c = new C(); } }
         main {
           final K.D d = new K.D();
           final K.C e = new K.C();
           print d.c.v + e.v;
         }",
    );
    let code = compile(&p);
    let mut vm = Vm::new(&p, &code);
    vm.run().unwrap();
    let first = vm.heap_size();
    assert_eq!(first, 3, "D + its C initialiser + e");
    for round in 1..5 {
        let reclaimed = vm.reset_for_request();
        assert_eq!(reclaimed, first, "round {round} reclaims the region");
        vm.run().unwrap();
        assert_eq!(
            vm.heap_size(),
            first,
            "round {round}: heap grew across invocations"
        );
        assert_eq!(vm.output, vec!["0"], "round {round} output");
    }
}

/// `reset_for_request` keeps the monotone caches: the second request on
/// a warm VM resolves every site from its inline caches (zero misses).
#[test]
fn reused_vm_keeps_inline_caches_warm() {
    // A main that exercises field-read, field-write, and call sites.
    let p = checked(
        "class A1 {
           class D { int tag = 1; }
           class C { D g = new D(); int probe() { return this.g.tag; } }
         }
         main {
           final A1!.C c = new A1.C();
           print c.probe() + c.probe();
         }",
    );
    let code = compile(&p);
    let mut vm = Vm::new(&p, &code);
    vm.run().unwrap();
    let cold = vm.stats;
    assert!(cold.ic_misses > 0, "first run fills the caches");
    vm.reset_for_request();
    vm.run().unwrap();
    let warm = vm.stats;
    assert_eq!(warm.ic_misses, 0, "warm run misses nothing");
    assert_eq!(warm.ic_hits, cold.ic_hits + cold.ic_misses);
    assert_eq!(warm.semantic(), cold.semantic());
}

/// Profiling hook: per-chunk executed-instruction counts cover exactly
/// the executed chunks and sum to `Stats::steps`.
#[test]
fn per_chunk_profile_accounts_for_every_instruction() {
    let p = checked(
        "class A1 {
           class D { int tag = 1; }
           class C { D g = new D(); int probe() { return this.g.tag; } }
         }
         main {
           final A1!.C c = new A1.C();
           print c.probe();
         }",
    );
    let code = compile(&p);
    let mut vm = Vm::new(&p, &code);
    vm.run().unwrap();
    let profile = vm.profile();
    let names: Vec<&str> = profile.iter().map(|(n, _)| n.as_str()).collect();
    assert!(names.contains(&"main"));
    assert!(names.contains(&"A1.C.probe"));
    assert!(names.contains(&"A1.C.g="), "initialiser chunk is profiled");
    let total: u64 = profile.iter().map(|(_, n)| n).sum();
    assert_eq!(total, vm.stats.steps, "profile sums to the step counter");
}

/// Mask-set interning: repeated view transitions reuse pooled sets, so
/// distinct materialisations stay far below the number of transitions
/// (the tree-walker, which clones per transition, pays one each).
#[test]
fn mask_sets_are_interned_across_transitions() {
    let p = checked(
        "class A { class C { int x = 1; } }
         class B extends A { class C shares A.C { int get() { return this.x; } } }
         main {
           final A!.C a = new A.C();
           final B!.C b = (view B!.C)a;
           final B!.C b2 = (view B!.C)a;
           final B!.C b3 = (view B!.C)a;
           final A!.C a2 = (view A!.C)b;
           final A!.C a3 = (view A!.C)b2;
           print b.get() + b2.get() + b3.get();
         }",
    );
    let code = compile(&p);
    let mut vm = Vm::new(&p, &code);
    vm.run().unwrap();
    let s = vm.stats;
    let transitions = s.views_explicit + s.views_implicit;
    assert!(transitions >= 5, "workload re-views repeatedly");
    assert!(
        s.mask_allocs < transitions,
        "interning must beat one-alloc-per-transition: {} allocs for {} transitions",
        s.mask_allocs,
        transitions
    );
    // The reference interpreter pays one materialisation per transition
    // (plus two per allocation), so the VM must be strictly cheaper.
    let mut m = jns_eval::Machine::new(&p);
    m.run().unwrap();
    assert!(
        s.mask_allocs < m.stats.mask_allocs,
        "vm {} vs treewalk {}",
        s.mask_allocs,
        m.stats.mask_allocs
    );
}

/// Constant folding: all-literal int/bool operator trees lower to one
/// constant push, counted in `VmProgram::folded` and surfaced as
/// `Stats::folded`; runtime-dependent operands are left alone.
#[test]
fn literal_operator_trees_fold_at_lowering() {
    let p = checked(
        "main {
           print 1 + 2 * 3;
           print (10 % 3 == 1) && !(2 > 5);
           final int z = 5;
           print z + 1;
         }",
    );
    let code = compile(&p);
    // `+ *` (2) and `% == > ! &&` (5); `z + 1` must not fold.
    assert_eq!(code.folded, 7);
    let mut vm = Vm::new(&p, &code);
    vm.run().unwrap();
    assert_eq!(vm.output, vec!["7", "true", "6"]);
    assert_eq!(vm.stats.folded, 7);
}

/// Division and remainder by a literal zero are deliberately unfolded:
/// the runtime error must still fire at the same program point, keeping
/// the backends observably equivalent.
#[test]
fn division_by_literal_zero_is_not_folded() {
    let p = checked("main { print \"before\"; print 1 / 0; }");
    let code = compile(&p);
    assert_eq!(code.folded, 0);
    let mut vm = Vm::new(&p, &code);
    let err = vm.run().unwrap_err();
    assert_eq!(err, RtError::DivisionByZero);
    assert_eq!(vm.output, vec!["before"]);
}

/// Superinstruction fusion: the peephole collapses hot pairs/triples
/// (counted in `VmProgram::fused`), `CompileOptions { fuse: false }`
/// disables it entirely, and both lowerings print the same lines.
#[test]
fn fusion_is_a_compile_option() {
    let p = checked(
        "class A1 {
           class C { int v = 3; int get() { return this.v; } }
         }
         main {
           final A1!.C c = new A1.C();
           final int a = c.v + 1;
           final int b = c.get();
           print a + b;
         }",
    );
    let fused = compile(&p);
    assert!(fused.fused > 0, "Load+GetField / ConstInt+Bin never fused");
    let plain = jns_vm::compile_with(&p, jns_vm::CompileOptions { fuse: false });
    assert_eq!(plain.fused, 0, "fuse:false must leave the stream generic");
    let mut vf = Vm::new(&p, &fused);
    vf.run().unwrap();
    let mut vp = Vm::new(&p, &plain);
    vp.run().unwrap();
    assert_eq!(vf.output, vp.output);
    assert_eq!(vf.stats.fused, fused.fused, "stats mirror the program");
    assert!(
        vf.stats.steps < vp.stats.steps,
        "fused streams retire fewer instructions: {} vs {}",
        vf.stats.steps,
        vp.stats.steps
    );
}

/// Fusion around control flow: jump targets are remapped after the
/// peephole shrinks the stream, and fusion never swallows a jump target
/// (a branch may land *between* the instructions of a would-be pair).
#[test]
fn fused_branches_retarget_jumps() {
    let p = checked(
        "class A1 {
           class C { int v = 0; }
         }
         main {
           final A1!.C c = new A1.C();
           while (c.v < 10) {
             if (c.v % 2 == 0) { c.v = c.v + 3; } else { c.v = c.v - 1; }
           }
           print c.v;
         }",
    );
    let fused = compile(&p);
    assert!(fused.fused > 0, "the loop body has fusable shapes");
    let plain = jns_vm::compile_with(&p, jns_vm::CompileOptions { fuse: false });
    let mut vf = Vm::new(&p, &fused);
    vf.run().unwrap();
    let mut vp = Vm::new(&p, &plain);
    vp.run().unwrap();
    assert_eq!(vf.output, vp.output);
    assert_eq!(vf.output, vec!["11"]);
}

/// IC-guided quickening: a site monomorphic for `QUICKEN_AFTER`
/// consecutive resolutions is rewritten (counted in `Stats::quickened`),
/// `with_quickening(false)` disables the rewriter, and — because the
/// rewrite is strictly one instruction for one — even `steps` agree.
#[test]
fn quickening_is_a_vm_knob() {
    let p = checked(
        "class A1 {
           class C { int v = 0; int inc() { this.v = this.v + 1; return this.v; } }
         }
         main {
           final A1!.C c = new A1.C();
           while (c.v < 100) { final int x = c.inc(); }
           print c.v;
         }",
    );
    let code = compile(&p);
    let mut hot = Vm::new(&p, &code);
    hot.run().unwrap();
    assert!(hot.stats.quickened > 0, "hot sites must quicken");
    assert_eq!(hot.stats.dequickened, 0, "views never change here");
    let mut cold = Vm::new(&p, &code).with_quickening(false);
    cold.run().unwrap();
    assert_eq!(cold.stats.quickened, 0, "knob off: no rewrites");
    assert_eq!(hot.output, cold.output);
    assert_eq!(hot.stats.semantic(), cold.stats.semantic());
}
