//! The flat instruction set and compiled-program container.
//!
//! Design notes:
//!
//! - **Operand-stack machine.** Each checked expression lowers to a short
//!   instruction sequence leaving exactly one value on the stack; statement
//!   positions insert [`Instr::Pop`].
//! - **Names resolve at compile time.** Variables become frame slot
//!   indices; the frame is a flat `Vec<Value>` instead of the tree-walker's
//!   per-call `HashMap<Name, Value>`.
//! - **Caches resolve at run time.** Field access, method dispatch, and
//!   view changes carry *inline-cache ids*: per-site caches keyed by the
//!   receiver's **view** (the paper's §6 point — behaviour is a property of
//!   the view, not the allocation class), filled on first execution and hit
//!   thereafter.
//! - **Types stay symbolic.** Allocation/view/cast types may be dependent
//!   (`p.class`); non-dependent ones are pre-evaluated at compile time,
//!   dependent ones carry the frame slots of their path roots and are
//!   evaluated against the running frame exactly like the tree-walker does.

use jns_syntax::{BinOp, UnOp};
use jns_types::{ClassId, Name, Ty};
use std::collections::BTreeSet;
use std::collections::HashMap;
use std::sync::Arc;

/// Why a conditional jump demanded a boolean: selects the same error
/// message the tree-walking interpreter produces for ill-shaped operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CondKind {
    /// `if` condition.
    If,
    /// `while` condition.
    While,
    /// Left operand of `&&`.
    And,
    /// Left operand of `||`.
    Or,
}

impl CondKind {
    /// The interpreter-compatible error message.
    pub fn message(self) -> &'static str {
        match self {
            CondKind::If => "if needs bool",
            CondKind::While => "while needs bool",
            CondKind::And => "&& needs bool",
            CondKind::Or => "|| needs bool",
        }
    }
}

/// A compile-time-detected error that must surface at *run* time to keep
/// backend behaviour aligned (e.g. an unbound variable in dead code).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrapKind {
    /// Reading a variable that is not in scope.
    UnboundVar(Name),
}

/// One VM instruction.
#[derive(Debug, Clone)]
pub enum Instr {
    /// Push an integer literal.
    ConstInt(i64),
    /// Push a boolean literal.
    ConstBool(bool),
    /// Push a pooled string literal.
    ConstStr(u32),
    /// Push the unit value.
    ConstUnit,
    /// Push a copy of frame slot `n`.
    Load(u16),
    /// Pop into frame slot `n` (used by `final x = e; ...`).
    Store(u16),
    /// Discard the top of stack.
    Pop,
    /// Read field `f` of the popped receiver through its view
    /// (`fclass` + lazy implicit view change); `ic` is a per-site cache.
    GetField {
        /// Field name.
        f: Name,
        /// Inline-cache id (index into the VM's field-site caches).
        ic: u32,
    },
    /// `x.f = v`: pop the value, write through the view of local `x`,
    /// remove the mask on `f` from that local, push the value back.
    SetField {
        /// Frame slot of `x` (`None` if `x` was not in scope).
        local: Option<u16>,
        /// The variable's name (for interpreter-identical diagnostics).
        var: Name,
        /// Field name.
        f: Name,
        /// Inline-cache id (index into the VM's store-site caches).
        ic: u32,
    },
    /// Call method `m` with `argc` arguments: pops the arguments then the
    /// receiver; dispatches on the receiver's *view* via the site cache.
    Call {
        /// Method name.
        m: Name,
        /// Number of arguments.
        argc: u16,
        /// Inline-cache id (index into the VM's call-site caches).
        ic: u32,
    },
    /// First half of `new T { f = v, ... }`: resolves `T` to a class and
    /// pushes it on the VM's allocation stack — *before* the provided
    /// field expressions evaluate, matching the interpreter's order (a
    /// failing dependent type must error before init side effects).
    NewResolve {
        /// Type-table entry for `T`.
        ty: u32,
    },
    /// Second half of `new`: pops one value per field name (pushed in
    /// declaration order), pops the resolved class, runs declared field
    /// initialisers, then stores the provided values.
    NewAlloc {
        /// Provided field names, in source order.
        fields: Arc<[Name]>,
    },
    /// `(view T)e`: pop a reference, re-view it at `T`.
    View {
        /// Type-table entry for `T` (with its declared masks).
        ty: u32,
    },
    /// `(cast T)e`: pop a value; references check their view against `T`.
    Cast {
        /// Type-table entry for `T`.
        ty: u32,
    },
    /// Binary operation on the two topmost values.
    Bin(BinOp),
    /// Unary operation on the top value.
    Un(UnOp),
    /// Unconditional jump to an instruction index.
    Jump(u32),
    /// Pop a boolean; jump when false. Non-booleans raise the
    /// [`CondKind`]-specific type error.
    JumpIfFalse(u32, CondKind),
    /// Pop a boolean; jump when true.
    JumpIfTrue(u32, CondKind),
    /// Pop a value, render it like the interpreter's `print`, push unit.
    Print,
    /// Raise a compile-time-detected error at run time.
    Trap(TrapKind),
    /// Return the top of stack from the current chunk.
    Ret,

    // --- superinstructions (peephole fusion; `CompileOptions::fuse`) ---
    //
    // Each fused form is observably identical to its constituent sequence
    // but costs one dispatch, one step, and less stack traffic. The
    // fusion pass never fuses across a jump target, and remaps every jump
    // to the rebuilt instruction indices.
    /// `Load(slot); GetField{f,ic}`: read a field of a local directly.
    LoadGetField {
        /// Frame slot of the receiver.
        slot: u16,
        /// Field name.
        f: Name,
        /// Inline-cache id.
        ic: u32,
    },
    /// `Load(a); Load(b); Bin(op)`: binary op over two locals.
    LoadLoadBin {
        /// Frame slot of the left operand.
        a: u16,
        /// Frame slot of the right operand.
        b: u16,
        /// The operator.
        op: BinOp,
    },
    /// `ConstInt(n); Bin(op)`: binary op with a literal right operand.
    ConstIntBin {
        /// The literal right operand.
        n: i64,
        /// The operator.
        op: BinOp,
    },
    /// `ConstInt(n); Bin(op); JumpIfFalse(t, kind)`: the compare-and-
    /// branch back-edge form every `while (x < N)` loop head compiles to.
    ConstIntBinJif {
        /// The literal right operand.
        n: i64,
        /// The comparison.
        op: BinOp,
        /// Branch target when the comparison is false.
        t: u32,
        /// Which construct demanded the boolean (error message).
        kind: CondKind,
    },
    /// `Load(slot); Call{m, argc: 0, ic}`: zero-argument call on a local.
    LoadCall {
        /// Frame slot of the receiver.
        slot: u16,
        /// Method name.
        m: Name,
        /// Inline-cache id.
        ic: u32,
    },

    // --- quickened forms (IC-guided; installed *per VM* at run time) ---
    //
    // Never present in a compiled `VmProgram`: when a site's inline cache
    // stays monomorphic long enough, the VM rewrites its private copy of
    // the chunk (`VmProgram` is shared across serve workers and stays
    // untouched) into one of these, which guard only the receiver view
    // and otherwise go straight to the resolved slot/chunk. A guard
    // failure restores the generic instruction (de-quickening).
    /// Quickened `GetField`: `q` indexes the VM's quick table.
    GetFieldQ {
        /// Quick-table entry (holds expected view + resolved read path).
        q: u32,
    },
    /// Quickened `LoadGetField`.
    LoadGetFieldQ {
        /// Frame slot of the receiver.
        slot: u16,
        /// Quick-table entry.
        q: u32,
    },
    /// Quickened `SetField` (only installed when the receiver local is in
    /// scope).
    SetFieldQ {
        /// Frame slot of the receiver.
        local: u16,
        /// Quick-table entry (expected view + resolved write path).
        q: u32,
    },
    /// Quickened `Call` (arity pre-validated at quickening time).
    CallQ {
        /// Number of arguments.
        argc: u16,
        /// Quick-table entry (expected view + target chunk).
        q: u32,
    },
    /// Quickened `LoadCall`.
    LoadCallQ {
        /// Frame slot of the receiver.
        slot: u16,
        /// Quick-table entry.
        q: u32,
    },
}

/// A compiled body: `main`, one method, or one field initialiser.
#[derive(Debug)]
pub struct Chunk {
    /// Diagnostic name (`main`, `Class.method`, `Class.field=`).
    pub name: String,
    /// The instruction stream (ends with [`Instr::Ret`]).
    pub code: Vec<Instr>,
    /// Parameter count (excluding `this`).
    pub n_params: u16,
    /// Total frame slots (includes `this` and parameters).
    pub n_locals: u16,
}

/// A type-table entry: the symbolic type plus everything pre-resolved at
/// compile time.
#[derive(Debug)]
pub struct TypeEntry {
    /// The (possibly dependent) pure type.
    pub ty: Ty,
    /// Masks declared on the source type (`T\f`), empty for `new` types.
    /// Interned: entries with the same mask set share one `Arc`, so a view
    /// transition hands out a pointer instead of cloning a `BTreeSet`.
    pub masks: Arc<BTreeSet<Name>>,
    /// Frame slots of the dependent path roots (`None` = not in scope,
    /// which surfaces as the interpreter's unbound-variable error).
    pub bindings: Vec<(Name, Option<u16>)>,
    /// Pre-evaluated runtime type for non-dependent entries: the result
    /// the tree-walker's type evaluation would produce (type + dependent
    /// masks, which are empty here).
    pub pre: Option<(Ty, BTreeSet<Name>)>,
    /// Pre-resolved allocation class for non-dependent entries used by
    /// `new`; `None` falls back to runtime resolution (which reproduces
    /// the interpreter's exact error if resolution fails).
    pub new_class: Option<ClassId>,
}

/// A whole lowered program: chunks, literals, and types. Immutable once
/// compiled; all mutable state (heap, caches, stats) lives in the VM.
///
/// `Send + Sync`: one `Arc<VmProgram>` is shared by every worker VM of a
/// `jns-serve` pool (compile once, execute everywhere).
#[derive(Debug)]
pub struct VmProgram {
    /// All compiled bodies.
    pub chunks: Vec<Chunk>,
    /// Explicit method bodies: (declaring class, name) → chunk.
    pub methods: HashMap<(ClassId, Name), usize>,
    /// Field initialisers: (declaring class, field) → chunk.
    pub field_inits: HashMap<(ClassId, Name), usize>,
    /// The `main` chunk, if the program has one.
    pub main: Option<usize>,
    /// Pooled string literals.
    pub strings: Vec<Arc<str>>,
    /// The type table.
    pub types: Vec<TypeEntry>,
    /// Number of distinct interned mask sets across the type table (for
    /// diagnostics; transitions reuse these instead of cloning).
    pub n_mask_sets: u32,
    /// Operators folded away at lowering time (constant folding over
    /// literal int/bool operands; surfaced as `Stats::folded`).
    pub folded: u64,
    /// Superinstructions emitted by the fusion peephole (0 when compiled
    /// with `CompileOptions { fuse: false }`; surfaced as `Stats::fused`).
    pub fused: u64,
    /// Number of field-read sites (sizes the VM's cache vector).
    pub n_field_ics: u32,
    /// Number of field-write sites.
    pub n_set_ics: u32,
    /// Number of call sites.
    pub n_call_ics: u32,
    /// Wall-clock time lowering took, microseconds (surfaced as the
    /// `lower` phase event in `--trace` output).
    pub lower_micros: u64,
}

// One compiled program is shared across a whole worker pool; a compile
// error here means a thread-unsafe type leaked into the bytecode.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<VmProgram>();
};
