//! Lowering: checked core IR ([`CExpr`]) → flat bytecode ([`Instr`]).
//!
//! Every explicit method body, every field initialiser, and `main` become
//! one [`Chunk`] each. Variables are resolved to frame slots here; field
//! and method *names* stay symbolic and are bound by the VM's view-keyed
//! inline caches at run time, because in J&s the meaning of a name depends
//! on the receiver's view, which is a run-time quantity.

use crate::bytecode::{Chunk, CondKind, Instr, TrapKind, TypeEntry, VmProgram};
use jns_syntax::BinOp;
use jns_types::{CExpr, CheckedProgram, Name, Ty, Type};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Lowering knobs. The default enables every optimisation; ablation
/// harnesses (and the CLI's `--no-fuse`) switch stages off individually.
#[derive(Debug, Clone, Copy)]
pub struct CompileOptions {
    /// Run the superinstruction fusion peephole after lowering.
    pub fuse: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions { fuse: true }
    }
}

/// Compiles a checked program to bytecode with default options.
pub fn compile(prog: &CheckedProgram) -> VmProgram {
    compile_with(prog, CompileOptions::default())
}

/// Compiles a checked program to bytecode.
pub fn compile_with(prog: &CheckedProgram, opts: CompileOptions) -> VmProgram {
    let lower_start = std::time::Instant::now();
    let mut c = Compiler {
        prog,
        chunks: Vec::new(),
        strings: Vec::new(),
        string_ids: HashMap::new(),
        types: Vec::new(),
        type_ids: HashMap::new(),
        mask_pool: Default::default(),
        n_field_ics: 0,
        n_set_ics: 0,
        n_call_ics: 0,
        folded: 0,
    };

    // Deterministic chunk order: sort the method/initialiser keys.
    let mut methods = HashMap::new();
    let mut method_keys: Vec<_> = prog.methods.keys().copied().collect();
    method_keys.sort();
    for key @ (cls, m) in method_keys {
        let method = &prog.methods[&key];
        let name = format!("{}.{}", prog.table.class_name(cls), prog.table.name_str(m));
        let idx = c.chunk(name, true, &method.params, &method.body);
        methods.insert(key, idx);
    }

    let mut field_inits = HashMap::new();
    let mut init_keys: Vec<_> = prog.field_inits.keys().copied().collect();
    init_keys.sort();
    for key @ (cls, f) in init_keys {
        let init = &prog.field_inits[&key];
        let name = format!("{}.{}=", prog.table.class_name(cls), prog.table.name_str(f));
        let idx = c.chunk(name, true, &[], init);
        field_inits.insert(key, idx);
    }

    let main = prog
        .main
        .as_ref()
        .map(|m| c.chunk("main".to_string(), false, &[], m));

    // Pre-evaluate every non-dependent type entry with the reference
    // type-evaluation machinery, so the hot path never re-evaluates them.
    {
        let mut scratch = jns_eval::Machine::new(prog);
        let empty = HashMap::new();
        for entry in &mut c.types {
            if !entry.ty.is_non_dependent() {
                continue;
            }
            if let Ok(pre) = jns_eval::typeeval::eval_type(&mut scratch, &empty, &entry.ty) {
                entry.pre = Some(pre);
            }
            if entry.for_new {
                if let Ok(cls) =
                    jns_eval::typeeval::eval_type_class(&mut scratch, &empty, &entry.ty)
                {
                    entry.new_class = Some(cls);
                }
            }
        }
    }

    // Superinstruction fusion: a peephole over each finished chunk. Runs
    // after patching, so every jump target is final before the remap.
    let mut fused = 0u64;
    if opts.fuse {
        for chunk in &mut c.chunks {
            fused += fuse_chunk(&mut chunk.code);
        }
    }

    VmProgram {
        chunks: c.chunks,
        methods,
        field_inits,
        main,
        strings: c.strings,
        types: c.types.into_iter().map(|e| e.entry).collect(),
        n_mask_sets: c.mask_pool.len() as u32,
        folded: c.folded,
        fused,
        n_field_ics: c.n_field_ics,
        n_set_ics: c.n_set_ics,
        n_call_ics: c.n_call_ics,
        lower_micros: lower_start.elapsed().as_micros().min(u64::MAX as u128) as u64,
    }
}

/// A compile-time literal, the domain of the constant folder.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Lit {
    Int(i64),
    Bool(bool),
}

/// Folds an all-literal int/bool operator tree to its value, counting the
/// operators eliminated. Returns `None` whenever lowering must keep the
/// runtime behaviour observable: any non-literal subexpression, string
/// operands (pooled, not folded), division or remainder by a literal zero
/// (the runtime error must still fire), or mismatched `==`/`!=` operands.
/// Literal operands are pure, so short-circuit `&&`/`||` fold soundly
/// when both sides are literals. Recursion depth is bounded by the
/// parser's expression-nesting limit.
fn const_fold(e: &CExpr) -> Option<(Lit, u64)> {
    match e {
        CExpr::Int(n) => Some((Lit::Int(*n), 0)),
        CExpr::Bool(b) => Some((Lit::Bool(*b), 0)),
        CExpr::Un(op, inner) => {
            let (v, n) = const_fold(inner)?;
            let out = match (op, v) {
                (jns_syntax::UnOp::Not, Lit::Bool(b)) => Lit::Bool(!b),
                (jns_syntax::UnOp::Neg, Lit::Int(i)) => Lit::Int(i.wrapping_neg()),
                _ => return None,
            };
            Some((out, n + 1))
        }
        CExpr::Bin(op, l, r) => {
            let (lv, ln) = const_fold(l)?;
            let (rv, rn) = const_fold(r)?;
            let out = apply_bin(*op, lv, rv)?;
            Some((out, ln + rn + 1))
        }
        _ => None,
    }
}

fn apply_bin(op: BinOp, l: Lit, r: Lit) -> Option<Lit> {
    use BinOp::*;
    Some(match (op, l, r) {
        (Add, Lit::Int(a), Lit::Int(b)) => Lit::Int(a.wrapping_add(b)),
        (Sub, Lit::Int(a), Lit::Int(b)) => Lit::Int(a.wrapping_sub(b)),
        (Mul, Lit::Int(a), Lit::Int(b)) => Lit::Int(a.wrapping_mul(b)),
        (Div, Lit::Int(a), Lit::Int(b)) if b != 0 => Lit::Int(a.wrapping_div(b)),
        (Rem, Lit::Int(a), Lit::Int(b)) if b != 0 => Lit::Int(a.wrapping_rem(b)),
        (Lt, Lit::Int(a), Lit::Int(b)) => Lit::Bool(a < b),
        (Le, Lit::Int(a), Lit::Int(b)) => Lit::Bool(a <= b),
        (Gt, Lit::Int(a), Lit::Int(b)) => Lit::Bool(a > b),
        (Ge, Lit::Int(a), Lit::Int(b)) => Lit::Bool(a >= b),
        (Eq, Lit::Int(a), Lit::Int(b)) => Lit::Bool(a == b),
        (Ne, Lit::Int(a), Lit::Int(b)) => Lit::Bool(a != b),
        (Eq, Lit::Bool(a), Lit::Bool(b)) => Lit::Bool(a == b),
        (Ne, Lit::Bool(a), Lit::Bool(b)) => Lit::Bool(a != b),
        (And, Lit::Bool(a), Lit::Bool(b)) => Lit::Bool(a && b),
        (Or, Lit::Bool(a), Lit::Bool(b)) => Lit::Bool(a || b),
        _ => return None,
    })
}

/// A type entry plus the compile-only flag marking `new` usage.
struct PendingType {
    entry: TypeEntry,
    for_new: bool,
}

impl std::ops::Deref for PendingType {
    type Target = TypeEntry;
    fn deref(&self) -> &TypeEntry {
        &self.entry
    }
}

impl std::ops::DerefMut for PendingType {
    fn deref_mut(&mut self) -> &mut TypeEntry {
        &mut self.entry
    }
}

/// Dedup key for type-table entries: the type itself, its declared masks,
/// the slot snapshot of its dependent path roots, and `new`-usage.
type TypeKey = (Ty, BTreeSet<Name>, Vec<(Name, Option<u16>)>, bool);

struct Compiler<'p> {
    prog: &'p CheckedProgram,
    chunks: Vec<Chunk>,
    strings: Vec<Arc<str>>,
    string_ids: HashMap<String, u32>,
    types: Vec<PendingType>,
    type_ids: HashMap<TypeKey, u32>,
    /// Mask-set interning pool: every distinct mask set written in the
    /// program becomes one shared `Arc`, so view transitions at run time
    /// hand out pointers instead of cloning `BTreeSet`s.
    mask_pool: crate::maskpool::MaskPool,
    n_field_ics: u32,
    n_set_ics: u32,
    n_call_ics: u32,
    /// Operators eliminated by constant folding (`Stats::folded`).
    folded: u64,
}

/// Per-chunk lexical scope: a stack of (name, slot) bindings.
struct Scope {
    bindings: Vec<(Name, u16)>,
    next: u16,
    max: u16,
}

impl Scope {
    fn new() -> Self {
        Scope {
            bindings: Vec::new(),
            next: 0,
            max: 0,
        }
    }

    fn bind(&mut self, n: Name) -> u16 {
        let slot = self.next;
        self.next += 1;
        self.max = self.max.max(self.next);
        self.bindings.push((n, slot));
        slot
    }

    fn unbind(&mut self) {
        self.bindings.pop();
        self.next -= 1;
    }

    fn lookup(&self, n: Name) -> Option<u16> {
        self.bindings
            .iter()
            .rev()
            .find(|(b, _)| *b == n)
            .map(|(_, s)| *s)
    }
}

impl<'p> Compiler<'p> {
    fn chunk(&mut self, name: String, has_this: bool, params: &[Name], body: &CExpr) -> usize {
        let mut scope = Scope::new();
        if has_this {
            scope.bind(self.prog.table.this_name);
        }
        for p in params {
            scope.bind(*p);
        }
        let mut code = Vec::new();
        self.expr(&mut scope, &mut code, body);
        code.push(Instr::Ret);
        let idx = self.chunks.len();
        self.chunks.push(Chunk {
            name,
            code,
            n_params: params.len() as u16,
            n_locals: scope.max,
        });
        idx
    }

    fn string_id(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.string_ids.get(s) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.strings.push(Arc::from(s));
        self.string_ids.insert(s.to_string(), id);
        id
    }

    /// Interns a mask set, returning the pool's shared `Arc`.
    fn mask_set(&mut self, masks: &BTreeSet<Name>) -> Arc<BTreeSet<Name>> {
        self.mask_pool.intern_ref(masks)
    }

    /// Interns a type-table entry; bindings snapshot the slots of the
    /// dependent path roots at this program point.
    fn type_id(&mut self, scope: &Scope, ty: &Ty, masks: &BTreeSet<Name>, for_new: bool) -> u32 {
        let mut roots: Vec<Name> = ty.paths().iter().map(|p| p.base).collect();
        roots.sort();
        roots.dedup();
        let bindings: Vec<(Name, Option<u16>)> =
            roots.into_iter().map(|b| (b, scope.lookup(b))).collect();
        let key = (ty.clone(), masks.clone(), bindings.clone(), for_new);
        if let Some(&id) = self.type_ids.get(&key) {
            return id;
        }
        let id = self.types.len() as u32;
        let masks = self.mask_set(masks);
        self.types.push(PendingType {
            entry: TypeEntry {
                ty: ty.clone(),
                masks,
                bindings,
                pre: None,
                new_class: None,
            },
            for_new,
        });
        self.type_ids.insert(key, id);
        id
    }

    fn field_ic(&mut self) -> u32 {
        self.n_field_ics += 1;
        self.n_field_ics - 1
    }

    fn set_ic(&mut self) -> u32 {
        self.n_set_ics += 1;
        self.n_set_ics - 1
    }

    fn call_ic(&mut self) -> u32 {
        self.n_call_ics += 1;
        self.n_call_ics - 1
    }

    fn expr(&mut self, scope: &mut Scope, code: &mut Vec<Instr>, e: &CExpr) {
        // Constant folding: an all-literal int/bool operator tree lowers
        // to a single constant push.
        if matches!(e, CExpr::Bin(..) | CExpr::Un(..)) {
            if let Some((lit, ops)) = const_fold(e) {
                self.folded += ops;
                code.push(match lit {
                    Lit::Int(n) => Instr::ConstInt(n),
                    Lit::Bool(b) => Instr::ConstBool(b),
                });
                return;
            }
        }
        match e {
            CExpr::Int(n) => code.push(Instr::ConstInt(*n)),
            CExpr::Bool(b) => code.push(Instr::ConstBool(*b)),
            CExpr::Str(s) => {
                let id = self.string_id(s);
                code.push(Instr::ConstStr(id));
            }
            CExpr::Unit => code.push(Instr::ConstUnit),
            CExpr::Var(x) => match scope.lookup(*x) {
                Some(slot) => code.push(Instr::Load(slot)),
                None => code.push(Instr::Trap(TrapKind::UnboundVar(*x))),
            },
            CExpr::GetField(recv, f) => {
                self.expr(scope, code, recv);
                let ic = self.field_ic();
                code.push(Instr::GetField { f: *f, ic });
            }
            CExpr::SetField(x, f, value) => {
                self.expr(scope, code, value);
                let ic = self.set_ic();
                code.push(Instr::SetField {
                    local: scope.lookup(*x),
                    var: *x,
                    f: *f,
                    ic,
                });
            }
            CExpr::Call(recv, m, args) => {
                self.expr(scope, code, recv);
                for a in args {
                    self.expr(scope, code, a);
                }
                let ic = self.call_ic();
                code.push(Instr::Call {
                    m: *m,
                    argc: args.len() as u16,
                    ic,
                });
            }
            CExpr::New(ty, inits) => {
                // Type resolution precedes the provided field expressions,
                // matching the interpreter's evaluation order.
                let no_masks = BTreeSet::new();
                let tid = self.type_id(scope, ty, &no_masks, true);
                code.push(Instr::NewResolve { ty: tid });
                for (_, init) in inits {
                    self.expr(scope, code, init);
                }
                let fields: Arc<[Name]> = inits.iter().map(|(f, _)| *f).collect();
                code.push(Instr::NewAlloc { fields });
            }
            CExpr::View(ty, inner) => {
                self.expr(scope, code, inner);
                let tid = self.view_type_id(scope, ty);
                code.push(Instr::View { ty: tid });
            }
            CExpr::Cast(ty, inner) => {
                self.expr(scope, code, inner);
                let tid = self.view_type_id(scope, ty);
                code.push(Instr::Cast { ty: tid });
            }
            CExpr::Bin(BinOp::And, l, r) => {
                self.expr(scope, code, l);
                let jf = self.placeholder(code, |t| Instr::JumpIfFalse(t, CondKind::And));
                self.expr(scope, code, r);
                let jend = self.placeholder(code, Instr::Jump);
                self.patch(code, jf);
                code.push(Instr::ConstBool(false));
                self.patch(code, jend);
            }
            CExpr::Bin(BinOp::Or, l, r) => {
                self.expr(scope, code, l);
                let jt = self.placeholder(code, |t| Instr::JumpIfTrue(t, CondKind::Or));
                self.expr(scope, code, r);
                let jend = self.placeholder(code, Instr::Jump);
                self.patch(code, jt);
                code.push(Instr::ConstBool(true));
                self.patch(code, jend);
            }
            CExpr::Bin(op, l, r) => {
                self.expr(scope, code, l);
                self.expr(scope, code, r);
                code.push(Instr::Bin(*op));
            }
            CExpr::Un(op, inner) => {
                self.expr(scope, code, inner);
                code.push(Instr::Un(*op));
            }
            CExpr::If(cnd, t, f) => {
                self.expr(scope, code, cnd);
                let jf = self.placeholder(code, |t| Instr::JumpIfFalse(t, CondKind::If));
                self.expr(scope, code, t);
                let jend = self.placeholder(code, Instr::Jump);
                self.patch(code, jf);
                self.expr(scope, code, f);
                self.patch(code, jend);
            }
            CExpr::While(cnd, body) => {
                let head = code.len();
                self.expr(scope, code, cnd);
                let jend = self.placeholder(code, |t| Instr::JumpIfFalse(t, CondKind::While));
                self.expr(scope, code, body);
                code.push(Instr::Pop);
                code.push(Instr::Jump(head as u32));
                self.patch(code, jend);
                code.push(Instr::ConstUnit);
            }
            CExpr::Let(x, init, body) => {
                self.expr(scope, code, init);
                let slot = scope.bind(*x);
                code.push(Instr::Store(slot));
                self.expr(scope, code, body);
                scope.unbind();
            }
            CExpr::Seq(parts) => {
                if parts.is_empty() {
                    code.push(Instr::ConstUnit);
                } else {
                    for (i, p) in parts.iter().enumerate() {
                        if i > 0 {
                            code.push(Instr::Pop);
                        }
                        self.expr(scope, code, p);
                    }
                }
            }
            CExpr::Print(inner) => {
                self.expr(scope, code, inner);
                code.push(Instr::Print);
            }
        }
    }

    fn view_type_id(&mut self, scope: &Scope, ty: &Type) -> u32 {
        self.type_id(scope, &ty.ty, &ty.masks, false)
    }

    /// Emits a jump with a placeholder target, returning its index.
    fn placeholder(&mut self, code: &mut Vec<Instr>, make: impl FnOnce(u32) -> Instr) -> usize {
        code.push(make(u32::MAX));
        code.len() - 1
    }

    /// Patches the jump at `at` to point to the current end of `code`.
    fn patch(&self, code: &mut [Instr], at: usize) {
        let target = code.len() as u32;
        match &mut code[at] {
            Instr::Jump(t) | Instr::JumpIfFalse(t, _) | Instr::JumpIfTrue(t, _) => *t = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }
}

// ------------------------------------------------------------------ fusion

/// The superinstruction peephole: greedily fuses the hottest adjacent
/// instruction shapes (longest pattern first, left to right) and remaps
/// every jump to the rebuilt indices. A sequence is only fused when none
/// of its *interior* instructions is a jump target — landing mid-pattern
/// must keep executing the generic forms. Returns the number of
/// superinstructions emitted.
///
/// Candidate shapes (from the per-chunk instruction profiles of the
/// dispatch-heavy workloads — loop heads and field/call traffic):
///
/// - `ConstInt; Bin; JumpIfFalse` → [`Instr::ConstIntBinJif`] (the
///   `while (x < N)` compare-and-branch)
/// - `Load; Load; Bin`            → [`Instr::LoadLoadBin`]
/// - `Load; GetField`             → [`Instr::LoadGetField`]
/// - `Load; Call` (0 args)        → [`Instr::LoadCall`]
/// - `ConstInt; Bin`              → [`Instr::ConstIntBin`]
fn fuse_chunk(code: &mut Vec<Instr>) -> u64 {
    let n = code.len();
    // Jump targets (an index may be one past a pattern's head, so track
    // every instruction index; `n` itself can be a patched target).
    let mut is_target = vec![false; n + 1];
    for ins in code.iter() {
        if let Instr::Jump(t) | Instr::JumpIfFalse(t, _) | Instr::JumpIfTrue(t, _) = ins {
            is_target[*t as usize] = true;
        }
    }

    let mut out: Vec<Instr> = Vec::with_capacity(n);
    // old pc → new pc (every old index gets an entry; interior indices of
    // a fused pattern are never jump targets, so their mapping — the
    // fused instruction itself — is never used).
    let mut map = vec![0u32; n + 1];
    let mut fused = 0u64;
    let mut i = 0usize;
    while i < n {
        map[i] = out.len() as u32;
        let free2 = i + 1 < n && !is_target[i + 1];
        let free3 = i + 2 < n && free2 && !is_target[i + 2];
        let replacement = match (&code[i], free2, free3) {
            (Instr::ConstInt(lit), _, true) => match (&code[i + 1], &code[i + 2]) {
                (Instr::Bin(op), Instr::JumpIfFalse(t, kind)) => Some((
                    Instr::ConstIntBinJif {
                        n: *lit,
                        op: *op,
                        t: *t,
                        kind: *kind,
                    },
                    3,
                )),
                _ => None,
            },
            _ => None,
        }
        .or(match (&code[i], free3) {
            (Instr::Load(a), true) => match (&code[i + 1], &code[i + 2]) {
                (Instr::Load(b), Instr::Bin(op)) => Some((
                    Instr::LoadLoadBin {
                        a: *a,
                        b: *b,
                        op: *op,
                    },
                    3,
                )),
                _ => None,
            },
            _ => None,
        })
        .or(match (&code[i], free2) {
            (Instr::Load(slot), true) => match &code[i + 1] {
                Instr::GetField { f, ic } => Some((
                    Instr::LoadGetField {
                        slot: *slot,
                        f: *f,
                        ic: *ic,
                    },
                    2,
                )),
                Instr::Call { m, argc: 0, ic } => Some((
                    Instr::LoadCall {
                        slot: *slot,
                        m: *m,
                        ic: *ic,
                    },
                    2,
                )),
                _ => None,
            },
            (Instr::ConstInt(lit), true) => match &code[i + 1] {
                Instr::Bin(op) => Some((Instr::ConstIntBin { n: *lit, op: *op }, 2)),
                _ => None,
            },
            _ => None,
        });
        match replacement {
            Some((ins, width)) => {
                for mapped in &mut map[i + 1..i + width] {
                    *mapped = out.len() as u32;
                }
                out.push(ins);
                fused += 1;
                i += width;
            }
            None => {
                out.push(code[i].clone());
                i += 1;
            }
        }
    }
    map[n] = out.len() as u32;

    for ins in &mut out {
        match ins {
            Instr::Jump(t)
            | Instr::JumpIfFalse(t, _)
            | Instr::JumpIfTrue(t, _)
            | Instr::ConstIntBinJif { t, .. } => *t = map[*t as usize],
            _ => {}
        }
    }
    *code = out;
    fused
}
