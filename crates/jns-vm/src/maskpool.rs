//! Mask-set interning shared by the lowering pass and the VM: each
//! distinct set is stored once (the `Arc` doubles as the hash-set key via
//! `Arc<T>: Borrow<T>`), and lookups borrow the candidate, so interning
//! an already-seen set allocates nothing.

use jns_eval::value::MaskSet;
use jns_types::Name;
use std::collections::{BTreeSet, HashSet};
use std::sync::Arc;

/// An interning pool of shared mask sets.
#[derive(Debug, Default)]
pub(crate) struct MaskPool(HashSet<MaskSet>);

impl MaskPool {
    /// Interns an owned set; `true` means this was the first occurrence
    /// (a fresh materialisation — what `Stats::mask_allocs` counts).
    pub(crate) fn intern(&mut self, masks: BTreeSet<Name>) -> (MaskSet, bool) {
        if let Some(m) = self.0.get(&masks) {
            return (m.clone(), false);
        }
        let m: MaskSet = Arc::new(masks);
        self.0.insert(m.clone());
        (m, true)
    }

    /// Interns by reference, cloning the set only on first occurrence.
    pub(crate) fn intern_ref(&mut self, masks: &BTreeSet<Name>) -> MaskSet {
        if let Some(m) = self.0.get(masks) {
            return m.clone();
        }
        let m: MaskSet = Arc::new(masks.clone());
        self.0.insert(m.clone());
        m
    }

    /// Distinct sets interned so far.
    pub(crate) fn len(&self) -> usize {
        self.0.len()
    }
}
