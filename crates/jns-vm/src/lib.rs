//! # jns-vm
//!
//! A bytecode compiler + virtual machine backend for checked J&s programs
//! (*Sharing Classes Between Families*, Qi & Myers, PLDI 2009) — the
//! paper's §6 implementation techniques applied to the real surface
//! language rather than the synthetic `jns-rt` kernels:
//!
//! - [`compile`] lowers a [`jns_types::CheckedProgram`] into flat
//!   instruction streams: variables become frame slots, control flow
//!   becomes jumps, literals are pooled, and non-dependent types embedded
//!   in the IR are pre-evaluated.
//! - [`Vm`] executes the bytecode with **union field layouts** per
//!   sharing group (slot indices instead of `⟨ℓ, fclass(view,f), f⟩` map
//!   lookups), **per-site inline caches keyed by the receiver's view**
//!   for field access and method dispatch, and **memoised view changes**
//!   (both explicit `(view T)e` and the lazy implicit ones triggered by
//!   field reads).
//!
//! The VM is observably equivalent to the tree-walking interpreter in
//! `jns-eval` — same printed output, same final values, same error
//! variants and messages — which the differential test suite enforces
//! over every paper example. The only intentional divergence is that
//! fuel/step accounting counts VM instructions instead of AST nodes.
//!
//! # Examples
//!
//! ```
//! let prog = jns_syntax::parse(
//!     "class A { class C { int x = 7; } }
//!      main { final A.C c = new A.C(); print c.x; }",
//! ).unwrap();
//! let checked = jns_types::check(&prog).unwrap();
//! let code = jns_vm::compile(&checked);
//! let mut vm = jns_vm::Vm::new(&checked, &code);
//! vm.run()?;
//! assert_eq!(vm.output, vec!["7"]);
//! # Ok::<(), jns_eval::RtError>(())
//! ```

#![warn(missing_docs)]

pub mod bytecode;
pub mod compile;
mod maskpool;
pub mod vm;

pub use bytecode::{Chunk, Instr, VmProgram};
pub use compile::{compile, compile_with, CompileOptions};
pub use vm::Vm;

use jns_eval::{RtError, Stats, Value};
use jns_types::CheckedProgram;

/// The result of running a program on the VM (same shape as the
/// interpreter's surface: printed lines, final value, statistics).
#[derive(Debug)]
pub struct VmOutput {
    /// Lines produced by `print`.
    pub output: Vec<String>,
    /// The final value of `main`.
    pub value: Value,
    /// Execution statistics (`steps` counts VM instructions).
    pub stats: Stats,
}

/// One-call convenience: compile `prog` to bytecode and run `main`.
///
/// # Errors
///
/// Propagates the VM's [`RtError`] (for well-typed programs only the
/// benign variants: cast failure, fuel, depth exhaustion, division by
/// zero).
pub fn run(prog: &CheckedProgram, fuel: Option<u64>) -> Result<VmOutput, RtError> {
    run_limited(prog, fuel, None)
}

/// Like [`run`], with an optional recursion-depth limit override (the
/// default is [`jns_eval::DEFAULT_MAX_DEPTH`], shared with the
/// tree-walking interpreter).
///
/// # Errors
///
/// Same contract as [`run`].
pub fn run_limited(
    prog: &CheckedProgram,
    fuel: Option<u64>,
    max_depth: Option<u32>,
) -> Result<VmOutput, RtError> {
    let code = compile(prog);
    let mut vm = Vm::new(prog, &code);
    if let Some(f) = fuel {
        vm = vm.with_fuel(f);
    }
    if let Some(d) = max_depth {
        vm = vm.with_max_depth(d);
    }
    let value = vm.run()?;
    Ok(VmOutput {
        output: std::mem::take(&mut vm.output),
        value,
        stats: vm.stats,
    })
}
