//! The virtual machine: executes [`VmProgram`] bytecode with the paper's
//! §6 runtime machinery baked in.
//!
//! Three mechanisms replace the tree-walker's per-step resolution:
//!
//! 1. **Union field layouts** (§6.2 "representative instance classes").
//!    Objects are slot vectors, not `⟨ℓ, fclass(view,f), f⟩` map entries.
//!    The layout of an object is the union of the field copies of its
//!    whole *sharing group*, so every partner view reads and writes fixed
//!    slot indices; `fclass` is folded into the slot resolution, done once
//!    per (view, field) instead of once per access.
//! 2. **View-keyed inline caches** (§6.1 "lazily synthesised vtables").
//!    Every field-read, field-write, and call site carries a small cache
//!    keyed by the receiver's view. A hit costs a linear scan of one or
//!    two entries; a miss resolves through the shared global tables and
//!    installs the result. This mirrors how the paper's classloader
//!    synthesises a vtable per (class, view) pair on first use.
//! 3. **Memoised view changes** (§6.3). The `view` function's two
//!    questions — "is the current view already compatible?" and "which
//!    partner sits under the target?" — depend only on (view, target
//!    type), so both are memoised, as is the interpreted field type that
//!    drives lazy implicit view changes. Re-viewing the same reference
//!    shape twice costs two hash lookups.
//!
//! Observable behaviour (printed output, final value, error variants and
//! messages) matches the tree-walking interpreter; the differential suite
//! (`tests/vm_differential.rs` at the workspace root) and the generated-
//! program soundness proptests (`tests/soundness.rs`, which run every
//! generated program on both backends) enforce this. The one intentional
//! difference is *step accounting*: [`Stats::steps`] counts VM
//! instructions rather than AST nodes, so fuel limits are measured in
//! instructions (both backends still interrupt runaway programs with
//! [`RtError::OutOfFuel`]).

use crate::bytecode::{Instr, TrapKind, VmProgram};
use jns_eval::value::MaskSet;
use jns_eval::{Heap, Loc, RefVal, RtError, Stats, Value, DEFAULT_MAX_DEPTH};
use jns_syntax::{BinOp, UnOp};
use jns_types::{CheckedProgram, ClassId, Judge, Name, Ty, TypeEnv};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Inline caches grow up to this many view entries before becoming
/// megamorphic (falling through to the global tables).
const IC_CAP: usize = 8;

/// A get/set/call site quickens after this many *consecutive* same-view
/// resolutions. High enough that short warm-up phases (and the pinned
/// hit/miss equalities in the test suite) never quicken, low enough that
/// any hot loop quickens almost immediately.
const QUICKEN_AFTER: u32 = 16;

/// The union field layout of one sharing group: every field copy
/// `(fclass-owner, field)` of every partner gets a fixed slot.
#[derive(Debug)]
struct Layout {
    slots: HashMap<(ClassId, Name), u32>,
    n_slots: u32,
}

/// Resolved read path for a (view, field) pair.
#[derive(Debug)]
struct FieldRes {
    /// `fclass(view, f)`: which partner's copy this view reads.
    copy: ClassId,
    /// Slot of that copy in the group layout.
    slot: Option<u32>,
    /// §3.3 forwarding fallbacks, pre-resolved to slots.
    alts: Box<[(ClassId, Option<u32>)]>,
    /// The interpreted field type driving the lazy implicit view change:
    /// interned canonical type + interned mask set (`Err` = the `BadType`
    /// message). The shared `Arc` makes every implicit view change on
    /// this path clone a pointer, not a `BTreeSet`.
    ft: Result<(u32, MaskSet), String>,
}

/// Resolved write path for a (view, field) pair.
#[derive(Debug, Clone, Copy)]
struct SetRes {
    copy: ClassId,
    slot: Option<u32>,
}

/// Why a memoised partner search failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PartnerErr {
    NoneFound,
    Ambiguous,
}

/// The explicit execution state of one activation — the chunk, program
/// counter, frame slots, and operand stack every opcode handler operates
/// on. The running activation is a local in [`Vm::run_frames`]; suspended
/// callers (and frames parked around allocations) live on [`Vm::frames`]
/// where the collector can enumerate them. Finished activations are
/// recycled through [`Vm::pool`], so a call in a hot loop reuses the same
/// two vectors instead of allocating.
#[derive(Debug, Default)]
struct ExecState {
    chunk: usize,
    pc: usize,
    locals: Vec<Value>,
    stack: Vec<Value>,
}

/// What an opcode handler asks the dispatch loop to do next.
enum Flow {
    /// Fall through to `pc + 1`.
    Next,
    /// `pc` was rewritten within the same chunk (a taken jump).
    Jump,
    /// The activation changed (call, return) or its instruction stream
    /// was rewritten (quickening): `pc` is already correct, reload the
    /// stream before continuing.
    Switch,
    /// The outermost activation of this invocation returned.
    Done(Value),
}

/// One quickened site: the view the site was monomorphic for plus the
/// pre-resolved action. Guarding is one view comparison; anything else
/// de-quickens back to the generic instruction.
#[derive(Debug)]
enum Quick {
    /// Direct field read.
    Get {
        view: ClassId,
        res: Arc<FieldRes>,
        f: Name,
    },
    /// Direct slot store.
    Set { view: ClassId, res: SetRes, f: Name },
    /// Direct chunk call (arity pre-validated at quickening time).
    Call { view: ClassId, chunk: usize },
}

/// `site_quick` key spaces (one per site kind, since ic ids overlap).
const QK_GET: u8 = 0;
const QK_SET: u8 = 1;
const QK_CALL: u8 = 2;

/// Bumps a site's consecutive-same-view counter, restarting it on any
/// view change. `(ClassId(u32::MAX), 0)` is the never-seen sentinel.
#[inline]
fn mono_track(m: &mut (ClassId, u32), view: ClassId) {
    if m.0 == view {
        m.1 += 1;
    } else {
        *m = (view, 1);
    }
}

/// The sampling profiler: every `stride` executed instructions it
/// snapshots the frame stack as a chunk-id path and bumps that path's
/// count. Deterministic (instruction-count-strided, not timer-driven)
/// so identical runs produce identical profiles, and cheap — between
/// samples the cost is one counter decrement per instruction; taking a
/// sample is O(stack depth).
#[derive(Debug)]
struct Sampler {
    /// Instructions between samples (≥ 1).
    stride: u64,
    /// Instructions until the next sample.
    countdown: u64,
    /// Samples keyed by the frame-stack chunk-id path, outermost first.
    stacks: HashMap<Vec<u32>, u64>,
    /// Total samples taken (sum of all stack counts).
    taken: u64,
}

/// An allocation in flight: R-ALLOC suspended while its field-initialiser
/// chunks run. Kept on the VM (not the host stack) so the collector can
/// enumerate — and forward — the nascent object's `this` and the record
/// values awaiting storage.
#[derive(Debug)]
struct AllocScope {
    /// `this` during initialisation (`None` until the object is carved
    /// out — the pre-allocation GC must not see a dangling ℓ).
    this_ref: Option<RefVal>,
    /// Provided record values, written after the declared initialisers.
    provided: Vec<(Name, Value)>,
}

/// The executing machine. Mirrors [`jns_eval::Machine`]'s public surface
/// (`output`, `stats`, fuel) so backends are interchangeable.
#[derive(Debug)]
pub struct Vm<'p> {
    prog: &'p CheckedProgram,
    code: &'p VmProgram,
    /// The shared heap ([`jns_eval::Heap`], the same type the tree-walk
    /// interpreter uses); the VM allocates union-layout slot vectors.
    heap: Heap,
    /// Captured `print` output.
    pub output: Vec<String>,
    /// Execution statistics ([`Stats::steps`] counts VM instructions).
    pub stats: Stats,
    fuel: Option<u64>,
    depth: u32,
    max_depth: u32,
    /// Classes resolved by `NewResolve`, awaiting their `NewAlloc`
    /// (LIFO; pairs are properly nested in compiled code).
    new_stack: Vec<ClassId>,
    /// The explicit call stack. Lives on the VM (the executing frame is
    /// parked here around allocations) so a collection can enumerate and
    /// forward every local and operand as a root.
    frames: Vec<ExecState>,
    /// Allocations in flight (GC roots; see [`AllocScope`]).
    alloc_stack: Vec<AllocScope>,
    /// Recycled activations (cleared of values, so never GC roots): calls
    /// pop from here instead of allocating fresh local/stack vectors.
    pool: Vec<ExecState>,

    // --- IC-guided quickening (per-VM; the shared `VmProgram` is never
    // mutated, so serve workers quicken independently) ---
    /// Whether stable-monomorphic sites rewrite themselves (`--no-quicken`
    /// turns this off for ablation).
    quicken: bool,
    /// Copy-on-quicken instruction streams, one slot per chunk: `None`
    /// executes the shared chunk, `Some` is this VM's private copy with
    /// quickened instructions patched in. Warm across
    /// [`Vm::reset_for_request`], like the inline caches.
    quick_code: Vec<Option<Arc<[Instr]>>>,
    /// The quick table ([`Quick`] entries referenced by quickened
    /// instructions); one slot per quickened site, reused on re-quicken.
    quicks: Vec<Quick>,
    /// (kind, ic) → quick-table slot, so a site that de-quickens and
    /// re-quickens reuses its entry instead of growing the table.
    site_quick: HashMap<(u8, u32), u32>,
    /// Consecutive same-view resolutions per field-read site.
    field_mono: Vec<(ClassId, u32)>,
    /// Consecutive same-view resolutions per field-write site.
    set_mono: Vec<(ClassId, u32)>,
    /// Consecutive same-view resolutions per call site.
    call_mono: Vec<(ClassId, u32)>,

    // --- caches (all monotone; never invalidated by `reset_for_request`,
    // so a reused worker VM stays warm across requests) ---
    /// Per-site field-read caches, keyed by view.
    field_ics: Vec<Vec<(ClassId, Arc<FieldRes>)>>,
    /// Per-site field-write caches, keyed by view.
    set_ics: Vec<Vec<(ClassId, SetRes)>>,
    /// Per-site call caches, keyed by view.
    call_ics: Vec<Vec<(ClassId, Option<usize>)>>,
    /// Global (view, field) read resolutions backing the site caches.
    field_res: HashMap<(ClassId, Name), Arc<FieldRes>>,
    /// Global (view, method) dispatch results backing the site caches.
    dispatch: HashMap<(ClassId, Name), Option<usize>>,
    /// Union layouts per class (shared per sharing group).
    layouts: HashMap<ClassId, Arc<Layout>>,
    /// Interned runtime types (targets of views/casts/implicit re-views).
    ty_pool: Vec<Ty>,
    ty_ids: HashMap<Ty, u32>,
    /// Memoised `view! ≤ target` checks.
    sub_memo: HashMap<(ClassId, u32), bool>,
    /// Memoised unique-partner-under-target searches.
    partner_memo: HashMap<(ClassId, u32), Result<ClassId, PartnerErr>>,
    /// Per type-table entry: interned pre-evaluated (target, full mask
    /// set — dependent ∪ declared).
    pre_view: Vec<Option<(u32, MaskSet)>>,
    /// Runtime mask-set interning pool, seeded on demand: distinct sets
    /// are materialised once (`Stats::mask_allocs`) and shared after.
    mask_pool: crate::maskpool::MaskPool,
    /// Executed-instruction counter per chunk (profiling hook; survives
    /// `reset_for_request` so a worker accumulates a profile).
    chunk_steps: Vec<u64>,
    /// Per-site `[hits, misses]` for field-read caches (indexed like
    /// `field_ics`; survives `reset_for_request` like the caches do).
    field_ic_hm: Vec<[u64; 2]>,
    /// Per-site `[hits, misses]` for field-write caches.
    set_ic_hm: Vec<[u64; 2]>,
    /// Per-site `[hits, misses]` for call caches.
    call_ic_hm: Vec<[u64; 2]>,
    /// Optional structured-event sink (GC runs, per-site IC miss
    /// resolutions). `None` keeps every hook a single branch, with
    /// byte-identical outputs and statistics.
    trace: Option<jns_obs::TraceBuffer>,
    /// Optional sampling profiler (see [`Sampler`]). Like `trace`,
    /// `None` keeps the per-instruction hook a single branch and
    /// behaviour byte-identical. Survives [`Vm::reset_for_request`] so a
    /// serving worker accumulates one profile across its lifetime.
    sampler: Option<Sampler>,
}

impl<'p> Vm<'p> {
    /// Creates a VM over a checked program and its compiled bytecode.
    pub fn new(prog: &'p CheckedProgram, code: &'p VmProgram) -> Self {
        Vm {
            prog,
            code,
            heap: Heap::new(),
            output: Vec::new(),
            stats: Stats::default(),
            fuel: None,
            depth: 0,
            max_depth: DEFAULT_MAX_DEPTH,
            new_stack: Vec::new(),
            frames: Vec::new(),
            alloc_stack: Vec::new(),
            pool: Vec::new(),
            quicken: true,
            quick_code: vec![None; code.chunks.len()],
            quicks: Vec::new(),
            site_quick: HashMap::new(),
            field_mono: vec![(ClassId(u32::MAX), 0); code.n_field_ics as usize],
            set_mono: vec![(ClassId(u32::MAX), 0); code.n_set_ics as usize],
            call_mono: vec![(ClassId(u32::MAX), 0); code.n_call_ics as usize],
            field_ics: (0..code.n_field_ics).map(|_| Vec::new()).collect(),
            set_ics: (0..code.n_set_ics).map(|_| Vec::new()).collect(),
            call_ics: (0..code.n_call_ics).map(|_| Vec::new()).collect(),
            field_res: HashMap::new(),
            dispatch: HashMap::new(),
            layouts: HashMap::new(),
            ty_pool: Vec::new(),
            ty_ids: HashMap::new(),
            sub_memo: HashMap::new(),
            partner_memo: HashMap::new(),
            pre_view: vec![None; code.types.len()],
            mask_pool: Default::default(),
            chunk_steps: vec![0; code.chunks.len()],
            field_ic_hm: vec![[0; 2]; code.n_field_ics as usize],
            set_ic_hm: vec![[0; 2]; code.n_set_ics as usize],
            call_ic_hm: vec![[0; 2]; code.n_call_ics as usize],
            trace: None,
            sampler: None,
        }
    }

    /// Attaches a structured-event trace buffer: the VM records one
    /// [`jns_obs::TraceEvent::Gc`] per tracing collection and one
    /// [`jns_obs::TraceEvent::IcMiss`] per inline-cache resolution through
    /// the global tables. With no buffer attached (the default) every
    /// hook is a branch on `None` and behaviour — output, value,
    /// statistics — is byte-identical.
    pub fn set_trace(&mut self, buf: jns_obs::TraceBuffer) {
        self.trace = Some(buf);
    }

    /// Detaches and returns the trace buffer, if one was attached. The
    /// buffer survives [`Vm::reset_for_request`], so a serving worker
    /// accumulates events across its whole lifetime.
    pub fn take_trace(&mut self) -> Option<jns_obs::TraceBuffer> {
        self.trace.take()
    }

    /// The attached trace buffer, for callers (the serving layer) that
    /// push their own request-lifecycle events.
    pub fn trace_mut(&mut self) -> Option<&mut jns_obs::TraceBuffer> {
        self.trace.as_mut()
    }

    /// Enables the sampling profiler: every `stride` executed
    /// instructions the VM snapshots its frame stack (a strided, and
    /// therefore deterministic, stand-in for wall-clock sampling).
    /// Exactly `⌊executed / stride⌋` samples are taken. A stride of 0 is
    /// clamped to 1 (sample every instruction). Calling this again
    /// discards any samples already taken.
    pub fn set_sample_stride(&mut self, stride: u64) {
        let stride = stride.max(1);
        self.sampler = Some(Sampler {
            stride,
            countdown: stride,
            stacks: HashMap::new(),
            taken: 0,
        });
    }

    /// Builder form of [`Vm::set_sample_stride`].
    pub fn with_sample_stride(mut self, stride: u64) -> Self {
        self.set_sample_stride(stride);
        self
    }

    /// The configured sampling stride, if the profiler is enabled.
    pub fn sample_stride(&self) -> Option<u64> {
        self.sampler.as_ref().map(|s| s.stride)
    }

    /// Total samples the profiler has taken (0 when disabled). Always
    /// equal to `⌊executed instructions / stride⌋`, counting across every
    /// run on this VM since the profiler was enabled.
    pub fn samples_taken(&self) -> u64 {
        self.sampler.as_ref().map_or(0, |s| s.taken)
    }

    /// The profile as collapsed stacks: `(stack, count)` pairs where the
    /// stack is `;`-joined chunk names, outermost call first — the
    /// format flamegraph tooling consumes (one `stack count` line each;
    /// see `jns_obs::folded_lines`). Distinct chunk-id paths that render
    /// to the same name path are merged. Sorted by stack string, so the
    /// output is stable. Empty when the profiler is disabled or no
    /// sample has been taken.
    pub fn folded_samples(&self) -> Vec<(String, u64)> {
        let Some(s) = self.sampler.as_ref() else {
            return Vec::new();
        };
        let mut merged: BTreeMap<String, u64> = BTreeMap::new();
        for (key, &n) in &s.stacks {
            let names: Vec<&str> = key
                .iter()
                .map(|&c| self.code.chunks[c as usize].name.as_str())
                .collect();
            *merged.entry(names.join(";")).or_insert(0) += n;
        }
        merged.into_iter().collect()
    }

    /// Limits execution to `fuel` instructions.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = Some(fuel);
        self
    }

    /// Sets the recursion-depth limit (method activations plus nested
    /// field-initialiser chunks) — the same units, default, and
    /// [`RtError::DepthExceeded`] error as the tree-walking interpreter,
    /// so both backends fail identically at identical depths.
    pub fn with_max_depth(mut self, max_depth: u32) -> Self {
        self.max_depth = max_depth;
        self
    }

    /// Sets the live-heap threshold: once this many objects are live, the
    /// next allocation first runs a mark-compact collection over roots
    /// enumerated from the VM's frame stack (locals and operands) and
    /// in-flight allocations. With no limit the collector never runs and
    /// behaviour is byte-identical to an unlimited heap. The limit
    /// survives [`Vm::reset_for_request`], so one knob set at worker
    /// spawn time applies to every request.
    pub fn with_heap_limit(mut self, limit: usize) -> Self {
        self.heap.set_limit(Some(limit));
        self
    }

    /// Re-points the live-heap threshold on a warm VM (`None` disables
    /// collection). The serving layer's per-worker auto-sizer calls this
    /// between requests; the heap keeps its other configuration.
    pub fn set_heap_limit(&mut self, limit: Option<usize>) {
        self.heap.set_limit(limit);
    }

    /// The currently configured live-heap threshold.
    pub fn heap_limit(&self) -> Option<usize> {
        self.heap.limit()
    }

    /// Sets the nursery capacity for generational collection (effective
    /// only alongside a heap limit); see
    /// [`jns_eval::heap::Heap::set_nursery`]. Survives
    /// [`Vm::reset_for_request`] like the heap limit does.
    pub fn with_nursery(mut self, nursery: usize) -> Self {
        self.heap.set_nursery(Some(nursery));
        self
    }

    /// Enables or disables IC-guided quickening (enabled by default; the
    /// CLI's `--no-quicken` ablation knob). Quickening is a pure dispatch
    /// optimisation: outputs, errors, and every semantic statistic are
    /// identical either way.
    pub fn set_quickening(&mut self, on: bool) {
        self.quicken = on;
    }

    /// Builder form of [`Vm::set_quickening`].
    pub fn with_quickening(mut self, on: bool) -> Self {
        self.set_quickening(on);
        self
    }

    /// Region-style reclamation between top-level invocations: drops every
    /// object allocated by the previous request (a trivial whole-heap
    /// collection on the shared [`Heap`]) and clears per-request state —
    /// output, statistics, the allocation stack, and call depth — while
    /// keeping all monotone program-level caches warm (inline caches,
    /// layouts, memoised view changes, interned types and mask sets, the
    /// per-chunk profile).
    ///
    /// Returns the number of heap objects reclaimed. This is what keeps a
    /// long-running worker VM's memory flat across requests instead of
    /// growing monotonically.
    pub fn reset_for_request(&mut self) -> usize {
        let reclaimed = self.heap.reset();
        self.output.clear();
        self.stats = Stats::default();
        self.depth = 0;
        self.new_stack.clear();
        self.frames.clear();
        self.alloc_stack.clear();
        reclaimed
    }

    /// Copies the heap's collector counters into [`Vm::stats`] (called at
    /// the end of every public execution entry point).
    fn sync_gc_stats(&mut self) {
        let g = self.heap.gc_stats();
        self.stats.gc_runs = g.runs;
        self.stats.reclaimed = g.reclaimed;
        self.stats.peak_live = g.peak_live;
        self.stats.minor_runs = g.minor_runs;
        self.stats.major_runs = g.major_runs;
        self.stats.promoted = g.promoted;
        self.stats.barrier_hits = g.barrier_hits;
        self.stats.folded = self.code.folded;
        self.stats.fused = self.code.fused;
    }

    /// Runs a collection if the heap has reached its threshold. Roots:
    /// every saved frame's locals and operand stack (the executing frame
    /// is parked on [`Vm::frames`] around allocations) plus the `this`
    /// references and pending record values of allocations in flight.
    fn maybe_gc(&mut self) {
        let Some(kind) = self.heap.pending_collection() else {
            return;
        };
        // Pause timing feeds the trace event only, so the clock is read
        // just when a buffer is attached.
        let start = self.trace.as_ref().map(|_| std::time::Instant::now());
        let Vm {
            heap,
            frames,
            alloc_stack,
            ..
        } = self;
        let reclaimed = heap.collect_kind(kind, |visit| {
            for fr in frames.iter_mut() {
                for v in fr.locals.iter_mut().chain(fr.stack.iter_mut()) {
                    if let Value::Ref(r) = v {
                        visit(r);
                    }
                }
            }
            for sc in alloc_stack.iter_mut() {
                if let Some(r) = sc.this_ref.as_mut() {
                    visit(r);
                }
                for (_, v) in sc.provided.iter_mut() {
                    if let Value::Ref(r) = v {
                        visit(r);
                    }
                }
            }
        });
        if let Some(t) = self.trace.as_mut() {
            t.push(jns_obs::TraceEvent::Gc {
                kind: kind.label(),
                reclaimed: reclaimed as u64,
                live: self.heap.len() as u64,
                peak_live: self.heap.gc_stats().peak_live,
                pause_us: start.map_or(0, |s| s.elapsed().as_micros() as u64),
            });
        }
    }

    /// Records one inline-cache miss resolution, when tracing.
    fn trace_ic_miss(&mut self, kind: jns_obs::IcKind, site: u32, view: ClassId) {
        if let Some(t) = self.trace.as_mut() {
            t.push(jns_obs::TraceEvent::IcMiss {
                kind,
                site,
                view: view.0,
            });
        }
    }

    /// Per-chunk executed-instruction counts `(chunk name, instructions)`,
    /// most executed first, zero-count chunks omitted. Accumulates across
    /// requests on a reused VM (profiling hook for dispatch-loop work).
    pub fn profile(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self
            .chunk_steps
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (self.code.chunks[i].name.clone(), n))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Per-site inline-cache profile: every get/set/call site in the
    /// program (including never-executed ones), with hit/miss counts and
    /// the number of views cached at the site (its polymorphism degree).
    /// Sites are named `chunk+pc kind member` so a quickening pass can
    /// map them back to instructions. Order is stable: all field-get
    /// sites by id, then field-set sites, then call sites.
    pub fn ic_profile(&self) -> Vec<jns_obs::IcSiteProfile> {
        let mut get_at: Vec<Option<(usize, usize, Name)>> =
            vec![None; self.code.n_field_ics as usize];
        let mut set_at: Vec<Option<(usize, usize, Name)>> =
            vec![None; self.code.n_set_ics as usize];
        let mut call_at: Vec<Option<(usize, usize, Name)>> =
            vec![None; self.code.n_call_ics as usize];
        for (ci, chunk) in self.code.chunks.iter().enumerate() {
            for (pc, ins) in chunk.code.iter().enumerate() {
                match ins {
                    Instr::GetField { f, ic } | Instr::LoadGetField { f, ic, .. } => {
                        get_at[*ic as usize] = Some((ci, pc, *f))
                    }
                    Instr::SetField { f, ic, .. } => set_at[*ic as usize] = Some((ci, pc, *f)),
                    Instr::Call { m, ic, .. } | Instr::LoadCall { m, ic, .. } => {
                        call_at[*ic as usize] = Some((ci, pc, *m))
                    }
                    _ => {}
                }
            }
        }
        let name_of = |at: &Option<(usize, usize, Name)>, kind: &str| match at {
            Some((ci, pc, n)) => format!(
                "{}+{} {} {}",
                self.code.chunks[*ci].name,
                pc,
                kind,
                self.prog.table.name_str(*n)
            ),
            None => format!("<unmapped {kind} site>"),
        };
        let mut out = Vec::with_capacity(get_at.len() + set_at.len() + call_at.len());
        for (i, at) in get_at.iter().enumerate() {
            out.push(jns_obs::IcSiteProfile {
                kind: "get",
                site: i as u32,
                name: name_of(at, "get"),
                hits: self.field_ic_hm[i][0],
                misses: self.field_ic_hm[i][1],
                entries: self.field_ics[i].len() as u32,
            });
        }
        for (i, at) in set_at.iter().enumerate() {
            out.push(jns_obs::IcSiteProfile {
                kind: "set",
                site: i as u32,
                name: name_of(at, "set"),
                hits: self.set_ic_hm[i][0],
                misses: self.set_ic_hm[i][1],
                entries: self.set_ics[i].len() as u32,
            });
        }
        for (i, at) in call_at.iter().enumerate() {
            out.push(jns_obs::IcSiteProfile {
                kind: "call",
                site: i as u32,
                name: name_of(at, "call"),
                hits: self.call_ic_hm[i][0],
                misses: self.call_ic_hm[i][1],
                entries: self.call_ics[i].len() as u32,
            });
        }
        out
    }

    /// Runs the program's `main` chunk.
    ///
    /// # Errors
    ///
    /// Same contract as the interpreter: only benign [`RtError`] variants
    /// for well-typed programs.
    pub fn run(&mut self) -> Result<Value, RtError> {
        let Some(main) = self.code.main else {
            return Err(RtError::BadType("program has no main".into()));
        };
        let locals = vec![Value::Unit; self.code.chunks[main].n_locals as usize];
        let r = self.run_chunk(main, locals);
        self.sync_gc_stats();
        r
    }

    /// Formats a value the way `print` shows it (same as the interpreter).
    pub fn display_value(&self, v: &Value) -> String {
        match v {
            Value::Ref(r) => format!("{}@{}", self.prog.table.class_name(r.view), r.loc),
            other => other.to_string(),
        }
    }

    /// Number of live heap objects (for tests).
    pub fn heap_size(&self) -> usize {
        self.heap.len()
    }

    /// The sampler's per-instruction hook: decrements the countdown and,
    /// every `stride` instructions, snapshots the frame stack. The key is
    /// every suspended frame's chunk (outermost first — frames parked
    /// during allocations are on [`Vm::frames`] too, so initialiser-chunk
    /// stacks are complete) plus the executing chunk.
    fn sample_tick(&mut self, cur_chunk: usize) {
        let Vm {
            sampler, frames, ..
        } = self;
        let Some(s) = sampler.as_mut() else { return };
        s.countdown -= 1;
        if s.countdown > 0 {
            return;
        }
        s.countdown = s.stride;
        let mut key: Vec<u32> = Vec::with_capacity(frames.len() + 1);
        key.extend(frames.iter().map(|f| f.chunk as u32));
        key.push(cur_chunk as u32);
        *s.stacks.entry(key).or_insert(0) += 1;
        s.taken += 1;
    }

    fn tick(&mut self) -> Result<(), RtError> {
        self.stats.steps += 1;
        if let Some(f) = self.fuel {
            if self.stats.steps > f {
                return Err(RtError::OutOfFuel);
            }
        }
        Ok(())
    }

    // ----------------------------------------------------------- execution

    /// Runs one chunk to completion with an explicit frame stack: method
    /// calls push VM frames instead of recursing natively, so deep J&s
    /// recursion is bounded by the configurable depth limit, not the Rust
    /// stack. (Native recursion remains only for field-initialiser chunks
    /// during allocation, and each nested initialiser run counts one
    /// recursion unit against the same limit, so it is bounded too.)
    fn run_chunk(&mut self, chunk: usize, locals: Vec<Value>) -> Result<Value, RtError> {
        let base_depth = self.depth;
        let new_mark = self.new_stack.len();
        let frame_mark = self.frames.len();
        let alloc_mark = self.alloc_stack.len();
        let r = self.run_frames(chunk, locals);
        if r.is_err() {
            self.depth = base_depth;
            self.new_stack.truncate(new_mark);
            self.frames.truncate(frame_mark);
            self.alloc_stack.truncate(alloc_mark);
        }
        r
    }

    /// The dispatch loop: a flat walk over the activation's instruction
    /// stream where every non-trivial opcode body is a small handler over
    /// the explicit [`ExecState`], and each handler's [`Flow`] result
    /// tells the loop how to continue. Semantics are bit-for-bit those of
    /// the pre-engine loop: same errors, same statistics, same step
    /// accounting, and the sampler still fires after each *successful*
    /// tick.
    fn run_frames(&mut self, chunk: usize, locals: Vec<Value>) -> Result<Value, RtError> {
        let code = self.code;
        // Suspended frames live on `self.frames` (so the collector can
        // walk them); this invocation owns the stack above `base`.
        let base = self.frames.len();
        let mut cur = ExecState {
            chunk,
            pc: 0,
            locals,
            stack: Vec::with_capacity(8),
        };
        'frame: loop {
            // The activation's instruction stream: this VM's private
            // quickened copy when one exists, the shared chunk otherwise.
            // Cloning the `Arc` keeps the stream alive independently of
            // `self`, so handlers may rewrite `quick_code` mid-stream;
            // every rewrite returns [`Flow::Switch`] to reload.
            let quick = self.quick_code[cur.chunk].clone();
            let instrs: &[Instr] = match &quick {
                Some(q) => q,
                None => &code.chunks[cur.chunk].code,
            };
            loop {
                // Attribute the step before the fuel check so the profile
                // sums to `Stats::steps` even on the OutOfFuel path.
                self.chunk_steps[cur.chunk] += 1;
                self.tick()?;
                // After a *successful* tick, so taken samples count only
                // executed instructions: exactly ⌊executed / stride⌋.
                if self.sampler.is_some() {
                    self.sample_tick(cur.chunk);
                }
                let flow = match &instrs[cur.pc] {
                    Instr::ConstInt(n) => {
                        cur.stack.push(Value::Int(*n));
                        Flow::Next
                    }
                    Instr::ConstBool(b) => {
                        cur.stack.push(Value::Bool(*b));
                        Flow::Next
                    }
                    Instr::ConstStr(id) => {
                        cur.stack
                            .push(Value::Str(code.strings[*id as usize].clone()));
                        Flow::Next
                    }
                    Instr::ConstUnit => {
                        cur.stack.push(Value::Unit);
                        Flow::Next
                    }
                    Instr::Load(slot) => {
                        cur.stack.push(cur.locals[*slot as usize].clone());
                        Flow::Next
                    }
                    Instr::Store(slot) => {
                        cur.locals[*slot as usize] = cur.stack.pop().expect("store underflow");
                        Flow::Next
                    }
                    Instr::Pop => {
                        cur.stack.pop();
                        Flow::Next
                    }
                    Instr::GetField { f, ic } => {
                        let v = cur.stack.pop().expect("getfield underflow");
                        self.op_get(&mut cur, v, *f, *ic, None)?
                    }
                    Instr::SetField { local, var, f, ic } => {
                        self.op_set(&mut cur, *local, *var, *f, *ic)?
                    }
                    Instr::Call { m, argc, ic } => self.op_call(&mut cur, *m, *argc, *ic)?,
                    Instr::NewResolve { ty } => {
                        let class = self.new_class(*ty, &cur.locals)?;
                        self.new_stack.push(class);
                        Flow::Next
                    }
                    Instr::NewAlloc { fields } => self.op_new_alloc(&mut cur, fields)?,
                    Instr::View { ty } => self.op_view(&mut cur, *ty)?,
                    Instr::Cast { ty } => self.op_cast(&mut cur, *ty)?,
                    Instr::Bin(op) => {
                        let rv = cur.stack.pop().expect("bin underflow");
                        let lv = cur.stack.pop().expect("bin underflow");
                        let out = self.binop(*op, lv, rv)?;
                        cur.stack.push(out);
                        Flow::Next
                    }
                    Instr::Un(op) => {
                        let v = cur.stack.pop().expect("un underflow");
                        let out = match (op, v) {
                            (UnOp::Not, Value::Bool(b)) => Value::Bool(!b),
                            (UnOp::Neg, Value::Int(n)) => Value::Int(n.wrapping_neg()),
                            _ => return Err(type_err("bad unary operand")),
                        };
                        cur.stack.push(out);
                        Flow::Next
                    }
                    Instr::Jump(t) => {
                        cur.pc = *t as usize;
                        Flow::Jump
                    }
                    Instr::JumpIfFalse(t, kind) => {
                        let c = cur.stack.pop().expect("jump underflow");
                        let b = c.as_bool().ok_or_else(|| type_err(kind.message()))?;
                        if !b {
                            cur.pc = *t as usize;
                            Flow::Jump
                        } else {
                            Flow::Next
                        }
                    }
                    Instr::JumpIfTrue(t, kind) => {
                        let c = cur.stack.pop().expect("jump underflow");
                        let b = c.as_bool().ok_or_else(|| type_err(kind.message()))?;
                        if b {
                            cur.pc = *t as usize;
                            Flow::Jump
                        } else {
                            Flow::Next
                        }
                    }
                    Instr::Print => {
                        let v = cur.stack.pop().expect("print underflow");
                        let s = self.display_value(&v);
                        self.output.push(s);
                        cur.stack.push(Value::Unit);
                        Flow::Next
                    }
                    Instr::Trap(kind) => {
                        return Err(match kind {
                            TrapKind::UnboundVar(n) => {
                                RtError::UnboundVariable(self.prog.table.name_str(*n))
                            }
                        })
                    }
                    Instr::Ret => self.op_ret(&mut cur, base),

                    // --- superinstructions (compile-time fusion) ---
                    Instr::LoadGetField { slot, f, ic } => {
                        let v = cur.locals[*slot as usize].clone();
                        self.op_get(&mut cur, v, *f, *ic, Some(*slot))?
                    }
                    Instr::LoadLoadBin { a, b, op } => {
                        let lv = cur.locals[*a as usize].clone();
                        let rv = cur.locals[*b as usize].clone();
                        let out = self.binop(*op, lv, rv)?;
                        cur.stack.push(out);
                        Flow::Next
                    }
                    Instr::ConstIntBin { n, op } => {
                        let lv = cur.stack.pop().expect("bin underflow");
                        let out = self.binop(*op, lv, Value::Int(*n))?;
                        cur.stack.push(out);
                        Flow::Next
                    }
                    Instr::ConstIntBinJif { n, op, t, kind } => {
                        let lv = cur.stack.pop().expect("bin underflow");
                        let c = self.binop(*op, lv, Value::Int(*n))?;
                        let b = c.as_bool().ok_or_else(|| type_err(kind.message()))?;
                        if !b {
                            cur.pc = *t as usize;
                            Flow::Jump
                        } else {
                            Flow::Next
                        }
                    }
                    Instr::LoadCall { slot, m, ic } => {
                        self.op_load_call(&mut cur, *slot, *m, *ic)?
                    }

                    // --- quickened forms (runtime rewrites) ---
                    Instr::GetFieldQ { q } => {
                        let v = cur.stack.pop().expect("getfield underflow");
                        self.op_get_q(&mut cur, v, *q)?
                    }
                    Instr::LoadGetFieldQ { slot, q } => {
                        let v = cur.locals[*slot as usize].clone();
                        self.op_get_q(&mut cur, v, *q)?
                    }
                    Instr::SetFieldQ { local, q } => self.op_set_q(&mut cur, *local, *q)?,
                    Instr::CallQ { argc, q } => self.op_call_q(&mut cur, *argc, *q)?,
                    Instr::LoadCallQ { slot, q } => self.op_load_call_q(&mut cur, *slot, *q)?,
                };
                match flow {
                    Flow::Next => cur.pc += 1,
                    Flow::Jump => {}
                    Flow::Switch => continue 'frame,
                    Flow::Done(v) => return Ok(v),
                }
            }
        }
    }

    // ------------------------------------------------------ opcode handlers

    /// Generic field read (`GetField` / `LoadGetField`): `v` is the
    /// receiver, `slot` its frame slot when the load was fused in. Once
    /// the site has been monomorphic for [`QUICKEN_AFTER`] consecutive
    /// resolutions it rewrites itself into the quickened form.
    fn op_get(
        &mut self,
        st: &mut ExecState,
        v: Value,
        f: Name,
        ic: u32,
        slot: Option<u16>,
    ) -> Result<Flow, RtError> {
        let r = self.expect_ref(v)?;
        let res = self.site_field_res(ic, r.view, f);
        let out = self.get_field_resolved(&r, f, &res)?;
        st.stack.push(out);
        if self.quicken && self.field_mono[ic as usize].1 >= QUICKEN_AFTER {
            let view = r.view;
            self.install_quick(
                st.chunk,
                st.pc,
                (QK_GET, ic),
                Quick::Get { view, res, f },
                |q| match slot {
                    Some(slot) => Instr::LoadGetFieldQ { slot, q },
                    None => Instr::GetFieldQ { q },
                },
            );
            st.pc += 1;
            return Ok(Flow::Switch);
        }
        Ok(Flow::Next)
    }

    /// Quickened field read: one view comparison guards the pre-resolved
    /// path; any mismatch de-quickens and re-executes generically.
    fn op_get_q(&mut self, st: &mut ExecState, v: Value, q: u32) -> Result<Flow, RtError> {
        if let Value::Ref(r) = &v {
            if let Quick::Get { view, res, f } = &self.quicks[q as usize] {
                if r.view == *view {
                    let (r, f, res) = (r.clone(), *f, res.clone());
                    let out = self.get_field_resolved(&r, f, &res)?;
                    st.stack.push(out);
                    return Ok(Flow::Next);
                }
            }
        }
        let (f, ic) = match self.dequicken(st) {
            Instr::GetField { f, ic } | Instr::LoadGetField { f, ic, .. } => (f, ic),
            other => unreachable!("de-quickening non-get {other:?}"),
        };
        self.field_mono[ic as usize] = (ClassId(u32::MAX), 0);
        let flow = self.op_get(st, v, f, ic, None)?;
        debug_assert!(matches!(flow, Flow::Next));
        st.pc += 1;
        Ok(Flow::Switch)
    }

    /// Generic field write (`SetField`), with the same quickening policy
    /// as reads (only when the receiver local is in scope).
    fn op_set(
        &mut self,
        st: &mut ExecState,
        local: Option<u16>,
        var: Name,
        f: Name,
        ic: u32,
    ) -> Result<Flow, RtError> {
        let v = st.stack.pop().expect("setfield underflow");
        let r = match local.and_then(|s| st.locals.get(s as usize)) {
            Some(Value::Ref(r)) => r.clone(),
            _ => return Err(RtError::UnboundVariable(self.prog.table.name_str(var))),
        };
        let res = self.site_set_res(ic, r.view, f);
        self.write_cell(r.loc, res.copy, res.slot, f, v.clone());
        // grant(σ, x.f): the stack binding loses the mask (copy-on-write:
        // clones the shared set only when the mask is actually present).
        let mut mask_copied = false;
        if let Some(Value::Ref(r2)) = local.and_then(|s| st.locals.get_mut(s as usize)) {
            mask_copied = r2.grant(&f);
        }
        if mask_copied {
            self.stats.mask_allocs += 1;
        }
        st.stack.push(v);
        if self.quicken && self.set_mono[ic as usize].1 >= QUICKEN_AFTER {
            if let Some(slot) = local {
                let view = r.view;
                self.install_quick(
                    st.chunk,
                    st.pc,
                    (QK_SET, ic),
                    Quick::Set { view, res, f },
                    |q| Instr::SetFieldQ { local: slot, q },
                );
                st.pc += 1;
                return Ok(Flow::Switch);
            }
        }
        Ok(Flow::Next)
    }

    /// Quickened field write: guard the receiver local's view, then store
    /// straight to the resolved slot.
    fn op_set_q(&mut self, st: &mut ExecState, local: u16, q: u32) -> Result<Flow, RtError> {
        if let Some(Value::Ref(r)) = st.locals.get(local as usize) {
            if let Quick::Set { view, res, f } = &self.quicks[q as usize] {
                if r.view == *view {
                    let (loc, res, f) = (r.loc, *res, *f);
                    let v = st.stack.pop().expect("setfield underflow");
                    self.write_cell(loc, res.copy, res.slot, f, v.clone());
                    let mut mask_copied = false;
                    if let Some(Value::Ref(r2)) = st.locals.get_mut(local as usize) {
                        mask_copied = r2.grant(&f);
                    }
                    if mask_copied {
                        self.stats.mask_allocs += 1;
                    }
                    st.stack.push(v);
                    return Ok(Flow::Next);
                }
            }
        }
        let (local, var, f, ic) = match self.dequicken(st) {
            Instr::SetField { local, var, f, ic } => (local, var, f, ic),
            other => unreachable!("de-quickening non-set {other:?}"),
        };
        self.set_mono[ic as usize] = (ClassId(u32::MAX), 0);
        let flow = self.op_set(st, local, var, f, ic)?;
        debug_assert!(matches!(flow, Flow::Next));
        st.pc += 1;
        Ok(Flow::Switch)
    }

    /// Generic call (`Call`): the receiver sits under `argc` arguments on
    /// the operand stack.
    fn op_call(
        &mut self,
        st: &mut ExecState,
        m: Name,
        argc: u16,
        ic: u32,
    ) -> Result<Flow, RtError> {
        let argc = argc as usize;
        let ridx = st.stack.len() - 1 - argc;
        let r = self.expect_ref(st.stack[ridx].clone())?;
        self.stats.calls += 1;
        if self.depth >= self.max_depth {
            return Err(RtError::DepthExceeded(self.max_depth));
        }
        let Some(chunk) = self.site_call_res(ic, r.view, m) else {
            return Err(self.no_method(r.view, m));
        };
        if self.code.chunks[chunk].n_params as usize != argc {
            return Err(RtError::TypeMismatch("arity".into()));
        }
        if self.quicken && self.call_mono[ic as usize].1 >= QUICKEN_AFTER {
            // Arity was just validated, so the quickened form skips it.
            let view = r.view;
            self.install_quick(
                st.chunk,
                st.pc,
                (QK_CALL, ic),
                Quick::Call { view, chunk },
                |q| Instr::CallQ {
                    argc: argc as u16,
                    q,
                },
            );
        }
        Ok(self.enter_chunk(st, chunk, argc, true, r))
    }

    /// Fused zero-argument call (`LoadCall`): receiver read from a frame
    /// slot, nothing popped.
    fn op_load_call(
        &mut self,
        st: &mut ExecState,
        slot: u16,
        m: Name,
        ic: u32,
    ) -> Result<Flow, RtError> {
        let r = self.expect_ref(st.locals[slot as usize].clone())?;
        self.stats.calls += 1;
        if self.depth >= self.max_depth {
            return Err(RtError::DepthExceeded(self.max_depth));
        }
        let Some(chunk) = self.site_call_res(ic, r.view, m) else {
            return Err(self.no_method(r.view, m));
        };
        if self.code.chunks[chunk].n_params != 0 {
            return Err(RtError::TypeMismatch("arity".into()));
        }
        if self.quicken && self.call_mono[ic as usize].1 >= QUICKEN_AFTER {
            let view = r.view;
            self.install_quick(
                st.chunk,
                st.pc,
                (QK_CALL, ic),
                Quick::Call { view, chunk },
                |q| Instr::LoadCallQ { slot, q },
            );
        }
        Ok(self.enter_chunk(st, chunk, 0, false, r))
    }

    /// Quickened call: guard the receiver view, then enter the resolved
    /// chunk directly (dispatch, arity, and cache probe all pre-done).
    fn op_call_q(&mut self, st: &mut ExecState, argc: u16, q: u32) -> Result<Flow, RtError> {
        let argc = argc as usize;
        let ridx = st.stack.len() - 1 - argc;
        if let Value::Ref(r) = &st.stack[ridx] {
            if let Quick::Call { view, chunk } = &self.quicks[q as usize] {
                if r.view == *view {
                    let (r, chunk) = (r.clone(), *chunk);
                    self.stats.calls += 1;
                    if self.depth >= self.max_depth {
                        return Err(RtError::DepthExceeded(self.max_depth));
                    }
                    return Ok(self.enter_chunk(st, chunk, argc, true, r));
                }
            }
        }
        let (m, argc, ic) = match self.dequicken(st) {
            Instr::Call { m, argc, ic } => (m, argc, ic),
            other => unreachable!("de-quickening non-call {other:?}"),
        };
        self.call_mono[ic as usize] = (ClassId(u32::MAX), 0);
        self.op_call(st, m, argc, ic)
    }

    /// Quickened fused call (`LoadCallQ`).
    fn op_load_call_q(&mut self, st: &mut ExecState, slot: u16, q: u32) -> Result<Flow, RtError> {
        if let Value::Ref(r) = &st.locals[slot as usize] {
            if let Quick::Call { view, chunk } = &self.quicks[q as usize] {
                if r.view == *view {
                    let (r, chunk) = (r.clone(), *chunk);
                    self.stats.calls += 1;
                    if self.depth >= self.max_depth {
                        return Err(RtError::DepthExceeded(self.max_depth));
                    }
                    return Ok(self.enter_chunk(st, chunk, 0, false, r));
                }
            }
        }
        let (m, ic) = match self.dequicken(st) {
            Instr::LoadCall { m, ic, .. } => (m, ic),
            other => unreachable!("de-quickening non-call {other:?}"),
        };
        self.call_mono[ic as usize] = (ClassId(u32::MAX), 0);
        self.op_load_call(st, slot, m, ic)
    }

    /// Switches into a resolved callee: drains the arguments into a
    /// pooled activation (top of stack = last argument), optionally pops
    /// the receiver slot beneath them, and parks the caller.
    fn enter_chunk(
        &mut self,
        st: &mut ExecState,
        chunk: usize,
        argc: usize,
        recv_on_stack: bool,
        r: RefVal,
    ) -> Flow {
        let n_locals = self.code.chunks[chunk].n_locals as usize;
        let mut callee = self.pool.pop().unwrap_or_default();
        callee.chunk = chunk;
        callee.pc = 0;
        callee.locals.clear();
        callee.locals.resize(n_locals, Value::Unit);
        callee.locals[0] = Value::Ref(r);
        for i in (1..=argc).rev() {
            callee.locals[i] = st.stack.pop().expect("call underflow");
        }
        if recv_on_stack {
            st.stack.pop();
        }
        self.depth += 1;
        st.pc += 1; // return address
        self.frames.push(std::mem::replace(st, callee));
        Flow::Switch
    }

    /// `NewAlloc`: collects the provided record values and runs R-ALLOC
    /// with the executing frame parked where the collector can see it.
    fn op_new_alloc(&mut self, st: &mut ExecState, fields: &Arc<[Name]>) -> Result<Flow, RtError> {
        let vals = st.stack.split_off(st.stack.len() - fields.len());
        let class = self.new_stack.pop().expect("unbalanced NewAlloc");
        let provided: Vec<(Name, Value)> = fields.iter().copied().zip(vals).collect();
        // Park the executing frame where a collection triggered inside
        // `alloc` can see (and forward) its locals and operands.
        self.frames.push(std::mem::take(st));
        let r = self.alloc(class, provided);
        *st = self.frames.pop().expect("parked frame");
        st.stack.push(r?);
        Ok(Flow::Next)
    }

    /// `(view T)e`.
    fn op_view(&mut self, st: &mut ExecState, ty: u32) -> Result<Flow, RtError> {
        let v = st.stack.pop().expect("view underflow");
        let r = self.expect_ref(v)?;
        self.stats.views_explicit += 1;
        // The interned mask set already includes the masks declared on
        // the source type.
        let (tid, masks) = self.eval_type_interned(ty, &st.locals)?;
        let out = self.apply_view(r, tid, masks)?;
        st.stack.push(Value::Ref(out));
        Ok(Flow::Next)
    }

    /// `(cast T)e`.
    fn op_cast(&mut self, st: &mut ExecState, ty: u32) -> Result<Flow, RtError> {
        let v = st.stack.pop().expect("cast underflow");
        match v {
            Value::Ref(r) => {
                let (tid, _masks) = self.eval_type_interned(ty, &st.locals)?;
                if self.view_subtype(r.view, tid) {
                    st.stack.push(Value::Ref(r));
                } else {
                    return Err(RtError::CastFailed(format!(
                        "view `{}` is not a `{}`",
                        self.prog.table.class_name(r.view),
                        self.prog.table.show_ty(&self.ty_pool[tid as usize])
                    )));
                }
            }
            prim => st.stack.push(prim), // primitive casts are no-ops
        }
        Ok(Flow::Next)
    }

    /// `Ret`: returns to the caller (recycling the finished activation)
    /// or finishes this invocation.
    fn op_ret(&mut self, st: &mut ExecState, base: usize) -> Flow {
        let v = st.stack.pop().unwrap_or(Value::Unit);
        if self.frames.len() > base {
            self.depth -= 1;
            let caller = self.frames.pop().expect("frame under base");
            let mut done = std::mem::replace(st, caller);
            st.stack.push(v);
            // Clear before pooling: recycled activations hold no values,
            // so the pool is never a GC root and never goes stale across
            // a compaction.
            done.locals.clear();
            done.stack.clear();
            self.pool.push(done);
            Flow::Switch
        } else {
            Flow::Done(v)
        }
    }

    // ---------------------------------------------------------- quickening

    /// Installs (or refreshes) a site's quick-table entry and patches the
    /// quickened instruction into this VM's private copy of the chunk.
    fn install_quick(
        &mut self,
        chunk: usize,
        pc: usize,
        key: (u8, u32),
        quick: Quick,
        make: impl FnOnce(u32) -> Instr,
    ) {
        let q = match self.site_quick.get(&key) {
            Some(&q) => {
                self.quicks[q as usize] = quick;
                q
            }
            None => {
                let q = self.quicks.len() as u32;
                self.quicks.push(quick);
                self.site_quick.insert(key, q);
                q
            }
        };
        self.rewrite_code(chunk, pc, make(q));
        self.stats.quickened += 1;
    }

    /// Restores the generic instruction at a quickened site (guard
    /// failure) and returns it, so the caller can re-execute generically.
    fn dequicken(&mut self, st: &ExecState) -> Instr {
        let orig = self.code.chunks[st.chunk].code[st.pc].clone();
        self.rewrite_code(st.chunk, st.pc, orig.clone());
        self.stats.dequickened += 1;
        orig
    }

    /// Copy-on-quicken: clones the chunk's stream on first rewrite (the
    /// shared [`VmProgram`] is never touched, so every serve worker
    /// quickens independently) and patches one instruction.
    fn rewrite_code(&mut self, chunk: usize, pc: usize, ins: Instr) {
        let mut stream: Vec<Instr> = match &self.quick_code[chunk] {
            Some(a) => a.to_vec(),
            None => self.code.chunks[chunk].code.clone(),
        };
        stream[pc] = ins;
        self.quick_code[chunk] = Some(stream.into());
    }

    // -------------------------------------------------------------- fields

    /// Per-site inline cache in front of the global (view, field) table.
    fn site_field_res(&mut self, ic: u32, view: ClassId, f: Name) -> Arc<FieldRes> {
        if self.quicken {
            mono_track(&mut self.field_mono[ic as usize], view);
        }
        let site = &self.field_ics[ic as usize];
        for (v, res) in site {
            if *v == view {
                let res = res.clone();
                self.stats.ic_hits += 1;
                self.field_ic_hm[ic as usize][0] += 1;
                return res;
            }
        }
        self.stats.ic_misses += 1;
        self.field_ic_hm[ic as usize][1] += 1;
        self.trace_ic_miss(jns_obs::IcKind::FieldGet, ic, view);
        let res = self.resolve_field(view, f);
        let site = &mut self.field_ics[ic as usize];
        if site.len() < IC_CAP {
            site.push((view, res.clone()));
        }
        res
    }

    fn site_set_res(&mut self, ic: u32, view: ClassId, f: Name) -> SetRes {
        if self.quicken {
            mono_track(&mut self.set_mono[ic as usize], view);
        }
        let site = &self.set_ics[ic as usize];
        for (v, res) in site {
            if *v == view {
                let res = *res;
                self.stats.ic_hits += 1;
                self.set_ic_hm[ic as usize][0] += 1;
                return res;
            }
        }
        self.stats.ic_misses += 1;
        self.set_ic_hm[ic as usize][1] += 1;
        self.trace_ic_miss(jns_obs::IcKind::FieldSet, ic, view);
        let layout = self.layout_of(view);
        let copy = self.prog.sharing.fclass(view, f);
        let res = SetRes {
            copy,
            slot: layout.slots.get(&(copy, f)).copied(),
        };
        let site = &mut self.set_ics[ic as usize];
        if site.len() < IC_CAP {
            site.push((view, res));
        }
        res
    }

    /// Reads `r.f` through `r`'s view (public for the type evaluator and
    /// direct API users); uses only the global caches.
    pub fn get_field(&mut self, r: &RefVal, f: Name) -> Result<Value, RtError> {
        let res = self.resolve_field(r.view, f);
        self.get_field_resolved(r, f, &res)
    }

    fn get_field_resolved(
        &mut self,
        r: &RefVal,
        f: Name,
        res: &FieldRes,
    ) -> Result<Value, RtError> {
        let stored = {
            let Some(obj) = self.heap.obj(r.loc) else {
                return Err(self.uninitialised(r, f));
            };
            let mut stored = obj.read(res.copy, res.slot, f);
            if stored.is_none() {
                // §3.3 forwarding: read the other family's copy.
                for (alt, slot) in res.alts.iter() {
                    stored = obj.read(*alt, *slot, f);
                    if stored.is_some() {
                        break;
                    }
                }
            }
            match stored {
                Some(v) => v,
                None => return Err(self.uninitialised(r, f)),
            }
        };
        match stored {
            Value::Ref(inner) => {
                // Lazy implicit view change at the interpreted field type.
                let (tid, masks) = res.ft.clone().map_err(RtError::BadType)?;
                self.stats.views_implicit += 1;
                self.apply_view(inner, tid, masks).map(Value::Ref)
            }
            prim => Ok(prim),
        }
    }

    fn uninitialised(&self, r: &RefVal, f: Name) -> RtError {
        RtError::UninitialisedField(format!(
            "{}.{} (view {})",
            r.loc,
            self.prog.table.name_str(f),
            self.prog.table.class_name(r.view)
        ))
    }

    fn write_cell(&mut self, loc: Loc, copy: ClassId, slot: Option<u32>, f: Name, v: Value) {
        self.heap.set(loc, copy, slot, f, v);
    }

    fn resolve_field(&mut self, view: ClassId, f: Name) -> Arc<FieldRes> {
        if let Some(res) = self.field_res.get(&(view, f)) {
            return res.clone();
        }
        let layout = self.layout_of(view);
        let copy = self.prog.sharing.fclass(view, f);
        let slot = layout.slots.get(&(copy, f)).copied();
        let alts: Box<[(ClassId, Option<u32>)]> = self
            .prog
            .sharing
            .forwards(view, f)
            .iter()
            .map(|&alt| (alt, layout.slots.get(&(alt, f)).copied()))
            .collect();
        let ft = match self.field_view_type(view, f) {
            Ok((ty, masks)) => {
                let tid = self.intern_ty(ty);
                Ok((tid, self.intern_masks(masks)))
            }
            Err(m) => Err(m),
        };
        let res = Arc::new(FieldRes {
            copy,
            slot,
            alts,
            ft,
        });
        self.field_res.insert((view, f), res.clone());
        res
    }

    /// The field type of `f` interpreted in `view` (the type driving the
    /// lazy implicit view change), canonicalised.
    fn field_view_type(&self, view: ClassId, f: Name) -> Result<(Ty, BTreeSet<Name>), String> {
        let env = TypeEnv::new();
        let judge = Judge::new(&self.prog.table, &env);
        let recv = Ty::Class(view).exact().unmasked();
        let ft = judge.ftype(&recv, f)?;
        Ok((judge.canon(&ft.ty), ft.masks))
    }

    // -------------------------------------------------------------- layout

    /// The union layout of `class`'s sharing group (built once per group).
    fn layout_of(&mut self, class: ClassId) -> Arc<Layout> {
        if let Some(l) = self.layouts.get(&class) {
            return l.clone();
        }
        let partners = self.prog.sharing.partners(class);
        let mut slots: HashMap<(ClassId, Name), u32> = HashMap::new();
        let mut n = 0u32;
        for &v in &partners {
            for f in self.prog.table.field_names(v) {
                let copy = self.prog.sharing.fclass(v, f);
                slots.entry((copy, f)).or_insert_with(|| {
                    n += 1;
                    n - 1
                });
            }
        }
        let layout = Arc::new(Layout { slots, n_slots: n });
        for &v in &partners {
            self.layouts.insert(v, layout.clone());
        }
        self.layouts.insert(class, layout.clone());
        layout
    }

    // -------------------------------------------------------------- alloc

    /// R-ALLOC: allocates an instance, runs declared field initialisers
    /// (most-base first), then stores the provided record values.
    ///
    /// The in-flight state (`this`, pending record values) is parked on
    /// [`Vm::alloc_stack`] so a collection triggered here — or inside a
    /// nested initialiser's own allocations — sees it as roots and
    /// forwards the nascent object's ℓ with everything else.
    pub fn alloc(
        &mut self,
        class: ClassId,
        provided: Vec<(Name, Value)>,
    ) -> Result<Value, RtError> {
        self.stats.allocs += 1;
        let layout = self.layout_of(class);
        self.alloc_stack.push(AllocScope {
            this_ref: None,
            provided,
        });
        let guts = self.alloc_init(class, &layout);
        let scope = self.alloc_stack.pop().expect("alloc scope");
        let mut masks = match guts {
            Ok(m) => m,
            Err(e) => {
                self.sync_gc_stats();
                return Err(e);
            }
        };
        let this = scope.this_ref.expect("this_ref set on success");
        let loc = this.loc;
        for (fname, v) in scope.provided {
            let copy = self.prog.sharing.fclass(class, fname);
            let slot = layout.slots.get(&(copy, fname)).copied();
            self.write_cell(loc, copy, slot, fname, v);
            masks.remove(&fname);
        }
        // Fully initialised objects end with the empty mask set, which the
        // pool shares across every allocation.
        let masks = self.intern_masks(masks);
        self.sync_gc_stats();
        Ok(Value::Ref(RefVal {
            loc,
            view: class,
            masks,
        }))
    }

    /// The GC-sensitive half of [`Vm::alloc`]: carves out the object and
    /// runs its declared field initialisers, reading the object's current
    /// ℓ back from the alloc scope after every step that may collect.
    /// Returns the masks still unremoved after the declared initialisers.
    fn alloc_init(&mut self, class: ClassId, layout: &Layout) -> Result<BTreeSet<Name>, RtError> {
        // GC point: the only place the VM grows the heap. The scope this
        // call pushed holds the provided values; the object itself does
        // not exist yet.
        self.maybe_gc();
        let loc = self.heap.alloc(layout.n_slots);
        let all_fields = self.prog.table.fields_of(class);
        let mut masks: BTreeSet<Name> = all_fields.iter().map(|(_, fi)| fi.name).collect();
        // `this` during initialisation: all fields masked (F-OK).
        self.stats.mask_allocs += 1;
        let scope = self.alloc_stack.len() - 1;
        self.alloc_stack[scope].this_ref = Some(RefVal {
            loc,
            view: class,
            masks: Arc::new(masks.clone()),
        });
        for (owner, fi) in all_fields.iter().rev() {
            if !fi.has_init {
                continue;
            }
            let Some(&chunk) = self.code.field_inits.get(&(*owner, fi.name)) else {
                continue;
            };
            let this_ref = self.alloc_stack[scope]
                .this_ref
                .clone()
                .expect("in-flight this");
            let mut locals = vec![Value::Unit; self.code.chunks[chunk].n_locals as usize];
            locals[0] = Value::Ref(this_ref);
            // Initialiser chunks are the one place the VM still recurses
            // natively; charge each nested run one recursion unit (as the
            // interpreter does) so runaway initialiser recursion surfaces
            // as `DepthExceeded` instead of exhausting the host stack.
            if self.depth >= self.max_depth {
                return Err(RtError::DepthExceeded(self.max_depth));
            }
            self.depth += 1;
            let r = self.run_chunk(chunk, locals);
            self.depth -= 1;
            let v = r?;
            // Re-read ℓ: a collection inside the initialiser forwards the
            // scope's `this_ref` along with every other root.
            let loc = self.alloc_stack[scope]
                .this_ref
                .as_ref()
                .expect("in-flight this")
                .loc;
            let copy = self.prog.sharing.fclass(class, fi.name);
            let slot = layout.slots.get(&(copy, fi.name)).copied();
            self.write_cell(loc, copy, slot, fi.name, v);
            masks.remove(&fi.name);
        }
        Ok(masks)
    }

    // -------------------------------------------------------------- calls

    /// Per-site call cache in front of the global dispatch table.
    fn site_call_res(&mut self, ic: u32, view: ClassId, m: Name) -> Option<usize> {
        if self.quicken {
            mono_track(&mut self.call_mono[ic as usize], view);
        }
        let site = &self.call_ics[ic as usize];
        for (v, c) in site {
            if *v == view {
                let c = *c;
                self.stats.ic_hits += 1;
                self.call_ic_hm[ic as usize][0] += 1;
                return c;
            }
        }
        self.stats.ic_misses += 1;
        self.call_ic_hm[ic as usize][1] += 1;
        self.trace_ic_miss(jns_obs::IcKind::Call, ic, view);
        let c = self.resolve_method(view, m);
        let site = &mut self.call_ics[ic as usize];
        if site.len() < IC_CAP {
            site.push((view, c));
        }
        c
    }

    fn no_method(&self, view: ClassId, m: Name) -> RtError {
        RtError::TypeMismatch(format!(
            "no method `{}` on view `{}`",
            self.prog.table.name_str(m),
            self.prog.table.class_name(view)
        ))
    }

    /// Public view-based dispatch entry (mirrors `Machine::call`).
    pub fn call(&mut self, r: RefVal, m: Name, args: Vec<Value>) -> Result<Value, RtError> {
        self.stats.calls += 1;
        if self.depth >= self.max_depth {
            return Err(RtError::DepthExceeded(self.max_depth));
        }
        let Some(chunk) = self.resolve_method(r.view, m) else {
            return Err(self.no_method(r.view, m));
        };
        let info = &self.code.chunks[chunk];
        if info.n_params as usize != args.len() {
            return Err(RtError::TypeMismatch("arity".into()));
        }
        let mut locals = vec![Value::Unit; info.n_locals as usize];
        locals[0] = Value::Ref(r);
        for (i, v) in args.into_iter().enumerate() {
            locals[1 + i] = v;
        }
        self.depth += 1;
        let out = self.run_chunk(chunk, locals);
        self.depth -= 1;
        self.sync_gc_stats();
        out
    }

    /// `mbody(S, m)` as a chunk index: BFS over supers from the view,
    /// first class with an explicit body wins. Memoised per (view, m).
    fn resolve_method(&mut self, view: ClassId, m: Name) -> Option<usize> {
        if let Some(&r) = self.dispatch.get(&(view, m)) {
            return r;
        }
        let mut queue = std::collections::VecDeque::from([view]);
        let mut seen = std::collections::HashSet::from([view]);
        let mut found = None;
        while let Some(q) = queue.pop_front() {
            if let Some(&c) = self.code.methods.get(&(q, m)) {
                found = Some(c);
                break;
            }
            for s in self.prog.table.direct_supers(q) {
                if seen.insert(s) {
                    queue.push_back(s);
                }
            }
        }
        self.dispatch.insert((view, m), found);
        found
    }

    // -------------------------------------------------------------- views

    fn intern_ty(&mut self, t: Ty) -> u32 {
        if let Some(&id) = self.ty_ids.get(&t) {
            return id;
        }
        let id = self.ty_pool.len() as u32;
        self.ty_pool.push(t.clone());
        self.ty_ids.insert(t, id);
        id
    }

    /// Interns a runtime-computed mask set: the first occurrence counts as
    /// a materialisation (`Stats::mask_allocs`), every later one shares
    /// the pooled `Arc`.
    fn intern_masks(&mut self, masks: BTreeSet<Name>) -> MaskSet {
        let (m, fresh) = self.mask_pool.intern(masks);
        if fresh {
            self.stats.mask_allocs += 1;
        }
        m
    }

    /// Whether `view! ≤ target` (memoised on the interned target).
    fn view_subtype(&mut self, view: ClassId, tid: u32) -> bool {
        if let Some(&b) = self.sub_memo.get(&(view, tid)) {
            return b;
        }
        let target = self.ty_pool[tid as usize].clone();
        let env = TypeEnv::new();
        let judge = Judge::new(&self.prog.table, &env);
        let b = judge.sub_pure(&Ty::Class(view).exact(), &target);
        self.sub_memo.insert((view, tid), b);
        b
    }

    /// The unique sharing partner of `view` under `target` (memoised).
    fn partner_for(&mut self, view: ClassId, tid: u32) -> Result<ClassId, PartnerErr> {
        if let Some(r) = self.partner_memo.get(&(view, tid)) {
            return *r;
        }
        let partners = self.prog.sharing.partners(view);
        let mut candidates = Vec::new();
        for p in partners {
            if p != view && self.view_subtype(p, tid) {
                candidates.push(p);
            }
        }
        let r = match candidates.len() {
            1 => Ok(candidates[0]),
            0 => Err(PartnerErr::NoneFound),
            _ => Err(PartnerErr::Ambiguous),
        };
        self.partner_memo.insert((view, tid), r);
        r
    }

    /// Public view change (mirrors `Machine::apply_view`): re-views `r`
    /// at `target` with the given mask set.
    pub fn view_as(
        &mut self,
        r: RefVal,
        target: &Ty,
        masks: BTreeSet<Name>,
    ) -> Result<RefVal, RtError> {
        let tid = self.intern_ty(target.clone());
        let masks = self.intern_masks(masks);
        self.apply_view(r, tid, masks)
    }

    /// The `view` function (§4.15), memoised: re-views `r` at the interned
    /// target type with an interned (shared) mask set.
    fn apply_view(&mut self, r: RefVal, tid: u32, masks: MaskSet) -> Result<RefVal, RtError> {
        // Case 1: current view already compatible.
        if self.view_subtype(r.view, tid) && r.masks.is_subset(&masks) {
            return Ok(RefVal {
                loc: r.loc,
                view: r.view,
                masks,
            });
        }
        // Case 2: the unique shared partner below the target.
        match self.partner_for(r.view, tid) {
            Ok(p) => Ok(RefVal {
                loc: r.loc,
                view: p,
                masks,
            }),
            Err(PartnerErr::NoneFound) => Err(RtError::ViewFailed(format!(
                "`{}` has no shared view under `{}`",
                self.prog.table.class_name(r.view),
                self.prog.table.show_ty(&self.ty_pool[tid as usize])
            ))),
            Err(PartnerErr::Ambiguous) => Err(RtError::ViewFailed(format!(
                "ambiguous view change from `{}` to `{}`",
                self.prog.table.class_name(r.view),
                self.prog.table.show_ty(&self.ty_pool[tid as usize])
            ))),
        }
    }

    // ---------------------------------------------------------- type eval

    /// Evaluates a type-table entry to an interned runtime type plus the
    /// *full* interned mask set: masks contributed by dependent classes
    /// unioned with the masks declared on the source type. Non-dependent
    /// entries resolve to one shared `Arc` per entry, so the hot path of
    /// a view transition allocates nothing.
    fn eval_type_interned(
        &mut self,
        tidx: u32,
        locals: &[Value],
    ) -> Result<(u32, MaskSet), RtError> {
        if let Some((tid, masks)) = &self.pre_view[tidx as usize] {
            return Ok((*tid, masks.clone()));
        }
        let entry = &self.code.types[tidx as usize];
        let declared = entry.masks.clone();
        if let Some((ty, dep_masks)) = &entry.pre {
            let (ty, dep_masks) = (ty.clone(), dep_masks.clone());
            let tid = self.intern_ty(ty);
            let masks = if dep_masks.is_empty() {
                declared
            } else {
                let mut all = dep_masks;
                all.extend(declared.iter().copied());
                self.intern_masks(all)
            };
            self.pre_view[tidx as usize] = Some((tid, masks.clone()));
            return Ok((tid, masks));
        }
        let (ty, mut masks) = self.eval_type_rt(tidx, locals)?;
        masks.extend(declared.iter().copied());
        Ok((self.intern_ty(ty), self.intern_masks(masks)))
    }

    /// Runtime type evaluation: delegates to the shared Fig. 16 algorithm
    /// in `jns-eval` (one source of truth for both backends), resolving
    /// dependent path roots through this frame's slot snapshot.
    fn eval_type_rt(
        &mut self,
        tidx: u32,
        locals: &[Value],
    ) -> Result<(Ty, BTreeSet<Name>), RtError> {
        let entry = &self.code.types[tidx as usize];
        let mut env: HashMap<Name, Value> = HashMap::new();
        for (n, slot) in &entry.bindings {
            if let Some(s) = slot {
                env.insert(*n, locals[*s as usize].clone());
            }
        }
        let ty = entry.ty.clone();
        jns_eval::typeeval::eval_type_in(self, &|n| env.get(&n).cloned(), &ty)
    }

    /// Resolves the class a `new` type denotes (pre-resolved at compile
    /// time for non-dependent types).
    fn new_class(&mut self, tidx: u32, locals: &[Value]) -> Result<ClassId, RtError> {
        if let Some(c) = self.code.types[tidx as usize].new_class {
            return Ok(c);
        }
        let entry = &self.code.types[tidx as usize];
        let mut env: HashMap<Name, Value> = HashMap::new();
        for (n, slot) in &entry.bindings {
            if let Some(s) = slot {
                env.insert(*n, locals[*s as usize].clone());
            }
        }
        let ty = entry.ty.clone();
        jns_eval::typeeval::eval_type_class_in(self, &|n| env.get(&n).cloned(), &ty)
    }

    // ---------------------------------------------------------- operators

    fn expect_ref(&self, v: Value) -> Result<RefVal, RtError> {
        match v {
            Value::Ref(r) => Ok(r),
            other => Err(RtError::TypeMismatch(format!(
                "expected an object, got `{other}`"
            ))),
        }
    }

    fn binop(&mut self, op: BinOp, l: Value, r: Value) -> Result<Value, RtError> {
        use BinOp::*;
        Ok(match (op, &l, &r) {
            (Add, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_add(*b)),
            (Sub, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_sub(*b)),
            (Mul, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_mul(*b)),
            (Div, Value::Int(a), Value::Int(b)) => {
                if *b == 0 {
                    return Err(RtError::DivisionByZero);
                }
                Value::Int(a.wrapping_div(*b))
            }
            (Rem, Value::Int(a), Value::Int(b)) => {
                if *b == 0 {
                    return Err(RtError::DivisionByZero);
                }
                Value::Int(a.wrapping_rem(*b))
            }
            (Add, Value::Str(a), Value::Str(b)) => {
                Value::Str(Arc::from(format!("{a}{b}").as_str()))
            }
            (Lt, Value::Int(a), Value::Int(b)) => Value::Bool(a < b),
            (Le, Value::Int(a), Value::Int(b)) => Value::Bool(a <= b),
            (Gt, Value::Int(a), Value::Int(b)) => Value::Bool(a > b),
            (Ge, Value::Int(a), Value::Int(b)) => Value::Bool(a >= b),
            (Eq, a, b) => Value::Bool(value_eq(a, b)?),
            (Ne, a, b) => Value::Bool(!value_eq(a, b)?),
            _ => return Err(type_err("bad binary operands")),
        })
    }
}

impl jns_eval::typeeval::TypeEvalCtx for Vm<'_> {
    fn read_field(&mut self, r: &RefVal, f: Name) -> Result<Value, RtError> {
        self.get_field(r, f)
    }

    fn checked_program(&self) -> &CheckedProgram {
        self.prog
    }
}

/// `==`: primitive equality, or *location* equality on references (§2.3).
fn value_eq(l: &Value, r: &Value) -> Result<bool, RtError> {
    Ok(match (l, r) {
        (Value::Int(a), Value::Int(b)) => a == b,
        (Value::Bool(a), Value::Bool(b)) => a == b,
        (Value::Str(a), Value::Str(b)) => a == b,
        (Value::Unit, Value::Unit) => true,
        (Value::Ref(a), Value::Ref(b)) => a.loc == b.loc,
        _ => return Err(type_err("`==` on mismatched values")),
    })
}

fn type_err(m: &str) -> RtError {
    RtError::TypeMismatch(m.to_string())
}
