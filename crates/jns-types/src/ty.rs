//! Internal type representation (Fig. 8 of the paper, plus primitives).
//!
//! The split between [`Ty`] (pure types `PT`) and [`Type`] (possibly masked
//! types `PT\f`) mirrors the calculus grammar: masks only ever appear
//! outermost.

use crate::names::Name;
use jns_syntax::PrimTy;
use std::collections::BTreeSet;
use std::fmt;

/// Identifies a class `P` in the class table (`◦` is `ClassId(0)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u32);

impl ClassId {
    /// The outermost class `◦` that contains all top-level declarations.
    pub const ROOT: ClassId = ClassId(0);
}

/// A final access path `p`: a variable (possibly `this`) followed by final
/// field accesses.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TPath {
    /// The base variable (interned; `this` is a regular name).
    pub base: Name,
    /// The final fields accessed, in order.
    pub fields: Vec<Name>,
}

impl TPath {
    /// The path consisting of just a variable.
    pub fn var(base: Name) -> Self {
        TPath {
            base,
            fields: Vec::new(),
        }
    }

    /// Extends the path with one more field.
    pub fn child(&self, f: Name) -> Self {
        let mut fields = self.fields.clone();
        fields.push(f);
        TPath {
            base: self.base,
            fields,
        }
    }
}

/// A pure type `PT` (no masks).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Ty {
    /// A primitive type (extension; see DESIGN.md).
    Prim(PrimTy),
    /// A fully resolved class `P` (absolute path from `◦`).
    Class(ClassId),
    /// A dependent class `p.class`.
    Dep(TPath),
    /// A prefix type `P[PT]`.
    Prefix(ClassId, Box<Ty>),
    /// A nested member `PT.C` where `PT` is not a simple class.
    Nested(Box<Ty>, Name),
    /// An exact type `PT!`.
    Exact(Box<Ty>),
    /// An intersection `&PT` (kept sorted and flattened).
    Meet(Vec<Ty>),
}

impl Ty {
    /// `true` if the type contains no dependent classes (`PS` in Fig. 8).
    pub fn is_non_dependent(&self) -> bool {
        match self {
            Ty::Prim(_) | Ty::Class(_) => true,
            Ty::Dep(_) => false,
            Ty::Prefix(_, t) | Ty::Nested(t, _) | Ty::Exact(t) => t.is_non_dependent(),
            Ty::Meet(ts) => ts.iter().all(Ty::is_non_dependent),
        }
    }

    /// The set of final access paths occurring in the type (`paths(T)`,
    /// Fig. 11).
    pub fn paths(&self) -> Vec<&TPath> {
        let mut out = Vec::new();
        self.collect_paths(&mut out);
        out
    }

    fn collect_paths<'a>(&'a self, out: &mut Vec<&'a TPath>) {
        match self {
            Ty::Prim(_) | Ty::Class(_) => {}
            Ty::Dep(p) => out.push(p),
            Ty::Prefix(_, t) | Ty::Nested(t, _) | Ty::Exact(t) => t.collect_paths(out),
            Ty::Meet(ts) => {
                for t in ts {
                    t.collect_paths(out);
                }
            }
        }
    }

    /// `prefixExact_k(T)` (Fig. 11): whether the `k`-th prefix of the type
    /// is exact.
    pub fn prefix_exact(&self, k: u32) -> bool {
        match self {
            Ty::Prim(_) => k == 0, // primitives are their own exact class
            Ty::Class(_) => false,
            Ty::Dep(_) => true,
            Ty::Nested(t, _) => {
                if k == 0 {
                    false
                } else {
                    t.prefix_exact(k - 1)
                }
            }
            Ty::Prefix(_, t) => t.prefix_exact(k + 1),
            Ty::Meet(ts) => ts.iter().any(|t| t.prefix_exact(k)),
            Ty::Exact(_) => true,
        }
    }

    /// `exact(T) = prefixExact_0(T)`: all instances have the same run-time
    /// class.
    pub fn is_exact(&self) -> bool {
        self.prefix_exact(0)
    }

    /// Convenience constructor for `PT!` that avoids double exactness.
    pub fn exact(self) -> Ty {
        match self {
            t @ Ty::Exact(_) => t,
            t @ Ty::Prim(_) => t,
            t => Ty::Exact(Box::new(t)),
        }
    }

    /// Wraps in a [`Type`] with no masks.
    pub fn unmasked(self) -> Type {
        Type {
            ty: self,
            masks: BTreeSet::new(),
        }
    }

    /// Wraps in a [`Type`] with the given masks.
    pub fn with_masks(self, masks: BTreeSet<Name>) -> Type {
        Type { ty: self, masks }
    }
}

/// A possibly masked type `T ::= PT | PT\f`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Type {
    /// The underlying pure type (`pure(T)`).
    pub ty: Ty,
    /// Masked fields (empty for pure types).
    pub masks: BTreeSet<Name>,
}

impl Type {
    /// `pure(T)`: strips the masks.
    pub fn pure(&self) -> &Ty {
        &self.ty
    }

    /// Adds a mask on field `f` (`T\f`), a supertype of `T`.
    pub fn masked(mut self, f: Name) -> Type {
        self.masks.insert(f);
        self
    }

    /// Removes the mask on field `f`, if present (used by `grant`).
    pub fn grant(mut self, f: Name) -> Type {
        self.masks.remove(&f);
        self
    }

    /// Whether field `f` is masked.
    pub fn is_masked(&self, f: Name) -> bool {
        self.masks.contains(&f)
    }
}

impl From<Ty> for Type {
    fn from(ty: Ty) -> Self {
        ty.unmasked()
    }
}

/// The unit/void type.
pub fn void() -> Type {
    Ty::Prim(PrimTy::Void).unmasked()
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> Name {
        Name(i)
    }

    #[test]
    fn prefix_exact_of_dependent_class() {
        let t = Ty::Dep(TPath::var(n(0)));
        assert!(t.prefix_exact(0));
        assert!(t.prefix_exact(5));
    }

    #[test]
    fn prefix_exact_of_nested() {
        // AST!.Exp : prefixExact_0 = false, prefixExact_1 = true.
        let t = Ty::Nested(Box::new(Ty::Class(ClassId(1)).exact()), n(1));
        assert!(!t.prefix_exact(0));
        assert!(t.prefix_exact(1));
        // AST.Exp! : prefixExact_0 = true.
        let t2 = Ty::Nested(Box::new(Ty::Class(ClassId(1))), n(1)).exact();
        assert!(t2.prefix_exact(0));
    }

    #[test]
    fn prefix_type_shifts_exactness() {
        // P[this.class]: prefixExact_0(P[p.class]) = prefixExact_1(p.class) = true.
        let t = Ty::Prefix(ClassId(1), Box::new(Ty::Dep(TPath::var(n(0)))));
        assert!(t.prefix_exact(0));
        // P[A.B]: not exact.
        let t2 = Ty::Prefix(
            ClassId(1),
            Box::new(Ty::Nested(Box::new(Ty::Class(ClassId(2))), n(1))),
        );
        assert!(!t2.prefix_exact(0));
    }

    #[test]
    fn non_dependence() {
        assert!(Ty::Class(ClassId(3)).is_non_dependent());
        assert!(!Ty::Dep(TPath::var(n(0))).is_non_dependent());
        assert!(!Ty::Nested(Box::new(Ty::Dep(TPath::var(n(0)))), n(1)).is_non_dependent());
    }

    #[test]
    fn masks_are_sets() {
        let t = Ty::Class(ClassId(1)).unmasked().masked(n(5)).masked(n(5));
        assert_eq!(t.masks.len(), 1);
        assert!(t.is_masked(n(5)));
        assert!(!t.grant(n(5)).is_masked(n(5)));
    }

    #[test]
    fn paths_collects_all() {
        let p1 = TPath::var(n(0));
        let p2 = TPath::var(n(1)).child(n(2));
        let t = Ty::Meet(vec![
            Ty::Dep(p1.clone()),
            Ty::Nested(Box::new(Ty::Dep(p2.clone())), n(3)),
        ]);
        let ps = t.paths();
        assert_eq!(ps.len(), 2);
        assert_eq!(*ps[0], p1);
        assert_eq!(*ps[1], p2);
    }
}
