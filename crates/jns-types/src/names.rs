//! String interning for identifiers.

use std::collections::HashMap;
use std::fmt;

/// An interned identifier. Cheap to copy and compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Name(pub u32);

/// An interner mapping identifier text to [`Name`]s.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: HashMap<String, Name>,
    rev: Vec<String>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `text`, returning its [`Name`].
    pub fn intern(&mut self, text: &str) -> Name {
        if let Some(&n) = self.map.get(text) {
            return n;
        }
        let n = Name(self.rev.len() as u32);
        self.rev.push(text.to_string());
        self.map.insert(text.to_string(), n);
        n
    }

    /// Returns the text of `name`.
    pub fn resolve(&self, name: Name) -> &str {
        &self.rev[name.0 as usize]
    }

    /// Looks up `text` without interning it.
    pub fn get(&self, text: &str) -> Option<Name> {
        self.map.get(text).copied()
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.rev.len()
    }

    /// Whether no names have been interned.
    pub fn is_empty(&self) -> bool {
        self.rev.is_empty()
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("foo");
        let b = i.intern("foo");
        assert_eq!(a, b);
        assert_eq!(i.resolve(a), "foo");
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_names() {
        let mut i = Interner::new();
        assert_ne!(i.intern("a"), i.intern("b"));
        assert_eq!(i.get("a"), Some(Name(0)));
        assert_eq!(i.get("zzz"), None);
    }
}
