//! Type judgments: canonicalisation, bounds (Fig. 13), substitution
//! (Fig. 14), field/method lookup (Fig. 9), and subtyping (Fig. 10).
//!
//! Subtyping is implemented as a memoised goal-directed search over the
//! declarative rules. Canonicalisation resolves non-dependent prefix types
//! via `prefix(P, PS)`, folds `T.C` into class ids where possible, applies
//! nested intersection `(S&T).C = S.C & T.C`, and normalises meets.

use crate::env::TypeEnv;
use crate::names::Name;
use crate::table::ClassTable;
use crate::ty::{ClassId, TPath, Ty, Type};
use std::cell::RefCell;
use std::collections::HashSet;

/// The judgment engine: a class table plus a typing environment.
pub struct Judge<'a> {
    /// The class table.
    pub table: &'a ClassTable,
    /// The typing environment Γ.
    pub env: &'a TypeEnv,
    goals: RefCell<HashSet<(Ty, Ty)>>,
    depth: RefCell<u32>,
}

/// Errors from judgment-level operations (wrapped by the checker).
pub type JResult<T> = Result<T, String>;

const MAX_SUB_DEPTH: u32 = 200;

impl<'a> Judge<'a> {
    /// Creates a judgment engine for `table` under environment `env`.
    pub fn new(table: &'a ClassTable, env: &'a TypeEnv) -> Self {
        Judge {
            table,
            env,
            goals: RefCell::new(HashSet::new()),
            depth: RefCell::new(0),
        }
    }

    // ------------------------------------------------------------- canon

    /// Canonicalises a pure type.
    pub fn canon(&self, t: &Ty) -> Ty {
        match t {
            Ty::Prim(_) | Ty::Class(_) | Ty::Dep(_) => t.clone(),
            Ty::Nested(inner, c) => {
                let inner = self.canon(inner);
                match inner {
                    // (S & T).C = S.C & T.C  (nested intersection)
                    Ty::Meet(ts) => {
                        let parts: Vec<Ty> = ts
                            .into_iter()
                            .map(|ti| Ty::Nested(Box::new(ti), *c))
                            .collect();
                        self.canon(&Ty::Meet(parts))
                    }
                    Ty::Class(p) => match self.table.member(p, *c) {
                        Some(id) => Ty::Class(id),
                        None => Ty::Nested(Box::new(Ty::Class(p)), *c),
                    },
                    other => Ty::Nested(Box::new(other), *c),
                }
            }
            Ty::Prefix(p, idx) => {
                let mut idx = self.canon(idx);
                // A dependent-class index whose declared type pins the
                // family exactly (prefixExact_1) can be replaced by that
                // declared type: `P[q.class] ≈ P[T_q]` — the family of a
                // reference is fixed by a family-exact static type.
                if let Ty::Dep(q) = &idx {
                    if let Ok(pt) = self.type_of_path(q) {
                        if pt.ty.prefix_exact(1) && !matches!(pt.ty, Ty::Dep(ref r) if r == q) {
                            idx = self.canon(&pt.ty);
                        }
                    }
                }
                if idx.is_non_dependent() {
                    let classes = self.table.prefix_classes(*p, &idx);
                    if classes.is_empty() {
                        return Ty::Prefix(*p, Box::new(idx));
                    }
                    let meet = self.meet_of(classes.into_iter().map(Ty::Class).collect());
                    if idx.prefix_exact(1) {
                        meet.exact()
                    } else {
                        meet
                    }
                } else {
                    // S-PRE-IN as a rewrite: `P[PT.C] ≈ PT` when PT is a
                    // family expression at P's level (e.g.
                    // `pair[pair[this.class].Translator] ≈ pair[this.class]`).
                    if let Ty::Nested(inner, _c) = &idx {
                        let level_ok = match &**inner {
                            Ty::Prefix(p2, _) => {
                                self.table.related(*p, *p2)
                                    || self.table.is_subclass(*p, *p2)
                                    || self.table.is_subclass(*p2, *p)
                            }
                            Ty::Dep(_) | Ty::Exact(_) => self
                                .bound(inner)
                                .ok()
                                .map(|b| {
                                    let mem = self.table.mem(&b);
                                    !mem.is_empty()
                                        && mem.iter().all(|m| {
                                            self.table.is_subclass(*m, *p)
                                                || self.table.related(*p, *m)
                                        })
                                })
                                .unwrap_or(false),
                            _ => false,
                        };
                        if level_ok {
                            return (**inner).clone();
                        }
                    }
                    Ty::Prefix(*p, Box::new(idx))
                }
            }
            Ty::Exact(inner) => {
                let inner = self.canon(inner);
                if inner.is_exact() {
                    inner
                } else {
                    Ty::Exact(Box::new(inner))
                }
            }
            Ty::Meet(ts) => {
                let parts: Vec<Ty> = ts.iter().map(|ti| self.canon(ti)).collect();
                self.meet_of(parts)
            }
        }
    }

    fn meet_of(&self, parts: Vec<Ty>) -> Ty {
        let mut flat: Vec<Ty> = Vec::new();
        for p in parts {
            match p {
                Ty::Meet(inner) => {
                    for i in inner {
                        if !flat.contains(&i) {
                            flat.push(i);
                        }
                    }
                }
                other => {
                    if !flat.contains(&other) {
                        flat.push(other);
                    }
                }
            }
        }
        // Drop strict supers of other members: `A & B = B` when B ≤ A.
        // (Only for plain classes, where it is cheap and safe.)
        let classes: Vec<ClassId> = flat
            .iter()
            .filter_map(|t| match t {
                Ty::Class(c) => Some(*c),
                _ => None,
            })
            .collect();
        flat.retain(|t| match t {
            Ty::Class(c) => !classes
                .iter()
                .any(|o| o != c && self.table.is_subclass(*o, *c)),
            _ => true,
        });
        flat.sort();
        match flat.len() {
            0 => Ty::Meet(Vec::new()),
            1 => flat.pop().expect("one element"),
            _ => Ty::Meet(flat),
        }
    }

    /// Canonicalises a masked type.
    pub fn canon_type(&self, t: &Type) -> Type {
        Type {
            ty: self.canon(&t.ty),
            masks: t.masks.clone(),
        }
    }

    // ------------------------------------------------------------- paths

    /// `Γ ⊢final p : T` (Fig. 10): the static type of a final access path.
    pub fn type_of_path(&self, p: &TPath) -> JResult<Type> {
        let mut t = self
            .env
            .var(p.base)
            .cloned()
            .ok_or_else(|| format!("unbound variable `{}`", self.table.name_str(p.base)))?;
        for f in &p.fields {
            t = self.ftype(&t, *f)?;
        }
        Ok(t)
    }

    /// `ptype(Γ, p)` (§4.12): the dependent type given to a path
    /// expression — `p.class` with the masks of its declared type.
    pub fn ptype(&self, p: &TPath) -> JResult<Type> {
        let t = self.type_of_path(p)?;
        if matches!(t.ty, Ty::Prim(_)) {
            return Ok(t); // primitives are not family members
        }
        Ok(Ty::Dep(p.clone()).with_masks(t.masks))
    }

    // ------------------------------------------------------------- bounds

    /// `Γ ⊢ T ◁ PS` (Fig. 13): the most specific pure non-dependent bound.
    pub fn bound(&self, t: &Ty) -> JResult<Ty> {
        let r = match t {
            Ty::Prim(_) | Ty::Class(_) => t.clone(),
            Ty::Dep(p) => {
                let pt = self.type_of_path(p)?;
                match &pt.ty {
                    Ty::Dep(q) if q == p => {
                        return Err(format!(
                            "cannot bound self-referential path `{}`",
                            self.table.show_ty(&pt.ty)
                        ))
                    }
                    other => self.bound(other)?,
                }
            }
            Ty::Nested(inner, c) => {
                let b = self.bound(inner)?;
                Ty::Nested(Box::new(b), *c)
            }
            Ty::Prefix(p, idx) => {
                let b = self.bound(idx)?;
                Ty::Prefix(*p, Box::new(b))
            }
            Ty::Exact(inner) => self.bound(inner)?,
            Ty::Meet(ts) => {
                let parts: JResult<Vec<Ty>> = ts.iter().map(|ti| self.bound(ti)).collect();
                Ty::Meet(parts?)
            }
        };
        Ok(self.canon(&strip_exact(&r)))
    }

    /// The member classes of the bound of `t` (i.e. `mem(bound(t))`).
    pub fn bound_members(&self, t: &Ty) -> JResult<Vec<ClassId>> {
        let b = self.bound(t)?;
        Ok(self.table.mem(&b))
    }

    // ------------------------------------------------------------ members

    /// `ftypedecl(Γ, T, f)`: the declared type of field `f` of `T`
    /// (possibly `this`-dependent), together with the declaring class.
    pub fn ftypedecl(&self, t: &Ty, f: Name) -> JResult<(ClassId, Type, bool)> {
        for m in self.bound_members(t)? {
            if let Some((owner, fi)) = self.table.field(m, f) {
                return Ok((owner, fi.ty, fi.is_final));
            }
        }
        Err(format!(
            "type `{}` has no field `{}`",
            self.table.show_ty(t),
            self.table.name_str(f)
        ))
    }

    /// `ftype(Γ, T, f)` (Fig. 9): the field type with the receiver
    /// substituted for `this`. Errors if `f` is masked in `T`.
    pub fn ftype(&self, t: &Type, f: Name) -> JResult<Type> {
        if t.is_masked(f) {
            return Err(format!(
                "field `{}` is masked in type `{}` and cannot be accessed",
                self.table.name_str(f),
                self.table.show_type(t)
            ));
        }
        let (_owner, decl, _) = self.ftypedecl(&t.ty, f)?;
        let ty = self.subst(&decl.ty, self.table.this_name, &t.ty)?;
        Ok(ty.with_masks(decl.masks))
    }

    /// `mtype(Γ, T, m)`: the signature of method `m` on `T`, with its
    /// declaring class.
    pub fn mtype(&self, t: &Ty, m: Name) -> JResult<(ClassId, crate::table::MethodSig)> {
        for mm in self.bound_members(t)? {
            if let Some(found) = self.table.method(mm, m) {
                return Ok(found);
            }
        }
        Err(format!(
            "type `{}` has no method `{}`",
            self.table.show_ty(t),
            self.table.name_str(m)
        ))
    }

    // ------------------------------------------------------ substitution

    /// `T{{Γ; Tx/x}}` (Fig. 14): substitutes `pure(tx)` for `x.class`.
    pub fn subst(&self, t: &Ty, x: Name, tx: &Ty) -> JResult<Ty> {
        let r = match t {
            Ty::Prim(_) | Ty::Class(_) => t.clone(),
            Ty::Dep(p) => {
                if p.base != x {
                    t.clone()
                } else if p.fields.is_empty() {
                    strip_masks_ty(tx)
                } else {
                    match tx {
                        // p.class{..} = p'.class  ⇒  p.f.class{..} = p'.f.class
                        Ty::Dep(q) => {
                            let mut fields = q.fields.clone();
                            fields.extend(p.fields.iter().copied());
                            Ty::Dep(TPath {
                                base: q.base,
                                fields,
                            })
                        }
                        other => {
                            // Resolve the field chain against the replacement.
                            let mut cur: Type = other.clone().unmasked();
                            for f in &p.fields {
                                cur = self.ftype(&cur, *f)?;
                            }
                            strip_masks_ty(&cur.ty)
                        }
                    }
                }
            }
            Ty::Nested(inner, c) => Ty::Nested(Box::new(self.subst(inner, x, tx)?), *c),
            Ty::Prefix(p, idx) => Ty::Prefix(*p, Box::new(self.subst(idx, x, tx)?)),
            Ty::Exact(inner) => Ty::Exact(Box::new(self.subst(inner, x, tx)?)),
            Ty::Meet(ts) => {
                let parts: JResult<Vec<Ty>> = ts.iter().map(|ti| self.subst(ti, x, tx)).collect();
                Ty::Meet(parts?)
            }
        };
        Ok(self.canon(&r))
    }

    /// Exactness-preserving substitution `T{{Γ; Tx/x!}}` (§4.10): fails if
    /// the substitution loses prefix exactness.
    pub fn subst_exact(&self, t: &Ty, x: Name, tx: &Ty) -> JResult<Ty> {
        let r = self.subst(t, x, tx)?;
        let depth = ty_depth(t) + 2;
        for k in 0..depth {
            if t.prefix_exact(k) && !r.prefix_exact(k) {
                return Err(format!(
                    "substituting `{}` for `{}.class` in `{}` loses exactness (family identity)",
                    self.table.show_ty(tx),
                    self.table.name_str(x),
                    self.table.show_ty(t)
                ));
            }
        }
        Ok(r)
    }

    /// Substitution on masked types.
    pub fn subst_type(&self, t: &Type, x: Name, tx: &Ty) -> JResult<Type> {
        Ok(self.subst(&t.ty, x, tx)?.with_masks(t.masks.clone()))
    }

    // ---------------------------------------------------------- subtyping

    /// `Γ ⊢ T1 ≤ T2` on masked types: mask sets may only grow.
    pub fn sub(&self, t1: &Type, t2: &Type) -> bool {
        t1.masks.is_subset(&t2.masks) && self.sub_pure(&t1.ty, &t2.ty)
    }

    /// `Γ ⊢ T1 ≈ T2` (mutual subtyping) on masked types.
    pub fn equiv(&self, t1: &Type, t2: &Type) -> bool {
        self.sub(t1, t2) && self.sub(t2, t1)
    }

    /// `Γ ⊢ PT1 ≤ PT2` on pure types.
    pub fn sub_pure(&self, s: &Ty, t: &Ty) -> bool {
        let s = self.canon(s);
        let t = self.canon(t);
        let key = (s.clone(), t.clone());
        if self.goals.borrow().contains(&key) {
            return false; // already being tried on this path: cut
        }
        if *self.depth.borrow() > MAX_SUB_DEPTH {
            return false;
        }
        self.goals.borrow_mut().insert(key.clone());
        *self.depth.borrow_mut() += 1;
        let r = self.sub_inner(&s, &t);
        *self.depth.borrow_mut() -= 1;
        self.goals.borrow_mut().remove(&key);
        r
    }

    fn sub_inner(&self, s: &Ty, t: &Ty) -> bool {
        use Ty::*;
        if s == t {
            return true;
        }
        // S-MEET-G: S ≤ &T iff S ≤ every Ti.
        if let Meet(ts) = t {
            return ts.iter().all(|ti| self.sub_pure(s, ti));
        }
        // S-MEET-LB + transitivity.
        if let Meet(ss) = s {
            if ss.iter().any(|si| self.sub_pure(si, t)) {
                return true;
            }
        }
        if let Prim(_) = s {
            return false; // primitives only subtype themselves
        }
        if let Prim(_) = t {
            return false;
        }
        // S-FIN / S-FIN-EXACT on the left.
        if let Dep(p) = s {
            if let Ok(pt) = self.type_of_path(p) {
                let b = pt.ty.clone();
                if !matches!(b, Dep(ref q) if q == p) {
                    // If the declared type is exact, p.class ≈ it; either way
                    // p.class ≤ pure(T_p).
                    if self.sub_pure(&b, t) {
                        return true;
                    }
                }
                // fall through to bound-based route
                if let Ok(bb) = self.bound(s) {
                    if bb != *s && t.is_non_dependent() && self.sub_pure(&bb, t) {
                        // Sound only when the target does not demand
                        // exactness the bound cannot witness.
                        if !t.is_exact() {
                            return true;
                        }
                    }
                }
            }
            // S-FIN-EXACT right-to-left handled in the Dep-on-right case.
        }
        // S-FIN-EXACT on the right: S ≤ q.class iff S ≈ PT! where the
        // declared type of q is the exact PT!.
        if let Dep(q) = t {
            if let Ok(qt) = self.type_of_path(q) {
                if qt.ty.is_exact() && !matches!(qt.ty, Dep(ref r) if r == q) {
                    return self.sub_pure(s, &qt.ty) && self.sub_pure(&qt.ty, s);
                }
            }
            return false;
        }
        // Exact on the left.
        if let Exact(x) = s {
            if let Exact(y) = t {
                return self.sub_pure(x, y) && self.sub_pure(y, x);
            }
            // S-EXACT: T.C! ≤ T!.C (push exactness one level in). Canon
            // folds `T.C` into class ids, so decompose first.
            if let Some((x0, c)) = self.decompose(x) {
                let pushed = Nested(Box::new(self.canon(&x0).exact()), c);
                if self.sub_pure(&pushed, t) {
                    return true;
                }
            }
            // S-BOUND: T! ≤ bound(T) ≤ t (only for non-exact targets).
            if !t.is_exact() {
                if let Ok(b) = self.bound(s) {
                    if b != *s && self.sub_pure(&b, t) {
                        return true;
                    }
                }
            }
            return false;
        }
        // Exact on the right (left not exact): only prefix equivalences can
        // produce exact types; handled through canon. Otherwise reject.
        if let Exact(_) = t {
            // A non-exact type whose canonical form is exact (e.g. a prefix
            // of a dependent class) was already canonicalised; remaining
            // cases are unsound to accept.
            if let Prefix(_, _) = s {
                // fall through to prefix handling below
            } else {
                return false;
            }
        }
        // Prefix rules.
        if let Prefix(p1, idx1) = s {
            // S-PRE-IN: P[PT.C] ≈ PT.
            if let Nested(inner, _c) = &**idx1 {
                if self.prefix_wf(*p1, idx1) && self.sub_pure(inner, t) {
                    return true;
                }
            }
            // Resolve a prefix of a dependent class through the path's
            // declared type (S-FIN lifted to prefixes): `P[p.class]` is a
            // subtype of `P[bound]` by S-PRE-1, and *equivalent* to it when
            // the declared type pins the family exactly.
            if let Dep(q) = &**idx1 {
                if let Ok(pt) = self.type_of_path(q) {
                    if !matches!(pt.ty, Dep(ref r) if r == q) {
                        let s2 = self.canon(&Prefix(*p1, Box::new(pt.ty.clone())));
                        if s2 != *s && self.sub_pure(&s2, t) {
                            return true;
                        }
                    }
                }
            }
            if let Prefix(p2, idx2) = t {
                if self.canon(idx1) == self.canon(idx2)
                    && (self.table.related(*p1, *p2)
                        || self.table.is_subclass(*p1, *p2)
                        || self.table.is_subclass(*p2, *p1))
                    && self.prefix_wf(*p1, idx1)
                    && self.prefix_wf(*p2, idx2)
                {
                    return true;
                }
            }
            // bound route for dependent indices
            if t.is_non_dependent() && !t.is_exact() {
                if let Ok(b) = self.bound(s) {
                    if b != *s && self.sub_pure(&b, t) {
                        return true;
                    }
                }
            }
            return false;
        }
        if let Prefix(p2, idx2) = t {
            // S-PRE-IN used right-to-left: PT ≤ P[PT.C] when the index is a
            // member of PT.
            if let Nested(inner, _c) = &**idx2 {
                if self.prefix_wf(*p2, idx2) && self.sub_pure(s, inner) {
                    return true;
                }
            }
            // Prefix of a dependent class on the right: only sound when the
            // path's declared type pins the family exactly (≈, not ≤).
            if let Dep(q) = &**idx2 {
                if let Ok(pt) = self.type_of_path(q) {
                    if pt.ty.prefix_exact(1) && !matches!(pt.ty, Dep(ref r) if r == q) {
                        let t2 = self.canon(&Prefix(*p2, Box::new(pt.ty.clone())));
                        if t2 != *t && self.sub_pure(s, &t2) {
                            return true;
                        }
                    }
                }
            }
            return false;
        }
        // Nested / class structural rules.
        // Normalise a plain class to Nested(parent, name) for decomposition.
        let s_decomp = self.decompose(s);
        let t_decomp = self.decompose(t);
        if let (Some((s0, cs)), Some((t0, ct))) = (&s_decomp, &t_decomp) {
            // S-NEST
            if cs == ct && self.sub_pure(s0, t0) {
                return true;
            }
        }
        // Class-to-class: the supers closure decides directly.
        if let (Class(p), Class(q)) = (s, t) {
            return self.table.is_subclass(*p, *q);
        }
        // S-PRE-OUT: PT ≤ P[PT].C  when PT ≤ P.C.
        if let Some((Prefix(p, idx), ct)) = &t_decomp {
            if self.canon(idx) == *s {
                if let Some(m) = self
                    .table
                    .mem(&Class(*p))
                    .first()
                    .and_then(|pp| self.table.member(*pp, *ct))
                {
                    if self.sub_pure(s, &Class(m)) {
                        return true;
                    }
                }
            }
        }
        // S-SUP: go up through a declared supertype.
        if let Some((s0, cs)) = &s_decomp {
            if let Ok(members) = self.bound_members(s0) {
                for p in members {
                    if let Some(pc) = self.table.member(p, *cs) {
                        let whole = Nested(Box::new(s0.clone()), *cs);
                        // Own extends plus reinterpreted inherited ones.
                        for ext in &self.table.all_extends(pc) {
                            // Prefer exactness-preserving substitution, fall
                            // back to plain (see DESIGN.md §6).
                            let subbed = self
                                .subst_exact(ext, self.table.this_name, &whole)
                                .or_else(|_| self.subst(ext, self.table.this_name, &whole));
                            if let Ok(sup) = subbed {
                                if self.sub_pure(&sup, t) {
                                    return true;
                                }
                            }
                        }
                    }
                }
            }
        }
        false
    }

    /// Decomposes a type into `(enclosing, member-name)` if it has the form
    /// `T.C` (treating resolved classes as `parent.C`).
    fn decompose(&self, t: &Ty) -> Option<(Ty, Name)> {
        match t {
            Ty::Nested(inner, c) => Some(((**inner).clone(), *c)),
            Ty::Class(p) => {
                let parent = self.table.parent(*p)?;
                Some((Ty::Class(parent), self.table.simple_name(*p)))
            }
            _ => None,
        }
    }

    /// Whether `P[idx]` is well-formed: the prefix set of the index bound
    /// is non-empty (WF-PRE).
    pub fn prefix_wf(&self, p: ClassId, idx: &Ty) -> bool {
        match self.bound(idx) {
            Ok(b) => !self.table.prefix_classes(p, &b).is_empty(),
            Err(_) => false,
        }
    }
}

/// Strips masks from a pure-type computation result (masks only live in
/// [`Type`]).
fn strip_masks_ty(t: &Ty) -> Ty {
    t.clone()
}

fn strip_exact(t: &Ty) -> Ty {
    match t {
        Ty::Exact(inner) => strip_exact(inner),
        other => other.clone(),
    }
}

fn ty_depth(t: &Ty) -> u32 {
    match t {
        Ty::Prim(_) | Ty::Class(_) | Ty::Dep(_) => 1,
        Ty::Nested(i, _) | Ty::Exact(i) => 1 + ty_depth(i),
        Ty::Prefix(_, i) => 1 + ty_depth(i),
        Ty::Meet(ts) => 1 + ts.iter().map(ty_depth).max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure12;
    use crate::table::FieldInfo;
    use jns_syntax::PrimTy;

    fn setup() -> (
        crate::table::ClassTable,
        std::collections::HashMap<&'static str, ClassId>,
    ) {
        figure12()
    }

    fn cls(id: ClassId) -> Ty {
        Ty::Class(id)
    }

    fn nested_exact(fam: ClassId, c: Name) -> Ty {
        // Fam!.C
        Ty::Nested(Box::new(Ty::Class(fam).exact()), c)
    }

    #[test]
    fn class_subtyping_via_supers() {
        let (t, ids) = setup();
        let env = TypeEnv::new();
        let j = Judge::new(&t, &env);
        // ASTDisplay.Binary ≤ AST.Binary (further binding).
        assert!(j.sub_pure(&cls(ids["AD.Binary"]), &cls(ids["AST.Binary"])));
        // ASTDisplay.Binary ≤ ASTDisplay.Exp (declared supertype).
        assert!(j.sub_pure(&cls(ids["AD.Binary"]), &cls(ids["AD.Exp"])));
        // ASTDisplay.Binary ≤ TreeDisplay.Node (via Composite).
        assert!(j.sub_pure(&cls(ids["AD.Binary"]), &cls(ids["TD.Node"])));
        // Not the other way.
        assert!(!j.sub_pure(&cls(ids["AST.Binary"]), &cls(ids["AD.Binary"])));
        // Unrelated classes are not subtypes.
        assert!(!j.sub_pure(&cls(ids["AST.Value"]), &cls(ids["AST.Binary"])));
    }

    /// The §2.1 exactness chain:
    /// `ASTDisplay.Exp!  ≤  ASTDisplay!.Exp  ≤  ASTDisplay.Exp`,
    /// but `ASTDisplay.Exp! ≰ AST.Exp!` and `ASTDisplay!.Exp ≰ AST!.Exp`.
    #[test]
    fn exactness_claims_from_paper() {
        let (t, ids) = setup();
        let env = TypeEnv::new();
        let j = Judge::new(&t, &env);
        let exp = t.intern("Exp");
        let ad_exp_exact = cls(ids["AD.Exp"]).exact(); // ASTDisplay.Exp!
        let ad_exact_exp = nested_exact(ids["ASTDisplay"], exp); // ASTDisplay!.Exp
        let ad_exp = cls(ids["AD.Exp"]); // ASTDisplay.Exp
        assert!(j.sub_pure(&ad_exp_exact, &ad_exact_exp), "T.C! <= T!.C");
        assert!(j.sub_pure(&ad_exact_exp, &ad_exp), "T!.C <= T.C");
        assert!(j.sub_pure(&ad_exp_exact, &ad_exp), "transitivity");

        let ast_exp_exact = cls(ids["AST.Exp"]).exact();
        assert!(
            !j.sub_pure(&ad_exp_exact, &ast_exp_exact),
            "exact types of different classes are unrelated"
        );
        let ast_exact_exp = nested_exact(ids["AST"], exp);
        assert!(
            !j.sub_pure(&ad_exact_exp, &ast_exact_exp),
            "family-exact types mark family boundaries"
        );
        // But without exactness, ASTDisplay.Exp <= AST.Exp.
        assert!(j.sub_pure(&ad_exp, &cls(ids["AST.Exp"])));
    }

    #[test]
    fn exact_value_types_reach_family_supertypes() {
        let (t, ids) = setup();
        let env = TypeEnv::new();
        let j = Judge::new(&t, &env);
        let exp = t.intern("Exp");
        // AST.Binary! ≤ AST!.Exp (S-EXACT then S-SUP with exactness-preserving subst).
        let src = cls(ids["AST.Binary"]).exact();
        let tgt = nested_exact(ids["AST"], exp);
        assert!(j.sub_pure(&src, &tgt));
        // AD.Binary! ≤ AD!.Exp but not ≤ AST!.Exp.
        let src2 = cls(ids["AD.Binary"]).exact();
        assert!(j.sub_pure(&src2, &nested_exact(ids["ASTDisplay"], exp)));
        assert!(!j.sub_pure(&src2, &tgt));
    }

    #[test]
    fn dependent_class_subtyping() {
        let (t, ids) = setup();
        let mut env = TypeEnv::new();
        let x = t.intern("x");
        // x : ASTDisplay.Binary
        env.bind(x, cls(ids["AD.Binary"]).unmasked());
        let j = Judge::new(&t, &env);
        let xc = Ty::Dep(TPath::var(x));
        // x.class ≤ ASTDisplay.Binary ≤ AST.Exp
        assert!(j.sub_pure(&xc, &cls(ids["AD.Binary"])));
        assert!(j.sub_pure(&xc, &cls(ids["AST.Exp"])));
        // but AST.Binary ≰ x.class
        assert!(!j.sub_pure(&cls(ids["AST.Binary"]), &xc));
        // x.class is exact.
        assert!(xc.is_exact());
    }

    #[test]
    fn dependent_prefix_types_equivalent_across_related_families() {
        let (t, ids) = setup();
        let mut env = TypeEnv::new();
        let thisn = t.this_name;
        env.bind(thisn, cls(ids["AD.Binary"]).unmasked());
        let j = Judge::new(&t, &env);
        let exp = t.intern("Exp");
        // AST[this.class].Exp ≈ ASTDisplay[this.class].Exp  (S-PRE-2)
        let p1 = Ty::Nested(
            Box::new(Ty::Prefix(ids["AST"], Box::new(Ty::Dep(TPath::var(thisn))))),
            exp,
        );
        let p2 = Ty::Nested(
            Box::new(Ty::Prefix(
                ids["ASTDisplay"],
                Box::new(Ty::Dep(TPath::var(thisn))),
            )),
            exp,
        );
        assert!(j.sub_pure(&p1, &p2));
        assert!(j.sub_pure(&p2, &p1));
    }

    #[test]
    fn new_object_type_flows_into_family_field_type() {
        let (t, ids) = setup();
        let mut env = TypeEnv::new();
        let thisn = t.this_name;
        env.bind(thisn, cls(ids["AD.Binary"]).unmasked());
        let j = Judge::new(&t, &env);
        let exp = t.intern("Exp");
        let binary = t.intern("Binary");
        // (AD[this.class].Binary)!  ≤  AD[this.class].Exp
        let new_t = Ty::Nested(
            Box::new(Ty::Prefix(
                ids["ASTDisplay"],
                Box::new(Ty::Dep(TPath::var(thisn))),
            )),
            binary,
        )
        .exact();
        let field_t = Ty::Nested(
            Box::new(Ty::Prefix(
                ids["ASTDisplay"],
                Box::new(Ty::Dep(TPath::var(thisn))),
            )),
            exp,
        );
        assert!(j.sub_pure(&new_t, &field_t));
    }

    #[test]
    fn prefix_canon_resolves_non_dependent_index() {
        let (t, ids) = setup();
        let env = TypeEnv::new();
        let j = Judge::new(&t, &env);
        // AST[AST.Binary!] canonicalises to AST! (exact, single family).
        let idx = cls(ids["AST.Binary"]).exact();
        let pre = Ty::Prefix(ids["AST"], Box::new(idx));
        let canon = j.canon(&pre);
        assert_eq!(canon, cls(ids["AST"]).exact());
    }

    #[test]
    fn masks_on_types_direct_subtyping() {
        let (t, ids) = setup();
        let env = TypeEnv::new();
        let j = Judge::new(&t, &env);
        let f = t.intern("f");
        let plain = cls(ids["AST.Exp"]).unmasked();
        let masked = cls(ids["AST.Exp"]).unmasked().masked(f);
        assert!(j.sub(&plain, &masked), "T <= T\\f (S-MASK)");
        assert!(!j.sub(&masked, &plain), "masks cannot be forgotten");
    }

    #[test]
    fn ftype_substitutes_receiver_for_this() {
        let (t, ids) = setup();
        // Give AST.Binary a field l : AST[this.class].Exp.
        let l = t.intern("l");
        let exp = t.intern("Exp");
        let field_ty = Ty::Nested(
            Box::new(Ty::Prefix(
                ids["AST"],
                Box::new(Ty::Dep(TPath::var(t.this_name))),
            )),
            exp,
        );
        t.update(ids["AST.Binary"], |ci| {
            ci.fields.push(FieldInfo {
                name: l,
                is_final: false,
                ty: field_ty.unmasked(),
                has_init: true,
            })
        });
        let mut env = TypeEnv::new();
        let b = t.intern("b");
        env.bind(b, cls(ids["AD.Binary"]).unmasked());
        let j = Judge::new(&t, &env);
        // Receiver b.class: field type is AST[b.class].Exp.
        let recv = Ty::Dep(TPath::var(b)).unmasked();
        let ft = j.ftype(&recv, l).unwrap();
        assert_eq!(
            ft.ty,
            Ty::Nested(
                Box::new(Ty::Prefix(ids["AST"], Box::new(Ty::Dep(TPath::var(b))))),
                exp
            )
        );
        // Receiver AD.Binary! (a view): field type resolves into the AD family.
        let recv2 = cls(ids["AD.Binary"]).exact().unmasked();
        let ft2 = j.ftype(&recv2, l).unwrap();
        // AST[AD.Binary!].Exp = (AST & ASTDisplay & TreeDisplay)!.Exp; its
        // members must include ASTDisplay.Exp.
        let members = j.bound_members(&ft2.ty).unwrap();
        assert!(members.contains(&ids["AD.Exp"]));
    }

    #[test]
    fn ftype_fails_on_masked_field() {
        let (t, ids) = setup();
        let g = t.intern("g");
        t.update(ids["AST.Exp"], |ci| {
            ci.fields.push(FieldInfo {
                name: g,
                is_final: false,
                ty: cls(ids["AST.Exp"]).unmasked(),
                has_init: false,
            })
        });
        let env = TypeEnv::new();
        let j = Judge::new(&t, &env);
        let recv = cls(ids["AST.Exp"]).unmasked().masked(g);
        let err = j.ftype(&recv, g).unwrap_err();
        assert!(err.contains("masked"), "{err}");
    }

    #[test]
    fn subst_exact_rejects_losing_exactness() {
        let (t, ids) = setup();
        let env = TypeEnv::new();
        let j = Judge::new(&t, &env);
        let exp = t.intern("Exp");
        let x = t.intern("x");
        let dep_ty = Ty::Nested(
            Box::new(Ty::Prefix(ids["AST"], Box::new(Ty::Dep(TPath::var(x))))),
            exp,
        );
        // Substituting the non-exact AST.Binary for x.class loses exactness.
        assert!(j.subst_exact(&dep_ty, x, &cls(ids["AST.Binary"])).is_err());
        // Substituting the exact AST.Binary! preserves it.
        let r = j
            .subst_exact(&dep_ty, x, &cls(ids["AST.Binary"]).exact())
            .unwrap();
        assert!(r.prefix_exact(1));
    }

    #[test]
    fn subst_on_field_paths() {
        let (t, ids) = setup();
        let l = t.intern("l");
        t.update(ids["AST.Binary"], |ci| {
            ci.fields.push(FieldInfo {
                name: l,
                is_final: true,
                ty: cls(ids["AST.Exp"]).unmasked(),
                has_init: true,
            })
        });
        let env = TypeEnv::new();
        let j = Judge::new(&t, &env);
        let x = t.intern("x");
        // (x.l.class){AST.Binary!/x} resolves the field against the class.
        let dep = Ty::Dep(TPath {
            base: x,
            fields: vec![l],
        });
        let r = j.subst(&dep, x, &cls(ids["AST.Binary"]).exact()).unwrap();
        assert_eq!(r, cls(ids["AST.Exp"]));
        // Substituting another path extends the path.
        let y = t.intern("y");
        let r2 = j.subst(&dep, x, &Ty::Dep(TPath::var(y))).unwrap();
        assert_eq!(
            r2,
            Ty::Dep(TPath {
                base: y,
                fields: vec![l]
            })
        );
    }

    #[test]
    fn prim_types_only_subtype_themselves() {
        let (t, _ids) = setup();
        let env = TypeEnv::new();
        let j = Judge::new(&t, &env);
        assert!(j.sub_pure(&Ty::Prim(PrimTy::Int), &Ty::Prim(PrimTy::Int)));
        assert!(!j.sub_pure(&Ty::Prim(PrimTy::Int), &Ty::Prim(PrimTy::Bool)));
        assert!(!j.sub_pure(&Ty::Prim(PrimTy::Int), &cls(ClassId(1))));
    }

    #[test]
    fn meet_subtyping() {
        let (t, ids) = setup();
        let env = TypeEnv::new();
        let j = Judge::new(&t, &env);
        let meet = Ty::Meet(vec![cls(ids["AST"]), cls(ids["TreeDisplay"])]);
        assert!(j.sub_pure(&meet, &cls(ids["AST"])), "&T <= Ti");
        assert!(j.sub_pure(&meet, &cls(ids["TreeDisplay"])));
        assert!(
            j.sub_pure(&cls(ids["ASTDisplay"]), &meet),
            "S <= &T when S <= every Ti"
        );
        assert!(!j.sub_pure(&cls(ids["AST"]), &meet));
    }

    #[test]
    fn bound_of_dependent_chain() {
        let (t, ids) = setup();
        let mut env = TypeEnv::new();
        let x = t.intern("x");
        let y = t.intern("y");
        env.bind(x, cls(ids["AD.Binary"]).unmasked());
        env.bind(y, Ty::Dep(TPath::var(x)).unmasked());
        let j = Judge::new(&t, &env);
        assert_eq!(
            j.bound(&Ty::Dep(TPath::var(y))).unwrap(),
            cls(ids["AD.Binary"])
        );
    }
}
