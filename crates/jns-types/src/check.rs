//! The flow-sensitive type checker (Fig. 10 T-* rules, Fig. 15 program
//! typing) with lowering to the typed core IR.
//!
//! Masked types make the system flow-sensitive (§6.1): assignments to
//! masked fields update the environment (`grant`), `if` joins mask sets,
//! and `while` restores them.

use crate::env::TypeEnv;
use crate::ir::{CExpr, CMethod, CheckedProgram};
use crate::judge::Judge;
use crate::names::Name;
use crate::resolve::{resolve, resolve_type, TypeError};
use crate::sharing::SharingTable;
use crate::table::{ClassTable, MethodSig};
use crate::ty::{ClassId, TPath, Ty, Type};
use jns_syntax as syn;
use jns_syntax::{BinOp, PrimTy, Span, UnOp};
use std::collections::{BTreeSet, HashMap};

/// Type-checks a parsed program and lowers it to the core IR.
///
/// # Errors
///
/// Returns every type error found (the checker recovers per method).
///
/// # Examples
///
/// ```
/// let prog = jns_syntax::parse(
///     "class A { class C { int x = 1; int get() { return this.x; } } }
///      main { final A.C c = new A.C(); print c.get(); }",
/// ).unwrap();
/// let checked = jns_types::check(&prog)?;
/// assert!(checked.main.is_some());
/// # Ok::<(), Vec<jns_types::TypeError>>(())
/// ```
pub fn check(program: &syn::Program) -> Result<CheckedProgram, Vec<TypeError>> {
    check_with(program, CheckOptions::default())
}

/// Options for [`check_with`].
#[derive(Debug, Default, Clone, Copy)]
pub struct CheckOptions {
    /// Infer missing sharing constraints (the paper's §2.5 future work):
    /// a view change in a method body that is not justified by a declared
    /// constraint, but holds in the closed world, causes the constraint
    /// to be *added* to the method's signature — so it is still re-checked
    /// in every inheriting family (Q-OK), preserving modular soundness.
    pub infer_constraints: bool,
}

/// Type-checks with explicit [`CheckOptions`].
///
/// # Errors
///
/// Returns every type error found.
pub fn check_with(
    program: &syn::Program,
    options: CheckOptions,
) -> Result<CheckedProgram, Vec<TypeError>> {
    let resolved = resolve(program)?;
    let mut errors = Vec::new();

    // P-OK: acyclic hierarchy.
    let cycles = resolved.table.find_cycles();
    if !cycles.is_empty() {
        for c in cycles {
            errors.push(TypeError {
                message: format!(
                    "class `{}` participates in an inheritance cycle",
                    resolved.table.class_name(c)
                ),
                span: Span::dummy(),
            });
        }
        return Err(errors);
    }

    let (sharing, serrs) = SharingTable::build(&resolved.table, resolved.sharing_pairs.clone());
    for e in serrs {
        errors.push(TypeError {
            message: e.message,
            span: Span::dummy(),
        });
    }

    let mut checker = Checker {
        table: &resolved.table,
        sharing: &sharing,
        errors,
        methods: HashMap::new(),
        field_inits: HashMap::new(),
        options,
    };

    for (id, decl) in &resolved.bodies {
        checker.check_class(*id, decl);
    }
    let main = resolved.main.map(|b| {
        let mut env = TypeEnv::new();
        let mut cx = BodyCx {
            checker: &mut checker,
            class: ClassId::ROOT,
            env: &mut env,
            ret: None,
            in_method: false,
            inferred: Vec::new(),
        };
        cx.check_block(b).1
    });

    // Q-OK / L-OK constraint validation over every class materialised so
    // far (including implicit ones pulled in by body checking).
    checker.check_constraints();

    let Checker {
        errors,
        methods,
        field_inits,
        ..
    } = checker;
    if errors.is_empty() {
        Ok(CheckedProgram {
            table: resolved.table,
            sharing,
            methods,
            field_inits,
            main,
        })
    } else {
        Err(errors)
    }
}

struct Checker<'t> {
    table: &'t ClassTable,
    sharing: &'t SharingTable,
    errors: Vec<TypeError>,
    methods: HashMap<(ClassId, Name), CMethod>,
    field_inits: HashMap<(ClassId, Name), CExpr>,
    options: CheckOptions,
}

impl<'t> Checker<'t> {
    fn err(&mut self, message: String, span: Span) {
        self.errors.push(TypeError { message, span });
    }

    fn check_class(&mut self, id: ClassId, decl: &syn::ClassDecl) {
        self.check_conformance(id, decl);
        for m in &decl.members {
            match m {
                syn::Member::Class(_) => {}
                syn::Member::Field(f) => self.check_field_init(id, f),
                syn::Member::Method(m) => self.check_method(id, m),
            }
        }
    }

    /// L-OK conformance: field disjointness and override compatibility.
    fn check_conformance(&mut self, id: ClassId, decl: &syn::ClassDecl) {
        let info = self.table.class(id);
        for s in self.table.supers(id) {
            if s == id {
                continue;
            }
            let sinfo = self.table.class(s);
            for f in &info.fields {
                if sinfo.fields.iter().any(|sf| sf.name == f.name) {
                    self.err(
                        format!(
                            "field `{}` of `{}` shadows a field of `{}` (L-OK requires disjoint fields)",
                            self.table.name_str(f.name),
                            self.table.class_name(id),
                            self.table.class_name(s)
                        ),
                        decl.span,
                    );
                }
            }
            for m in &info.methods {
                if let Some(sm) = sinfo.methods.iter().find(|sm| sm.name == m.name) {
                    self.check_override(id, m, s, sm, decl.span);
                }
            }
        }
    }

    fn check_override(
        &mut self,
        id: ClassId,
        m: &MethodSig,
        sup: ClassId,
        sm: &MethodSig,
        span: Span,
    ) {
        if m.params.len() != sm.params.len() {
            self.err(
                format!(
                    "method `{}` of `{}` overrides `{}` with a different arity",
                    self.table.name_str(m.name),
                    self.table.class_name(id),
                    self.table.class_name(sup)
                ),
                span,
            );
            return;
        }
        let mut env = TypeEnv::new();
        env.bind(self.table.this_name, Ty::Class(id).unmasked());
        for (x, t) in &m.params {
            env.bind(*x, t.clone());
        }
        let judge = Judge::new(self.table, &env);
        // Rename the overridden signature's parameters to ours.
        let rename = |t: &Type| -> Type {
            let mut ty = t.clone();
            for (i, (sx, _)) in sm.params.iter().enumerate() {
                if let Ok(r) = judge.subst(&ty.ty, *sx, &Ty::Dep(TPath::var(m.params[i].0))) {
                    ty.ty = r;
                }
            }
            ty
        };
        for (i, (_, t)) in m.params.iter().enumerate() {
            let st = rename(&sm.params[i].1);
            if !judge.equiv(t, &st) {
                self.err(
                    format!(
                        "method `{}` of `{}`: parameter {} type `{}` is not equivalent to overridden `{}`",
                        self.table.name_str(m.name),
                        self.table.class_name(id),
                        i + 1,
                        self.table.show_type(t),
                        self.table.show_type(&st)
                    ),
                    span,
                );
            }
        }
        let sret = rename(&sm.ret);
        if !judge.equiv(&m.ret, &sret) {
            self.err(
                format!(
                    "method `{}` of `{}`: return type `{}` is not equivalent to overridden `{}`",
                    self.table.name_str(m.name),
                    self.table.class_name(id),
                    self.table.show_type(&m.ret),
                    self.table.show_type(&sret)
                ),
                span,
            );
        }
    }

    /// F-OK: initialisers run with every field of `this` masked.
    fn check_field_init(&mut self, id: ClassId, f: &syn::FieldDecl) {
        let Some(init) = &f.init else { return };
        let fname = self.table.intern(&f.name.text);
        let all_fields = self.table.field_names(id);
        let mut env = TypeEnv::new();
        env.bind(
            self.table.this_name,
            Ty::Class(id).with_masks(all_fields.into_iter().collect()),
        );
        let declared = match resolve_type(self.table, id, &f.ty) {
            Ok(t) => t,
            Err(e) => {
                self.errors.push(e);
                return;
            }
        };
        let mut cx = BodyCx {
            checker: self,
            class: id,
            env: &mut env,
            ret: None,
            in_method: true,
            inferred: Vec::new(),
        };
        let (t, lowered) = cx.check_expr(init);
        let judge = Judge::new(self.table, &env);
        if !judge.sub(&t, &declared) {
            self.err(
                format!(
                    "initialiser of field `{}` has type `{}`, expected `{}`",
                    f.name.text,
                    self.table.show_type(&t),
                    self.table.show_type(&declared)
                ),
                init.span(),
            );
        }
        self.field_inits.insert((id, fname), lowered);
    }

    /// M-OK: checks a method body under Γ = this:P, x:T.
    fn check_method(&mut self, id: ClassId, m: &syn::MethodDecl) {
        let mname = self.table.intern(&m.name.text);
        let Some(sig) = self
            .table
            .class(id)
            .methods
            .iter()
            .find(|s| s.name == mname)
            .cloned()
        else {
            return; // signature failed to resolve; already reported
        };
        let mut env = TypeEnv::new();
        env.bind(self.table.this_name, Ty::Class(id).unmasked());
        for (x, t) in &sig.params {
            if env.contains(*x) {
                self.err(
                    format!("duplicate parameter `{}`", self.table.name_str(*x)),
                    m.span,
                );
            }
            env.bind(*x, t.clone());
        }
        for c in &sig.constraints {
            env.add_constraint(c.clone());
        }
        let Some(body) = &m.body else {
            return; // abstract: nothing to check or lower
        };
        let ret = sig.ret.clone();
        let mut cx = BodyCx {
            checker: self,
            class: id,
            env: &mut env,
            ret: Some(ret.clone()),
            in_method: true,
            inferred: Vec::new(),
        };
        let (t, lowered) = cx.check_block(body);
        let inferred = std::mem::take(&mut cx.inferred);
        if !matches!(ret.ty, Ty::Prim(PrimTy::Void)) {
            let judge = Judge::new(self.table, &env);
            if !judge.sub(&t, &ret) {
                self.err(
                    format!(
                        "method `{}` returns `{}`, expected `{}`",
                        m.name.text,
                        self.table.show_type(&t),
                        self.table.show_type(&ret)
                    ),
                    body.span,
                );
            }
        }
        if !inferred.is_empty() {
            // Attach the inferred constraints to the signature so that
            // Q-OK re-checks them in every inheriting family.
            self.table.update(id, |ci| {
                if let Some(m) = ci.methods.iter_mut().find(|m| m.name == mname) {
                    m.constraints.extend(inferred);
                }
            });
        }
        self.methods.insert(
            (id, mname),
            CMethod {
                params: sig.params.iter().map(|(x, _)| *x).collect(),
                body: lowered,
            },
        );
    }

    /// Q-OK for every class's own methods and L-OK for inherited methods
    /// whose constraints must still hold in the inheriting family.
    fn check_constraints(&mut self) {
        let env = TypeEnv::new();
        for id in self.table.all_ids() {
            if id == ClassId::ROOT {
                continue;
            }
            let this_exact = Ty::Class(id).exact();
            for mname in self.table.method_names(id) {
                let Some((owner, sig)) = self.table.method(id, mname) else {
                    continue;
                };
                for c in &sig.constraints {
                    let judge = Judge::new(self.table, &env);
                    let l = judge.subst(&c.lhs.ty, self.table.this_name, &this_exact);
                    let r = judge.subst(&c.rhs.ty, self.table.this_name, &this_exact);
                    let (Ok(l), Ok(r)) = (l, r) else {
                        continue;
                    };
                    let lt = l.with_masks(c.lhs.masks.clone());
                    let rt = r.with_masks(c.rhs.masks.clone());
                    let ok_fwd = self.sharing.shares_types(&judge, &lt, &rt);
                    let ok_bwd = c.directional || self.sharing.shares_types(&judge, &rt, &lt);
                    if !(ok_fwd && ok_bwd) {
                        let who = if owner == id {
                            format!("method `{}`", self.table.name_str(mname))
                        } else {
                            format!(
                                "method `{}` inherited from `{}` (override it)",
                                self.table.name_str(mname),
                                self.table.class_name(owner)
                            )
                        };
                        self.err(
                            format!(
                                "sharing constraint `{} = {}` of {} does not hold in `{}`",
                                self.table.show_type(&lt),
                                self.table.show_type(&rt),
                                who,
                                self.table.class_name(id)
                            ),
                            Span::dummy(),
                        );
                    }
                }
            }
        }
    }
}

/// Context for checking one body (method, initialiser, or main).
struct BodyCx<'c, 't> {
    checker: &'c mut Checker<'t>,
    class: ClassId,
    env: &'c mut TypeEnv,
    ret: Option<Type>,
    in_method: bool,
    inferred: Vec<crate::table::ConstraintInfo>,
}

impl<'c, 't> BodyCx<'c, 't> {
    fn table(&self) -> &'t ClassTable {
        self.checker.table
    }

    fn err(&mut self, message: String, span: Span) -> (Type, CExpr) {
        self.checker.err(message, span);
        (crate::ty::void(), CExpr::Unit)
    }

    fn judge(&self) -> Judge<'_> {
        Judge::new(self.checker.table, self.env)
    }

    fn resolve(&mut self, t: &syn::TypeExpr) -> Option<Type> {
        match resolve_type(self.checker.table, self.class, t) {
            Ok(ty) => Some(ty),
            Err(e) => {
                self.checker.errors.push(e);
                None
            }
        }
    }

    // ------------------------------------------------------------- blocks

    /// Checks a statement block. Every `let` scopes over the rest of the
    /// block, so the lowered IR nests one `CExpr::Let` per binding — but
    /// the *walk* is iterative: an explicit worklist of open bindings
    /// replaces the old check-the-rest-of-the-block recursion (whose
    /// depth was proportional to the number of `let` statements — the one
    /// checker recursion not bounded by the parser's expression-nesting
    /// limit, and therefore reachable from adversarial source length).
    /// The unwind below rebuilds the nested structure innermost-first and
    /// replays the scope-exit discipline — dependent-type widening
    /// (`{T_x/x}`), then unbind — exactly as the recursion did.
    fn check_block(&mut self, b: &syn::Block) -> (Type, CExpr) {
        /// One open `let`: its binding, lowered initialiser, and the
        /// statements lowered before it (the prefix of its `Seq`).
        struct OpenLet {
            x: Name,
            init: CExpr,
            before: Vec<CExpr>,
        }
        let mut lets: Vec<OpenLet> = Vec::new();
        let mut parts: Vec<CExpr> = Vec::new();
        let mut last_ty = crate::ty::void();
        let n = b.stmts.len();
        for (i, stmt) in b.stmts.iter().enumerate() {
            match stmt {
                syn::Stmt::Let { ty, name, init } => {
                    let x = self.table().intern(&name.text);
                    if self.env.contains(x) || name.text == "this" {
                        self.err(
                            format!(
                                "variable `{}` is already defined (locals are final)",
                                name.text
                            ),
                            name.span,
                        );
                        continue;
                    }
                    let declared = match self.resolve(ty) {
                        Some(t) => t,
                        None => continue,
                    };
                    let (it, lowered) = self.check_expr(init);
                    if !self.judge().sub(&it, &declared) {
                        self.checker.err(
                            format!(
                                "cannot bind value of type `{}` to `{}: {}`",
                                self.table().show_type(&it),
                                name.text,
                                self.table().show_type(&declared)
                            ),
                            init.span(),
                        );
                    }
                    self.env.bind(x, declared);
                    lets.push(OpenLet {
                        x,
                        init: lowered,
                        before: std::mem::take(&mut parts),
                    });
                    // A trailing `let` yields void (its body is empty).
                    last_ty = crate::ty::void();
                }
                _ => {
                    let is_last = i + 1 == n;
                    let (t, lowered) = self.check_stmt(stmt, is_last);
                    if is_last {
                        last_ty = t;
                    }
                    parts.push(lowered);
                }
            }
        }
        let mut body = match parts.len() {
            0 => CExpr::Unit,
            1 => parts.pop().expect("one"),
            _ => CExpr::Seq(parts),
        };
        while let Some(OpenLet { x, init, before }) = lets.pop() {
            // The binding goes out of scope here: widen any type that
            // depends on it by substituting its declared type ({T_x/x},
            // the calculus' type substitution).
            if last_ty.ty.paths().iter().any(|p| p.base == x) {
                let decl_ty = self.env.var(x).map(|t| t.ty.clone());
                let judge = self.judge();
                last_ty = match decl_ty.and_then(|d| judge.subst(&last_ty.ty, x, &d).ok()) {
                    Some(w) => w.with_masks(last_ty.masks.clone()),
                    None => crate::ty::void(),
                };
            }
            self.env.unbind(x);
            let mut ps = before;
            ps.push(CExpr::Let(x, Box::new(init), Box::new(body)));
            body = if ps.len() == 1 {
                ps.pop().expect("one")
            } else {
                CExpr::Seq(ps)
            };
        }
        (last_ty, body)
    }

    fn check_stmt(&mut self, s: &syn::Stmt, is_last: bool) -> (Type, CExpr) {
        match s {
            syn::Stmt::Let { .. } => unreachable!("handled in check_block"),
            syn::Stmt::Expr(e) => self.check_expr(e),
            syn::Stmt::While(cond, body, span) => {
                let (ct, lc) = self.check_expr(cond);
                if !matches!(ct.ty, Ty::Prim(PrimTy::Bool)) {
                    self.checker.err(
                        format!(
                            "while condition must be bool, got `{}`",
                            self.table().show_type(&ct)
                        ),
                        *span,
                    );
                }
                // The body may run zero times: masks granted inside are
                // discarded afterwards.
                let before = self.env.snapshot();
                let (_bt, lb) = self.check_block(body);
                self.env.join(&before);
                (crate::ty::void(), CExpr::While(Box::new(lc), Box::new(lb)))
            }
            syn::Stmt::Print(e, _) => {
                let (_t, le) = self.check_expr(e);
                (crate::ty::void(), CExpr::Print(Box::new(le)))
            }
            syn::Stmt::Return(e, span) => {
                if !is_last {
                    self.checker
                        .err("`return` is only allowed in tail position".into(), *span);
                }
                let (t, le) = self.check_expr(e);
                if let Some(ret) = self.ret.clone() {
                    if !self.judge().sub(&t, &ret) {
                        self.checker.err(
                            format!(
                                "returned `{}`, expected `{}`",
                                self.table().show_type(&t),
                                self.table().show_type(&ret)
                            ),
                            *span,
                        );
                    }
                    // The branch's contribution to `if` joins is the
                    // declared return type: `return` values from different
                    // branches need not share a syntactic LUB.
                    return (ret, le);
                }
                (t, le)
            }
        }
    }

    // -------------------------------------------------------- expressions

    /// Recognises final access paths (T-FIN): a variable (or `this`)
    /// followed by final fields.
    fn as_final_path(&self, e: &syn::Expr) -> Option<TPath> {
        match e {
            syn::Expr::Var(x) => {
                let n = self.table().intern(&x.text);
                self.env.contains(n).then(|| TPath::var(n))
            }
            syn::Expr::Field(inner, f) => {
                let base = self.as_final_path(inner)?;
                let judge = self.judge();
                let bt = judge.type_of_path(&base).ok()?;
                let fname = self.table().intern(&f.text);
                let (_owner, _ty, is_final) = judge.ftypedecl(&bt.ty, fname).ok()?;
                is_final.then(|| base.child(fname))
            }
            _ => None,
        }
    }

    fn check_expr(&mut self, e: &syn::Expr) -> (Type, CExpr) {
        match e {
            syn::Expr::Int(n, _) => (Ty::Prim(PrimTy::Int).unmasked(), CExpr::Int(*n)),
            syn::Expr::Bool(b, _) => (Ty::Prim(PrimTy::Bool).unmasked(), CExpr::Bool(*b)),
            syn::Expr::Str(s, _) => (Ty::Prim(PrimTy::Str).unmasked(), CExpr::Str(s.clone())),
            syn::Expr::Var(x) => {
                let n = self.table().intern(&x.text);
                let Some(t) = self.env.var(n).cloned() else {
                    return self.err(format!("unbound variable `{}`", x.text), x.span);
                };
                let ty = match self.judge().ptype(&TPath::var(n)) {
                    Ok(p) => p,
                    Err(_) => t,
                };
                (ty, CExpr::Var(n))
            }
            syn::Expr::Field(inner, f) => {
                let fname = self.table().intern(&f.text);
                if let Some(path) = self.as_final_path(e) {
                    match self.judge().ptype(&path) {
                        Ok(t) => {
                            let (_, li) = self.check_expr(inner);
                            return (t, CExpr::GetField(Box::new(li), fname));
                        }
                        Err(msg) => return self.err(msg, f.span),
                    }
                }
                let (rt, li) = self.check_expr(inner);
                match self.judge().ftype(&rt, fname) {
                    Ok(t) => (t, CExpr::GetField(Box::new(li), fname)),
                    Err(msg) => self.err(msg, f.span),
                }
            }
            syn::Expr::Assign { recv, field, value } => self.check_assign(recv, field, value),
            syn::Expr::Call(recv, mname, args) => self.check_call(recv, mname, args),
            syn::Expr::New(t, inits, span) => self.check_new(t, inits, *span),
            syn::Expr::View(t, inner, span) => self.check_view(t, inner, *span),
            syn::Expr::Cast(t, inner, _span) => {
                let Some(target) = self.resolve(t) else {
                    return (crate::ty::void(), CExpr::Unit);
                };
                let (_st, li) = self.check_expr(inner);
                (target.clone(), CExpr::Cast(target, Box::new(li)))
            }
            syn::Expr::Binary(op, l, r, span) => self.check_binary(*op, l, r, *span),
            syn::Expr::Unary(op, inner, span) => {
                let (t, li) = self.check_expr(inner);
                let expected = match op {
                    UnOp::Not => PrimTy::Bool,
                    UnOp::Neg => PrimTy::Int,
                };
                if !matches!(t.ty, Ty::Prim(p) if p == expected) {
                    self.checker.err(
                        format!(
                            "operator expects `{}`, got `{}`",
                            expected,
                            self.table().show_type(&t)
                        ),
                        *span,
                    );
                }
                (Ty::Prim(expected).unmasked(), CExpr::Un(*op, Box::new(li)))
            }
            syn::Expr::If(cond, then, els, span) => {
                let (ct, lc) = self.check_expr(cond);
                if !matches!(ct.ty, Ty::Prim(PrimTy::Bool)) {
                    self.checker.err(
                        format!(
                            "if condition must be bool, got `{}`",
                            self.table().show_type(&ct)
                        ),
                        *span,
                    );
                }
                let before = self.env.snapshot();
                let (tt, lt) = self.check_block(then);
                let after_then = self.env.snapshot();
                self.env.restore(before);
                let (et, le) = match els {
                    Some(b) => self.check_block(b),
                    None => (crate::ty::void(), CExpr::Unit),
                };
                self.env.join(&after_then);
                let ty = self.join_types(&tt, &et);
                (ty, CExpr::If(Box::new(lc), Box::new(lt), Box::new(le)))
            }
            syn::Expr::Block(b) => self.check_block(b),
        }
    }

    fn check_assign(
        &mut self,
        recv: &syn::Ident,
        field: &syn::Ident,
        value: &syn::Expr,
    ) -> (Type, CExpr) {
        let x = self.table().intern(&recv.text);
        let fname = self.table().intern(&field.text);
        let Some(_xt) = self.env.var(x).cloned() else {
            return self.err(format!("unbound variable `{}`", recv.text), recv.span);
        };
        let judge = self.judge();
        let recv_ty = Ty::Dep(TPath::var(x));
        let (owner, decl, is_final) = match judge.ftypedecl(&recv_ty, fname) {
            Ok(r) => r,
            Err(msg) => return self.err(msg, field.span),
        };
        let _ = owner;
        if is_final && self.in_method {
            return self.err(
                format!("cannot assign to final field `{}`", field.text),
                field.span,
            );
        }
        // T-SET: the target type uses exactness-preserving substitution, so
        // only values from the receiver's own family can be stored.
        let target = match judge.subst_exact(&decl.ty, self.table().this_name, &recv_ty) {
            Ok(t) => t.with_masks(decl.masks.clone()),
            Err(msg) => return self.err(msg, field.span),
        };
        let (vt, lv) = self.check_expr(value);
        if !self.judge().sub(&vt, &target) {
            self.checker.err(
                format!(
                    "cannot assign `{}` to field `{}: {}`",
                    self.table().show_type(&vt),
                    field.text,
                    self.table().show_type(&target)
                ),
                value.span(),
            );
        }
        // grant(Γ, x.f)
        self.env.grant(x, fname);
        (vt, CExpr::SetField(x, fname, Box::new(lv)))
    }

    fn check_call(
        &mut self,
        recv: &syn::Expr,
        mname: &syn::Ident,
        args: &[syn::Expr],
    ) -> (Type, CExpr) {
        let m = self.table().intern(&mname.text);
        let (rt, lr) = self.check_expr(recv);
        if rt.ty == Ty::Prim(PrimTy::Void) {
            return self.err(format!("cannot call `{}` on void", mname.text), mname.span);
        }
        let judge = self.judge();
        let (_owner, sig) = match judge.mtype(&rt.ty, m) {
            Ok(r) => r,
            Err(msg) => return self.err(msg, mname.span),
        };
        if sig.params.len() != args.len() {
            return self.err(
                format!(
                    "method `{}` expects {} arguments, got {}",
                    mname.text,
                    sig.params.len(),
                    args.len()
                ),
                mname.span,
            );
        }
        // T-CALL substitution chain: this := receiver type, then each
        // parameter in order. Exactness-preserving where the variable is
        // still referenced downstream.
        let mut param_tys: Vec<Type> = sig.params.iter().map(|(_, t)| t.clone()).collect();
        let mut ret_ty = sig.ret.clone();
        let mut largs = Vec::new();
        let this_n = self.table().this_name;
        if let Err(msg) = self.apply_call_subst(&mut param_tys, &mut ret_ty, this_n, &rt.ty, 0) {
            return self.err(msg, mname.span);
        }
        for (i, arg) in args.iter().enumerate() {
            let (at, la) = self.check_expr(arg);
            let expected = param_tys[i].clone();
            if !self.judge().sub(&at, &expected) {
                self.checker.err(
                    format!(
                        "argument {} has type `{}`, expected `{}`",
                        i + 1,
                        self.table().show_type(&at),
                        self.table().show_type(&expected)
                    ),
                    arg.span(),
                );
            }
            let x = sig.params[i].0;
            if let Err(msg) = self.apply_call_subst(&mut param_tys, &mut ret_ty, x, &at.ty, i + 1) {
                self.checker.err(msg, arg.span());
            }
            largs.push(la);
        }
        (ret_ty, CExpr::Call(Box::new(lr), m, largs))
    }

    /// Substitutes `actual` for `x.class` in the remaining parameter types
    /// and the return type. Exactness-preserving substitution is required
    /// whenever the substitution actually changes a type (T-CALL's
    /// `{T/x!}`); unused variables never fail.
    fn apply_call_subst(
        &mut self,
        params: &mut [Type],
        ret: &mut Type,
        x: Name,
        actual: &Ty,
        from: usize,
    ) -> Result<(), String> {
        let judge = Judge::new(self.checker.table, self.env);
        let mentions = |t: &Ty| t.paths().iter().any(|p| p.base == x);
        for p in params.iter_mut().skip(from) {
            if mentions(&p.ty) {
                p.ty = judge.subst_exact(&p.ty, x, actual)?;
            }
        }
        if mentions(&ret.ty) {
            ret.ty = judge.subst_exact(&ret.ty, x, actual)?;
        }
        Ok(())
    }

    fn check_new(
        &mut self,
        t: &syn::TypeExpr,
        inits: &[(syn::Ident, syn::Expr)],
        span: Span,
    ) -> (Type, CExpr) {
        let Some(target) = self.resolve(t) else {
            return (crate::ty::void(), CExpr::Unit);
        };
        if !target.masks.is_empty() {
            return self.err("cannot instantiate a masked type".into(), span);
        }
        if matches!(target.ty, Ty::Prim(_)) {
            return self.err("cannot instantiate a primitive type".into(), span);
        }
        let judge = self.judge();
        let members = match judge.bound_members(&target.ty) {
            Ok(m) if !m.is_empty() => m,
            _ => {
                return self.err(
                    format!(
                        "cannot instantiate `{}`: no classes found",
                        self.table().show_type(&target)
                    ),
                    span,
                )
            }
        };
        // Collect all fields (name -> has_init) over the member classes.
        let mut uninit: BTreeSet<Name> = BTreeSet::new();
        let mut all: BTreeSet<Name> = BTreeSet::new();
        for m in &members {
            for (_, fi) in self.table().fields_of(*m) {
                all.insert(fi.name);
                if !fi.has_init {
                    uninit.insert(fi.name);
                }
            }
        }
        let exact_ty = target.ty.clone().exact();
        let mut lowered = Vec::new();
        for (f, v) in inits {
            let fname = self.table().intern(&f.text);
            if !all.contains(&fname) {
                self.checker.err(
                    format!(
                        "`{}` has no field `{}`",
                        self.table().show_type(&target),
                        f.text
                    ),
                    f.span,
                );
                continue;
            }
            let judge = self.judge();
            let expected = match judge.ftypedecl(&target.ty, fname) {
                Ok((_, decl, _)) => {
                    match judge.subst_exact(&decl.ty, self.table().this_name, &exact_ty) {
                        Ok(t) => t.with_masks(decl.masks.clone()),
                        Err(msg) => {
                            self.checker.err(msg, v.span());
                            continue;
                        }
                    }
                }
                Err(msg) => {
                    self.checker.err(msg, f.span);
                    continue;
                }
            };
            let (vt, lv) = self.check_expr(v);
            if !self.judge().sub(&vt, &expected) {
                self.checker.err(
                    format!(
                        "field initialiser `{}` has type `{}`, expected `{}`",
                        f.text,
                        self.table().show_type(&vt),
                        self.table().show_type(&expected)
                    ),
                    v.span(),
                );
            }
            uninit.remove(&fname);
            lowered.push((fname, lv));
        }
        // No abstract method may remain unimplemented on an instantiated
        // class.
        for m in &members {
            for mname in self.table().method_names(*m) {
                let all_abstract = self
                    .table()
                    .supers(*m)
                    .iter()
                    .flat_map(|s| self.table().class(*s).methods)
                    .filter(|sig| sig.name == mname)
                    .all(|sig| sig.is_abstract);
                if all_abstract {
                    self.checker.err(
                        format!(
                            "cannot instantiate `{}`: method `{}` is abstract",
                            self.table().class_name(*m),
                            self.table().name_str(mname)
                        ),
                        span,
                    );
                }
            }
        }
        // Result: T! masked on every still-uninitialised field.
        let ty = exact_ty.with_masks(uninit);
        (ty, CExpr::New(target.ty, lowered))
    }

    fn check_view(&mut self, t: &syn::TypeExpr, inner: &syn::Expr, span: Span) -> (Type, CExpr) {
        let Some(target) = self.resolve(t) else {
            return (crate::ty::void(), CExpr::Unit);
        };
        let (st, li) = self.check_expr(inner);
        let judge = self.judge();
        // Modular checking (§2.5): inside methods, only the declared
        // sharing constraints justify view changes; `main` sees the whole
        // program and may use the closed-world judgment.
        let mut ok = self
            .checker
            .sharing
            .shares_types_in(&judge, &st, &target, !self.in_method);
        if !ok && self.in_method && self.checker.options.infer_constraints {
            // §2.5 future work: infer the constraint from the source
            // expression's declared type and the written target, provided
            // it holds in the closed world and mentions no path but this.
            let widened = match &st.ty {
                Ty::Dep(p) => judge
                    .type_of_path(p)
                    .map(|t| {
                        let mut masks = st.masks.clone();
                        masks.extend(t.masks.iter().copied());
                        t.ty.with_masks(masks)
                    })
                    .unwrap_or_else(|_| st.clone()),
                _ => st.clone(),
            };
            let this_only = |t: &Type| {
                t.ty.paths()
                    .iter()
                    .all(|p| p.base == self.table().this_name)
            };
            // Validate at the current class (this := P!), exactly as Q-OK
            // will for every inheriting family.
            let holds_here = {
                let this_exact = Ty::Class(self.class).exact();
                let lw = judge.subst(&widened.ty, self.table().this_name, &this_exact);
                let rw = judge.subst(&target.ty, self.table().this_name, &this_exact);
                match (lw, rw) {
                    (Ok(l), Ok(r)) => self.checker.sharing.shares_types_in(
                        &judge,
                        &l.with_masks(widened.masks.clone()),
                        &r.with_masks(target.masks.clone()),
                        true,
                    ),
                    _ => false,
                }
            };
            if this_only(&widened) && this_only(&target) && holds_here {
                let info = crate::table::ConstraintInfo {
                    lhs: widened,
                    rhs: target.clone(),
                    directional: true,
                };
                self.env.add_constraint(info.clone());
                self.inferred.push(info);
                ok = true;
            }
        }
        if !ok {
            let hint = if self.in_method && self.env.constraints().is_empty() {
                " (view changes inside methods require an enabling sharing constraint)"
            } else {
                ""
            };
            self.checker.err(
                format!(
                    "no sharing relationship `{} ⤳ {}`{}",
                    self.table().show_type(&st),
                    self.table().show_type(&target),
                    hint
                ),
                span,
            );
        }
        (target.clone(), CExpr::View(target, Box::new(li)))
    }

    /// Join of two branch types: one subsumes the other, possibly after
    /// widening dependent classes to their declared types; otherwise void.
    fn join_types(&mut self, a: &Type, b: &Type) -> Type {
        let j = self.judge();
        if j.sub(a, b) {
            return b.clone();
        }
        if j.sub(b, a) {
            return a.clone();
        }
        let widen = |t: &Type| -> Type {
            if let Ty::Dep(p) = &t.ty {
                if let Ok(pt) = j.type_of_path(p) {
                    let mut masks = t.masks.clone();
                    masks.extend(pt.masks.iter().copied());
                    return pt.ty.with_masks(masks);
                }
            }
            t.clone()
        };
        let (wa, wb) = (widen(a), widen(b));
        if j.sub(&wa, &wb) {
            return wb;
        }
        if j.sub(&wb, &wa) {
            return wa;
        }
        crate::ty::void()
    }

    fn check_binary(
        &mut self,
        op: BinOp,
        l: &syn::Expr,
        r: &syn::Expr,
        span: Span,
    ) -> (Type, CExpr) {
        let (lt, ll) = self.check_expr(l);
        let (rt, lr) = self.check_expr(r);
        let prim = |p: PrimTy| Ty::Prim(p).unmasked();
        let ty = match op {
            BinOp::Add => match (&lt.ty, &rt.ty) {
                (Ty::Prim(PrimTy::Int), Ty::Prim(PrimTy::Int)) => prim(PrimTy::Int),
                (Ty::Prim(PrimTy::Str), Ty::Prim(PrimTy::Str)) => prim(PrimTy::Str),
                _ => {
                    self.checker.err(
                        format!(
                            "`+` needs two ints or two strs, got `{}` and `{}`",
                            self.table().show_type(&lt),
                            self.table().show_type(&rt)
                        ),
                        span,
                    );
                    prim(PrimTy::Int)
                }
            },
            BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => {
                if !matches!(lt.ty, Ty::Prim(PrimTy::Int))
                    || !matches!(rt.ty, Ty::Prim(PrimTy::Int))
                {
                    self.checker
                        .err("arithmetic needs int operands".into(), span);
                }
                prim(PrimTy::Int)
            }
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                if !matches!(lt.ty, Ty::Prim(PrimTy::Int))
                    || !matches!(rt.ty, Ty::Prim(PrimTy::Int))
                {
                    self.checker
                        .err("comparison needs int operands".into(), span);
                }
                prim(PrimTy::Bool)
            }
            BinOp::And | BinOp::Or => {
                if !matches!(lt.ty, Ty::Prim(PrimTy::Bool))
                    || !matches!(rt.ty, Ty::Prim(PrimTy::Bool))
                {
                    self.checker.err("logic needs bool operands".into(), span);
                }
                prim(PrimTy::Bool)
            }
            BinOp::Eq | BinOp::Ne => {
                let both_prim = matches!((&lt.ty, &rt.ty), (Ty::Prim(a), Ty::Prim(b)) if a == b);
                let both_obj = !matches!(lt.ty, Ty::Prim(_)) && !matches!(rt.ty, Ty::Prim(_));
                if !(both_prim || both_obj) {
                    self.checker.err(
                        format!(
                            "`==`/`!=` needs matching primitives or two object references, got `{}` and `{}`",
                            self.table().show_type(&lt),
                            self.table().show_type(&rt)
                        ),
                        span,
                    );
                }
                prim(PrimTy::Bool)
            }
        };
        (ty, CExpr::Bin(op, Box::new(ll), Box::new(lr)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_src(src: &str) -> Result<CheckedProgram, Vec<TypeError>> {
        let prog = syn::parse(src).unwrap_or_else(|e| panic!("parse: {e}"));
        check(&prog)
    }

    fn ok(src: &str) -> CheckedProgram {
        check_src(src).unwrap_or_else(|e| {
            panic!(
                "expected well-typed, got: {}",
                e.iter()
                    .map(|x| x.message.clone())
                    .collect::<Vec<_>>()
                    .join("; ")
            )
        })
    }

    fn bad(src: &str) -> Vec<TypeError> {
        match check_src(src) {
            Ok(_) => panic!("expected a type error"),
            Err(e) => e,
        }
    }

    #[test]
    fn minimal_program() {
        let p = ok(
            "class A { class C { int x = 1; int get() { return this.x; } } }
                    main { final A.C c = new A.C(); print c.get(); }",
        );
        assert!(p.main.is_some());
        assert_eq!(p.methods.len(), 1);
    }

    #[test]
    fn field_read_write_and_masks() {
        ok("class A { class C { int x; } }
            main { final A.C c = new A.C { x = 3 }; print c.x; }");
        // The allocation type carries the mask, so it cannot be forgotten
        // by binding to an unmasked type...
        let errs = bad("class A { class C { int x; } }
                        main { final A.C c = new A.C(); print c.x; }");
        assert!(
            errs[0].message.contains("cannot bind"),
            "{}",
            errs[0].message
        );
        // ...and reading the masked field is rejected.
        let errs = bad("class A { class C { int x; } }
                        main { final A.C!\\x c = new A.C(); print c.x; }");
        assert!(errs[0].message.contains("masked"), "{}", errs[0].message);
    }

    #[test]
    fn mask_removed_by_assignment() {
        ok("class A { class C { int x; } }
            main { final A.C! \\x c = new A.C(); c.x = 5; print c.x; }");
    }

    #[test]
    fn if_join_keeps_mask_when_one_branch_skips_init() {
        let errs = bad("class A { class C { int x; } }
             main {
               final A.C!\\x c = new A.C();
               if (true) { c.x = 5; } else { print 0; }
               print c.x;
             }");
        assert!(errs[0].message.contains("masked"));
        // Both branches initialising is fine.
        ok("class A { class C { int x; } }
            main {
              final A.C!\\x c = new A.C();
              if (true) { c.x = 5; } else { c.x = 6; }
              print c.x;
            }");
    }

    #[test]
    fn late_binding_of_field_types() {
        // Figure 2: l.display() is legal inside ASTDisplay.Binary.
        ok("class AST {
              class Exp { }
              class Binary extends Exp { Exp l; Exp r; }
            }
            class TreeDisplay {
              class Node { void display() { } }
              class Composite extends Node { }
            }
            class ASTDisplay extends AST & TreeDisplay {
              class Exp extends Node { }
              class Binary extends Exp & Composite {
                void display() { this.l.display(); }
              }
            }");
    }

    #[test]
    fn sibling_family_objects_compose() {
        ok("class AST {
              class Exp { }
              class Binary extends Exp { Exp l; Exp r; }
            }
            main {
              // main-level code must pin the family with exact types:
              // an inexact AST.Exp could hold an object of a derived family,
              // which would not be a legal child of an AST-family Binary.
              final AST!.Exp a = new AST.Exp();
              final AST!.Exp b = new AST.Exp();
              final AST.Binary sum = new AST.Binary { l = a, r = b };
              print 1;
            }");
    }

    #[test]
    fn cross_family_assignment_rejected() {
        // Storing a base-family object into a derived-family field must
        // fail: exactness-preserving substitution (T-SET).
        let errs = bad("class AST {
               class Exp { }
               class Binary extends Exp { Exp l; }
             }
             class AST2 extends AST { class Exp { } class Binary { } }
             main {
               final AST2.Binary b = new AST2.Binary();
               final AST.Exp e = new AST.Exp();
               b.l = e;
             }");
        assert!(!errs.is_empty());
    }

    #[test]
    fn figure3_family_adaptation_typechecks() {
        ok("class AST {
              class Exp { }
              class Value extends Exp { }
              class Binary extends Exp { Exp l; Exp r; }
            }
            class TreeDisplay {
              class Node { void display() { } }
              class Composite extends Node { }
              class Leaf extends Node { }
            }
            class ASTDisplay extends AST & TreeDisplay {
              class Exp extends Node shares AST.Exp { }
              class Value extends Exp & Leaf shares AST.Value { }
              class Binary extends Exp & Composite shares AST.Binary {
                void display() { this.l.display(); this.r.display(); }
              }
              void show(AST!.Exp e) sharing AST!.Exp = Exp {
                final Exp temp = (view Exp)e;
                temp.display();
              }
            }");
    }

    #[test]
    fn view_change_without_constraint_rejected_in_method() {
        let errs = bad("class AST { class Exp { } }
             class ASTDisplay extends AST adapts AST {
               void show(AST!.Exp e) {
                 final Exp temp = (view Exp)e;
               }
             }");
        assert!(errs[0].message.contains("sharing"), "{}", errs[0].message);
    }

    #[test]
    fn view_change_in_main_uses_closed_world() {
        ok("class A { class C { } }
            class B extends A { class C shares A.C { } }
            main {
              final A!.C a = new A.C();
              final B!.C b = (view B!.C)a;
              print a == b;
            }");
    }

    #[test]
    fn view_change_to_unshared_family_rejected() {
        let errs = bad("class A { class C { } }
             class B extends A { class C { } }
             main {
               final A!.C a = new A.C();
               final B!.C b = (view B!.C)a;
             }");
        assert!(errs[0].message.contains("sharing"));
    }

    #[test]
    fn new_field_requires_mask_on_view_change() {
        // Figure 5: A2.B adds field f; the view change must carry a mask.
        let errs = bad("class A1 { class B { } }
             class A2 extends A1 { class B shares A1.B { int f; } }
             main {
               final A1!.B b1 = new A1.B();
               final A2!.B b2 = (view A2!.B)b1;
             }");
        assert!(!errs.is_empty());
        ok("class A1 { class B { } }
            class A2 extends A1 { class B shares A1.B { int f; } }
            main {
              final A1!.B b1 = new A1.B();
              final A2!.B\\f b2 = (view A2!.B\\f)b1;
              b2.f = 3;
              print b2.f;
            }");
    }

    #[test]
    fn adapts_shorthand_shares_all_classes() {
        ok("class AST { class Exp { } class Value extends Exp { } }
            class ASTDisplay extends AST adapts AST {
              void show(AST!.Exp e) sharing AST!.Exp = Exp {
                final Exp temp = (view Exp)e;
              }
            }");
    }

    #[test]
    fn constraint_fails_in_nonsharing_derived_family() {
        // A family derived from ASTDisplay that breaks the sharing must
        // override `show` (Q-OK / L-OK).
        let errs = bad("class AST { class Exp { } }
             class ASTDisplay extends AST adapts AST {
               void show(AST!.Exp e) sharing AST!.Exp = Exp {
                 final Exp temp = (view Exp)e;
               }
             }
             class Broken extends ASTDisplay {
               class Exp { } // no shares: severs the relationship
             }");
        assert!(
            errs.iter().any(|e| e.message.contains("does not hold")),
            "{:?}",
            errs.iter().map(|e| &e.message).collect::<Vec<_>>()
        );
    }

    #[test]
    fn method_dispatch_on_family_types() {
        ok("class Service {
              class Handler { int handle() { return 0; } }
              class Dispatcher {
                Handler h;
                int dispatch() { return this.h.handle(); }
              }
            }
            class LogService extends Service {
              class Handler extends Service.Handler shares Service.Handler {
                int handle() { return 1; }
              }
              class Dispatcher shares Service.Dispatcher { }
            }");
    }

    #[test]
    fn return_type_mismatch_rejected() {
        let errs = bad("class A { class C { int f() { return true; } } }");
        assert!(errs[0].message.contains("return"), "{}", errs[0].message);
    }

    #[test]
    fn arg_type_mismatch_rejected() {
        let errs = bad("class A { class C { int f(int x) { return x; } } }
             main { final A.C c = new A.C(); c.f(true); }");
        assert!(errs[0].message.contains("argument"));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let errs = bad("class A { class C { int f(int x) { return x; } } }
             main { final A.C c = new A.C(); c.f(); }");
        assert!(errs[0].message.contains("arguments"));
    }

    #[test]
    fn unknown_method_rejected() {
        let errs = bad("class A { class C { } } main { final A.C c = new A.C(); c.nope(); }");
        assert!(errs[0].message.contains("no method"));
    }

    #[test]
    fn final_field_assignment_rejected() {
        let errs = bad("class A { class C { final int x = 1; void f() { this.x = 2; } } }");
        assert!(errs[0].message.contains("final"));
    }

    #[test]
    fn override_with_wrong_signature_rejected() {
        let errs = bad("class A { class C { int f(int x) { return x; } } }
             class B extends A { class C { int f(bool x) { return 1; } } }");
        assert!(errs.iter().any(|e| e.message.contains("not equivalent")));
    }

    #[test]
    fn while_discards_masks() {
        let errs = bad("class A { class C { int x; } }
             main {
               final A.C!\\x c = new A.C();
               while (false) { c.x = 1; }
               print c.x;
             }");
        assert!(errs[0].message.contains("masked"));
    }

    #[test]
    fn local_shadowing_rejected() {
        let errs = bad("main { final int x = 1; final int x = 2; }");
        assert!(errs[0].message.contains("already defined"));
    }

    #[test]
    fn view_on_tree_root_adapts_whole_tree() {
        // §2.3: a single view change on the root moves the whole tree;
        // children accessed through the new reference are in the new family.
        ok("class AST {
              class Exp { void display() { } }
              class Binary extends Exp { Exp l; Exp r; }
            }
            class ASTDisplay extends AST adapts AST {
              class Binary extends Exp shares AST.Binary {
                void display() { this.l.display(); this.r.display(); }
              }
              void show(AST!.Binary b) sharing AST!.Binary = Binary {
                final Binary temp = (view Binary)b;
                temp.l.display();
              }
            }");
    }

    #[test]
    fn dependent_parameter_types() {
        // Family-polymorphic method: translate(Translator v) style.
        ok("class Base {
              class Exp { }
              class Maker {
                Base[this.class].Exp make() { return new Exp(); }
              }
            }
            main {
              final Base.Maker m = new Base.Maker();
              final Base.Exp e = m.make();
              print 1;
            }");
    }
}
