//! Typing environments Γ for the flow-sensitive checker.
//!
//! Environments map variables to (possibly masked) types and carry the
//! sharing constraints of the enclosing method (`sharing T1 = T2`).
//! Masked-type flow sensitivity means variable bindings are *updated* by
//! field assignments (`grant`), so the environment supports snapshots and
//! joins for `if`/`while`.

use crate::names::Name;
use crate::table::ConstraintInfo;
use crate::ty::Type;
use std::collections::HashMap;

/// A typing environment Γ.
#[derive(Debug, Clone, Default)]
pub struct TypeEnv {
    vars: HashMap<Name, Type>,
    constraints: Vec<ConstraintInfo>,
}

impl TypeEnv {
    /// The empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a variable.
    pub fn var(&self, x: Name) -> Option<&Type> {
        self.vars.get(&x)
    }

    /// Binds (or rebinds) a variable.
    pub fn bind(&mut self, x: Name, t: Type) {
        self.vars.insert(x, t);
    }

    /// Whether the variable is bound.
    pub fn contains(&self, x: Name) -> bool {
        self.vars.contains_key(&x)
    }

    /// Removes a binding (scope exit).
    pub fn unbind(&mut self, x: Name) {
        self.vars.remove(&x);
    }

    /// `grant(Γ, x.f)`: removes the mask on `f` from `x`'s binding
    /// (assignment to a masked field initialises it — §4.12).
    pub fn grant(&mut self, x: Name, f: Name) {
        if let Some(t) = self.vars.get_mut(&x) {
            t.masks.remove(&f);
        }
    }

    /// Adds a sharing constraint to the environment (method entry).
    pub fn add_constraint(&mut self, c: ConstraintInfo) {
        self.constraints.push(c);
    }

    /// The sharing constraints in scope.
    pub fn constraints(&self) -> &[ConstraintInfo] {
        &self.constraints
    }

    /// Snapshot of the variable bindings, for control-flow joins.
    pub fn snapshot(&self) -> HashMap<Name, Type> {
        self.vars.clone()
    }

    /// Restores variable bindings from a snapshot.
    pub fn restore(&mut self, snap: HashMap<Name, Type>) {
        self.vars = snap;
    }

    /// Joins with another branch's bindings: a field counts as initialised
    /// after the join only if *both* branches initialised it, so the joined
    /// mask set is the union of the two branches' masks.
    pub fn join(&mut self, other: &HashMap<Name, Type>) {
        for (x, t) in self.vars.iter_mut() {
            if let Some(ot) = other.get(x) {
                let union: Vec<Name> = ot.masks.iter().copied().collect();
                for m in union {
                    t.masks.insert(m);
                }
            }
        }
    }

    /// Iterates over the variable bindings.
    pub fn iter_vars(&self) -> impl Iterator<Item = (&Name, &Type)> {
        self.vars.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::{ClassId, Ty};

    fn n(i: u32) -> Name {
        Name(i)
    }

    #[test]
    fn grant_removes_mask() {
        let mut env = TypeEnv::new();
        env.bind(n(0), Ty::Class(ClassId(1)).unmasked().masked(n(5)));
        assert!(env.var(n(0)).unwrap().is_masked(n(5)));
        env.grant(n(0), n(5));
        assert!(!env.var(n(0)).unwrap().is_masked(n(5)));
    }

    #[test]
    fn join_takes_mask_union() {
        let mut env = TypeEnv::new();
        env.bind(n(0), Ty::Class(ClassId(1)).unmasked().masked(n(5)));
        let before = env.snapshot();
        env.grant(n(0), n(5)); // then-branch initialised f
        env.join(&before); // else-branch did not
        assert!(env.var(n(0)).unwrap().is_masked(n(5)));
    }
}
