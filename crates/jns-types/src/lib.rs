//! # jns-types
//!
//! Static semantics for the J&s language of *Sharing Classes Between
//! Families* (Qi & Myers, PLDI 2009): class table, nested-inheritance
//! hierarchy, dependent/exact/prefix/masked types, subtyping, sharing
//! judgments, and the flow-sensitive type checker.

#![warn(missing_docs)]

#[cfg(test)]
pub(crate) mod fixtures;

pub mod check;
pub mod env;
pub mod ir;
pub mod judge;
pub mod names;
pub mod resolve;
pub mod sharing;
pub mod table;
pub mod ty;

pub use check::{check, check_with, CheckOptions};
pub use env::TypeEnv;
pub use ir::{CExpr, CMethod, CheckedProgram};
pub use judge::Judge;
pub use names::{Interner, Name};
pub use resolve::{resolve, Resolved, TypeError};
pub use sharing::{SharingError, SharingTable};
pub use table::{ClassInfo, ClassTable, ConstraintInfo, FieldInfo, MethodSig};
pub use ty::{ClassId, TPath, Ty, Type};
