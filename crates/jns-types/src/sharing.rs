//! Class sharing: declared relationships, the induced equivalence relation,
//! field-copy attribution (`fclass`, §4.15), required view-change masks,
//! directional sharing inference (§3.3), and the sharing judgment
//! `Γ ⊢ T1 ⤳ T2` (Fig. 10, SH-*).

use crate::judge::Judge;
use crate::names::Name;
use crate::table::ClassTable;
use crate::ty::{ClassId, Ty, Type};
use std::collections::{BTreeSet, HashMap};

/// The computed sharing structure of a program.
///
/// Built once after class resolution by [`SharingTable::build`]; consulted
/// by the type checker (T-VIEW, Q-OK, L-OK) and by the evaluator (the
/// `view` function and field-copy selection).
#[derive(Debug, Default, Clone)]
pub struct SharingTable {
    /// Declared (directed) pairs: derived class -> base class, with the
    /// masks written in the `shares` clause.
    pub declared: Vec<(ClassId, ClassId, BTreeSet<Name>)>,
    /// Sharing-equivalence partners of each class (includes the class
    /// itself; sorted).
    groups: HashMap<ClassId, Vec<ClassId>>,
    /// `fclass(P, f)`: which partner's copy of field `f` a `P`-view reads.
    fclass: HashMap<(ClassId, Name), ClassId>,
    /// Fields that ended up duplicated, per declared pair (for diagnostics).
    pub duplicated: HashMap<(ClassId, ClassId), BTreeSet<Name>>,
    /// Forwarding: reading `(view-class, field)` may fall back to the
    /// other family's copy (`fclass` id) through a view change (§3.3).
    forwards: HashMap<(ClassId, Name), Vec<ClassId>>,
}

/// An error discovered while building the sharing table.
#[derive(Debug, Clone)]
pub struct SharingError {
    /// Explanation.
    pub message: String,
    /// The class the error is attributed to.
    pub class: ClassId,
}

impl SharingTable {
    /// The sharing partners of `c` (always contains `c`).
    pub fn partners(&self, c: ClassId) -> Vec<ClassId> {
        self.groups.get(&c).cloned().unwrap_or_else(|| vec![c])
    }

    /// Whether `a` and `b` are shared classes (same instance set).
    pub fn shared(&self, a: ClassId, b: ClassId) -> bool {
        a == b || self.partners(a).contains(&b)
    }

    /// `fclass(P, f)`: the partner class whose copy of `f` a `P`-view uses.
    pub fn fclass(&self, p: ClassId, f: Name) -> ClassId {
        self.fclass.get(&(p, f)).copied().unwrap_or(p)
    }

    /// Forwarding copies for `(p, f)` (§3.3 directional field reuse).
    pub fn forwards(&self, p: ClassId, f: Name) -> &[ClassId] {
        self.forwards.get(&(p, f)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The masks required on the target when viewing an `src`-instance as
    /// `dst`; `None` if `src` and `dst` are not shared.
    pub fn dir_masks(
        &self,
        table: &ClassTable,
        src: ClassId,
        dst: ClassId,
    ) -> Option<BTreeSet<Name>> {
        if src == dst {
            return Some(BTreeSet::new());
        }
        if !self.shared(src, dst) {
            return None;
        }
        let mut masks = BTreeSet::new();
        for f in table.field_names(dst) {
            let dst_copy = self.fclass(dst, f);
            let src_has = table.field_names(src).contains(&f);
            let same_copy = src_has && self.fclass(src, f) == dst_copy;
            let forwarded = self
                .forwards(dst, f)
                .iter()
                .any(|alt| src_has && self.fclass(src, f) == *alt);
            if !(same_copy || forwarded) {
                masks.insert(f);
            }
        }
        Some(masks)
    }

    /// Builds the sharing table for a resolved class table.
    ///
    /// `pairs` are the declared `(derived, base, declared-masks)` sharing
    /// relationships (from `shares` clauses and `adapts` sugar).
    ///
    /// # Errors
    ///
    /// Reports illegal declarations (target not overridden by the
    /// declarer) and `final` fields that would need duplication.
    pub fn build(
        table: &ClassTable,
        pairs: Vec<(ClassId, ClassId, BTreeSet<Name>)>,
    ) -> (SharingTable, Vec<SharingError>) {
        let mut errors = Vec::new();
        let mut st = SharingTable {
            declared: Vec::new(),
            ..Default::default()
        };
        // Legality: the declarer must override (further bind, hence
        // subclass) the target, and carry the same simple name (§2.2).
        for (d, b, m) in pairs {
            if d == b {
                continue; // `shares` self: no-op
            }
            if !table.is_subclass(d, b) || table.simple_name(d) != table.simple_name(b) {
                errors.push(SharingError {
                    message: format!(
                        "class `{}` may only declare sharing with a class it overrides, not `{}`",
                        table.class_name(d),
                        table.class_name(b)
                    ),
                    class: d,
                });
                continue;
            }
            st.declared.push((d, b, m));
        }
        // Equivalence groups: reflexive-symmetric-transitive closure.
        let mut group_of: HashMap<ClassId, usize> = HashMap::new();
        let mut groups: Vec<Vec<ClassId>> = Vec::new();
        for (d, b, _) in &st.declared {
            let gd = group_of.get(d).copied();
            let gb = group_of.get(b).copied();
            match (gd, gb) {
                (None, None) => {
                    group_of.insert(*d, groups.len());
                    group_of.insert(*b, groups.len());
                    groups.push(vec![*d, *b]);
                }
                (Some(g), None) => {
                    group_of.insert(*b, g);
                    groups[g].push(*b);
                }
                (None, Some(g)) => {
                    group_of.insert(*d, g);
                    groups[g].push(*d);
                }
                (Some(g1), Some(g2)) if g1 != g2 => {
                    let moved = std::mem::take(&mut groups[g2]);
                    for c in &moved {
                        group_of.insert(*c, g1);
                    }
                    groups[g1].extend(moved);
                }
                _ => {}
            }
        }
        for g in &mut groups {
            g.sort();
            g.dedup();
        }
        for (c, g) in &group_of {
            st.groups.insert(*c, groups[*g].clone());
        }

        // Field-copy attribution fixpoint. Start optimistic: every common
        // field follows the `shares` chain to the base copy; then force
        // duplication (own copy) whenever the interpreted field types are
        // not bidirectionally shared, until stable.
        let env = crate::env::TypeEnv::new();
        // duplicated[(d)] = set of fields d keeps its own copy of.
        let mut dup: HashMap<ClassId, BTreeSet<Name>> = HashMap::new();
        for (d, _b, declared_masks) in &st.declared {
            dup.entry(*d)
                .or_default()
                .extend(declared_masks.iter().copied());
        }
        loop {
            // Recompute fclass from the current duplication sets.
            st.fclass.clear();
            for (d, b, _) in &st.declared {
                for f in table.field_names(*d) {
                    let shared_field = table.field_names(*b).contains(&f)
                        && !dup.get(d).is_some_and(|s| s.contains(&f));
                    if shared_field {
                        // Follow the chain: the base may itself share on.
                        let target = st.fclass(*b, f);
                        st.fclass.insert((*d, f), target);
                    }
                }
            }
            // Check interpreted field types; grow duplication sets.
            let mut changed = false;
            let judge = Judge::new(table, &env);
            for (d, b, _) in &st.declared {
                for f in table.field_names(*d) {
                    if st.fclass(*d, f) == *d {
                        continue; // already own copy
                    }
                    if !table.field_names(*b).contains(&f) {
                        continue;
                    }
                    let td = interp_field(&judge, *d, f);
                    let tb = interp_field(&judge, *b, f);
                    let (Some(td), Some(tb)) = (td, tb) else {
                        continue;
                    };
                    let bidi = judge.equiv(&td, &tb)
                        || (st.shares_types(&judge, &td, &tb) && st.shares_types(&judge, &tb, &td));
                    if !bidi {
                        dup.entry(*d).or_default().insert(f);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Final fields may not be duplicated (L-OK).
        for (d, set) in &dup {
            for f in set {
                if let Some((_, fi)) = table.field(*d, *f) {
                    if fi.is_final {
                        errors.push(SharingError {
                            message: format!(
                                "final field `{}` of `{}` has an unshared type and cannot be duplicated",
                                table.name_str(*f),
                                table.class_name(*d)
                            ),
                            class: *d,
                        });
                    }
                }
            }
        }
        // Record duplication for diagnostics.
        for (d, b, _) in &st.declared {
            let set = dup.get(d).cloned().unwrap_or_default();
            st.duplicated.insert((*d, *b), set);
        }
        // Directional forwarding (§3.3): a duplicated field of the target
        // may still be readable from the source copy if the source's
        // interpreted type *directionally* shares to the target's. This
        // inference is coinductive — `base!.Exp ⤳ pair!.Exp` may depend on
        // the forwarding of `Abs.e`, which depends on the relation itself —
        // so we compute a greatest fixpoint: start with every candidate
        // forward, then strike out those whose type check fails, until
        // stable.
        let judge = Judge::new(table, &env);
        let all_pairs: Vec<(ClassId, ClassId)> = st
            .groups
            .values()
            .flat_map(|g| {
                g.iter()
                    .flat_map(|a| g.iter().map(move |b| (*a, *b)))
                    .collect::<Vec<_>>()
            })
            .collect();
        let mut candidates: Vec<(ClassId, Name, ClassId)> = Vec::new();
        let mut forwards: HashMap<(ClassId, Name), Vec<ClassId>> = HashMap::new();
        for (src, dst) in all_pairs {
            if src == dst {
                continue;
            }
            for f in table.field_names(dst) {
                let dst_copy = st.fclass(dst, f);
                if table.field_names(src).contains(&f) {
                    let src_copy = st.fclass(src, f);
                    if src_copy != dst_copy {
                        let entry = forwards.entry((dst, f)).or_default();
                        if !entry.contains(&src_copy) {
                            entry.push(src_copy);
                            candidates.push((dst, f, src_copy));
                        }
                    }
                }
            }
        }
        st.forwards = forwards;
        loop {
            let mut removed = false;
            for (dst, f, src_copy) in &candidates {
                if !st.forwards(*dst, *f).contains(src_copy) {
                    continue;
                }
                let ts = interp_field(&judge, *src_copy, *f);
                let td = interp_field(&judge, *dst, *f);
                let ok = match (ts, td) {
                    (Some(ts), Some(td)) => st.shares_types(&judge, &ts, &td),
                    _ => false,
                };
                if !ok {
                    if let Some(list) = st.forwards.get_mut(&(*dst, *f)) {
                        list.retain(|c| c != src_copy);
                    }
                    removed = true;
                }
            }
            if !removed {
                break;
            }
        }
        st.forwards.retain(|_, v| !v.is_empty());
        (st, errors)
    }

    /// The sharing judgment `Γ ⊢ T1 ⤳ T2` on masked types.
    ///
    /// Tries, in order: reflexivity (up to ≈), the environment's sharing
    /// constraints (SH-ENV + SH-MASK), declared/derived class sharing
    /// (SH-DECL with masks), and the closed-world family rule (SH-CLS).
    pub fn shares_types(&self, j: &Judge<'_>, t1: &Type, t2: &Type) -> bool {
        self.shares_types_in(j, t1, t2, true)
    }

    /// Like [`SharingTable::shares_types`], but when `allow_global` is
    /// false only SH-REFL and the environment's constraints are used —
    /// the modular discipline for method bodies (§2.5: "a view change can
    /// only appear in a method with an enabling sharing constraint").
    pub fn shares_types_in(&self, j: &Judge<'_>, t1: &Type, t2: &Type, allow_global: bool) -> bool {
        let c1 = j.canon_type(t1);
        let c2 = j.canon_type(t2);
        // A dependent source first tries its declared type (T-SUB before
        // T-VIEW): `e.class ⤳ T` follows from `T0 ⤳ T` when e : T0.
        if let Ty::Dep(p) = &c1.ty {
            if let Ok(pt) = j.type_of_path(p) {
                if pt.ty != c1.ty {
                    let mut masks = c1.masks.clone();
                    masks.extend(pt.masks.iter().copied());
                    if self.shares_types_in(j, &pt.ty.clone().with_masks(masks), t2, allow_global) {
                        return true;
                    }
                }
            }
        }
        // SH-REFL (up to type equivalence), masks may only grow.
        if c1.masks.is_subset(&c2.masks)
            && j.equiv(&c1.ty.clone().unmasked(), &c2.ty.clone().unmasked())
        {
            return true;
        }
        // SH-ENV: constraints of the enclosing method, with SH-MASK.
        for c in j.env.constraints() {
            let (l, r) = (j.canon_type(&c.lhs), j.canon_type(&c.rhs));
            if self.env_match(j, &c1, &c2, &l, &r) {
                return true;
            }
            if !c.directional && self.env_match(j, &c1, &c2, &r, &l) {
                return true;
            }
        }
        if !allow_global {
            return false; // modular mode: constraints only
        }
        // Class-level sharing (SH-DECL/SH-TRANS via the fclass structure).
        if let (Some(x), Some(y)) = (exact_class(j, &c1.ty), exact_class(j, &c2.ty)) {
            if let Some(required) = self.dir_masks(j.table, x, y) {
                let carried: BTreeSet<Name> = c1
                    .masks
                    .iter()
                    .copied()
                    .filter(|f| {
                        j.table.field_names(y).contains(f)
                            && j.table.field_names(x).contains(f)
                            && self.fclass(x, *f) == self.fclass(y, *f)
                    })
                    .collect();
                return required.union(&carried).all(|f| c2.masks.contains(f));
            }
            return false;
        }
        // SH-CLS: closed-world enumeration for family types with exact
        // prefixes.
        if c1.ty.prefix_exact(1) && c2.ty.prefix_exact(1) {
            if let (Some(subs1), Some(subs2)) = (
                self.enumerate_subclasses(j, &c1.ty),
                self.enumerate_subclasses(j, &c2.ty),
            ) {
                if subs1.is_empty() {
                    return false;
                }
                return subs1.iter().all(|x| {
                    let targets: Vec<ClassId> = subs2
                        .iter()
                        .copied()
                        .filter(|y| {
                            self.dir_masks(j.table, *x, *y).is_some_and(|req| {
                                req.union(&c1.masks.iter().copied().collect()).all(|f| {
                                    c2.masks.contains(f) || !j.table.field_names(*y).contains(f)
                                })
                            })
                        })
                        .collect();
                    targets.len() == 1
                });
            }
        }
        false
    }

    fn env_match(&self, j: &Judge<'_>, c1: &Type, c2: &Type, l: &Type, r: &Type) -> bool {
        // T1 ⤳ T2 follows from constraint L ⤳ R when T1 ≤ L\extra (T-SUB
        // before T-VIEW) and T2 ⊒ R\extra (SH-MASK adds the same masks to
        // both sides).
        if !j.sub_pure(&c1.ty, &l.ty) {
            return false;
        }
        if !j.equiv(&c2.ty.clone().unmasked(), &r.ty.clone().unmasked()) {
            return false;
        }
        let extra: BTreeSet<Name> = c1.masks.difference(&l.masks).copied().collect();
        let needed: BTreeSet<Name> = r.masks.union(&extra).copied().collect();
        needed.is_subset(&c2.masks)
    }

    /// Enumerates the classes `X` with `X! ≤ PS` for a family type `PS`
    /// with an exact prefix, using the locally closed world (§2.1).
    pub fn enumerate_subclasses(&self, j: &Judge<'_>, ps: &Ty) -> Option<Vec<ClassId>> {
        let ps = j.canon(ps);
        if let Some(c) = exact_class(j, &ps) {
            return Some(vec![c]);
        }
        // Form: F!.C — find the families, then their one-level members.
        let (prefix, _name) = match &ps {
            Ty::Nested(inner, c) => (inner.clone(), *c),
            _ => return None,
        };
        if !prefix.is_exact() {
            return None;
        }
        let fams = j.table.mem(&prefix);
        if fams.is_empty() {
            return None;
        }
        let mut out = Vec::new();
        for fam in fams {
            // All nested names visible in the family (own + inherited).
            let mut names: BTreeSet<Name> = BTreeSet::new();
            for s in j.table.supers(fam) {
                let info = j.table.class(s);
                names.extend(info.nested_explicit.keys().copied());
            }
            for n in names {
                if let Some(m) = j.table.member(fam, n) {
                    if j.sub_pure(&Ty::Class(m).exact(), &ps) && !out.contains(&m) {
                        out.push(m);
                    }
                }
            }
        }
        Some(out)
    }
}

/// If `t` denotes a single exact class, returns it.
fn exact_class(j: &Judge<'_>, t: &Ty) -> Option<ClassId> {
    let c = j.canon(t);
    match c {
        Ty::Exact(inner) => match *inner {
            Ty::Class(id) => Some(id),
            Ty::Meet(_) => {
                let m = j.table.mem(&inner);
                if m.len() == 1 {
                    Some(m[0])
                } else {
                    None
                }
            }
            _ => None,
        },
        _ => None,
    }
}

/// Interprets field `f` as seen from the exact view `c!`.
fn interp_field(j: &Judge<'_>, c: ClassId, f: Name) -> Option<Type> {
    j.ftype(&Ty::Class(c).exact().unmasked(), f).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::TypeEnv;
    use crate::fixtures::figure12;
    use crate::table::{ConstraintInfo, FieldInfo};
    use crate::ty::TPath;

    /// Figure 3: share all expression classes between AST and ASTDisplay.
    fn figure3() -> (
        ClassTable,
        std::collections::HashMap<&'static str, ClassId>,
        SharingTable,
    ) {
        let (t, mut ids) = figure12();
        // ASTDisplay.Value shares AST.Value — materialise AD.Value first.
        let ad_value = t.member(ids["ASTDisplay"], t.intern("Value")).unwrap();
        ids.insert("AD.Value", ad_value);
        let pairs = vec![
            (ids["AD.Exp"], ids["AST.Exp"], BTreeSet::new()),
            (ids["AD.Value"], ids["AST.Value"], BTreeSet::new()),
            (ids["AD.Binary"], ids["AST.Binary"], BTreeSet::new()),
        ];
        let (st, errs) = SharingTable::build(&t, pairs);
        assert!(errs.is_empty(), "{errs:?}");
        (t, ids, st)
    }

    #[test]
    fn partners_form_equivalence_groups() {
        let (_t, ids, st) = figure3();
        assert!(st.shared(ids["AD.Exp"], ids["AST.Exp"]));
        assert!(st.shared(ids["AST.Exp"], ids["AD.Exp"]), "symmetric");
        assert!(st.shared(ids["AST.Exp"], ids["AST.Exp"]), "reflexive");
        assert!(!st.shared(ids["AST.Exp"], ids["AST.Binary"]));
    }

    #[test]
    fn illegal_sharing_rejected() {
        let (t, ids) = figure12();
        // AST.Exp does not override TreeDisplay.Node.
        let (_, errs) =
            SharingTable::build(&t, vec![(ids["AST.Exp"], ids["TD.Node"], BTreeSet::new())]);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].message.contains("overrides"));
    }

    #[test]
    fn family_level_sharing_judgment_sh_cls() {
        let (t, ids, st) = figure3();
        let env = TypeEnv::new();
        let j = Judge::new(&t, &env);
        let exp = t.intern("Exp");
        // AST!.Exp ⤳ ASTDisplay!.Exp: every subclass of AST!.Exp has a
        // unique shared subclass under ASTDisplay!.Exp.
        let src = Ty::Nested(Box::new(Ty::Class(ids["AST"]).exact()), exp).unmasked();
        let dst = Ty::Nested(Box::new(Ty::Class(ids["ASTDisplay"]).exact()), exp).unmasked();
        assert!(st.shares_types(&j, &src, &dst));
        assert!(st.shares_types(&j, &dst, &src), "bidirectional here");
    }

    #[test]
    fn subclass_enumeration_uses_closed_world() {
        let (t, ids, st) = figure3();
        let env = TypeEnv::new();
        let j = Judge::new(&t, &env);
        let exp = t.intern("Exp");
        let ps = Ty::Nested(Box::new(Ty::Class(ids["AST"]).exact()), exp);
        let subs = st.enumerate_subclasses(&j, &ps).unwrap();
        assert!(subs.contains(&ids["AST.Exp"]));
        assert!(subs.contains(&ids["AST.Value"]));
        assert!(subs.contains(&ids["AST.Binary"]));
        assert!(!subs.contains(&ids["AD.Exp"]), "other family excluded");
    }

    #[test]
    fn exact_view_change_masks() {
        // Figure 5: new fields and unshared-typed fields.
        let (t, ids) = {
            let t = ClassTable::new();
            let mut ids = std::collections::HashMap::new();
            let a1 = t.add_explicit(ClassId::ROOT, t.intern("A1"));
            let a2 = t.add_explicit(ClassId::ROOT, t.intern("A2"));
            t.update(a2, |ci| ci.extends.push(Ty::Class(a1)));
            let b1 = t.add_explicit(a1, t.intern("B"));
            let c1 = t.add_explicit(a1, t.intern("C"));
            let d1 = t.add_explicit(a1, t.intern("D"));
            let b2 = t.add_explicit(a2, t.intern("B"));
            let c2 = t.add_explicit(a2, t.intern("C"));
            let e2 = t.add_explicit(a2, t.intern("E"));
            // C.g : A1[this.class].D  (late bound)
            let g = t.intern("g");
            let d_ty = Ty::Nested(
                Box::new(Ty::Prefix(a1, Box::new(Ty::Dep(TPath::var(t.this_name))))),
                t.intern("D"),
            );
            t.update(c1, |ci| {
                ci.fields.push(FieldInfo {
                    name: g,
                    is_final: false,
                    ty: d_ty.unmasked(),
                    has_init: true,
                })
            });
            // A2.E extends D (a new subclass making g's type unshared).
            t.update(e2, |ci| {
                ci.extends.push(Ty::Nested(
                    Box::new(Ty::Prefix(a2, Box::new(Ty::Dep(TPath::var(t.this_name))))),
                    t.intern("D"),
                ))
            });
            // A2.B adds a new field f.
            let f = t.intern("f");
            t.update(b2, |ci| {
                ci.fields.push(FieldInfo {
                    name: f,
                    is_final: false,
                    ty: Ty::Prim(jns_syntax::PrimTy::Int).unmasked(),
                    has_init: false,
                })
            });
            ids.insert("A1", a1);
            ids.insert("A2", a2);
            ids.insert("A1.B", b1);
            ids.insert("A1.C", c1);
            ids.insert("A1.D", d1);
            ids.insert("A2.B", b2);
            ids.insert("A2.C", c2);
            ids.insert("A2.E", e2);
            (t, ids)
        };
        let g = t.intern("g");
        let f = t.intern("f");
        let pairs = vec![
            (ids["A2.B"], ids["A1.B"], BTreeSet::new()),
            (ids["A2.C"], ids["A1.C"], BTreeSet::from([g])),
            // D itself is shared so that g *would* be shareable if not for E.
            (
                t.member(ids["A2"], t.intern("D")).unwrap(),
                ids["A1.D"],
                BTreeSet::new(),
            ),
        ];
        let (st, errs) = SharingTable::build(&t, pairs);
        assert!(errs.is_empty(), "{errs:?}");
        // New field f must be masked when moving A1.B -> A2.B.
        let m12 = st.dir_masks(&t, ids["A1.B"], ids["A2.B"]).unwrap();
        assert!(m12.contains(&f), "new field masked: {m12:?}");
        // No mask needed in the other direction (f does not exist in A1.B).
        let m21 = st.dir_masks(&t, ids["A2.B"], ids["A1.B"]).unwrap();
        assert!(m21.is_empty(), "{m21:?}");
        // Duplicated g, with the §3.3 directional refinement: going from the
        // base family to the derived family, A1's copy of g (type A1!.D)
        // can be re-viewed as A2!.D, so no mask is needed and the read
        // *forwards* to the base copy; the reverse direction must mask g,
        // because A2!.D includes the unshared subclass E.
        let c12 = st.dir_masks(&t, ids["A1.C"], ids["A2.C"]).unwrap();
        assert!(
            c12.is_empty(),
            "directional inference lifts the mask: {c12:?}"
        );
        assert_eq!(st.forwards(ids["A2.C"], g), &[ids["A1.C"]]);
        let c21 = st.dir_masks(&t, ids["A2.C"], ids["A1.C"]).unwrap();
        assert!(c21.contains(&g), "derived-to-base still masks g");
        // fclass: each C keeps its own copy of g.
        assert_eq!(st.fclass(ids["A1.C"], g), ids["A1.C"]);
        assert_eq!(st.fclass(ids["A2.C"], g), ids["A2.C"]);
        // Unrelated classes are not shared at all.
        assert_eq!(st.dir_masks(&t, ids["A1.B"], ids["A1.C"]), None);
    }

    #[test]
    fn sharing_constraint_in_environment() {
        let (t, ids, st) = figure3();
        let mut env = TypeEnv::new();
        let exp = t.intern("Exp");
        let src = Ty::Nested(Box::new(Ty::Class(ids["AST"]).exact()), exp).unmasked();
        let dst = Ty::Nested(Box::new(Ty::Class(ids["ASTDisplay"]).exact()), exp).unmasked();
        env.add_constraint(ConstraintInfo {
            lhs: src.clone(),
            rhs: dst.clone(),
            directional: true,
        });
        let j = Judge::new(&t, &env);
        assert!(st.shares_types(&j, &src, &dst), "via SH-ENV");
        // Directional: the reverse is not given by this constraint — but the
        // global closed-world rule still derives it in this program.
        let empty = TypeEnv::new();
        let j2 = Judge::new(&t, &empty);
        assert!(st.shares_types(&j2, &src, &dst));
    }

    #[test]
    fn mask_weakening_in_judgment() {
        let (t, ids, st) = figure3();
        let env = TypeEnv::new();
        let j = Judge::new(&t, &env);
        let f = t.intern("phantom");
        let src = Ty::Class(ids["AST.Exp"]).exact().unmasked();
        // Target with extra masks is still reachable (masks only grow).
        let dst = Ty::Class(ids["AD.Exp"]).exact().unmasked().masked(f);
        assert!(st.shares_types(&j, &src, &dst));
        // But a masked source cannot reach an unmasked target of a shared
        // field... (no shared fields here, so this passes trivially; the
        // real cases are exercised in the checker tests).
        let src2 = Ty::Class(ids["AST.Exp"]).exact().unmasked().masked(f);
        let dst2 = Ty::Class(ids["AD.Exp"]).exact().unmasked();
        assert!(st.shares_types(&j, &src2, &dst2), "phantom masks drop");
    }
}
