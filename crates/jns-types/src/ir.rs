//! Typed core IR produced by the checker and consumed by the evaluator.
//!
//! Types embedded in the IR (allocation, view change, cast) are kept in
//! their possibly *dependent* form: the evaluator evaluates them against
//! the run-time stack (type evaluation contexts `TE`, Fig. 16), which is
//! how late binding of type names works at run time.

use crate::names::Name;
use crate::sharing::SharingTable;
use crate::table::ClassTable;
use crate::ty::{ClassId, Ty, Type};
use jns_syntax::{BinOp, UnOp};
use std::collections::HashMap;

/// A checked, lowered expression.
#[derive(Debug, Clone, PartialEq)]
pub enum CExpr {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// String literal.
    Str(String),
    /// The unit value.
    Unit,
    /// Variable reference (includes `this`).
    Var(Name),
    /// Field read; dispatches on the receiver's view (`fclass`).
    GetField(Box<CExpr>, Name),
    /// Field write `x.f = e`; may remove a mask.
    SetField(Name, Name, Box<CExpr>),
    /// Method call; dispatches on the receiver's *view*, not its class.
    Call(Box<CExpr>, Name, Vec<CExpr>),
    /// Allocation `new T { f = e, ... }`. The type may be dependent.
    New(Ty, Vec<(Name, CExpr)>),
    /// View change `(view T)e`.
    View(Type, Box<CExpr>),
    /// Checked cast `(cast T)e`.
    Cast(Type, Box<CExpr>),
    /// Binary operation.
    Bin(BinOp, Box<CExpr>, Box<CExpr>),
    /// Unary operation.
    Un(UnOp, Box<CExpr>),
    /// Conditional.
    If(Box<CExpr>, Box<CExpr>, Box<CExpr>),
    /// Loop (value is unit).
    While(Box<CExpr>, Box<CExpr>),
    /// `final x = e1; e2`.
    Let(Name, Box<CExpr>, Box<CExpr>),
    /// Statement sequence; value of the last expression.
    Seq(Vec<CExpr>),
    /// `print e`.
    Print(Box<CExpr>),
}

impl CExpr {
    /// Whether this node owns no child expressions (teardown fast path).
    fn is_leaf(&self) -> bool {
        matches!(
            self,
            CExpr::Int(_) | CExpr::Bool(_) | CExpr::Str(_) | CExpr::Unit | CExpr::Var(_)
        )
    }

    /// Moves every non-leaf direct child expression out of `e` into
    /// `out`. Leaf children stay in place (they drop trivially with the
    /// hollowed parent), so a harvested node's own `Drop` re-entry finds
    /// nothing to push and `out` never allocates for it.
    fn take_children(e: &mut CExpr, out: &mut Vec<CExpr>) {
        fn take(b: &mut CExpr, out: &mut Vec<CExpr>) {
            if !b.is_leaf() {
                out.push(std::mem::replace(b, CExpr::Unit));
            }
        }
        match e {
            CExpr::Int(_) | CExpr::Bool(_) | CExpr::Str(_) | CExpr::Unit | CExpr::Var(_) => {}
            CExpr::GetField(r, _) => take(r, out),
            CExpr::SetField(_, _, v) => take(v, out),
            CExpr::View(_, i) | CExpr::Cast(_, i) | CExpr::Un(_, i) | CExpr::Print(i) => {
                take(i, out)
            }
            CExpr::Bin(_, l, r) | CExpr::While(l, r) | CExpr::Let(_, l, r) => {
                take(l, out);
                take(r, out);
            }
            CExpr::If(c, t, f) => {
                take(c, out);
                take(t, out);
                take(f, out);
            }
            CExpr::Call(r, _, args) => {
                take(r, out);
                out.extend(args.drain(..).filter(|a| !a.is_leaf()));
            }
            CExpr::New(_, inits) => out.extend(
                std::mem::take(inits)
                    .into_iter()
                    .map(|(_, i)| i)
                    .filter(|i| !i.is_leaf()),
            ),
            CExpr::Seq(parts) => out.extend(parts.drain(..).filter(|p| !p.is_leaf())),
        }
    }
}

/// Iterative teardown: expression trees built from long operator chains
/// or `let` chains nest thousands of levels deep, and the derived
/// (recursive) drop would overflow the host stack on them — the same bug
/// class the explicit-stack evaluator fixes for execution. Children are
/// moved onto a heap worklist before each node is freed, so teardown
/// uses constant native stack.
impl Drop for CExpr {
    fn drop(&mut self) {
        if self.is_leaf() {
            return;
        }
        let mut work: Vec<CExpr> = Vec::new();
        CExpr::take_children(self, &mut work);
        while let Some(mut e) = work.pop() {
            CExpr::take_children(&mut e, &mut work);
        }
    }
}

/// A checked method body.
#[derive(Debug, Clone)]
pub struct CMethod {
    /// Parameter names in order.
    pub params: Vec<Name>,
    /// The body expression.
    pub body: CExpr,
}

/// A fully checked program, ready to run.
///
/// `Clone` deep-copies the class table (a lazily growing, `RefCell`-based
/// memo structure), so clones can be moved to other threads and queried
/// independently — every clone answers every query identically because
/// materialisation is deterministic.
#[derive(Debug, Clone)]
pub struct CheckedProgram {
    /// The class table (with all classes touched during checking).
    pub table: ClassTable,
    /// The sharing structure.
    pub sharing: SharingTable,
    /// Explicit method bodies, keyed by declaring class and name.
    pub methods: HashMap<(ClassId, Name), CMethod>,
    /// Field initialisers, keyed by declaring class and field.
    pub field_inits: HashMap<(ClassId, Name), CExpr>,
    /// The main expression, if the program has one.
    pub main: Option<CExpr>,
}

impl CheckedProgram {
    /// Finds the body for method `m` dispatched on view class `view`
    /// (`mbody(S, m)`): the most derived explicit declaration.
    pub fn mbody(&self, view: ClassId, m: Name) -> Option<(ClassId, &CMethod)> {
        // Walk the supers in BFS order (most derived first), returning the
        // first class that actually declares a body.
        let mut queue = std::collections::VecDeque::from([view]);
        let mut seen = std::collections::HashSet::from([view]);
        while let Some(q) = queue.pop_front() {
            if let Some(body) = self.methods.get(&(q, m)) {
                return Some((q, body));
            }
            for s in self.table.direct_supers(q) {
                if seen.insert(s) {
                    queue.push_back(s);
                }
            }
        }
        None
    }
}
