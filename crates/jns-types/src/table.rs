//! The class table `CT` / `CT'` and the hierarchy judgments of Fig. 9.
//!
//! Explicit classes come from the program; *implicit* classes (CT0-IMP) —
//! classes inherited into a family by nested inheritance without being
//! overridden — are materialised lazily and memoised, because eager
//! materialisation would not terminate for recursive family nestings.

use crate::names::{Interner, Name};
use crate::ty::{ClassId, TPath, Ty, Type};
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap, HashSet};

/// A field declaration, resolved.
#[derive(Debug, Clone)]
pub struct FieldInfo {
    /// Field name.
    pub name: Name,
    /// Whether the field is `final`.
    pub is_final: bool,
    /// Declared type (may depend on `this`).
    pub ty: Type,
    /// Whether the declaration has an initialiser.
    pub has_init: bool,
}

/// A sharing constraint `lhs = rhs` or `lhs -> rhs` on a method.
#[derive(Debug, Clone)]
pub struct ConstraintInfo {
    /// Left type.
    pub lhs: Type,
    /// Right type.
    pub rhs: Type,
    /// `true` if only `lhs -> rhs` was declared.
    pub directional: bool,
}

/// A method signature, resolved.
#[derive(Debug, Clone)]
pub struct MethodSig {
    /// Method name.
    pub name: Name,
    /// Parameters in order (always final).
    pub params: Vec<(Name, Type)>,
    /// Return type.
    pub ret: Type,
    /// Sharing constraints.
    pub constraints: Vec<ConstraintInfo>,
    /// Whether the declaration is abstract (no body).
    pub is_abstract: bool,
}

/// One class in the table.
#[derive(Debug, Clone)]
pub struct ClassInfo {
    /// This class's id.
    pub id: ClassId,
    /// Enclosing class (`None` only for `◦`).
    pub parent: Option<ClassId>,
    /// Simple name.
    pub name: Name,
    /// Full path of simple names from `◦`.
    pub path: Vec<Name>,
    /// `true` if declared in the source, `false` if implicit (CT0-IMP).
    pub explicit: bool,
    /// Declared supertypes (resolved; may mention `this`).
    pub extends: Vec<Ty>,
    /// `shares` clause: target type and declared masks. `None` = shares self.
    pub shares: Option<(Ty, BTreeSet<Name>)>,
    /// Own fields.
    pub fields: Vec<FieldInfo>,
    /// Own method signatures.
    pub methods: Vec<MethodSig>,
    /// Explicitly declared nested classes.
    pub nested_explicit: HashMap<Name, ClassId>,
}

/// The class table: interner + all classes (explicit and, growing lazily,
/// implicit) + memoised hierarchy queries.
#[derive(Debug)]
pub struct ClassTable {
    /// The name interner (shared by every phase).
    pub interner: RefCell<Interner>,
    classes: RefCell<Vec<ClassInfo>>,
    member_cache: RefCell<HashMap<(ClassId, Name), Option<ClassId>>>,
    direct_cache: RefCell<HashMap<ClassId, Vec<ClassId>>>,
    supers_cache: RefCell<HashMap<ClassId, Vec<ClassId>>>,
    in_progress: RefCell<HashSet<ClassId>>,
    /// `this` as an interned name (filled by `new`).
    pub this_name: Name,
}

impl Default for ClassTable {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for ClassTable {
    /// Deep copy, including every memoised hierarchy query and every
    /// implicit class materialised so far. Class ids are table-local, so
    /// a clone answers every query identically to the original — this is
    /// what lets each `jns-serve` worker carry its own lazily growing
    /// table while sharing one immutable bytecode program.
    fn clone(&self) -> Self {
        ClassTable {
            interner: RefCell::new(self.interner.borrow().clone()),
            classes: RefCell::new(self.classes.borrow().clone()),
            member_cache: RefCell::new(self.member_cache.borrow().clone()),
            direct_cache: RefCell::new(self.direct_cache.borrow().clone()),
            supers_cache: RefCell::new(self.supers_cache.borrow().clone()),
            in_progress: RefCell::new(self.in_progress.borrow().clone()),
            this_name: self.this_name,
        }
    }
}

/// Maximum nesting depth for lazily materialised classes; prevents runaway
/// materialisation for recursive families like `class A { class B extends A }`.
const MAX_DEPTH: usize = 24;

impl ClassTable {
    /// Creates a table containing only the root class `◦`.
    pub fn new() -> Self {
        let mut interner = Interner::new();
        let this_name = interner.intern("this");
        let root_name = interner.intern("<root>");
        let root = ClassInfo {
            id: ClassId::ROOT,
            parent: None,
            name: root_name,
            path: Vec::new(),
            explicit: true,
            extends: Vec::new(),
            shares: None,
            fields: Vec::new(),
            methods: Vec::new(),
            nested_explicit: HashMap::new(),
        };
        ClassTable {
            interner: RefCell::new(interner),
            classes: RefCell::new(vec![root]),
            member_cache: RefCell::new(HashMap::new()),
            direct_cache: RefCell::new(HashMap::new()),
            supers_cache: RefCell::new(HashMap::new()),
            in_progress: RefCell::new(HashSet::new()),
            this_name,
        }
    }

    /// Interns a string.
    pub fn intern(&self, s: &str) -> Name {
        self.interner.borrow_mut().intern(s)
    }

    /// Resolves a name to its text.
    pub fn name_str(&self, n: Name) -> String {
        self.interner.borrow().resolve(n).to_string()
    }

    /// Registers a new explicit class and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `parent` already has an explicit member named `name`
    /// (callers must check for duplicates first).
    pub fn add_explicit(&self, parent: ClassId, name: Name) -> ClassId {
        let mut classes = self.classes.borrow_mut();
        let id = ClassId(classes.len() as u32);
        let mut path = classes[parent.0 as usize].path.clone();
        path.push(name);
        assert!(
            !classes[parent.0 as usize]
                .nested_explicit
                .contains_key(&name),
            "duplicate class registration"
        );
        classes[parent.0 as usize].nested_explicit.insert(name, id);
        classes.push(ClassInfo {
            id,
            parent: Some(parent),
            name,
            path,
            explicit: true,
            extends: Vec::new(),
            shares: None,
            fields: Vec::new(),
            methods: Vec::new(),
            nested_explicit: HashMap::new(),
        });
        id
    }

    /// Read access to a class.
    pub fn class(&self, id: ClassId) -> ClassInfo {
        self.classes.borrow()[id.0 as usize].clone()
    }

    /// The simple name of `id`.
    pub fn simple_name(&self, id: ClassId) -> Name {
        self.classes.borrow()[id.0 as usize].name
    }

    /// The enclosing class of `id`.
    pub fn parent(&self, id: ClassId) -> Option<ClassId> {
        self.classes.borrow()[id.0 as usize].parent
    }

    /// Whether `id` was declared in the source (vs implicit).
    pub fn is_explicit(&self, id: ClassId) -> bool {
        self.classes.borrow()[id.0 as usize].explicit
    }

    /// The dotted source name of a class, e.g. `ASTDisplay.Binary`.
    pub fn class_name(&self, id: ClassId) -> String {
        let path = self.classes.borrow()[id.0 as usize].path.clone();
        if path.is_empty() {
            return "<root>".to_string();
        }
        let interner = self.interner.borrow();
        path.iter()
            .map(|n| interner.resolve(*n).to_string())
            .collect::<Vec<_>>()
            .join(".")
    }

    /// Number of classes currently in the table (grows as implicit classes
    /// materialise).
    pub fn len(&self) -> usize {
        self.classes.borrow().len()
    }

    /// Whether the table holds only `◦`.
    pub fn is_empty(&self) -> bool {
        self.len() <= 1
    }

    /// All class ids currently materialised.
    pub fn all_ids(&self) -> Vec<ClassId> {
        (0..self.len() as u32).map(ClassId).collect()
    }

    /// Mutates a class in place (used by the resolver to fill in bodies).
    pub fn update<R>(&self, id: ClassId, f: impl FnOnce(&mut ClassInfo) -> R) -> R {
        let mut classes = self.classes.borrow_mut();
        let r = f(&mut classes[id.0 as usize]);
        drop(classes);
        // Declarations changed; hierarchy caches may be stale. Positive
        // member entries must be KEPT: they are the registry of already
        // materialised implicit classes — clearing them would re-create
        // the same implicit class under a fresh id and orphan every
        // reference to the old one. Only negative ("no such member")
        // entries can be invalidated by a declaration change.
        self.direct_cache.borrow_mut().clear();
        self.supers_cache.borrow_mut().clear();
        self.member_cache.borrow_mut().retain(|_, v| v.is_some());
        r
    }

    // ------------------------------------------------------------ hierarchy

    /// `CT'(P.C)`: the member class `C` of `P`, materialising an implicit
    /// class (CT0-IMP) if `C` is inherited but not overridden.
    pub fn member(&self, p: ClassId, c: Name) -> Option<ClassId> {
        if let Some(&id) = self.classes.borrow()[p.0 as usize].nested_explicit.get(&c) {
            return Some(id);
        }
        if let Some(&cached) = self.member_cache.borrow().get(&(p, c)) {
            return cached;
        }
        if self.classes.borrow()[p.0 as usize].path.len() >= MAX_DEPTH {
            self.member_cache.borrow_mut().insert((p, c), None);
            return None;
        }
        // Mark as "being computed" to cut recursion on cyclic hierarchies.
        self.member_cache.borrow_mut().insert((p, c), None);
        let parents = self.direct_supers(p);
        let mut origins = Vec::new();
        for q in &parents {
            if let Some(qc) = self.member(*q, c) {
                origins.push(qc);
            }
        }
        if origins.is_empty() {
            return None;
        }
        // CT0-IMP: implicit class, supertype = intersection of the supers of
        // everything it further binds, shares = itself.
        let mut extends = Vec::new();
        for o in &origins {
            for t in &self.classes.borrow()[o.0 as usize].extends {
                if !extends.contains(t) {
                    extends.push(t.clone());
                }
            }
        }
        let id = {
            let mut classes = self.classes.borrow_mut();
            let id = ClassId(classes.len() as u32);
            let mut path = classes[p.0 as usize].path.clone();
            path.push(c);
            classes.push(ClassInfo {
                id,
                parent: Some(p),
                name: c,
                path,
                explicit: false,
                extends,
                shares: None,
                fields: Vec::new(),
                methods: Vec::new(),
                nested_explicit: HashMap::new(),
            });
            id
        };
        self.member_cache.borrow_mut().insert((p, c), Some(id));
        Some(id)
    }

    /// Looks up a class by absolute dotted path, materialising implicit
    /// classes along the way.
    pub fn lookup_path(&self, path: &[Name]) -> Option<ClassId> {
        let mut cur = ClassId::ROOT;
        for seg in path {
            cur = self.member(cur, *seg)?;
        }
        Some(cur)
    }

    /// Direct super*classes* of `p` under `@` (one step of subclassing
    /// `@sc` via the `extends` clause, plus one step of further binding
    /// `@fb`).
    pub fn direct_supers(&self, p: ClassId) -> Vec<ClassId> {
        if let Some(cached) = self.direct_cache.borrow().get(&p) {
            return cached.clone();
        }
        if self.in_progress.borrow().contains(&p) {
            return Vec::new(); // cycle; reported by the acyclicity check
        }
        self.in_progress.borrow_mut().insert(p);
        let info = self.class(p);
        let mut out: Vec<ClassId> = Vec::new();
        // @sc from `extends`.
        for t in &info.extends {
            for m in self.extends_members(p, t) {
                if m != p && !out.contains(&m) {
                    out.push(m);
                }
            }
        }
        // @fb: P.C further binds Q.C for every direct super Q of P.
        let mut fb_parents: Vec<ClassId> = Vec::new();
        if let Some(parent) = info.parent {
            if parent != p {
                for q in self.direct_supers(parent) {
                    if let Some(qc) = self.member(q, info.name) {
                        if qc != p && !out.contains(&qc) {
                            out.push(qc);
                            fb_parents.push(qc);
                        }
                    }
                }
            }
        }
        // SC with inherited declarations: for every ancestor declaration
        // P.C that this class further binds, the ancestor's `extends`
        // clause is *reinterpreted* in this class's family (late binding):
        // `class Fork extends Node` in the base family makes the derived
        // family's Fork extend the derived family's Node, even when the
        // derived Fork declares no extends clause of its own.
        let mut i = 0;
        while i < fb_parents.len() {
            let q = fb_parents[i];
            i += 1;
            let qinfo = self.class(q);
            for t in &qinfo.extends {
                for m in self.extends_members(p, t) {
                    if m != p && !out.contains(&m) {
                        out.push(m);
                    }
                }
            }
            // Continue up q's own further-binding chain.
            for s in self.direct_supers(q) {
                if self.simple_name(s) == info.name && !fb_parents.contains(&s) {
                    fb_parents.push(s);
                }
            }
        }
        self.in_progress.borrow_mut().remove(&p);
        self.direct_cache.borrow_mut().insert(p, out.clone());
        out
    }

    /// Interprets a declared `extends` type of class `p` as a set of member
    /// classes. `this` refers to instances of `p`, so the family-level
    /// prefix `F[this.class].C` resolves to `member(parent(p), C)` — the
    /// essence of late binding of type names (§2.1).
    fn extends_members(&self, p: ClassId, t: &Ty) -> Vec<ClassId> {
        match t {
            Ty::Class(q) => vec![*q],
            Ty::Meet(ts) => {
                let mut out = Vec::new();
                for ti in ts {
                    for m in self.extends_members(p, ti) {
                        if !out.contains(&m) {
                            out.push(m);
                        }
                    }
                }
                out
            }
            Ty::Nested(inner, c) => {
                let mut bases = Vec::new();
                match &**inner {
                    // F[this.class].C — late-bound sibling reference.
                    Ty::Prefix(_, idx) if matches!(&**idx, Ty::Dep(pth) if pth.base == self.this_name && pth.fields.is_empty()) => {
                        if let Some(parent) = self.parent(p) {
                            bases.push(parent);
                        }
                    }
                    // this.class.C — member of the current class itself.
                    Ty::Dep(pth) if pth.base == self.this_name && pth.fields.is_empty() => {
                        bases.push(p);
                    }
                    other => {
                        for m in self.extends_members(p, other) {
                            bases.push(m);
                        }
                    }
                }
                let mut out = Vec::new();
                for b in bases {
                    if let Some(m) = self.member(b, *c) {
                        out.push(m);
                    }
                }
                out
            }
            Ty::Exact(inner) => self.extends_members(p, inner),
            Ty::Prefix(_, _) | Ty::Dep(_) | Ty::Prim(_) => Vec::new(),
        }
    }

    /// All `extends` declarations that apply to `p`: its own clause plus
    /// the clauses of every same-name class it further binds (those are
    /// reinterpreted in `p`'s family by late binding — the SC rule's
    /// `⊢ P1 @* P` premise).
    pub fn all_extends(&self, p: ClassId) -> Vec<Ty> {
        let info = self.class(p);
        let mut out = info.extends.clone();
        let mut chain: Vec<ClassId> = Vec::new();
        if let Some(parent) = info.parent {
            if parent != p {
                for q in self.direct_supers(parent) {
                    if let Some(qc) = self.member(q, info.name) {
                        if qc != p && !chain.contains(&qc) {
                            chain.push(qc);
                        }
                    }
                }
            }
        }
        let mut i = 0;
        while i < chain.len() {
            let q = chain[i];
            i += 1;
            for t in &self.class(q).extends {
                if !out.contains(t) {
                    out.push(t.clone());
                }
            }
            for s in self.direct_supers(q) {
                if self.simple_name(s) == info.name && !chain.contains(&s) && s != p {
                    chain.push(s);
                }
            }
        }
        out
    }

    /// `supers(P)`: the reflexive-transitive closure of `@` starting at `p`
    /// (Fig. 9's `supers`, restricted to a single class).
    pub fn supers(&self, p: ClassId) -> Vec<ClassId> {
        if let Some(cached) = self.supers_cache.borrow().get(&p) {
            return cached.clone();
        }
        let mut seen = vec![p];
        let mut queue = vec![p];
        while let Some(q) = queue.pop() {
            for s in self.direct_supers(q) {
                if !seen.contains(&s) {
                    seen.push(s);
                    queue.push(s);
                }
            }
        }
        self.supers_cache.borrow_mut().insert(p, seen.clone());
        seen
    }

    /// `⊢ P1 @* P2` — `p2` is a (reflexive, transitive) superclass of `p1`.
    pub fn is_subclass(&self, p1: ClassId, p2: ClassId) -> bool {
        self.supers(p1).contains(&p2)
    }

    /// `mem(PS)` (Fig. 9): the set of classes comprising a pure
    /// non-dependent type.
    pub fn mem(&self, t: &Ty) -> Vec<ClassId> {
        match t {
            Ty::Prim(_) => Vec::new(),
            Ty::Class(p) => vec![*p],
            Ty::Dep(_) => Vec::new(),
            Ty::Nested(inner, c) => {
                let mut out = Vec::new();
                for p in self.mem(inner) {
                    if let Some(m) = self.member(p, *c) {
                        if !out.contains(&m) {
                            out.push(m);
                        }
                    }
                }
                out
            }
            Ty::Prefix(p, idx) => self.prefix_classes(*p, idx),
            Ty::Meet(ts) => {
                let mut out = Vec::new();
                for ti in ts {
                    for m in self.mem(ti) {
                        if !out.contains(&m) {
                            out.push(m);
                        }
                    }
                }
                out
            }
            Ty::Exact(inner) => self.mem(inner),
        }
    }

    /// `prefix(P, PS)`: all classes `P'` related to `P` (under `~`) such
    /// that both `P` and `P'` enclose superclasses of `PS` (§4.5).
    pub fn prefix_classes(&self, p: ClassId, index: &Ty) -> Vec<ClassId> {
        let mut sup_classes: Vec<ClassId> = Vec::new();
        for m in self.mem(index) {
            for s in self.supers(m) {
                if !sup_classes.contains(&s) {
                    sup_classes.push(s);
                }
            }
        }
        // Does P itself enclose a superclass of the index?
        let p_ok = sup_classes.iter().any(|s| self.parent(*s) == Some(p));
        if !p_ok {
            return Vec::new();
        }
        let mut out = Vec::new();
        for s in &sup_classes {
            if let Some(encl) = self.parent(*s) {
                if !out.contains(&encl) && self.related(p, encl) {
                    out.push(encl);
                }
            }
        }
        out.sort();
        out
    }

    /// The `~` relation (Fig. 9): classes connected by further binding from
    /// a common origin. Implemented as undirected reachability over `@`
    /// edges between classes that share nested-class structure.
    pub fn related(&self, p1: ClassId, p2: ClassId) -> bool {
        if p1 == p2 {
            return true;
        }
        // Undirected BFS over direct `@` edges.
        let mut seen = vec![p1];
        let mut queue = vec![p1];
        while let Some(q) = queue.pop() {
            let mut nbrs = self.direct_supers(q);
            // reverse edges: all currently materialised classes that have q
            // as a direct super
            for id in self.all_ids() {
                if self.direct_supers(id).contains(&q) {
                    nbrs.push(id);
                }
            }
            for nb in nbrs {
                if nb == p2 {
                    return true;
                }
                if !seen.contains(&nb) {
                    seen.push(nb);
                    queue.push(nb);
                }
            }
        }
        false
    }

    // ----------------------------------------------------------- members

    /// `fields(S)` for a class: all field declarations of `p` and its
    /// superclasses (most derived first).
    pub fn fields_of(&self, p: ClassId) -> Vec<(ClassId, FieldInfo)> {
        let mut out = Vec::new();
        for s in self.supers(p) {
            for f in &self.classes.borrow()[s.0 as usize].fields {
                out.push((s, f.clone()));
            }
        }
        out
    }

    /// Looks up field `f` starting from class `p` (walking supers).
    /// Returns the declaring class and the declaration.
    pub fn field(&self, p: ClassId, f: Name) -> Option<(ClassId, FieldInfo)> {
        self.fields_of(p).into_iter().find(|(_, fi)| fi.name == f)
    }

    /// All field names of class `p` including inherited ones.
    pub fn field_names(&self, p: ClassId) -> BTreeSet<Name> {
        self.fields_of(p).into_iter().map(|(_, f)| f.name).collect()
    }

    /// Looks up method `m` on class `p`: returns the *most derived*
    /// declaring class (breadth-first over supers) and the signature.
    pub fn method(&self, p: ClassId, m: Name) -> Option<(ClassId, MethodSig)> {
        // BFS so that overriding declarations win over overridden ones.
        let mut queue = std::collections::VecDeque::from([p]);
        let mut seen = HashSet::from([p]);
        while let Some(q) = queue.pop_front() {
            let info = self.classes.borrow()[q.0 as usize].clone();
            if let Some(sig) = info.methods.iter().find(|sig| sig.name == m) {
                return Some((q, sig.clone()));
            }
            for s in self.direct_supers(q) {
                if seen.insert(s) {
                    queue.push_back(s);
                }
            }
        }
        None
    }

    /// All method names understood by class `p`.
    pub fn method_names(&self, p: ClassId) -> BTreeSet<Name> {
        let mut out = BTreeSet::new();
        for s in self.supers(p) {
            for m in &self.classes.borrow()[s.0 as usize].methods {
                out.insert(m.name);
            }
        }
        out
    }

    /// Checks the class hierarchy for `extends` cycles; returns the ids of
    /// classes on a cycle (empty = acyclic).
    pub fn find_cycles(&self) -> Vec<ClassId> {
        let mut bad = Vec::new();
        for id in self.all_ids() {
            // `direct_supers` cuts cycles via `in_progress`; detect by
            // checking whether id is its own strict super.
            let sup = self.supers(id);
            for s in sup {
                if s != id && self.supers(s).contains(&id) && !bad.contains(&id) {
                    bad.push(id);
                }
            }
        }
        bad
    }

    /// Renders a pure type for diagnostics.
    pub fn show_ty(&self, t: &Ty) -> String {
        match t {
            Ty::Prim(p) => p.to_string(),
            Ty::Class(c) => self.class_name(*c),
            Ty::Dep(p) => {
                let interner = self.interner.borrow();
                let mut s = interner.resolve(p.base).to_string();
                for f in &p.fields {
                    s.push('.');
                    s.push_str(interner.resolve(*f));
                }
                s.push_str(".class");
                s
            }
            Ty::Prefix(p, idx) => format!("{}[{}]", self.class_name(*p), self.show_ty(idx)),
            Ty::Nested(inner, c) => {
                format!("{}.{}", self.show_ty(inner), self.name_str(*c))
            }
            Ty::Exact(inner) => format!("{}!", self.show_ty(inner)),
            Ty::Meet(ts) => ts
                .iter()
                .map(|t| self.show_ty(t))
                .collect::<Vec<_>>()
                .join(" & "),
        }
    }

    /// Renders a possibly masked type for diagnostics.
    pub fn show_type(&self, t: &Type) -> String {
        let mut s = self.show_ty(&t.ty);
        for m in &t.masks {
            s.push('\\');
            s.push_str(&self.name_str(*m));
        }
        s
    }

    /// Builds the `Ty` for a dependent path.
    pub fn dep(&self, base: Name, fields: Vec<Name>) -> Ty {
        Ty::Dep(TPath { base, fields })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::fixtures::figure12;

    #[test]
    fn explicit_member_lookup() {
        let (t, ids) = figure12();
        assert_eq!(t.member(ids["AST"], t.intern("Exp")), Some(ids["AST.Exp"]));
        assert_eq!(t.member(ids["AST"], t.intern("Nope")), None);
    }

    #[test]
    fn implicit_class_materialises() {
        let (t, ids) = figure12();
        // ASTDisplay inherits Value from AST without overriding it.
        let ad_value = t.member(ids["ASTDisplay"], t.intern("Value")).unwrap();
        assert!(!t.is_explicit(ad_value));
        assert_eq!(t.parent(ad_value), Some(ids["ASTDisplay"]));
        // It further binds AST.Value and hence subclasses it.
        assert!(t.is_subclass(ad_value, ids["AST.Value"]));
        // Late binding: implicit ASTDisplay.Value extends ASTDisplay.Exp.
        assert!(t.is_subclass(ad_value, ids["AD.Exp"]));
    }

    #[test]
    fn further_binding_edges() {
        let (t, ids) = figure12();
        let sup = t.supers(ids["AD.Binary"]);
        assert!(sup.contains(&ids["AST.Binary"]), "fb edge");
        assert!(sup.contains(&ids["AD.Exp"]), "sc edge");
        assert!(sup.contains(&ids["AST.Exp"]), "transitive");
        assert!(sup.contains(&ids["TD.Composite"]), "composite fb");
        assert!(sup.contains(&ids["TD.Node"]), "node");
    }

    #[test]
    fn implicit_node_in_astdisplay() {
        let (t, ids) = figure12();
        let ad_node = t.member(ids["ASTDisplay"], t.intern("Node")).unwrap();
        assert!(!t.is_explicit(ad_node));
        assert!(t.is_subclass(ad_node, ids["TD.Node"]));
        // ASTDisplay.Exp extends ASTDisplay.Node (the implicit one).
        assert!(t.is_subclass(ids["AD.Exp"], ad_node));
    }

    #[test]
    fn mem_of_nested_meet() {
        let (t, ids) = figure12();
        // (AST & TreeDisplay).Node = TreeDisplay.Node only (AST has no Node).
        let meet = Ty::Meet(vec![Ty::Class(ids["AST"]), Ty::Class(ids["TreeDisplay"])]);
        let nested = Ty::Nested(Box::new(meet), t.intern("Node"));
        assert_eq!(t.mem(&nested), vec![ids["TD.Node"]]);
    }

    #[test]
    fn related_families() {
        let (t, ids) = figure12();
        assert!(t.related(ids["AST"], ids["ASTDisplay"]));
        assert!(t.related(ids["AST"], ids["TreeDisplay"]));
        let lone = t.add_explicit(ClassId::ROOT, t.intern("Lonely"));
        assert!(!t.related(ids["AST"], lone));
    }

    #[test]
    fn prefix_of_binary_at_ast_level() {
        let (t, ids) = figure12();
        let idx = Ty::Class(ids["AD.Binary"]);
        let pre = t.prefix_classes(ids["AST"], &idx);
        assert!(pre.contains(&ids["AST"]));
        assert!(pre.contains(&ids["ASTDisplay"]));
        // TreeDisplay also encloses a super (Composite/Node) of AD.Binary.
        assert!(pre.contains(&ids["TreeDisplay"]));
        // prefix at AST level of a pure-AST class stays in AST.
        let idx2 = Ty::Class(ids["AST.Binary"]);
        let pre2 = t.prefix_classes(ids["AST"], &idx2);
        assert_eq!(pre2, vec![ids["AST"]]);
    }

    #[test]
    fn cycle_detection() {
        let t = ClassTable::new();
        let a = t.add_explicit(ClassId::ROOT, t.intern("A"));
        let b = t.add_explicit(ClassId::ROOT, t.intern("B"));
        t.update(a, |ci| ci.extends.push(Ty::Class(b)));
        t.update(b, |ci| ci.extends.push(Ty::Class(a)));
        assert!(!t.find_cycles().is_empty());
    }

    #[test]
    fn recursive_family_nesting_terminates() {
        // class A { class B extends A { } } — implicit A.B.B, A.B.B.B, ...
        // must be cut off by MAX_DEPTH rather than diverging.
        let t = ClassTable::new();
        let a = t.add_explicit(ClassId::ROOT, t.intern("A"));
        let b = t.add_explicit(a, t.intern("B"));
        t.update(b, |ci| ci.extends.push(Ty::Class(a)));
        // Deep member chains terminate.
        let mut cur = b;
        for _ in 0..40 {
            match t.member(cur, t.intern("B")) {
                Some(nxt) => cur = nxt,
                None => break,
            }
        }
        assert!(t.len() < 100);
    }

    #[test]
    fn fields_collect_over_supers() {
        let (t, ids) = figure12();
        let f_l = t.intern("l");
        t.update(ids["AST.Binary"], |ci| {
            ci.fields.push(FieldInfo {
                name: f_l,
                is_final: false,
                ty: Ty::Class(ids["AST.Exp"]).unmasked(),
                has_init: false,
            })
        });
        // AD.Binary inherits field l through further binding.
        let (owner, fi) = t.field(ids["AD.Binary"], f_l).unwrap();
        assert_eq!(owner, ids["AST.Binary"]);
        assert_eq!(fi.name, f_l);
    }

    #[test]
    fn method_lookup_prefers_most_derived() {
        let (t, ids) = figure12();
        let m = t.intern("display");
        let sig = |_ret: ClassId| MethodSig {
            name: m,
            params: vec![],
            ret: crate::ty::void(),
            constraints: vec![],
            is_abstract: false,
        };
        t.update(ids["TD.Node"], |ci| ci.methods.push(sig(ids["TD.Node"])));
        t.update(ids["AD.Binary"], |ci| {
            ci.methods.push(sig(ids["AD.Binary"]))
        });
        let (owner, _) = t.method(ids["AD.Binary"], m).unwrap();
        assert_eq!(owner, ids["AD.Binary"]);
        let (owner2, _) = t.method(ids["AD.Exp"], m).unwrap();
        assert_eq!(owner2, ids["TD.Node"]);
    }
}
