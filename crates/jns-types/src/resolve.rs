//! Resolution of the surface AST into the class table: class skeletons,
//! `extends` / `shares` / `adapts` clauses, field and method signatures,
//! and surface types into internal [`Ty`] / [`Type`].
//!
//! Unqualified type names get the paper's late-binding sugar (§2.1): a name
//! `C` found in the current class desugars to `this.class.C`; a name found
//! in the enclosing class `E` desugars to `E[this.class].C`; otherwise it
//! must be a top-level (absolute) name.

use crate::names::Name;
use crate::table::{ClassTable, ConstraintInfo, FieldInfo, MethodSig};
use crate::ty::{ClassId, TPath, Ty, Type};
use jns_syntax as syn;
use jns_syntax::Span;
use std::collections::BTreeSet;

/// A resolution/type error with a source span.
#[derive(Debug, Clone)]
pub struct TypeError {
    /// Human-readable description.
    pub message: String,
    /// Source location.
    pub span: Span,
}

impl std::fmt::Display for TypeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "type error: {}", self.message)
    }
}

impl std::error::Error for TypeError {}

/// Output of resolution: the table plus unresolved-body references for the
/// checker, and the declared sharing pairs.
#[derive(Debug)]
pub struct Resolved<'a> {
    /// The populated class table.
    pub table: ClassTable,
    /// `(class, surface decl)` for every explicit class, for body checking.
    pub bodies: Vec<(ClassId, &'a syn::ClassDecl)>,
    /// Declared sharing pairs `(derived, base, masks)` including `adapts`
    /// expansion.
    pub sharing_pairs: Vec<(ClassId, ClassId, BTreeSet<Name>)>,
    /// The main block, if any.
    pub main: Option<&'a syn::Block>,
}

/// Resolves a parsed program into a class table.
///
/// # Errors
///
/// Returns all resolution errors found (duplicate classes, unknown names,
/// malformed clauses).
pub fn resolve(program: &syn::Program) -> Result<Resolved<'_>, Vec<TypeError>> {
    let table = ClassTable::new();
    let mut errors = Vec::new();
    let mut bodies = Vec::new();

    // Pass A: skeletons.
    for class in &program.classes {
        add_skeleton(&table, ClassId::ROOT, class, &mut bodies, &mut errors);
    }
    if !errors.is_empty() {
        return Err(errors);
    }

    // Pass B: clauses and signatures, outermost-first (the `bodies` list is
    // already in pre-order).
    let mut sharing_pairs = Vec::new();
    for (id, decl) in &bodies {
        resolve_class(&table, *id, decl, &mut sharing_pairs, &mut errors);
    }
    if !errors.is_empty() {
        return Err(errors);
    }

    // `adapts P`: share every one-level member class of P with ours.
    let adapts: Vec<(ClassId, Vec<syn::QualName>, Span)> = bodies
        .iter()
        .filter(|(_, d)| !d.adapts.is_empty())
        .map(|(id, d)| (*id, d.adapts.clone(), d.span))
        .collect();
    for (id, quals, span) in adapts {
        for q in quals {
            let Some(base) = lookup_absolute(&table, &q) else {
                errors.push(TypeError {
                    message: format!("unknown class `{q}` in adapts clause"),
                    span,
                });
                continue;
            };
            let mut names: BTreeSet<Name> = BTreeSet::new();
            for s in table.supers(base) {
                names.extend(table.class(s).nested_explicit.keys().copied());
            }
            for n in names {
                if let (Some(d), Some(b)) = (table.member(id, n), table.member(base, n)) {
                    if d != b {
                        sharing_pairs.push((d, b, BTreeSet::new()));
                    }
                }
            }
        }
    }

    if errors.is_empty() {
        Ok(Resolved {
            table,
            bodies,
            sharing_pairs,
            main: program.main.as_ref(),
        })
    } else {
        Err(errors)
    }
}

fn add_skeleton<'a>(
    table: &ClassTable,
    parent: ClassId,
    decl: &'a syn::ClassDecl,
    bodies: &mut Vec<(ClassId, &'a syn::ClassDecl)>,
    errors: &mut Vec<TypeError>,
) {
    let name = table.intern(&decl.name.text);
    if table.class(parent).nested_explicit.contains_key(&name) {
        errors.push(TypeError {
            message: format!("duplicate class `{}`", decl.name.text),
            span: decl.name.span,
        });
        return;
    }
    let id = table.add_explicit(parent, name);
    bodies.push((id, decl));
    for m in &decl.members {
        if let syn::Member::Class(c) = m {
            add_skeleton(table, id, c, bodies, errors);
        }
    }
}

fn resolve_class(
    table: &ClassTable,
    id: ClassId,
    decl: &syn::ClassDecl,
    sharing_pairs: &mut Vec<(ClassId, ClassId, BTreeSet<Name>)>,
    errors: &mut Vec<TypeError>,
) {
    // extends
    let mut extends = Vec::new();
    for t in &decl.extends {
        match resolve_type(table, id, t) {
            Ok(ty) => {
                if !ty.masks.is_empty() {
                    errors.push(TypeError {
                        message: "supertypes cannot be masked".into(),
                        span: t.span(),
                    });
                }
                if ty.ty.is_exact() {
                    errors.push(TypeError {
                        message: "supertypes cannot be exact (P ⊢ T super ok)".into(),
                        span: t.span(),
                    });
                }
                extends.push(ty.ty);
            }
            Err(e) => errors.push(e),
        }
    }
    table.update(id, |ci| ci.extends = extends);

    // shares
    if let Some(st) = &decl.shares {
        match resolve_type(table, id, st) {
            Ok(ty) => {
                let members = table.mem(&ty.ty);
                if members.len() == 1 {
                    sharing_pairs.push((id, members[0], ty.masks));
                } else {
                    errors.push(TypeError {
                        message: format!(
                            "shares clause must name a single class, got `{}`",
                            table.show_ty(&ty.ty)
                        ),
                        span: st.span(),
                    });
                }
            }
            Err(e) => errors.push(e),
        }
    }

    // fields and method signatures
    let mut fields = Vec::new();
    let mut methods = Vec::new();
    for m in &decl.members {
        match m {
            syn::Member::Class(_) => {}
            syn::Member::Field(f) => {
                let name = table.intern(&f.name.text);
                if fields.iter().any(|fi: &FieldInfo| fi.name == name) {
                    errors.push(TypeError {
                        message: format!("duplicate field `{}`", f.name.text),
                        span: f.name.span,
                    });
                    continue;
                }
                match resolve_type(table, id, &f.ty) {
                    Ok(ty) => {
                        if ty.ty.is_exact() && !matches!(ty.ty, Ty::Prim(_)) {
                            errors.push(TypeError {
                                message: format!(
                                    "field `{}` has exact type `{}`; field types may not be exact (F-OK)",
                                    f.name.text,
                                    table.show_type(&ty)
                                ),
                                span: f.ty.span(),
                            });
                        }
                        fields.push(FieldInfo {
                            name,
                            is_final: f.is_final,
                            ty,
                            has_init: f.init.is_some(),
                        });
                    }
                    Err(e) => errors.push(e),
                }
            }
            syn::Member::Method(m) => {
                let name = table.intern(&m.name.text);
                if methods.iter().any(|ms: &MethodSig| ms.name == name) {
                    errors.push(TypeError {
                        message: format!("duplicate method `{}`", m.name.text),
                        span: m.name.span,
                    });
                    continue;
                }
                let mut ok = true;
                let mut params = Vec::new();
                for p in &m.params {
                    match resolve_type(table, id, &p.ty) {
                        Ok(ty) => params.push((table.intern(&p.name.text), ty)),
                        Err(e) => {
                            errors.push(e);
                            ok = false;
                        }
                    }
                }
                let ret = match resolve_type(table, id, &m.ret) {
                    Ok(ty) => ty,
                    Err(e) => {
                        errors.push(e);
                        ok = false;
                        crate::ty::void()
                    }
                };
                let mut constraints = Vec::new();
                for c in &m.constraints {
                    let lhs = resolve_type(table, id, &c.lhs);
                    let rhs = resolve_type(table, id, &c.rhs);
                    match (lhs, rhs) {
                        (Ok(l), Ok(r)) => constraints.push(ConstraintInfo {
                            lhs: l,
                            rhs: r,
                            directional: c.directional,
                        }),
                        (l, r) => {
                            if let Err(e) = l {
                                errors.push(e);
                            }
                            if let Err(e) = r {
                                errors.push(e);
                            }
                            ok = false;
                        }
                    }
                }
                if ok {
                    methods.push(MethodSig {
                        name,
                        params,
                        ret,
                        constraints,
                        is_abstract: m.body.is_none(),
                    });
                }
            }
        }
    }
    table.update(id, |ci| {
        ci.fields = fields;
        ci.methods = methods;
    });
}

/// Looks up an absolute dotted class name from the root.
pub fn lookup_absolute(table: &ClassTable, q: &syn::QualName) -> Option<ClassId> {
    let path: Vec<Name> = q.parts.iter().map(|p| table.intern(&p.text)).collect();
    table.lookup_path(&path)
}

/// Resolves a surface type in the context of class `ctx` (use
/// [`ClassId::ROOT`] for `main`).
pub fn resolve_type(
    table: &ClassTable,
    ctx: ClassId,
    t: &syn::TypeExpr,
) -> Result<Type, TypeError> {
    Ok(match t {
        syn::TypeExpr::Prim(p, _) => Ty::Prim(*p).unmasked(),
        syn::TypeExpr::Name(q) => resolve_name(table, ctx, q, t.span())?.unmasked(),
        syn::TypeExpr::DepClass(p, _) => {
            let base = table.intern(&p.base.text);
            let fields = p.fields.iter().map(|f| table.intern(&f.text)).collect();
            Ty::Dep(TPath { base, fields }).unmasked()
        }
        syn::TypeExpr::Prefix(q, idx, span) => {
            let p = lookup_absolute(table, q).ok_or_else(|| TypeError {
                message: format!("unknown prefix class `{q}`"),
                span: *span,
            })?;
            let idx = resolve_type(table, ctx, idx)?;
            if !idx.masks.is_empty() {
                return Err(TypeError {
                    message: "prefix type index cannot be masked (WF-PRE)".into(),
                    span: *span,
                });
            }
            Ty::Prefix(p, Box::new(idx.ty)).unmasked()
        }
        syn::TypeExpr::Exact(inner, _) => {
            let inner = resolve_type(table, ctx, inner)?;
            inner.ty.exact().with_masks(inner.masks)
        }
        syn::TypeExpr::Nested(inner, c) => {
            let inner = resolve_type(table, ctx, inner)?;
            let name = table.intern(&c.text);
            Ty::Nested(Box::new(inner.ty), name).with_masks(inner.masks)
        }
        syn::TypeExpr::Meet(parts, _) => {
            let mut tys = Vec::new();
            let mut masks = BTreeSet::new();
            for p in parts {
                let r = resolve_type(table, ctx, p)?;
                masks.extend(r.masks);
                tys.push(r.ty);
            }
            Ty::Meet(tys).with_masks(masks)
        }
        syn::TypeExpr::Masked(inner, fs) => {
            let inner = resolve_type(table, ctx, inner)?;
            let mut masks = inner.masks;
            for f in fs {
                masks.insert(table.intern(&f.text));
            }
            inner.ty.with_masks(masks)
        }
    })
}

/// Resolves a dotted name: late-binding sugar for the first segment, plain
/// member access for the rest.
fn resolve_name(
    table: &ClassTable,
    ctx: ClassId,
    q: &syn::QualName,
    span: Span,
) -> Result<Ty, TypeError> {
    let first = table.intern(&q.parts[0].text);
    let mut base: Option<Ty> = None;

    if ctx != ClassId::ROOT {
        // Current class first: `C` ↦ `this.class.C`.
        if table.member(ctx, first).is_some() {
            base = Some(Ty::Nested(
                Box::new(Ty::Dep(TPath::var(table.this_name))),
                first,
            ));
        } else if let Some(encl) = table.parent(ctx) {
            // One level out: `C` ↦ `E[this.class].C`.
            if encl != ClassId::ROOT && table.member(encl, first).is_some() {
                base = Some(Ty::Nested(
                    Box::new(Ty::Prefix(
                        encl,
                        Box::new(Ty::Dep(TPath::var(table.this_name))),
                    )),
                    first,
                ));
            } else if encl != ClassId::ROOT {
                // Two levels out are not supported (see DESIGN.md §3).
                if let Some(encl2) = table.parent(encl) {
                    if encl2 != ClassId::ROOT && table.member(encl2, first).is_some() {
                        return Err(TypeError {
                            message: format!(
                                "`{}` is nested more than one family level away; \
                                 use a qualified name",
                                q.parts[0].text
                            ),
                            span,
                        });
                    }
                }
            }
        }
    }
    if base.is_none() {
        // Absolute top-level name.
        if let Some(id) = table.member(ClassId::ROOT, first) {
            base = Some(Ty::Class(id));
        }
    }
    let Some(mut ty) = base else {
        return Err(TypeError {
            message: format!("unknown type name `{}`", q.parts[0].text),
            span,
        });
    };
    for seg in &q.parts[1..] {
        let n = table.intern(&seg.text);
        // Fold absolute paths into class ids where possible.
        ty = match ty {
            Ty::Class(p) => match table.member(p, n) {
                Some(id) => Ty::Class(id),
                None => {
                    return Err(TypeError {
                        message: format!(
                            "class `{}` has no member `{}`",
                            table.class_name(p),
                            seg.text
                        ),
                        span: seg.span,
                    })
                }
            },
            other => Ty::Nested(Box::new(other), n),
        };
    }
    Ok(ty)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_for(src: &str) -> (ClassTable, Vec<(ClassId, BTreeSet<Name>)>) {
        let prog = syn::parse(src).unwrap();
        let r = resolve(&prog).unwrap_or_else(|e| panic!("{e:?}"));
        let pairs = r
            .sharing_pairs
            .iter()
            .map(|(d, _b, m)| (*d, m.clone()))
            .collect();
        (r.table, pairs)
    }

    #[test]
    fn resolves_figure1_hierarchy() {
        let (t, _) = table_for(
            "class AST {
               class Exp { }
               class Value extends Exp { }
               class Binary extends Exp { Exp l; Exp r; }
             }
             class TreeDisplay {
               class Node { void display() { } }
               class Composite extends Node { }
               class Leaf extends Node { }
             }
             class ASTDisplay extends AST & TreeDisplay {
               class Exp extends Node { }
               class Value extends Exp & Leaf { }
               class Binary extends Exp & Composite { }
             }",
        );
        let ast = t.lookup_path(&[t.intern("AST")]).unwrap();
        let ad = t.lookup_path(&[t.intern("ASTDisplay")]).unwrap();
        let ad_binary = t.member(ad, t.intern("Binary")).unwrap();
        let ast_binary = t.member(ast, t.intern("Binary")).unwrap();
        assert!(t.is_subclass(ad_binary, ast_binary));
        let ad_exp = t.member(ad, t.intern("Exp")).unwrap();
        assert!(t.is_subclass(ad_binary, ad_exp));
        // Field type of l is late bound: AST[this.class].Exp.
        let (_, fi) = t.field(ad_binary, t.intern("l")).unwrap();
        assert!(matches!(&fi.ty.ty, Ty::Nested(inner, _)
            if matches!(&**inner, Ty::Prefix(p, _) if *p == ast)));
    }

    #[test]
    fn shares_clause_produces_pairs() {
        let (t, pairs) = table_for(
            "class A { class C { } }
             class B extends A { class C shares A.C { } }",
        );
        assert_eq!(pairs.len(), 1);
        let b = t.lookup_path(&[t.intern("B")]).unwrap();
        let bc = t.member(b, t.intern("C")).unwrap();
        assert_eq!(pairs[0].0, bc);
    }

    #[test]
    fn shares_with_mask_records_masks() {
        let (t, pairs) = table_for(
            "class A { class C { int g = 0; } }
             class B extends A { class C shares A.C\\g { } }",
        );
        assert!(pairs[0].1.contains(&t.intern("g")));
    }

    #[test]
    fn adapts_expands_to_all_members() {
        let prog = syn::parse(
            "class AST { class Exp { } class Value extends Exp { } }
             class ASTDisplay extends AST adapts AST { }",
        )
        .unwrap();
        let r = resolve(&prog).unwrap();
        // Exp and Value both shared.
        assert_eq!(r.sharing_pairs.len(), 2);
    }

    #[test]
    fn unknown_name_errors() {
        let prog = syn::parse("class A { Missing f; }").unwrap();
        let errs = resolve(&prog).unwrap_err();
        assert!(errs[0].message.contains("unknown type name"));
    }

    #[test]
    fn duplicate_class_errors() {
        let prog = syn::parse("class A { } class A { }").unwrap();
        let errs = resolve(&prog).unwrap_err();
        assert!(errs[0].message.contains("duplicate class"));
    }

    #[test]
    fn exact_field_type_rejected() {
        let prog = syn::parse("class A { class C { } A.C! f; }").unwrap();
        let errs = resolve(&prog).unwrap_err();
        assert!(errs[0].message.contains("exact"), "{:?}", errs[0].message);
    }

    #[test]
    fn exact_supertype_rejected() {
        let prog = syn::parse("class A { } class B extends A! { }").unwrap();
        let errs = resolve(&prog).unwrap_err();
        assert!(errs[0].message.contains("exact"));
    }

    #[test]
    fn absolute_nested_names_fold_to_classes() {
        let (t, _) = table_for("class A { class C { } } class F { A.C g(A.C x) { return x; } }");
        let f = t.lookup_path(&[t.intern("F")]).unwrap();
        let info = t.class(f);
        let sig = &info.methods[0];
        let ac = t.lookup_path(&[t.intern("A"), t.intern("C")]).unwrap();
        assert_eq!(sig.ret.ty, Ty::Class(ac));
    }

    #[test]
    fn exact_family_types_resolve() {
        let (t, _) = table_for(
            "class Base { class Exp { } }
             class F { void f(Base!.Exp e) { } }",
        );
        let f = t.lookup_path(&[t.intern("F")]).unwrap();
        let sig = &t.class(f).methods[0];
        let base = t.lookup_path(&[t.intern("Base")]).unwrap();
        assert_eq!(
            sig.params[0].1.ty,
            Ty::Nested(Box::new(Ty::Class(base).exact()), t.intern("Exp"))
        );
    }
}
