//! Shared test fixtures (paper Figures 1-3 hierarchies).
#![allow(missing_docs)]

use crate::table::*;
use crate::ty::{ClassId, TPath, Ty};
use std::collections::HashMap;

/// Builds the AST / TreeDisplay / ASTDisplay skeleton from Figures 1-2.
pub fn figure12() -> (ClassTable, HashMap<&'static str, ClassId>) {
    let t = ClassTable::new();
    let mut ids = HashMap::new();
    let ast = t.add_explicit(ClassId::ROOT, t.intern("AST"));
    let td = t.add_explicit(ClassId::ROOT, t.intern("TreeDisplay"));
    let ad = t.add_explicit(ClassId::ROOT, t.intern("ASTDisplay"));
    let exp = t.add_explicit(ast, t.intern("Exp"));
    let value = t.add_explicit(ast, t.intern("Value"));
    let binary = t.add_explicit(ast, t.intern("Binary"));
    let node = t.add_explicit(td, t.intern("Node"));
    let composite = t.add_explicit(td, t.intern("Composite"));
    let leaf = t.add_explicit(td, t.intern("Leaf"));
    // extends clauses
    let sibling = |fam: ClassId, c: &str| {
        Ty::Nested(
            Box::new(Ty::Prefix(fam, Box::new(Ty::Dep(TPath::var(t.this_name))))),
            t.intern(c),
        )
    };
    t.update(value, |ci| ci.extends.push(sibling(ast, "Exp")));
    t.update(binary, |ci| ci.extends.push(sibling(ast, "Exp")));
    t.update(composite, |ci| ci.extends.push(sibling(td, "Node")));
    t.update(leaf, |ci| ci.extends.push(sibling(td, "Node")));
    t.update(ad, |ci| {
        ci.extends.push(Ty::Class(ast));
        ci.extends.push(Ty::Class(td));
    });
    // ASTDisplay.Exp extends Node (found via inherited members)
    let ad_exp = t.add_explicit(ad, t.intern("Exp"));
    t.update(ad_exp, |ci| ci.extends.push(sibling(ad, "Node")));
    let ad_binary = t.add_explicit(ad, t.intern("Binary"));
    t.update(ad_binary, |ci| {
        ci.extends.push(sibling(ad, "Exp"));
        ci.extends.push(sibling(ad, "Composite"));
    });
    ids.insert("AST", ast);
    ids.insert("TreeDisplay", td);
    ids.insert("ASTDisplay", ad);
    ids.insert("AST.Exp", exp);
    ids.insert("AST.Value", value);
    ids.insert("AST.Binary", binary);
    ids.insert("TD.Node", node);
    ids.insert("TD.Composite", composite);
    ids.insert("TD.Leaf", leaf);
    ids.insert("AD.Exp", ad_exp);
    ids.insert("AD.Binary", ad_binary);
    (t, ids)
}
