//! Property-based tests of the subtyping judgment over a realistic
//! hierarchy (the Figure 1-3 families): reflexivity, transitivity,
//! meet laws, and mask monotonicity.

use jns_types::{check, ClassId, Judge, Ty, TypeEnv};
use proptest::prelude::*;

/// Builds the checked Figure-3 program once and returns its table.
fn table() -> jns_types::CheckedProgram {
    let prog = jns_syntax::parse(
        "class AST {
           class Exp { }
           class Value extends Exp { }
           class Binary extends Exp { Exp l; Exp r; }
         }
         class TreeDisplay {
           class Node { }
           class Composite extends Node { }
           class Leaf extends Node { }
         }
         class ASTDisplay extends AST & TreeDisplay adapts AST {
           class Exp extends Node { }
           class Value extends Exp & Leaf { }
           class Binary extends Exp & Composite { }
         }",
    )
    .unwrap();
    check(&prog).unwrap()
}

/// A pool of interesting types over the fixture.
fn type_pool(p: &jns_types::CheckedProgram) -> Vec<Ty> {
    let t = &p.table;
    let mut pool = Vec::new();
    let fams = ["AST", "TreeDisplay", "ASTDisplay"];
    let classes = ["Exp", "Value", "Binary", "Node", "Composite", "Leaf"];
    for f in fams {
        let fid = t.lookup_path(&[t.intern(f)]).unwrap();
        pool.push(Ty::Class(fid));
        pool.push(Ty::Class(fid).exact());
        for c in classes {
            if let Some(id) = t.member(fid, t.intern(c)) {
                pool.push(Ty::Class(id));
                pool.push(Ty::Class(id).exact());
                pool.push(Ty::Nested(Box::new(Ty::Class(fid).exact()), t.intern(c)));
            }
        }
    }
    // A couple of meets.
    let ast = t.lookup_path(&[t.intern("AST")]).unwrap();
    let td = t.lookup_path(&[t.intern("TreeDisplay")]).unwrap();
    pool.push(Ty::Meet(vec![Ty::Class(ast), Ty::Class(td)]));
    pool
}

fn idx() -> impl Strategy<Value = usize> {
    0usize..60
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn subtyping_is_reflexive(i in idx()) {
        let p = table();
        let pool = type_pool(&p);
        let a = &pool[i % pool.len()];
        let env = TypeEnv::new();
        let j = Judge::new(&p.table, &env);
        prop_assert!(j.sub_pure(a, a), "{} not <= itself", p.table.show_ty(a));
    }

    #[test]
    fn subtyping_is_transitive(i in idx(), k in idx(), l in idx()) {
        let p = table();
        let pool = type_pool(&p);
        let (a, b, c) = (
            &pool[i % pool.len()],
            &pool[k % pool.len()],
            &pool[l % pool.len()],
        );
        let env = TypeEnv::new();
        let j = Judge::new(&p.table, &env);
        if j.sub_pure(a, b) && j.sub_pure(b, c) {
            prop_assert!(
                j.sub_pure(a, c),
                "transitivity broken: {} <= {} <= {} but not {} <= {}",
                p.table.show_ty(a),
                p.table.show_ty(b),
                p.table.show_ty(c),
                p.table.show_ty(a),
                p.table.show_ty(c)
            );
        }
    }

    #[test]
    fn meet_is_a_lower_bound(i in idx(), k in idx()) {
        let p = table();
        let pool = type_pool(&p);
        let (a, b) = (&pool[i % pool.len()], &pool[k % pool.len()]);
        let env = TypeEnv::new();
        let j = Judge::new(&p.table, &env);
        let meet = Ty::Meet(vec![a.clone(), b.clone()]);
        prop_assert!(j.sub_pure(&meet, a));
        prop_assert!(j.sub_pure(&meet, b));
    }

    #[test]
    fn masks_only_grow_upward(i in idx()) {
        let p = table();
        let pool = type_pool(&p);
        let a = &pool[i % pool.len()];
        let env = TypeEnv::new();
        let j = Judge::new(&p.table, &env);
        let f = p.table.intern("somefield");
        let plain = a.clone().unmasked();
        let masked = a.clone().unmasked().masked(f);
        prop_assert!(j.sub(&plain, &masked));
        prop_assert!(!j.sub(&masked, &plain));
    }

    #[test]
    fn exactness_strictly_refines(i in idx()) {
        let p = table();
        let pool = type_pool(&p);
        let a = &pool[i % pool.len()];
        let env = TypeEnv::new();
        let j = Judge::new(&p.table, &env);
        let exact = a.clone().exact();
        // T! <= T always; T <= T! only if T was already exact.
        prop_assert!(j.sub_pure(&exact, a));
        if !a.is_exact() && matches!(a, Ty::Class(c) if has_strict_sub(&p, *c)) {
            prop_assert!(!j.sub_pure(a, &exact), "{}", p.table.show_ty(a));
        }
    }
}

/// Whether some other class strictly subclasses `c` (then `C` has
/// instances that are not exactly `C`).
fn has_strict_sub(p: &jns_types::CheckedProgram, c: ClassId) -> bool {
    p.table
        .all_ids()
        .iter()
        .any(|&o| o != c && p.table.is_subclass(o, c))
}
