//! Per-kernel semantic checks: beyond cross-strategy agreement, each
//! kernel's checksum satisfies a property that pins down its algorithm.

use jns_rt::Strategy;
use jolden::kernels;

fn run(name: &str, size: u32) -> i64 {
    let k = kernels().into_iter().find(|k| k.name == name).unwrap();
    (k.run)(Strategy::Direct, size)
}

#[test]
fn treeadd_sums_exactly_the_node_count() {
    // Every node holds 1, so the sum of a height-h complete tree is 2^(h+1)-1.
    for h in [3u32, 6, 10] {
        assert_eq!(run("treeadd", h), (1i64 << (h + 1)) - 1);
    }
}

#[test]
fn mst_weight_is_bounded_by_the_ring() {
    // The generator always includes a Hamiltonian ring with edge weights
    // in [1, 1000], so the MST weight is positive and below 1000·n.
    for n in [16u32, 64, 128] {
        let w = run("mst", n);
        assert!(w > 0);
        assert!(w < 1000 * n as i64, "mst {w} too heavy for n={n}");
    }
}

#[test]
fn perimeter_is_positive_and_even() {
    // A disk's quadtree perimeter is a positive number of unit edges and
    // every contribution is even (sides come in multiples of 2 after the
    // sibling cancellation).
    for d in [3u32, 5, 7] {
        let p = run("perimeter", d);
        assert!(p > 0, "depth {d}");
        assert_eq!(p % 2, 0, "depth {d}: {p}");
    }
}

#[test]
fn perimeter_scales_with_resolution() {
    // Higher resolution refines the boundary: the perimeter grows with
    // depth for a fixed image (curve refinement), at least weakly.
    let p1 = run("perimeter", 4);
    let p2 = run("perimeter", 7);
    assert!(p2 >= p1, "{p1} -> {p2}");
}

#[test]
fn tsp_tour_is_at_least_a_spanning_walk() {
    // Tour length > 0 and grows with the number of cities.
    let a = run("tsp", 16);
    let b = run("tsp", 128);
    assert!(a > 0);
    assert!(b > a, "{a} vs {b}");
}

#[test]
fn bisort_checksum_reflects_a_sorted_min() {
    // After bisort, the subtree minimum equals the root region's smallest
    // element; the checksum mixes it with the root, so it is stable and
    // strategy-independent (cross-checked in the lib tests); here we only
    // pin determinism across repeated runs.
    assert_eq!(run("bisort", 8), run("bisort", 8));
}

#[test]
fn em3d_converges_deterministically() {
    assert_eq!(run("em3d", 128), run("em3d", 128));
    assert_ne!(run("em3d", 128), run("em3d", 129));
}

#[test]
fn health_treats_more_patients_with_deeper_hierarchies() {
    let small = run("health", 2);
    let large = run("health", 4);
    assert!(large > small, "{small} vs {large}");
}

#[test]
fn power_demand_responds_to_network_size() {
    let a = run("power", 3);
    let b = run("power", 5);
    assert!(b > a, "a 4^5 network draws more than a 4^3 one: {a} vs {b}");
}

#[test]
fn voronoi_closest_pair_shrinks_with_density() {
    // More points in the same square ⇒ the closest pair distance shrinks.
    let sparse = run("voronoi", 32) - 32; // checksum = dist*1e6 + n
    let dense = run("voronoi", 1024) - 1024;
    assert!(dense < sparse, "{dense} !< {sparse}");
}

#[test]
fn bh_forces_are_finite_and_scale() {
    let a = run("bh", 16);
    let b = run("bh", 64);
    assert!(a > 0 && b > 0);
    assert!(b > a, "more bodies, more aggregate force: {a} vs {b}");
}

#[test]
fn shared_family_strategy_reports_view_statistics() {
    // The kernels do not use sharing, so SharedFamily must not pay view
    // changes for them (only the reference-object layout).
    let k = kernels().into_iter().find(|k| k.name == "treeadd").unwrap();
    let c = (k.run)(Strategy::SharedFamily, 6);
    assert_eq!(c, (1 << 7) - 1);
}
