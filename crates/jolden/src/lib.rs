//! # jolden
//!
//! The ten **jolden** benchmark kernels (§7.1, Table 1), re-implemented
//! over the [`jns_rt`] object model so that each can run under all four
//! implementation strategies (Java / J& / J&+classloader / J&s).
//!
//! These are simplified but recognisable versions of the classic kernels:
//! they preserve the *shape* that matters for the paper's measurement —
//! pointer-rich heap structures traversed through dynamically dispatched
//! methods — while staying deterministic (every kernel returns a checksum
//! that must be identical across strategies; the test suite enforces it).

#![warn(missing_docs)]

pub mod kernels;
pub mod util;

use jns_rt::Strategy;

/// A registered kernel: name, entry point, default problem size.
#[derive(Debug, Clone, Copy)]
pub struct Kernel {
    /// The jolden benchmark name.
    pub name: &'static str,
    /// Entry point: runs under the given strategy at the given size and
    /// returns a checksum.
    pub run: fn(Strategy, u32) -> i64,
    /// Default size used by the Table 1 harness.
    pub default_size: u32,
    /// A smaller size for tests.
    pub test_size: u32,
}

/// All ten kernels in the paper's column order.
pub fn kernels() -> Vec<Kernel> {
    use kernels::*;
    vec![
        Kernel {
            name: "bh",
            run: bh::run,
            default_size: 256,
            test_size: 32,
        },
        Kernel {
            name: "bisort",
            run: bisort::run,
            default_size: 14,
            test_size: 6,
        },
        Kernel {
            name: "em3d",
            run: em3d::run,
            default_size: 2000,
            test_size: 64,
        },
        Kernel {
            name: "health",
            run: health::run,
            default_size: 5,
            test_size: 3,
        },
        Kernel {
            name: "mst",
            run: mst::run,
            default_size: 512,
            test_size: 32,
        },
        Kernel {
            name: "perimeter",
            run: perimeter::run,
            default_size: 8,
            test_size: 4,
        },
        Kernel {
            name: "power",
            run: power::run,
            default_size: 9,
            test_size: 4,
        },
        Kernel {
            name: "treeadd",
            run: treeadd::run,
            default_size: 18,
            test_size: 8,
        },
        Kernel {
            name: "tsp",
            run: tsp::run,
            default_size: 600,
            test_size: 40,
        },
        Kernel {
            name: "voronoi",
            run: voronoi::run,
            default_size: 2048,
            test_size: 64,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every kernel must compute the same checksum under every strategy —
    /// the strategies differ only in cost, never in behaviour.
    #[test]
    fn checksums_agree_across_strategies() {
        for k in kernels() {
            let baseline = (k.run)(Strategy::Direct, k.test_size);
            for s in [
                Strategy::NaiveFamily,
                Strategy::LoaderFamily,
                Strategy::SharedFamily,
            ] {
                let got = (k.run)(s, k.test_size);
                assert_eq!(got, baseline, "{} differs under {s:?}", k.name);
            }
        }
    }

    #[test]
    fn checksums_are_nontrivial() {
        for k in kernels() {
            let v = (k.run)(Strategy::Direct, k.test_size);
            assert_ne!(v, 0, "{} returned a zero checksum", k.name);
        }
    }

    #[test]
    fn checksums_depend_on_size() {
        for k in kernels() {
            let a = (k.run)(Strategy::Direct, k.test_size);
            let b = (k.run)(Strategy::Direct, k.test_size + 1);
            assert_ne!(a, b, "{} checksum does not vary with size", k.name);
        }
    }
}
