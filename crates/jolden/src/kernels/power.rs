//! `power`: the power-system pricing benchmark — a fixed hierarchy
//! (root → feeders → laterals → branches → leaves) optimised by iterating
//! upward demand aggregation and downward price propagation.

use jns_rt::{ClassId, MethodId, ObjRef, Runtime, Strategy, Val};

const M_DEMAND: MethodId = MethodId(0);
const M_PRICE: MethodId = MethodId(1);

/// Runs power with a branching factor derived from `size`.
pub fn run(strategy: Strategy, size: u32) -> i64 {
    let mut rt = Runtime::new(strategy);
    let fam = rt.family();
    let m_demand = rt.method("demand");
    let m_price = rt.method("set_price");
    assert_eq!((m_demand, m_price), (M_DEMAND, M_PRICE));
    // Leaf: demand responds to price (simple elastic consumer).
    let leaf = rt
        .class("Leaf", fam)
        .fields(&["price", "demand"])
        .method(M_DEMAND, |rt, r, _| {
            let p = rt.get(r, "price").f();
            let d = 10.0 / (1.0 + p);
            rt.set(r, "demand", Val::F(d));
            Val::F(d)
        })
        .method(M_PRICE, |rt, r, a| {
            rt.set(r, "price", a[0]);
            Val::Nil
        })
        .build();
    // Internal node: sums children demand, adds line loss, scales price.
    let node = rt
        .class("Branch", fam)
        .fields(&["c0", "c1", "c2", "c3", "price", "demand"])
        .method(M_DEMAND, |rt, r, _| {
            let mut d = 0.0;
            for f in ["c0", "c1", "c2", "c3"] {
                if let Some(c) = rt.get(r, f).obj() {
                    d += rt.call(c, M_DEMAND, &[]).f();
                }
            }
            let loss = 1.02;
            let d = d * loss;
            rt.set(r, "demand", Val::F(d));
            Val::F(d)
        })
        .method(M_PRICE, |rt, r, a| {
            rt.set(r, "price", a[0]);
            let p = a[0].f() * 1.05;
            for f in ["c0", "c1", "c2", "c3"] {
                if let Some(c) = rt.get(r, f).obj() {
                    rt.call(c, M_PRICE, &[Val::F(p)]);
                }
            }
            Val::Nil
        })
        .build();

    struct Cx {
        node: ClassId,
        leaf: ClassId,
    }
    fn build(rt: &mut Runtime, cx: &Cx, depth: u32) -> ObjRef {
        if depth == 0 {
            let l = rt.alloc(cx.leaf);
            rt.set(l, "price", Val::F(1.0));
            return l;
        }
        let n = rt.alloc(cx.node);
        rt.set(n, "price", Val::F(1.0));
        for f in ["c0", "c1", "c2", "c3"] {
            let c = build(rt, cx, depth - 1);
            rt.set(n, f, Val::Obj(c));
        }
        n
    }
    let cx = Cx { node, leaf };
    let root = build(&mut rt, &cx, size.min(9));
    // A few price/demand iterations towards equilibrium.
    let mut price = 1.0;
    let mut demand = 0.0;
    for _ in 0..6 {
        rt.call(root, M_PRICE, &[Val::F(price)]);
        demand = rt.call(root, M_DEMAND, &[]).f();
        price = 0.5 * price + 0.5 * (demand / 1000.0 + 0.2);
    }
    (demand * 1e3) as i64 + size as i64
}
