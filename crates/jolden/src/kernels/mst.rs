//! `mst`: minimum spanning tree with Prim's algorithm over graph-node
//! objects carrying `key`/`in_tree` state, edges as linked edge objects.

use crate::util::Lcg;
use jns_rt::{MethodId, Runtime, Strategy, Val};

const M_KEY: MethodId = MethodId(0);

/// Runs mst on a random graph with `size` vertices (each with ~4 edges).
pub fn run(strategy: Strategy, size: u32) -> i64 {
    let mut rt = Runtime::new(strategy);
    let fam = rt.family();
    let m_key = rt.method("key");
    assert_eq!(m_key, M_KEY);
    let vertex = rt
        .class("Vertex", fam)
        .fields(&["edges", "key", "in_tree", "id"])
        .method(M_KEY, |rt, r, _| rt.get(r, "key"))
        .build();
    let edge = rt
        .class("Edge", fam)
        .fields(&["to", "weight", "next"])
        .build();

    let n = size as usize;
    let mut g = Lcg::new(size as u64 + 99);
    let vs: Vec<_> = (0..n)
        .map(|i| {
            let v = rt.alloc(vertex);
            rt.set(v, "key", Val::Int(i64::MAX / 4));
            rt.set(v, "in_tree", Val::Int(0));
            rt.set(v, "id", Val::Int(i as i64));
            v
        })
        .collect();
    // Ring + random chords so the graph is connected.
    let add_edge = |rt: &mut Runtime, a: usize, b: usize, w: i64| {
        for (x, y) in [(a, b), (b, a)] {
            let e = rt.alloc(edge);
            rt.set(e, "to", Val::Obj(vs[y]));
            rt.set(e, "weight", Val::Int(w));
            let head = rt.get(vs[x], "edges");
            rt.set(e, "next", head);
            rt.set(vs[x], "edges", Val::Obj(e));
        }
    };
    for i in 0..n {
        let w = 1 + g.below(1000) as i64;
        add_edge(&mut rt, i, (i + 1) % n, w);
    }
    for _ in 0..n {
        let a = g.below(n as u64) as usize;
        let b = g.below(n as u64) as usize;
        if a != b {
            add_edge(&mut rt, a, b, 1 + g.below(1000) as i64);
        }
    }
    // Prim's with O(V^2) scans (the jolden original uses the same idea).
    rt.set(vs[0], "key", Val::Int(0));
    let mut total = 0i64;
    for _ in 0..n {
        // pick the cheapest vertex not in the tree (via dispatch on key()).
        let mut best: Option<(usize, i64)> = None;
        for (i, &v) in vs.iter().enumerate() {
            if rt.get(v, "in_tree").int() == 1 {
                continue;
            }
            let k = rt.call(v, M_KEY, &[]).int();
            if best.map(|(_, bk)| k < bk).unwrap_or(true) {
                best = Some((i, k));
            }
        }
        let Some((i, k)) = best else { break };
        rt.set(vs[i], "in_tree", Val::Int(1));
        total += k;
        // relax neighbours
        let mut cur = rt.get(vs[i], "edges").obj();
        while let Some(e) = cur {
            let to = rt.get(e, "to").obj().expect("edge target");
            let w = rt.get(e, "weight").int();
            if rt.get(to, "in_tree").int() == 0 && w < rt.get(to, "key").int() {
                rt.set(to, "key", Val::Int(w));
            }
            cur = rt.get(e, "next").obj();
        }
    }
    total
}
