//! The ten kernels. Each module exposes `run(strategy, size) -> i64`.

pub mod bh;
pub mod bisort;
pub mod em3d;
pub mod health;
pub mod mst;
pub mod perimeter;
pub mod power;
pub mod treeadd;
pub mod tsp;
pub mod voronoi;
