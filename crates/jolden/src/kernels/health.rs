//! `health`: the Columbian health-care simulation — a 4-ary tree of
//! villages, each with a hospital whose waiting list is a linked list of
//! patient objects; patients that cannot be treated locally move up.

use crate::util::Lcg;
use jns_rt::{ClassId, MethodId, ObjRef, Runtime, Strategy, Val};

const M_STEP: MethodId = MethodId(0);

/// Runs health on a village tree of depth `size` for a fixed horizon.
pub fn run(strategy: Strategy, size: u32) -> i64 {
    let mut rt = Runtime::new(strategy);
    let fam = rt.family();
    let m_step = rt.method("step");
    assert_eq!(m_step, M_STEP);
    let patient = rt
        .class("Patient", fam)
        .fields(&["severity", "next"])
        .build();
    // step(): simulate one tick; returns number treated in the subtree.
    let village = rt
        .class("Village", fam)
        .fields(&[
            "c0", "c1", "c2", "c3", "waiting", "capacity", "seed", "treated",
        ])
        .method(M_STEP, |rt, r, args| {
            let mut treated = 0i64;
            // Children first; escalated patients join our waiting list.
            for f in ["c0", "c1", "c2", "c3"] {
                if let Some(c) = rt.get(r, f).obj() {
                    treated += rt.call(c, M_STEP, args).int();
                }
            }
            // New arrival with deterministic pseudo-randomness.
            let seed = rt.get(r, "seed").int() as u64;
            let mut g = Lcg(seed);
            let sev = g.below(10) as i64;
            rt.set(r, "seed", Val::Int(g.0 as i64));
            let p = patient_alloc(rt, args[0], sev);
            let head = rt.get(r, "waiting");
            rt.set(p, "next", head);
            rt.set(r, "waiting", Val::Obj(p));
            // Treat up to `capacity` patients with severity below 7; the
            // rest stay (bounded list: drop the over-severe to parent by
            // re-severing them).
            let cap = rt.get(r, "capacity").int();
            let mut kept = Val::Nil;
            let mut cur = rt.get(r, "waiting").obj();
            let mut done = 0;
            while let Some(pt) = cur {
                let nxt = rt.get(pt, "next");
                let sev = rt.get(pt, "severity").int();
                if done < cap && sev < 7 {
                    treated += 1;
                    done += 1;
                } else {
                    // lower severity and requeue
                    rt.set(pt, "severity", Val::Int(sev - 2));
                    rt.set(pt, "next", kept);
                    kept = Val::Obj(pt);
                }
                cur = nxt.obj();
            }
            rt.set(r, "waiting", kept);
            let old = rt.get(r, "treated").int();
            rt.set(r, "treated", Val::Int(old + treated));
            Val::Int(treated)
        })
        .build();

    fn patient_alloc(rt: &mut Runtime, class_val: Val, sev: i64) -> ObjRef {
        let class = ClassId(class_val.int() as u32);
        let p = rt.alloc(class);
        rt.set(p, "severity", Val::Int(sev));
        p
    }

    fn build(rt: &mut Runtime, village: ClassId, depth: u32, seed: &mut u64) -> ObjRef {
        let v = rt.alloc(village);
        *seed = seed.wrapping_mul(48271).wrapping_add(11);
        rt.set(v, "capacity", Val::Int(1 + (depth as i64 % 3)));
        rt.set(v, "seed", Val::Int(*seed as i64));
        rt.set(v, "treated", Val::Int(0));
        if depth > 0 {
            for f in ["c0", "c1", "c2", "c3"] {
                let c = build(rt, village, depth - 1, seed);
                rt.set(v, f, Val::Obj(c));
            }
        }
        v
    }

    let mut seed = 1234u64 ^ (size as u64) << 3;
    let root = build(&mut rt, village, size, &mut seed);
    let mut total = 0i64;
    for _ in 0..8 {
        total += rt.call(root, M_STEP, &[Val::Int(patient.0 as i64)]).int();
    }
    total * 31 + rt.get(root, "treated").int()
}
