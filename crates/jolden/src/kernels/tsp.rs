//! `tsp`: travelling-salesman tour over city objects in a doubly linked
//! tour list, built with the nearest-neighbour heuristic.

use crate::util::Lcg;
use jns_rt::{MethodId, Runtime, Strategy, Val};

const M_DIST2: MethodId = MethodId(0);

/// Runs tsp over `size` random cities.
pub fn run(strategy: Strategy, size: u32) -> i64 {
    let mut rt = Runtime::new(strategy);
    let fam = rt.family();
    let m_dist2 = rt.method("dist2");
    assert_eq!(m_dist2, M_DIST2);
    let city = rt
        .class("City", fam)
        .fields(&["x", "y", "next", "visited"])
        .method(M_DIST2, |rt, r, a| {
            let dx = rt.get(r, "x").f() - a[0].f();
            let dy = rt.get(r, "y").f() - a[1].f();
            Val::F(dx * dx + dy * dy)
        })
        .build();
    let n = size as usize;
    let mut g = Lcg::new(size as u64 * 17 + 5);
    let cities: Vec<_> = (0..n)
        .map(|_| {
            let c = rt.alloc(city);
            rt.set(c, "x", Val::F(g.unit_f64() * 1000.0));
            rt.set(c, "y", Val::F(g.unit_f64() * 1000.0));
            rt.set(c, "visited", Val::Int(0));
            c
        })
        .collect();
    // Nearest-neighbour tour via dispatched distance computations.
    let mut cur = cities[0];
    rt.set(cur, "visited", Val::Int(1));
    let mut tour_len = 0.0;
    for _ in 1..n {
        let cx = rt.get(cur, "x");
        let cy = rt.get(cur, "y");
        let mut best: Option<(jns_rt::ObjRef, f64)> = None;
        for &cand in &cities {
            if rt.get(cand, "visited").int() == 1 {
                continue;
            }
            let d = rt.call(cand, M_DIST2, &[cx, cy]).f();
            if best.map(|(_, bd)| d < bd).unwrap_or(true) {
                best = Some((cand, d));
            }
        }
        let Some((nxt, d)) = best else { break };
        rt.set(cur, "next", Val::Obj(nxt));
        rt.set(nxt, "visited", Val::Int(1));
        tour_len += d.sqrt();
        cur = nxt;
    }
    // close the tour
    let cx = rt.get(cur, "x");
    let cy = rt.get(cur, "y");
    let d = rt.call(cities[0], M_DIST2, &[cx, cy]).f();
    tour_len += d.sqrt();
    (tour_len * 100.0) as i64
}
