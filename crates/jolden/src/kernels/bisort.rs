//! `bisort`: bitonic sort over a perfect binary tree of integers.
//! Simplified to the classic bimerge/bisort recursion on tree nodes.

use crate::util::Lcg;
use jns_rt::{ClassId, MethodId, ObjRef, Runtime, Strategy, Val};

const M_MIN: MethodId = MethodId(0);

/// Runs bisort on a tree of height `size`.
pub fn run(strategy: Strategy, size: u32) -> i64 {
    let mut rt = Runtime::new(strategy);
    let fam = rt.family();
    let m_min = rt.method("subtree_min");
    assert_eq!(m_min, M_MIN);
    let node = rt
        .class("SortNode", fam)
        .fields(&["left", "right", "value"])
        .method(M_MIN, |rt, r, _| {
            let mut m = rt.get(r, "value").int();
            if let Some(l) = rt.get(r, "left").obj() {
                m = m.min(rt.call(l, M_MIN, &[]).int());
            }
            if let Some(rr) = rt.get(r, "right").obj() {
                m = m.min(rt.call(rr, M_MIN, &[]).int());
            }
            Val::Int(m)
        })
        .build();

    fn build(rt: &mut Runtime, node: ClassId, h: u32, g: &mut Lcg) -> ObjRef {
        let n = rt.alloc(node);
        rt.set(n, "value", Val::Int(g.below(1 << 20) as i64));
        if h > 0 {
            let l = build(rt, node, h - 1, g);
            let r = build(rt, node, h - 1, g);
            rt.set(n, "left", Val::Obj(l));
            rt.set(n, "right", Val::Obj(r));
        }
        n
    }

    // Bimerge: make the subtree bitonic-ordered in the given direction.
    fn bimerge(rt: &mut Runtime, n: ObjRef, up: bool) {
        let (Some(l), Some(r)) = (rt.get(n, "left").obj(), rt.get(n, "right").obj()) else {
            return;
        };
        let lv = rt.get(l, "value").int();
        let rv = rt.get(r, "value").int();
        if (lv > rv) == up {
            rt.set(l, "value", Val::Int(rv));
            rt.set(r, "value", Val::Int(lv));
            swap_subtrees(rt, l, r);
        }
        bimerge(rt, l, up);
        bimerge(rt, r, up);
    }

    fn swap_subtrees(rt: &mut Runtime, a: ObjRef, b: ObjRef) {
        for f in ["left", "right"] {
            let (ca, cb) = (rt.get(a, f).obj(), rt.get(b, f).obj());
            if let (Some(ca), Some(cb)) = (ca, cb) {
                let va = rt.get(ca, "value").int();
                let vb = rt.get(cb, "value").int();
                rt.set(ca, "value", Val::Int(vb));
                rt.set(cb, "value", Val::Int(va));
                swap_subtrees(rt, ca, cb);
            }
        }
    }

    fn bisort(rt: &mut Runtime, n: ObjRef, up: bool) {
        let (Some(l), Some(r)) = (rt.get(n, "left").obj(), rt.get(n, "right").obj()) else {
            return;
        };
        bisort(rt, l, up);
        bisort(rt, r, !up);
        bimerge(rt, n, up);
    }

    let mut g = Lcg::new(size as u64 + 1);
    let root = build(&mut rt, node, size, &mut g);
    bisort(&mut rt, root, true);
    // Checksum: min over the tree plus root value (dispatch exercised).
    let m = rt.call(root, M_MIN, &[]).int();
    m ^ rt.get(root, "value").int().wrapping_mul(31)
}
