//! `voronoi`: simplified to the divide-and-conquer *closest pair* over
//! point objects in a sorted linked structure — it keeps the original's
//! recursive geometric decomposition over heap objects while avoiding a
//! full Delaunay triangulation (see DESIGN.md).

use crate::util::Lcg;
use jns_rt::{MethodId, ObjRef, Runtime, Strategy, Val};

const M_DIST2: MethodId = MethodId(0);

/// Runs the kernel over `size` points.
pub fn run(strategy: Strategy, size: u32) -> i64 {
    let mut rt = Runtime::new(strategy);
    let fam = rt.family();
    let m_dist2 = rt.method("dist2");
    assert_eq!(m_dist2, M_DIST2);
    let point = rt
        .class("Point", fam)
        .fields(&["x", "y"])
        .method(M_DIST2, |rt, r, a| {
            let dx = rt.get(r, "x").f() - a[0].f();
            let dy = rt.get(r, "y").f() - a[1].f();
            Val::F(dx * dx + dy * dy)
        })
        .build();
    let n = (size as usize).max(2);
    let mut g = Lcg::new(size as u64 ^ 0xabcdef);
    let mut pts: Vec<(f64, ObjRef)> = (0..n)
        .map(|_| {
            let p = rt.alloc(point);
            let x = g.unit_f64() * 1000.0;
            rt.set(p, "x", Val::F(x));
            rt.set(p, "y", Val::F(g.unit_f64() * 1000.0));
            (x, p)
        })
        .collect();
    pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    let order: Vec<ObjRef> = pts.into_iter().map(|(_, p)| p).collect();

    fn closest(rt: &mut Runtime, pts: &[ObjRef]) -> f64 {
        if pts.len() <= 3 {
            let mut best = f64::INFINITY;
            for i in 0..pts.len() {
                for j in i + 1..pts.len() {
                    let x = rt.get(pts[j], "x");
                    let y = rt.get(pts[j], "y");
                    best = best.min(rt.call(pts[i], M_DIST2, &[x, y]).f());
                }
            }
            return best;
        }
        let mid = pts.len() / 2;
        let midx = rt.get(pts[mid], "x").f();
        let dl = closest(rt, &pts[..mid]);
        let dr = closest(rt, &pts[mid..]);
        let mut d = dl.min(dr);
        // strip check
        let strip: Vec<ObjRef> = pts
            .iter()
            .copied()
            .filter(|&p| {
                let x = rt.get(p, "x").f();
                (x - midx) * (x - midx) < d
            })
            .collect();
        for i in 0..strip.len() {
            for j in i + 1..(i + 8).min(strip.len()) {
                let x = rt.get(strip[j], "x");
                let y = rt.get(strip[j], "y");
                d = d.min(rt.call(strip[i], M_DIST2, &[x, y]).f());
            }
        }
        d
    }

    let d = closest(&mut rt, &order);
    (d.sqrt() * 1e6) as i64 + n as i64
}
