//! `treeadd`: recursive sum over a complete binary tree — the purest
//! dispatch + pointer-chasing microkernel.

use jns_rt::{MethodId, Runtime, Strategy, Val};

const M_SUM: MethodId = MethodId(0);

/// Runs treeadd with a tree of height `size`.
pub fn run(strategy: Strategy, size: u32) -> i64 {
    let mut rt = Runtime::new(strategy);
    let fam = rt.family();
    let m_sum = rt.method("sum");
    assert_eq!(m_sum, M_SUM);
    let node = rt
        .class("TreeNode", fam)
        .fields(&["left", "right", "value"])
        .method(M_SUM, |rt, r, _| {
            let mut t = rt.get(r, "value").int();
            if let Some(l) = rt.get(r, "left").obj() {
                t += rt.call(l, M_SUM, &[]).int();
            }
            if let Some(rr) = rt.get(r, "right").obj() {
                t += rt.call(rr, M_SUM, &[]).int();
            }
            Val::Int(t)
        })
        .build();
    fn build(rt: &mut Runtime, node: jns_rt::ClassId, h: u32) -> jns_rt::ObjRef {
        let n = rt.alloc(node);
        rt.set(n, "value", Val::Int(1));
        if h > 0 {
            let l = build(rt, node, h - 1);
            let r = build(rt, node, h - 1);
            rt.set(n, "left", Val::Obj(l));
            rt.set(n, "right", Val::Obj(r));
        }
        n
    }
    let root = build(&mut rt, node, size);
    rt.call(root, M_SUM, &[]).int()
}
