//! `perimeter`: perimeter of a region stored as a quadtree, computed by
//! recursive dispatch over Black/White/Grey node classes — the kernel that
//! leans hardest on subtype dispatch.

use jns_rt::{ClassId, MethodId, Runtime, Strategy, Val};

const M_PERIM: MethodId = MethodId(0);
const M_COLOR: MethodId = MethodId(1);

/// Runs perimeter on a quadtree of depth `size` over a disk image.
pub fn run(strategy: Strategy, size: u32) -> i64 {
    let mut rt = Runtime::new(strategy);
    let fam = rt.family();
    let m_perim = rt.method("perimeter");
    let m_color = rt.method("color");
    assert_eq!((m_perim, m_color), (M_PERIM, M_COLOR));
    // color(): 0 = white, 1 = black, 2 = grey.
    let white = rt
        .class("White", fam)
        .fields(&["sz"])
        .method(M_PERIM, |_rt, _r, _| Val::Int(0))
        .method(M_COLOR, |_rt, _r, _| Val::Int(0))
        .build();
    let black = rt
        .class("Black", fam)
        .fields(&["sz"])
        .method(M_PERIM, |rt, r, _| {
            // Contributes its full boundary (the neighbour-finding of the
            // original is folded into the grey case below).
            Val::Int(4 * rt.get(r, "sz").int())
        })
        .method(M_COLOR, |_rt, _r, _| Val::Int(1))
        .build();
    let grey = rt
        .class("Grey", fam)
        .fields(&["sz", "nw", "ne", "sw", "se"])
        .method(M_PERIM, |rt, r, _| {
            let mut p = 0;
            let quads = ["nw", "ne", "sw", "se"];
            for f in quads {
                let c = rt.get(r, f).obj().expect("grey has children");
                p += rt.call(c, M_PERIM, &[]).int();
            }
            // Internal borders between black siblings cancel out: subtract
            // 2 * shared side for each adjacent black pair.
            let side = rt.get(r, "sz").int() / 2;
            let pairs = [("nw", "ne"), ("sw", "se"), ("nw", "sw"), ("ne", "se")];
            for (a, b) in pairs {
                let ca = rt.get(r, a).obj().expect("child");
                let cb = rt.get(r, b).obj().expect("child");
                let black_a = rt.call(ca, M_COLOR, &[]).int() == 1;
                let black_b = rt.call(cb, M_COLOR, &[]).int() == 1;
                if black_a && black_b {
                    p -= 2 * side;
                }
            }
            Val::Int(p)
        })
        .method(M_COLOR, |_rt, _r, _| Val::Int(2))
        .build();

    // Build a quadtree over a disk: cell is black iff its centre is inside
    // a circle of radius R centred in the image.
    struct Ctx {
        white: ClassId,
        black: ClassId,
        grey: ClassId,
    }
    fn build(
        rt: &mut Runtime,
        cx: &Ctx,
        x: i64,
        y: i64,
        sz: i64,
        depth: u32,
        full: i64,
    ) -> jns_rt::ObjRef {
        let inside = |px: i64, py: i64| {
            let dx = px - full / 2;
            let dy = py - full / 2;
            dx * dx + dy * dy <= (full * full) / 9
        };
        // Uniform cell or leaf?
        let corners = [
            inside(x, y),
            inside(x + sz - 1, y),
            inside(x, y + sz - 1),
            inside(x + sz - 1, y + sz - 1),
            inside(x + sz / 2, y + sz / 2),
        ];
        let all = corners.iter().all(|&b| b);
        let none = corners.iter().all(|&b| !b);
        if depth == 0 || all || none {
            let class = if corners[4] { cx.black } else { cx.white };
            let n = rt.alloc(class);
            rt.set(n, "sz", Val::Int(sz));
            return n;
        }
        let n = rt.alloc(cx.grey);
        rt.set(n, "sz", Val::Int(sz));
        let h = sz / 2;
        let kids = [
            ("nw", x, y),
            ("ne", x + h, y),
            ("sw", x, y + h),
            ("se", x + h, y + h),
        ];
        for (f, kx, ky) in kids {
            let c = build(rt, cx, kx, ky, h, depth - 1, full);
            rt.set(n, f, Val::Obj(c));
        }
        n
    }

    let full = 1i64 << size;
    let cx = Ctx { white, black, grey };
    let root = build(&mut rt, &cx, 0, 0, full, size, full);
    rt.call(root, M_PERIM, &[]).int()
}
