//! `bh`: Barnes-Hut N-body — bodies inserted into a quadtree, centres of
//! mass computed bottom-up, then one force evaluation per body using the
//! opening-angle criterion.

use crate::util::Lcg;
use jns_rt::{ClassId, MethodId, ObjRef, Runtime, Strategy, Val};

const M_MASS: MethodId = MethodId(0);

const QUADS: [&str; 4] = ["q0", "q1", "q2", "q3"];

/// Runs bh with `size` bodies.
pub fn run(strategy: Strategy, size: u32) -> i64 {
    let mut rt = Runtime::new(strategy);
    let fam = rt.family();
    let m_mass = rt.method("mass");
    assert_eq!(m_mass, M_MASS);
    let body = rt
        .class("Body", fam)
        .fields(&["x", "y", "m", "fx", "fy"])
        .method(M_MASS, |rt, r, _| rt.get(r, "m"))
        .build();
    let cell = rt
        .class("Cell", fam)
        .fields(&["x", "y", "m", "q0", "q1", "q2", "q3", "cx", "cy", "half"])
        .method(M_MASS, |rt, r, _| rt.get(r, "m"))
        .build();

    struct Cx {
        body: ClassId,
        cell: ClassId,
    }

    /// Inserts `b` into the tree rooted at `node` (a Cell).
    fn insert(rt: &mut Runtime, cx: &Cx, node: ObjRef, b: ObjRef) {
        let half = rt.get(node, "half").f();
        let cxx = rt.get(node, "cx").f();
        let cyy = rt.get(node, "cy").f();
        let bx = rt.get(b, "x").f();
        let by = rt.get(b, "y").f();
        let qi = quadrant(bx, by, cxx, cyy);
        let qf = QUADS[qi];
        match rt.get(node, qf).obj() {
            None => rt.set(node, qf, Val::Obj(b)),
            Some(child) => {
                if child.view == cx.cell || rt.is_subclass(child.view, cx.cell) {
                    insert(rt, cx, child, b);
                } else {
                    // split: replace the body leaf with a cell
                    if half < 1e-6 {
                        return; // coincident points: drop
                    }
                    let ncell = rt.alloc(cx.cell);
                    let (nx, ny) = quad_center(cxx, cyy, half, qi);
                    rt.set(ncell, "cx", Val::F(nx));
                    rt.set(ncell, "cy", Val::F(ny));
                    rt.set(ncell, "half", Val::F(half / 2.0));
                    rt.set(node, qf, Val::Obj(ncell));
                    insert(rt, cx, ncell, child);
                    insert(rt, cx, ncell, b);
                }
            }
        }
    }

    fn quadrant(x: f64, y: f64, cx: f64, cy: f64) -> usize {
        match (x >= cx, y >= cy) {
            (false, false) => 0,
            (true, false) => 1,
            (false, true) => 2,
            (true, true) => 3,
        }
    }

    fn quad_center(cx: f64, cy: f64, half: f64, qi: usize) -> (f64, f64) {
        let q = half / 2.0;
        match qi {
            0 => (cx - q, cy - q),
            1 => (cx + q, cy - q),
            2 => (cx - q, cy + q),
            _ => (cx + q, cy + q),
        }
    }

    /// Computes mass and centre of mass bottom-up.
    fn summarise(rt: &mut Runtime, cx: &Cx, node: ObjRef) -> (f64, f64, f64) {
        if node.view == cx.body {
            let m = rt.call(node, M_MASS, &[]).f();
            return (m, rt.get(node, "x").f(), rt.get(node, "y").f());
        }
        let mut m = 0.0;
        let mut wx = 0.0;
        let mut wy = 0.0;
        for qf in QUADS {
            if let Some(c) = rt.get(node, qf).obj() {
                let (cm, cxp, cyp) = summarise(rt, cx, c);
                m += cm;
                wx += cm * cxp;
                wy += cm * cyp;
            }
        }
        if m > 0.0 {
            rt.set(node, "m", Val::F(m));
            rt.set(node, "x", Val::F(wx / m));
            rt.set(node, "y", Val::F(wy / m));
        }
        (m, wx / m.max(1e-12), wy / m.max(1e-12))
    }

    /// Force on body `b` from subtree `node` with opening criterion.
    fn force(rt: &mut Runtime, cx: &Cx, node: ObjRef, b: ObjRef, size: f64) -> (f64, f64) {
        if node.inst == b.inst {
            return (0.0, 0.0);
        }
        let dx = rt.get(node, "x").f() - rt.get(b, "x").f();
        let dy = rt.get(node, "y").f() - rt.get(b, "y").f();
        let d2 = dx * dx + dy * dy + 1e-9;
        let d = d2.sqrt();
        if node.view == cx.body || size / d < 0.5 {
            let m = rt.call(node, M_MASS, &[]).f();
            let f = m / (d2 * d);
            return (f * dx, f * dy);
        }
        let mut fx = 0.0;
        let mut fy = 0.0;
        for qf in QUADS {
            if let Some(c) = rt.get(node, qf).obj() {
                let (cfx, cfy) = force(rt, cx, c, b, size / 2.0);
                fx += cfx;
                fy += cfy;
            }
        }
        (fx, fy)
    }

    let cx = Cx { body, cell };
    let n = size as usize;
    let mut g = Lcg::new(size as u64 + 31337);
    let root = rt.alloc(cell);
    rt.set(root, "cx", Val::F(500.0));
    rt.set(root, "cy", Val::F(500.0));
    rt.set(root, "half", Val::F(500.0));
    let bodies: Vec<_> = (0..n)
        .map(|_| {
            let b = rt.alloc(body);
            rt.set(b, "x", Val::F(g.unit_f64() * 1000.0));
            rt.set(b, "y", Val::F(g.unit_f64() * 1000.0));
            rt.set(b, "m", Val::F(1.0 + g.unit_f64()));
            b
        })
        .collect();
    for &b in &bodies {
        insert(&mut rt, &cx, root, b);
    }
    summarise(&mut rt, &cx, root);
    let mut acc = 0.0;
    for &b in &bodies {
        let (fx, fy) = force(&mut rt, &cx, root, b, 1000.0);
        rt.set(b, "fx", Val::F(fx));
        rt.set(b, "fy", Val::F(fy));
        acc += fx.abs() + fy.abs();
    }
    (acc * 1e4) as i64 + n as i64
}
