//! `em3d`: electromagnetic wave propagation on a bipartite graph of E and
//! H field nodes, each updated from a fixed set of neighbours.

use crate::util::Lcg;
use jns_rt::{MethodId, Runtime, Strategy, Val};

const M_RELAX: MethodId = MethodId(0);
const DEGREE: usize = 3;
const FIELDS: [&str; DEGREE] = ["n0", "n1", "n2"];

/// Runs em3d with `size` nodes per side and a fixed iteration count.
pub fn run(strategy: Strategy, size: u32) -> i64 {
    let mut rt = Runtime::new(strategy);
    let fam = rt.family();
    let m_relax = rt.method("relax");
    assert_eq!(m_relax, M_RELAX);
    let relax: jns_rt::MethodFn = |rt, r, _| {
        let mut acc = 0.0;
        for f in FIELDS {
            if let Some(n) = rt.get(r, f).obj() {
                acc += rt.get(n, "value").f();
            }
        }
        let v = rt.get(r, "value").f();
        let coeff = rt.get(r, "coeff").f();
        rt.set(r, "value", Val::F(v - coeff * acc));
        Val::Nil
    };
    let enode = rt
        .class("ENode", fam)
        .fields(&["value", "coeff", "n0", "n1", "n2"])
        .method(M_RELAX, relax)
        .build();
    let hnode = rt
        .class("HNode", fam)
        .fields(&["value", "coeff", "n0", "n1", "n2"])
        .method(M_RELAX, relax)
        .build();

    let n = size as usize;
    let mut g = Lcg::new(size as u64 * 3 + 7);
    let es: Vec<_> = (0..n).map(|_| rt.alloc(enode)).collect();
    let hs: Vec<_> = (0..n).map(|_| rt.alloc(hnode)).collect();
    for (side, other) in [(&es, &hs), (&hs, &es)] {
        for &node in side.iter() {
            rt.set(node, "value", Val::F(g.unit_f64()));
            rt.set(node, "coeff", Val::F(g.unit_f64() * 0.1));
            for f in FIELDS {
                let t = other[g.below(n as u64) as usize];
                rt.set(node, f, Val::Obj(t));
            }
        }
    }
    for _ in 0..4 {
        for &e in &es {
            rt.call(e, M_RELAX, &[]);
        }
        for &h in &hs {
            rt.call(h, M_RELAX, &[]);
        }
    }
    let mut sum = 0.0;
    for &e in es.iter().chain(hs.iter()) {
        sum += rt.get(e, "value").f();
    }
    (sum * 1e6) as i64
}
