//! Shared helpers for the kernels.

/// A small deterministic linear congruential generator, so kernels are
/// reproducible without external dependencies.
#[derive(Debug, Clone)]
pub struct Lcg(pub u64);

impl Lcg {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Lcg(seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407))
    }

    /// Next pseudo-random u64.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 ^ (self.0 >> 33)
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Lcg::new(42);
        let mut b = Lcg::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_in_range() {
        let mut g = Lcg::new(7);
        for _ in 0..100 {
            let x = g.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
