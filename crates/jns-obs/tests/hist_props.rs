//! Property tests for the log-bucketed histogram: the merge law the
//! serving layer's per-worker shards rely on, the percentile
//! quantisation bound, and exactness of the scalar accessors.

use jns_obs::Histogram;
use proptest::prelude::*;

/// Mixes small exact-region values, mid-range, and huge samples so the
/// linear buckets, several octaves, and saturation paths all get hit.
fn sample_from(seed: u64) -> u64 {
    match seed % 5 {
        0 => seed % 16,                                   // linear region
        1 => seed % 4096,                                 // a few octaves
        2 => seed % 1_000_000,                            // microsecond-latency shaped
        3 => (1u64 << 40).wrapping_add(seed % 1_000_000), // deep octave
        _ => seed,                                        // anything, up to u64::MAX
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging per-shard histograms is *identical* to recording the
    /// union of all samples into one histogram — same counters, same
    /// scalar summaries, same percentiles at every probe point. This is
    /// the invariant that makes `jns-serve`'s per-worker shards lossless.
    #[test]
    fn merge_of_shards_equals_histogram_of_union(
        seeds in prop::collection::vec(any::<u64>(), 0..200),
        n_shards in 1usize..6,
    ) {
        let samples: Vec<u64> = seeds.iter().map(|&s| sample_from(s)).collect();
        let mut union = Histogram::new();
        let mut shards: Vec<Histogram> = (0..n_shards).map(|_| Histogram::new()).collect();
        for (i, &v) in samples.iter().enumerate() {
            union.record(v);
            shards[i % n_shards].record(v);
        }
        let mut merged = Histogram::new();
        for s in &shards {
            merged.merge(s);
        }
        prop_assert_eq!(&merged, &union, "merged shards != union histogram");
        for p in [0.0, 1.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            prop_assert_eq!(merged.percentile(p), union.percentile(p));
        }
    }

    /// The documented quantisation bound: for any sample set and any
    /// percentile, the reported value `r` and the true (sorted-rank)
    /// percentile `t` satisfy `t ≤ r ≤ t + t/16 + 1`.
    #[test]
    fn percentile_is_within_relative_error_bound(
        seeds in prop::collection::vec(any::<u64>(), 1..200),
        p_raw in 0u64..=1000,
    ) {
        let samples: Vec<u64> = seeds.iter().map(|&s| sample_from(s)).collect();
        let mut h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let p = p_raw as f64 / 10.0; // 0.0 ..= 100.0
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
        let t = sorted[rank - 1];
        let r = h.percentile(p);
        prop_assert!(r >= t, "percentile({p}) = {r} under true value {t}");
        let bound = t.saturating_add(t / 16).saturating_add(1);
        prop_assert!(r <= bound, "percentile({p}) = {r} over bound {bound} (t = {t})");
    }

    /// `count`, `sum`, `min`, and `max` are exact (not quantised).
    #[test]
    fn scalar_accessors_are_exact(
        seeds in prop::collection::vec(any::<u64>(), 1..200),
    ) {
        let samples: Vec<u64> = seeds.iter().map(|&s| sample_from(s)).collect();
        let mut h = Histogram::new();
        let mut sum = 0u64;
        for &v in &samples {
            h.record(v);
            sum = sum.saturating_add(v);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.sum(), sum);
        prop_assert_eq!(h.min(), *samples.iter().min().unwrap());
        prop_assert_eq!(h.max(), *samples.iter().max().unwrap());
    }

    /// The JSON encoding round-trips through the parser with the bucket
    /// counts intact (what the quickening pass will read back).
    #[test]
    fn json_round_trip_preserves_buckets(
        seeds in prop::collection::vec(any::<u64>(), 0..100),
    ) {
        let mut h = Histogram::new();
        for &s in &seeds {
            h.record(sample_from(s));
        }
        let doc = jns_obs::json::parse(&h.to_json().to_string()).expect("encodes valid JSON");
        prop_assert_eq!(doc.get("count").and_then(jns_obs::Json::as_u64), Some(h.count()));
        prop_assert_eq!(doc.get("max").and_then(jns_obs::Json::as_u64), Some(h.max()));
        let buckets = doc.get("buckets").and_then(jns_obs::Json::as_arr).expect("buckets");
        let expected = h.nonzero_buckets();
        prop_assert_eq!(buckets.len(), expected.len());
        for (pair, (idx, n)) in buckets.iter().zip(expected) {
            let pair = pair.as_arr().expect("bucket pair");
            prop_assert_eq!(pair[0].as_u64(), Some(idx as u64));
            prop_assert_eq!(pair[1].as_u64(), Some(n));
        }
    }
}
