//! Machine-readable run profiles with a stable JSON schema.
//!
//! A [`RunProfile`] aggregates everything a performance pass wants to
//! consume offline: the flat runtime counters, per-chunk executed-
//! instruction counts, per-site inline-cache hit/miss attribution, and
//! any latency histograms the producing layer collected. The JSON layout
//! is versioned ([`PROFILE_SCHEMA`]) and key order is stable, so the
//! IC-guided quickening pass (ROADMAP item 3) and the bench trajectory
//! can parse profiles from older commits.
//!
//! Schema (`jns-profile/1`):
//!
//! ```json
//! {
//!   "schema": "jns-profile/1",
//!   "backend": "vm" | "treewalk" | "serve",
//!   "program": "<path or workload name>",
//!   "counters": {"steps": …, "allocs": …, …},
//!   "chunks": [{"name": "Class.method", "instructions": …}, …],
//!   "ic_sites": [{"kind": "get|set|call", "site": …, "name": …,
//!                 "hits": …, "misses": …, "entries": …}, …],
//!   "histograms": {"queue_wait_us": {…}, "exec_us": {…}},
//!   "samples": {"stride": …, "taken": …,
//!               "stacks": [{"stack": "main;Pair.map", "count": …}, …]}
//! }
//! ```
//!
//! The `samples` section is *optional* — it appears only when the run
//! had the VM's sampling profiler attached, so pre-existing profiles
//! (and profiler-off runs) are byte-identical to schema revision one.
//! Its `stacks` are collapsed call stacks (chunk names joined by `;`,
//! outermost first), the format flamegraph tooling consumes directly;
//! [`folded_lines`] renders them as a standalone folded file.

use crate::hist::Histogram;
use crate::json::Json;

/// Schema identifier stamped on every profile document.
pub const PROFILE_SCHEMA: &str = "jns-profile/1";

/// Hit/miss attribution for one inline-cache site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IcSiteProfile {
    /// Site kind (`"get"`, `"set"`, `"call"`).
    pub kind: &'static str,
    /// Site index within its kind (matches trace `ic_miss` events).
    pub site: u32,
    /// Human-readable attribution: `chunk+pc op name`.
    pub name: String,
    /// Cache hits at this site.
    pub hits: u64,
    /// Misses (resolutions through the global tables).
    pub misses: u64,
    /// Distinct receiver views cached (polymorphism degree; a site with
    /// `entries == 1` and a cold miss count is a quickening candidate).
    pub entries: u32,
}

impl IcSiteProfile {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kind", self.kind.into()),
            ("site", self.site.into()),
            ("name", self.name.as_str().into()),
            ("hits", self.hits.into()),
            ("misses", self.misses.into()),
            ("entries", self.entries.into()),
        ])
    }
}

/// The sampling profiler's aggregate: collapsed call stacks with hit
/// counts, plus the stride that produced them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileSamples {
    /// Instructions between samples (a sample fires every `stride`
    /// executed VM instructions).
    pub stride: u64,
    /// Total samples taken (equals the sum of all stack counts).
    pub taken: u64,
    /// Collapsed stacks: chunk names joined by `;`, outermost first,
    /// with the number of samples whose stack collapsed to that line.
    /// Sorted by stack string for a deterministic document.
    pub stacks: Vec<(String, u64)>,
}

impl ProfileSamples {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("stride", self.stride.into()),
            ("taken", self.taken.into()),
            (
                "stacks",
                Json::Arr(
                    self.stacks
                        .iter()
                        .map(|(stack, count)| {
                            Json::obj(vec![
                                ("stack", stack.as_str().into()),
                                ("count", (*count).into()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Renders collapsed stacks as a folded-stack file — one
/// `stack;frames;joined count` line each, the input format of
/// `flamegraph.pl` / `inferno-flamegraph`.
pub fn folded_lines(stacks: &[(String, u64)]) -> String {
    let mut out = String::with_capacity(stacks.len() * 48);
    for (stack, count) in stacks {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&count.to_string());
        out.push('\n');
    }
    out
}

/// Validates folded-stack text: at least one line, each of the form
/// `frame[;frame…] count` with non-empty frames and a numeric count.
///
/// # Errors
///
/// Returns a description of the first malformed line (or emptiness).
pub fn validate_folded(text: &str) -> Result<(), String> {
    let mut lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        let (stack, count) = line
            .rsplit_once(' ')
            .ok_or(format!("line {}: expected `stack count`", i + 1))?;
        if stack.is_empty() || stack.split(';').any(str::is_empty) {
            return Err(format!("line {}: empty stack frame", i + 1));
        }
        if count.parse::<u64>().is_err() {
            return Err(format!("line {}: bad count `{count}`", i + 1));
        }
        lines += 1;
    }
    if lines == 0 {
        return Err("no samples (empty folded file)".to_string());
    }
    Ok(())
}

/// One run's (or one pool's) exportable profile.
#[derive(Debug, Default)]
pub struct RunProfile {
    /// Producing engine (`"vm"`, `"treewalk"`, `"serve"`).
    pub backend: String,
    /// The program (file path or internal workload name).
    pub program: String,
    /// Flat runtime counters, in insertion order.
    pub counters: Vec<(&'static str, u64)>,
    /// Per-chunk executed-instruction counts, hottest first.
    pub chunks: Vec<(String, u64)>,
    /// Per-site inline-cache attribution.
    pub ic_sites: Vec<IcSiteProfile>,
    /// Named histograms (e.g. `queue_wait_us`, `exec_us`).
    pub histograms: Vec<(&'static str, Histogram)>,
    /// Sampling-profiler aggregate; `None` (the key is omitted) when
    /// the run had no sampler attached.
    pub samples: Option<ProfileSamples>,
}

impl RunProfile {
    /// Renders the stable-schema JSON document (one line, no trailing
    /// newline).
    pub fn to_json(&self) -> String {
        let mut pairs = vec![
            ("schema", PROFILE_SCHEMA.into()),
            ("backend", self.backend.as_str().into()),
            ("program", self.program.as_str().into()),
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.to_string(), (*v).into()))
                        .collect(),
                ),
            ),
            (
                "chunks",
                Json::Arr(
                    self.chunks
                        .iter()
                        .map(|(name, n)| {
                            Json::obj(vec![
                                ("name", name.as_str().into()),
                                ("instructions", (*n).into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "ic_sites",
                Json::Arr(self.ic_sites.iter().map(IcSiteProfile::to_json).collect()),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.to_string(), h.to_json()))
                        .collect(),
                ),
            ),
        ];
        if let Some(s) = &self.samples {
            pairs.push(("samples", s.to_json()));
        }
        Json::obj(pairs).to_string()
    }
}

/// Validates that `doc` is a well-formed `jns-profile/1` document.
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn validate_profile(doc: &Json) -> Result<(), String> {
    if doc.get("schema").and_then(Json::as_str) != Some(PROFILE_SCHEMA) {
        return Err(format!("schema must be {PROFILE_SCHEMA:?}"));
    }
    for key in ["backend", "program"] {
        if doc.get(key).and_then(Json::as_str).is_none() {
            return Err(format!("missing string field `{key}`"));
        }
    }
    let counters = doc.get("counters").ok_or("missing `counters`")?;
    if !counters.is_obj() {
        return Err("`counters` must be an object".to_string());
    }
    let chunks = doc
        .get("chunks")
        .and_then(Json::as_arr)
        .ok_or("missing `chunks` array")?;
    for c in chunks {
        if c.get("name").and_then(Json::as_str).is_none()
            || c.get("instructions").and_then(Json::as_u64).is_none()
        {
            return Err("chunk entries need `name` and `instructions`".to_string());
        }
    }
    let sites = doc
        .get("ic_sites")
        .and_then(Json::as_arr)
        .ok_or("missing `ic_sites` array")?;
    for s in sites {
        let kind = s.get("kind").and_then(Json::as_str);
        if !matches!(kind, Some("get" | "set" | "call")) {
            return Err("ic_sites entries need kind get|set|call".to_string());
        }
        for key in ["site", "hits", "misses", "entries"] {
            if s.get(key).and_then(Json::as_u64).is_none() {
                return Err(format!("ic_sites entries need numeric `{key}`"));
            }
        }
        if s.get("name").and_then(Json::as_str).is_none() {
            return Err("ic_sites entries need `name`".to_string());
        }
    }
    let hists = doc.get("histograms").ok_or("missing `histograms`")?;
    let Json::Obj(pairs) = hists else {
        return Err("`histograms` must be an object".to_string());
    };
    for (name, h) in pairs {
        for key in ["count", "sum", "min", "max", "p50", "p90", "p99"] {
            if h.get(key).and_then(Json::as_u64).is_none() {
                return Err(format!("histogram `{name}` needs numeric `{key}`"));
            }
        }
        if h.get("buckets").and_then(Json::as_arr).is_none() {
            return Err(format!("histogram `{name}` needs `buckets`"));
        }
    }
    // The sampling-profiler section is optional; when present it must be
    // internally consistent (stack counts sum to `taken`).
    if let Some(s) = doc.get("samples") {
        let taken = s
            .get("taken")
            .and_then(Json::as_u64)
            .ok_or("samples needs numeric `taken`")?;
        if s.get("stride").and_then(Json::as_u64).is_none() {
            return Err("samples needs numeric `stride`".to_string());
        }
        let stacks = s
            .get("stacks")
            .and_then(Json::as_arr)
            .ok_or("samples needs `stacks` array")?;
        let mut sum = 0u64;
        for st in stacks {
            let stack = st
                .get("stack")
                .and_then(Json::as_str)
                .ok_or("stack entries need string `stack`")?;
            if stack.is_empty() || stack.split(';').any(str::is_empty) {
                return Err("stack entries must not have empty frames".to_string());
            }
            sum += st
                .get("count")
                .and_then(Json::as_u64)
                .ok_or("stack entries need numeric `count`")?;
        }
        if sum != taken {
            return Err(format!(
                "samples: stack counts sum to {sum}, `taken` says {taken}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_round_trips_through_validation() {
        let mut h = Histogram::new();
        h.record(120);
        h.record(340);
        let p = RunProfile {
            backend: "vm".into(),
            program: "demo.jns".into(),
            counters: vec![("steps", 42), ("allocs", 7)],
            chunks: vec![("main".into(), 42)],
            ic_sites: vec![IcSiteProfile {
                kind: "get",
                site: 0,
                name: "main+3 get x".into(),
                hits: 9,
                misses: 1,
                entries: 1,
            }],
            histograms: vec![("exec_us", h)],
            samples: None,
        };
        let doc = crate::json::parse(&p.to_json()).unwrap();
        validate_profile(&doc).unwrap();
        assert!(
            doc.get("samples").is_none(),
            "sampler-off profiles omit the samples key entirely"
        );
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("steps"))
                .and_then(Json::as_u64),
            Some(42)
        );
    }

    #[test]
    fn validation_rejects_wrong_schema() {
        let doc = crate::json::parse(r#"{"schema":"nope/9"}"#).unwrap();
        assert!(validate_profile(&doc).is_err());
    }

    #[test]
    fn samples_section_validates_and_renders_folded() {
        let p = RunProfile {
            backend: "vm".into(),
            program: "demo.jns".into(),
            counters: vec![("steps", 200)],
            chunks: vec![("main".into(), 200)],
            ic_sites: Vec::new(),
            histograms: Vec::new(),
            samples: Some(ProfileSamples {
                stride: 100,
                taken: 2,
                stacks: vec![("main".into(), 1), ("main;Pair.map".into(), 1)],
            }),
        };
        let doc = crate::json::parse(&p.to_json()).unwrap();
        validate_profile(&doc).unwrap();

        let folded = folded_lines(&p.samples.as_ref().unwrap().stacks);
        validate_folded(&folded).unwrap();
        assert_eq!(folded, "main 1\nmain;Pair.map 1\n");

        // Inconsistent `taken` is rejected.
        let bad = p.to_json().replace("\"taken\":2", "\"taken\":5");
        let bad_doc = crate::json::parse(&bad).unwrap();
        assert!(validate_profile(&bad_doc).is_err());

        // Malformed folded text is rejected.
        assert!(validate_folded("").is_err());
        assert!(validate_folded("main;; 3\n").is_err());
        assert!(validate_folded("main x\n").is_err());
    }
}
