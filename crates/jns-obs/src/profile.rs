//! Machine-readable run profiles with a stable JSON schema.
//!
//! A [`RunProfile`] aggregates everything a performance pass wants to
//! consume offline: the flat runtime counters, per-chunk executed-
//! instruction counts, per-site inline-cache hit/miss attribution, and
//! any latency histograms the producing layer collected. The JSON layout
//! is versioned ([`PROFILE_SCHEMA`]) and key order is stable, so the
//! IC-guided quickening pass (ROADMAP item 3) and the bench trajectory
//! can parse profiles from older commits.
//!
//! Schema (`jns-profile/1`):
//!
//! ```json
//! {
//!   "schema": "jns-profile/1",
//!   "backend": "vm" | "treewalk" | "serve",
//!   "program": "<path or workload name>",
//!   "counters": {"steps": …, "allocs": …, …},
//!   "chunks": [{"name": "Class.method", "instructions": …}, …],
//!   "ic_sites": [{"kind": "get|set|call", "site": …, "name": …,
//!                 "hits": …, "misses": …, "entries": …}, …],
//!   "histograms": {"queue_wait_us": {…}, "exec_us": {…}}
//! }
//! ```

use crate::hist::Histogram;
use crate::json::Json;

/// Schema identifier stamped on every profile document.
pub const PROFILE_SCHEMA: &str = "jns-profile/1";

/// Hit/miss attribution for one inline-cache site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IcSiteProfile {
    /// Site kind (`"get"`, `"set"`, `"call"`).
    pub kind: &'static str,
    /// Site index within its kind (matches trace `ic_miss` events).
    pub site: u32,
    /// Human-readable attribution: `chunk+pc op name`.
    pub name: String,
    /// Cache hits at this site.
    pub hits: u64,
    /// Misses (resolutions through the global tables).
    pub misses: u64,
    /// Distinct receiver views cached (polymorphism degree; a site with
    /// `entries == 1` and a cold miss count is a quickening candidate).
    pub entries: u32,
}

impl IcSiteProfile {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kind", self.kind.into()),
            ("site", self.site.into()),
            ("name", self.name.as_str().into()),
            ("hits", self.hits.into()),
            ("misses", self.misses.into()),
            ("entries", self.entries.into()),
        ])
    }
}

/// One run's (or one pool's) exportable profile.
#[derive(Debug, Default)]
pub struct RunProfile {
    /// Producing engine (`"vm"`, `"treewalk"`, `"serve"`).
    pub backend: String,
    /// The program (file path or internal workload name).
    pub program: String,
    /// Flat runtime counters, in insertion order.
    pub counters: Vec<(&'static str, u64)>,
    /// Per-chunk executed-instruction counts, hottest first.
    pub chunks: Vec<(String, u64)>,
    /// Per-site inline-cache attribution.
    pub ic_sites: Vec<IcSiteProfile>,
    /// Named histograms (e.g. `queue_wait_us`, `exec_us`).
    pub histograms: Vec<(&'static str, Histogram)>,
}

impl RunProfile {
    /// Renders the stable-schema JSON document (one line, no trailing
    /// newline).
    pub fn to_json(&self) -> String {
        Json::obj(vec![
            ("schema", PROFILE_SCHEMA.into()),
            ("backend", self.backend.as_str().into()),
            ("program", self.program.as_str().into()),
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.to_string(), (*v).into()))
                        .collect(),
                ),
            ),
            (
                "chunks",
                Json::Arr(
                    self.chunks
                        .iter()
                        .map(|(name, n)| {
                            Json::obj(vec![
                                ("name", name.as_str().into()),
                                ("instructions", (*n).into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "ic_sites",
                Json::Arr(self.ic_sites.iter().map(IcSiteProfile::to_json).collect()),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.to_string(), h.to_json()))
                        .collect(),
                ),
            ),
        ])
        .to_string()
    }
}

/// Validates that `doc` is a well-formed `jns-profile/1` document.
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn validate_profile(doc: &Json) -> Result<(), String> {
    if doc.get("schema").and_then(Json::as_str) != Some(PROFILE_SCHEMA) {
        return Err(format!("schema must be {PROFILE_SCHEMA:?}"));
    }
    for key in ["backend", "program"] {
        if doc.get(key).and_then(Json::as_str).is_none() {
            return Err(format!("missing string field `{key}`"));
        }
    }
    let counters = doc.get("counters").ok_or("missing `counters`")?;
    if !counters.is_obj() {
        return Err("`counters` must be an object".to_string());
    }
    let chunks = doc
        .get("chunks")
        .and_then(Json::as_arr)
        .ok_or("missing `chunks` array")?;
    for c in chunks {
        if c.get("name").and_then(Json::as_str).is_none()
            || c.get("instructions").and_then(Json::as_u64).is_none()
        {
            return Err("chunk entries need `name` and `instructions`".to_string());
        }
    }
    let sites = doc
        .get("ic_sites")
        .and_then(Json::as_arr)
        .ok_or("missing `ic_sites` array")?;
    for s in sites {
        let kind = s.get("kind").and_then(Json::as_str);
        if !matches!(kind, Some("get" | "set" | "call")) {
            return Err("ic_sites entries need kind get|set|call".to_string());
        }
        for key in ["site", "hits", "misses", "entries"] {
            if s.get(key).and_then(Json::as_u64).is_none() {
                return Err(format!("ic_sites entries need numeric `{key}`"));
            }
        }
        if s.get("name").and_then(Json::as_str).is_none() {
            return Err("ic_sites entries need `name`".to_string());
        }
    }
    let hists = doc.get("histograms").ok_or("missing `histograms`")?;
    let Json::Obj(pairs) = hists else {
        return Err("`histograms` must be an object".to_string());
    };
    for (name, h) in pairs {
        for key in ["count", "sum", "min", "max", "p50", "p90", "p99"] {
            if h.get(key).and_then(Json::as_u64).is_none() {
                return Err(format!("histogram `{name}` needs numeric `{key}`"));
            }
        }
        if h.get("buckets").and_then(Json::as_arr).is_none() {
            return Err(format!("histogram `{name}` needs `buckets`"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_round_trips_through_validation() {
        let mut h = Histogram::new();
        h.record(120);
        h.record(340);
        let p = RunProfile {
            backend: "vm".into(),
            program: "demo.jns".into(),
            counters: vec![("steps", 42), ("allocs", 7)],
            chunks: vec![("main".into(), 42)],
            ic_sites: vec![IcSiteProfile {
                kind: "get",
                site: 0,
                name: "main+3 get x".into(),
                hits: 9,
                misses: 1,
                entries: 1,
            }],
            histograms: vec![("exec_us", h)],
        };
        let doc = crate::json::parse(&p.to_json()).unwrap();
        validate_profile(&doc).unwrap();
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("steps"))
                .and_then(Json::as_u64),
            Some(42)
        );
    }

    #[test]
    fn validation_rejects_wrong_schema() {
        let doc = crate::json::parse(r#"{"schema":"nope/9"}"#).unwrap();
        assert!(validate_profile(&doc).is_err());
    }
}
