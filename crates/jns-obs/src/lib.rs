//! # jns-obs
//!
//! The observability layer of the J&s runtime: everything the paper's
//! §6.3-style evaluation needs to *measure* the system — without pulling
//! in a single external dependency.
//!
//! Three pieces, used together by `jns-eval`, `jns-vm`, `jns-serve`, and
//! the `jns` CLI:
//!
//! - **[`Histogram`]** — log-bucketed (HDR-style) duration/size
//!   histograms over a fixed-size counter array. Recording is O(1),
//!   merging is element-wise addition (per-worker shards combine into one
//!   pool histogram losslessly), and percentile queries carry a ≤ 6.25%
//!   quantisation bound. `jns-serve` records per-request queue-wait and
//!   execution time per worker and merges at shutdown.
//! - **[`TraceBuffer`] / [`TraceEvent`]** — bounded, timestamped,
//!   structured event buffers (front-end phases, request start/end, GC
//!   runs, inline-cache miss resolutions) drained to JSON Lines via
//!   [`trace::jsonl`]. Every runtime hook is a branch on an `Option`
//!   sink: tracing off means no buffer, no allocation, and byte-identical
//!   outputs and statistics.
//! - **[`RunProfile`]** — stable-schema (`jns-profile/1`) machine-readable
//!   profile export: flat counters, per-chunk instruction counts, per-site
//!   IC hit/miss attribution, histograms, and (optionally) the sampling
//!   profiler's collapsed stacks. This is the input format the IC-guided
//!   quickening pass consumes.
//! - **[`stats`] / [`bench`]** — the measurement discipline behind the
//!   performance trajectory: repeated-run sampling with warmup, robust
//!   median/min/MAD summaries, a noise-tolerant baseline comparator, and
//!   the versioned `jns-bench/2` suite documents (`BENCH_*.json`) the CI
//!   regression gate compares.
//!
//! The [`json`] module is the self-contained writer/parser backing the
//! schemas (and the `obs-check` CI validator).

#![warn(missing_docs)]

pub mod bench;
pub mod hist;
pub mod json;
pub mod profile;
pub mod stats;
pub mod trace;

pub use bench::{compare_docs, validate_bench, BenchDoc, BenchEntry, BenchEnv, BENCH_SCHEMA};
pub use hist::Histogram;
pub use json::Json;
pub use profile::{
    folded_lines, validate_folded, validate_profile, IcSiteProfile, ProfileSamples, RunProfile,
    PROFILE_SCHEMA,
};
pub use stats::{compare, mad, median, sample_us, SampleConfig, Summary, Tolerance, Verdict};
pub use trace::{
    jsonl, merge_events, IcKind, TimedEvent, TraceBuffer, TraceEvent, DEFAULT_TRACE_CAP,
    TRACE_SCHEMA,
};
