//! Log-bucketed duration/size histograms (HDR-style).
//!
//! A [`Histogram`] is a fixed-size array of counters: values below
//! [`Histogram::LINEAR_MAX`] get exact buckets, larger values land in one
//! of 16 sub-buckets per power-of-two octave, bounding the relative
//! quantisation error at 1/16 (6.25%). Recording is two shifts and an
//! increment; merging is element-wise addition, so per-worker shards
//! combine into one pool-wide histogram without locks and without loss —
//! `merge` of shards is *identical* (same counters, same percentiles) to
//! recording the union of values into one histogram, a property the
//! `hist_props` suite pins.
//!
//! Percentile queries return the upper bound of the bucket holding the
//! rank-th value, clamped to the exact observed maximum: the result `r`
//! for true percentile `t` always satisfies `t ≤ r ≤ t·17/16 + 1`.

use crate::json::Json;

/// Sub-bucket bits per octave: 16 sub-buckets, ≤ 6.25% relative error.
const SUB_BITS: u32 = 4;
/// Sub-buckets per octave.
const SUB: usize = 1 << SUB_BITS;
/// Values below this are counted exactly (one bucket per value).
const LINEAR_MAX: u64 = SUB as u64;
/// Total buckets: the linear region plus 16 per octave for the most
/// significant bit running from `SUB_BITS` to 63.
const N_BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// A mergeable log-bucketed histogram of `u64` samples (microseconds,
/// bytes, object counts — unit is the caller's convention).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Box<[u64]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Values below this bound get exact (per-value) buckets.
    pub const LINEAR_MAX: u64 = LINEAR_MAX;

    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0u64; N_BUCKETS].into_boxed_slice(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index of `v`.
    fn index(v: u64) -> usize {
        if v < LINEAR_MAX {
            return v as usize;
        }
        let m = 63 - v.leading_zeros(); // ≥ SUB_BITS
        let sub = ((v >> (m - SUB_BITS)) as usize) & (SUB - 1);
        SUB + (m - SUB_BITS) as usize * SUB + sub
    }

    /// The inclusive upper bound of bucket `idx`.
    fn upper_bound(idx: usize) -> u64 {
        if idx < SUB {
            return idx as u64;
        }
        let octave = (idx - SUB) / SUB;
        let sub = ((idx - SUB) % SUB) as u64;
        let m = octave as u32 + SUB_BITS;
        let lower = (1u64 << m) | (sub << (m - SUB_BITS));
        lower + ((1u64 << (m - SUB_BITS)) - 1)
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Adds every counter of `other` into `self` (shard merging).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-th percentile (`0.0 ..= 100.0`): the upper bound of the
    /// bucket holding the value of rank `ceil(p/100 · count)`, clamped to
    /// the exact observed maximum. Returns 0 on an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::upper_bound(idx).min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(90.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Non-empty buckets as `(index, count)` pairs, ascending by index.
    pub fn nonzero_buckets(&self) -> Vec<(u32, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i as u32, n))
            .collect()
    }

    /// The stable JSON encoding (`count`, `sum`, `min`, `max`, `mean`,
    /// `p50`, `p90`, `p99`, sparse `buckets` of `[index, count]` pairs).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", self.count.into()),
            ("sum", self.sum.into()),
            ("min", self.min().into()),
            ("max", self.max.into()),
            ("mean", self.mean().into()),
            ("p50", self.p50().into()),
            ("p90", self.p90().into()),
            ("p99", self.p99().into()),
            (
                "buckets",
                Json::Arr(
                    self.nonzero_buckets()
                        .into_iter()
                        .map(|(i, n)| Json::Arr(vec![i.into(), n.into()]))
                        .collect(),
                ),
            ),
        ])
    }

    /// One-line human rendering: `p50 … p90 … p99 … max …` with a unit
    /// suffix (used by `jns serve --stats`).
    pub fn render_line(&self, unit: &str) -> String {
        format!(
            "p50 {}{unit}  p90 {}{unit}  p99 {}{unit}  max {}{unit}",
            self.p50(),
            self.p90(),
            self.p99(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_bound_are_consistent() {
        // Every sample's value lies within the bounds of its own bucket.
        for v in (0..4096u64).chain([u64::MAX, u64::MAX / 3, 1 << 40, (1 << 40) + 12345]) {
            let idx = Histogram::index(v);
            assert!(idx < N_BUCKETS, "index in range for {v}");
            let upper = Histogram::upper_bound(idx);
            assert!(v <= upper, "upper bound holds for {v}");
            if idx > 0 {
                let prev_upper = Histogram::upper_bound(idx - 1);
                assert!(v > prev_upper, "lower bound holds for {v}");
            }
        }
    }

    #[test]
    fn bucket_bounds_are_monotone() {
        let mut prev = None;
        for idx in 0..N_BUCKETS {
            let b = Histogram::upper_bound(idx);
            if let Some(p) = prev {
                assert!(b > p, "bounds strictly increase at {idx}");
            }
            prev = Some(b);
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 3, 7, 15] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.percentile(100.0), 15);
        assert_eq!(h.p50(), 3);
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = Histogram::new();
        assert_eq!(
            (h.count(), h.min(), h.max(), h.p50(), h.p99()),
            (0, 0, 0, 0, 0)
        );
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn json_shape() {
        let mut h = Histogram::new();
        h.record(5);
        h.record(1000);
        let j = h.to_json();
        assert_eq!(j.get("count").and_then(Json::as_u64), Some(2));
        assert_eq!(j.get("max").and_then(Json::as_u64), Some(1000));
        assert_eq!(
            j.get("buckets").and_then(Json::as_arr).map(|a| a.len()),
            Some(2)
        );
    }
}
