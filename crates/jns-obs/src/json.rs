//! A minimal JSON value: writer (stable key order) and parser.
//!
//! The observability layer must stay zero-dependency (the build
//! environment has no registry access), so this module provides the
//! small JSON subset the telemetry schemas need: objects with ordered
//! keys, arrays, strings, integers, floats, booleans, and null. The
//! writer preserves insertion order — the profile/trace schemas promise
//! stable key order — and the parser is a plain recursive-descent reader
//! used by the schema-validity tests and the `obs-check` CI binary.

use std::fmt;

/// A JSON value. Numbers written from counters keep full `u64`/`i64`
/// precision; parsed numbers come back as [`Json::Num`] (`f64`), which is
/// exact for every counter the runtime actually emits (< 2^53).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (written exactly).
    UInt(u64),
    /// A signed integer (written exactly).
    Int(i64),
    /// A float (written with enough digits to round-trip).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order (the writer never sorts).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative number, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            Json::Int(n) if *n >= 0 => Some(*n as u64),
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(n) => Some(*n as f64),
            Json::Int(n) => Some(*n as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Whether the value is an object.
    pub fn is_obj(&self) -> bool {
        matches!(self, Json::Obj(_))
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::UInt(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::UInt(n as u64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::UInt(n as u64)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::UInt(n) => write!(f, "{n}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::Num(x) => {
                if x.is_finite() {
                    // `{}` on f64 round-trips in Rust; integers gain `.0`
                    // only through the Num variant, which callers avoid
                    // for counters.
                    write!(f, "{x}")
                } else {
                    f.write_str("null") // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_str(c.encode_utf8(&mut [0u8; 4]))?,
        }
    }
    f.write_str("\"")
}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// Returns a one-line description with a byte offset on malformed input.
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let end = self.pos + 4;
                            let hex = self
                                .bytes
                                .get(self.pos..end)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("bad \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos = end;
                            // Surrogate pairs are not needed by any jns
                            // schema; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                _ => {
                    // Re-scan the full UTF-8 character from the source.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| format!("invalid UTF-8 at byte {start}"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let v = Json::obj(vec![
            ("a", Json::UInt(7)),
            ("b", Json::Str("x\"y\n".into())),
            ("c", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("d", Json::Int(-3)),
        ]);
        let text = v.to_string();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn key_order_is_preserved() {
        let v = Json::obj(vec![("z", 1u64.into()), ("a", 2u64.into())]);
        assert_eq!(v.to_string(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn u64_counters_round_trip_exactly() {
        let big = u64::MAX;
        let text = Json::UInt(big).to_string();
        assert_eq!(parse(&text).unwrap().as_u64(), Some(big));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,").is_err());
        assert!(parse("\"oops").is_err());
    }
}
