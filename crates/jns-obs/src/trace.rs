//! Bounded structured trace buffers with JSONL export.
//!
//! A [`TraceBuffer`] is a per-worker (or per-run) append-only event
//! buffer: each [`TraceEvent`] is stamped with microseconds since the
//! buffer's shared origin instant at push time. The buffer is *bounded* —
//! once `cap` events are held, further pushes are counted as dropped
//! instead of growing memory — so tracing a long-running worker can never
//! balloon the process.
//!
//! The runtime keeps every trace hook behind a branch on an `Option`
//! sink: with tracing disabled no buffer exists, nothing allocates, and
//! outputs plus statistics are byte-identical to a build without the
//! hooks (the `observability` differential suite pins this).
//!
//! Export is JSON Lines: [`jsonl`] renders a header line carrying the
//! schema id ([`TRACE_SCHEMA`]) followed by one object per event, sorted
//! by timestamp when buffers from several workers are merged.

use crate::json::Json;
use std::time::Instant;

/// Schema identifier stamped on the JSONL header line.
pub const TRACE_SCHEMA: &str = "jns-trace/1";

/// Which kind of inline-cache site missed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IcKind {
    /// A field-read site.
    FieldGet,
    /// A field-write site.
    FieldSet,
    /// A method-call site.
    Call,
}

impl IcKind {
    /// The stable schema string (`"get"`, `"set"`, `"call"`).
    pub fn as_str(self) -> &'static str {
        match self {
            IcKind::FieldGet => "get",
            IcKind::FieldSet => "set",
            IcKind::Call => "call",
        }
    }
}

/// One structured runtime event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A front-end phase completed (`parse`, `check`, `lower`).
    Phase {
        /// Phase name.
        name: &'static str,
        /// Wall-clock duration in microseconds.
        micros: u64,
    },
    /// A serving-layer request was picked up by a worker.
    RequestStart {
        /// Caller-chosen request id.
        id: u64,
    },
    /// A serving-layer request finished.
    RequestEnd {
        /// Caller-chosen request id.
        id: u64,
        /// Whether the request completed without a runtime error.
        ok: bool,
        /// Time spent waiting in the bounded queue, microseconds.
        queue_us: u64,
        /// Execution time on the worker VM, microseconds.
        exec_us: u64,
    },
    /// The tracing collector ran on the shared heap.
    Gc {
        /// Collection kind: `"minor"` (nursery-only) or `"major"` (full
        /// mark-compact). A `&'static str` rather than the collector's
        /// own enum so this crate stays dependency-free of `jns-eval`.
        kind: &'static str,
        /// Objects reclaimed by this collection.
        reclaimed: u64,
        /// Objects live after the collection.
        live: u64,
        /// High-water mark of live objects so far.
        peak_live: u64,
        /// Stop-the-world pause for this collection, microseconds.
        pause_us: u64,
    },
    /// An inline-cache site missed and resolved through the global tables.
    IcMiss {
        /// Site kind.
        kind: IcKind,
        /// Site index (matches `ic_sites[].site` in the profile schema).
        site: u32,
        /// Receiver view (raw class id) that caused the resolution.
        view: u32,
    },
}

impl TraceEvent {
    /// The stable `ev` tag of this event.
    pub fn tag(&self) -> &'static str {
        match self {
            TraceEvent::Phase { .. } => "phase",
            TraceEvent::RequestStart { .. } => "request_start",
            TraceEvent::RequestEnd { .. } => "request_end",
            TraceEvent::Gc { .. } => "gc",
            TraceEvent::IcMiss { .. } => "ic_miss",
        }
    }

    /// The event-specific JSON fields, in stable order.
    fn fields(&self) -> Vec<(&'static str, Json)> {
        match self {
            TraceEvent::Phase { name, micros } => {
                vec![("name", (*name).into()), ("micros", (*micros).into())]
            }
            TraceEvent::RequestStart { id } => vec![("id", (*id).into())],
            TraceEvent::RequestEnd {
                id,
                ok,
                queue_us,
                exec_us,
            } => vec![
                ("id", (*id).into()),
                ("ok", (*ok).into()),
                ("queue_us", (*queue_us).into()),
                ("exec_us", (*exec_us).into()),
            ],
            TraceEvent::Gc {
                kind,
                reclaimed,
                live,
                peak_live,
                pause_us,
            } => vec![
                ("kind", (*kind).into()),
                ("reclaimed", (*reclaimed).into()),
                ("live", (*live).into()),
                ("peak_live", (*peak_live).into()),
                ("pause_us", (*pause_us).into()),
            ],
            TraceEvent::IcMiss { kind, site, view } => vec![
                ("kind", kind.as_str().into()),
                ("site", (*site).into()),
                ("view", (*view).into()),
            ],
        }
    }
}

/// A [`TraceEvent`] with its timestamp and originating worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedEvent {
    /// Microseconds since the buffer's origin instant.
    pub t_us: u64,
    /// Worker index the event came from (`None` for single-run traces).
    pub worker: Option<u32>,
    /// The event.
    pub event: TraceEvent,
}

impl TimedEvent {
    /// Renders one JSONL line (no trailing newline): `t_us`, optional
    /// `worker`, the `ev` tag, then the event fields.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(&str, Json)> = vec![("t_us", self.t_us.into())];
        if let Some(w) = self.worker {
            pairs.push(("worker", w.into()));
        }
        pairs.push(("ev", self.event.tag().into()));
        pairs.extend(self.event.fields());
        Json::obj(pairs)
    }
}

/// A bounded, timestamped event buffer (one per worker or per run).
#[derive(Debug)]
pub struct TraceBuffer {
    origin: Instant,
    worker: Option<u32>,
    cap: usize,
    events: Vec<TimedEvent>,
    dropped: u64,
}

/// Default per-buffer capacity (events kept before dropping).
pub const DEFAULT_TRACE_CAP: usize = 65_536;

impl Default for TraceBuffer {
    fn default() -> Self {
        TraceBuffer::new(DEFAULT_TRACE_CAP)
    }
}

impl TraceBuffer {
    /// A buffer with its own origin (timestamps start at ~0).
    pub fn new(cap: usize) -> Self {
        TraceBuffer::with_origin(Instant::now(), cap)
    }

    /// A buffer stamping times relative to a shared `origin` — every
    /// worker of one pool uses the same origin so merged events order
    /// globally.
    pub fn with_origin(origin: Instant, cap: usize) -> Self {
        TraceBuffer {
            origin,
            worker: None,
            cap: cap.max(1),
            events: Vec::new(),
            dropped: 0,
        }
    }

    /// Tags every subsequent event (and the existing ones) with a worker
    /// index.
    pub fn for_worker(origin: Instant, worker: u32, cap: usize) -> Self {
        let mut b = TraceBuffer::with_origin(origin, cap);
        b.worker = Some(worker);
        b
    }

    /// Appends one event stamped with the current time; counts it as
    /// dropped instead once the buffer is full.
    pub fn push(&mut self, event: TraceEvent) {
        if self.events.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        let t_us = self.origin.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.events.push(TimedEvent {
            t_us,
            worker: self.worker,
            event,
        });
    }

    /// Events held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are held.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped after the buffer filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The held events, in push order.
    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }

    /// Consumes the buffer into its events.
    pub fn into_events(self) -> Vec<TimedEvent> {
        self.events
    }
}

/// Renders events as JSON Lines: a header object
/// (`{"ev":"trace_start","schema":…,"events":…,"dropped":…}`) followed by
/// one line per event. `dropped` is the caller-accumulated drop count
/// across every merged buffer.
pub fn jsonl(events: &[TimedEvent], dropped: u64) -> String {
    let mut out = String::with_capacity(64 + events.len() * 64);
    let header = Json::obj(vec![
        ("ev", "trace_start".into()),
        ("schema", TRACE_SCHEMA.into()),
        ("events", events.len().into()),
        ("dropped", dropped.into()),
    ]);
    out.push_str(&header.to_string());
    out.push('\n');
    for e in events {
        out.push_str(&e.to_json().to_string());
        out.push('\n');
    }
    out
}

/// Merges per-worker event vectors into one stream ordered by timestamp
/// (ties keep worker order, so the merge is deterministic).
pub fn merge_events(mut shards: Vec<Vec<TimedEvent>>) -> Vec<TimedEvent> {
    let mut all: Vec<TimedEvent> = shards.drain(..).flatten().collect();
    all.sort_by_key(|e| (e.t_us, e.worker));
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_buffer_counts_drops() {
        let mut b = TraceBuffer::new(2);
        for i in 0..5 {
            b.push(TraceEvent::RequestStart { id: i });
        }
        assert_eq!(b.len(), 2);
        assert_eq!(b.dropped(), 3);
    }

    #[test]
    fn jsonl_lines_parse_and_carry_schema() {
        let mut b = TraceBuffer::for_worker(Instant::now(), 3, 16);
        b.push(TraceEvent::RequestStart { id: 1 });
        b.push(TraceEvent::Gc {
            kind: "minor",
            reclaimed: 10,
            live: 2,
            peak_live: 12,
            pause_us: 4,
        });
        let text = jsonl(b.events(), b.dropped());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let header = crate::json::parse(lines[0]).unwrap();
        assert_eq!(
            header.get("schema").and_then(Json::as_str),
            Some(TRACE_SCHEMA)
        );
        for line in &lines[1..] {
            let v = crate::json::parse(line).unwrap();
            assert!(v.get("t_us").is_some());
            assert_eq!(v.get("worker").and_then(Json::as_u64), Some(3));
            assert!(v.get("ev").and_then(Json::as_str).is_some());
        }
    }

    #[test]
    fn merged_events_are_time_ordered() {
        let origin = Instant::now();
        let mut a = TraceBuffer::for_worker(origin, 0, 8);
        let mut b = TraceBuffer::for_worker(origin, 1, 8);
        a.push(TraceEvent::RequestStart { id: 0 });
        b.push(TraceEvent::RequestStart { id: 1 });
        a.push(TraceEvent::RequestEnd {
            id: 0,
            ok: true,
            queue_us: 1,
            exec_us: 2,
        });
        let merged = merge_events(vec![a.into_events(), b.into_events()]);
        assert_eq!(merged.len(), 3);
        assert!(merged.windows(2).all(|w| w[0].t_us <= w[1].t_us));
    }
}
