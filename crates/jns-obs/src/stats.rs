//! Robust summary statistics and repeated-run sampling for the bench
//! trajectory.
//!
//! Benchmark numbers from shared CI runners are noisy; a single timed
//! pass is worthless as a regression signal. This module provides the
//! measurement discipline the `jns bench` driver and `jns bench-serve`
//! share:
//!
//! - [`sample_us`] — run a workload `warmup` times unmeasured (to fill
//!   inline caches, lazy tables, and the allocator), then `runs` times
//!   measured, returning per-run wall-clock microseconds.
//! - [`median`] / [`min`] / [`mad`] — order statistics that ignore
//!   outliers: the median is the pinned number, the MAD (median absolute
//!   deviation) is the noise scale.
//! - [`compare`] — a "changed vs baseline" verdict that only calls a
//!   difference real when it exceeds *both* a relative tolerance band
//!   and a multiple of the observed noise, so one descheduled run
//!   cannot fail CI.

use std::time::Instant;

/// How many runs to sample and how many unmeasured warmup passes to
/// discard first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleConfig {
    /// Unmeasured passes before sampling begins (cache/JIT-style warmup;
    /// for the VM this fills inline caches, layouts, and memo tables).
    pub warmup: u32,
    /// Measured passes; each contributes one sample.
    pub runs: u32,
}

impl Default for SampleConfig {
    fn default() -> Self {
        SampleConfig { warmup: 1, runs: 5 }
    }
}

/// Runs `f` `cfg.warmup` times unmeasured, then `cfg.runs` times
/// measured, returning one wall-clock duration in microseconds per
/// measured run (at least one run is always measured).
pub fn sample_us(cfg: SampleConfig, mut f: impl FnMut()) -> Vec<u64> {
    for _ in 0..cfg.warmup {
        f();
    }
    let runs = cfg.runs.max(1);
    let mut out = Vec::with_capacity(runs as usize);
    for _ in 0..runs {
        let start = Instant::now();
        f();
        out.push(start.elapsed().as_micros().min(u64::MAX as u128) as u64);
    }
    out
}

/// The median of `xs` (average of the two middle elements for even
/// lengths, rounding down). Returns 0 for an empty slice.
pub fn median(xs: &[u64]) -> u64 {
    if xs.is_empty() {
        return 0;
    }
    let mut v = xs.to_vec();
    v.sort_unstable();
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        // Midpoint without overflow.
        let a = v[n / 2 - 1];
        let b = v[n / 2];
        a / 2 + b / 2 + (a % 2 + b % 2) / 2
    }
}

/// The smallest sample (0 when empty).
pub fn min(xs: &[u64]) -> u64 {
    xs.iter().copied().min().unwrap_or(0)
}

/// The median absolute deviation from the median: a robust noise scale
/// (unlike the standard deviation, one wild outlier barely moves it).
/// Returns 0 for slices shorter than 2.
pub fn mad(xs: &[u64]) -> u64 {
    if xs.len() < 2 {
        return 0;
    }
    let m = median(xs);
    let devs: Vec<u64> = xs.iter().map(|&x| x.abs_diff(m)).collect();
    median(&devs)
}

/// A benchmark's robust summary: the raw samples plus the three order
/// statistics the trajectory pins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Summary {
    /// Per-run samples, in run order (microseconds by convention).
    pub samples: Vec<u64>,
    /// Median sample — the pinned number.
    pub median: u64,
    /// Smallest sample — the "quiet machine" bound.
    pub min: u64,
    /// Median absolute deviation — the noise scale.
    pub mad: u64,
}

impl Summary {
    /// Computes the summary of `samples`.
    pub fn of(samples: Vec<u64>) -> Summary {
        let (m, mn, md) = (median(&samples), min(&samples), mad(&samples));
        Summary {
            samples,
            median: m,
            min: mn,
            mad: md,
        }
    }
}

/// How big a difference must be before [`compare`] calls it real.
///
/// A change is a regression only when the new median exceeds the old by
/// more than **all** of: `frac` of the old median, `mad_sigmas` times
/// the larger MAD, and `abs_floor_us`. The absolute floor stops
/// microsecond-scale benchmarks from "regressing" by timer jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Relative band as a fraction of the old median (0.25 = 25%).
    pub frac: f64,
    /// Noise band in MAD multiples (the larger of old/new MAD).
    pub mad_sigmas: f64,
    /// Absolute floor, microseconds.
    pub abs_floor_us: u64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            frac: 0.25,
            mad_sigmas: 4.0,
            abs_floor_us: 50,
        }
    }
}

impl Tolerance {
    /// A tolerance with relative band `frac` and default noise handling.
    pub fn with_frac(frac: f64) -> Self {
        Tolerance {
            frac,
            ..Tolerance::default()
        }
    }

    /// The one-sided band around `old` that [`compare`] treats as
    /// unchanged, given both summaries' noise.
    fn band(&self, old: &Summary, new: &Summary) -> u64 {
        let rel = (old.median as f64 * self.frac.max(0.0)) as u64;
        let noise = (self.mad_sigmas.max(0.0) * old.mad.max(new.mad) as f64) as u64;
        rel.max(noise).max(self.abs_floor_us)
    }
}

/// The outcome of one baseline comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// New median is below the baseline by more than the tolerance band.
    Improved,
    /// Within the tolerance band.
    Unchanged,
    /// New median exceeds the baseline by more than the tolerance band.
    Regressed,
}

impl Verdict {
    /// Stable lower-case label (`"improved"`, `"unchanged"`,
    /// `"regressed"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Improved => "improved",
            Verdict::Unchanged => "unchanged",
            Verdict::Regressed => "regressed",
        }
    }
}

/// Compares a new summary against a baseline: lower is better (samples
/// are durations). See [`Tolerance`] for what counts as a real change.
pub fn compare(old: &Summary, new: &Summary, tol: &Tolerance) -> Verdict {
    let band = tol.band(old, new);
    if new.median > old.median.saturating_add(band) {
        Verdict::Regressed
    } else if old.median > new.median.saturating_add(band) {
        Verdict::Improved
    } else {
        Verdict::Unchanged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_handles_odd_even_empty() {
        assert_eq!(median(&[]), 0);
        assert_eq!(median(&[7]), 7);
        assert_eq!(median(&[3, 1, 2]), 2);
        assert_eq!(median(&[4, 1, 2, 3]), 2);
        assert_eq!(median(&[u64::MAX, u64::MAX]), u64::MAX);
    }

    #[test]
    fn mad_is_robust_to_one_outlier() {
        // One wild sample barely moves the MAD.
        assert_eq!(mad(&[100, 101, 99, 100, 5000]), 1);
        assert_eq!(mad(&[5]), 0);
    }

    #[test]
    fn sample_us_counts_runs_not_warmup() {
        let mut calls = 0u32;
        let samples = sample_us(SampleConfig { warmup: 2, runs: 3 }, || calls += 1);
        assert_eq!(samples.len(), 3);
        assert_eq!(calls, 5);
    }

    #[test]
    fn compare_flags_only_real_changes() {
        let tol = Tolerance {
            frac: 0.25,
            mad_sigmas: 4.0,
            abs_floor_us: 10,
        };
        let base = Summary::of(vec![1000, 1010, 990, 1000, 1005]);
        // Within 25%: unchanged.
        let wobble = Summary::of(vec![1200, 1210, 1190, 1200, 1205]);
        assert_eq!(compare(&base, &wobble, &tol), Verdict::Unchanged);
        // Far beyond the band: regressed / improved.
        let slow = Summary::of(vec![2000, 2010, 1990, 2000, 2005]);
        assert_eq!(compare(&base, &slow, &tol), Verdict::Regressed);
        assert_eq!(compare(&slow, &base, &tol), Verdict::Improved);
    }

    #[test]
    fn noisy_baselines_widen_the_band() {
        let tol = Tolerance {
            frac: 0.05,
            mad_sigmas: 4.0,
            abs_floor_us: 1,
        };
        // MAD ≈ 300: a +500 shift sits inside 4×MAD even though it is
        // far past the 5% relative band.
        let noisy = Summary::of(vec![700, 1300, 1000, 650, 1350]);
        let shifted = Summary::of(vec![1200, 1800, 1500, 1150, 1850]);
        assert_eq!(compare(&noisy, &shifted, &tol), Verdict::Unchanged);
    }

    #[test]
    fn abs_floor_protects_microbenchmarks() {
        let tol = Tolerance {
            frac: 0.1,
            mad_sigmas: 4.0,
            abs_floor_us: 50,
        };
        // 2µs → 30µs is a 15× "regression" but under the 50µs floor.
        let tiny = Summary::of(vec![2, 2, 3]);
        let jitter = Summary::of(vec![30, 28, 31]);
        assert_eq!(compare(&tiny, &jitter, &tol), Verdict::Unchanged);
    }
}
