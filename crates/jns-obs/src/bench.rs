//! The `jns-bench/2` benchmark-trajectory schema: versioned JSON
//! documents that pin a suite of measured workloads, plus the
//! document-level comparison the CI regression gate runs.
//!
//! Schema (`jns-bench/2`):
//!
//! ```json
//! {
//!   "schema": "jns-bench/2",
//!   "suite": "vm",
//!   "env": {"os": "linux", "arch": "x86_64", "cpus": 4, "debug": false},
//!   "config": {"repeats": 5, "warmup": 1},
//!   "benchmarks": [
//!     {"name": "lambda_translate/vm", "unit": "us", "workload": "lambda",
//!      "backend": "vm", "samples": [812, 799, 805, 801, 808],
//!      "median": 805, "min": 799, "mad": 4},
//!     …
//!   ]
//! }
//! ```
//!
//! Every benchmark carries its raw per-run samples (lower is better;
//! the unit is the entry's convention, `"us"` throughout the repo), so a
//! comparison recomputes the robust statistics instead of trusting the
//! producer. Producers may append extra top-level keys (e.g. the serve
//! suite's `speedup`); validators ignore them. The previous
//! single-shot `jns-bench/1` layout is still accepted by `obs-check`
//! for back-compat but is no longer produced.

use crate::json::Json;
use crate::stats::{self, Summary, Tolerance, Verdict};

/// Schema identifier stamped on every trajectory document.
pub const BENCH_SCHEMA: &str = "jns-bench/2";

/// Where a suite was measured — enough context to judge whether two
/// documents are comparable at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchEnv {
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Available parallelism when measured.
    pub cpus: u64,
    /// Whether the producing binary was a debug build.
    pub debug: bool,
}

impl BenchEnv {
    /// The environment of the current process.
    pub fn current() -> BenchEnv {
        BenchEnv {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cpus: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1),
            debug: cfg!(debug_assertions),
        }
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("os", self.os.as_str().into()),
            ("arch", self.arch.as_str().into()),
            ("cpus", self.cpus.into()),
            ("debug", self.debug.into()),
        ])
    }
}

/// One measured benchmark: a name, the workload/backend it measured,
/// and its per-run samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchEntry {
    /// Stable benchmark id, `workload/variant` by convention — the key
    /// the comparison matches on.
    pub name: String,
    /// Sample unit (`"us"` for wall-clock microseconds).
    pub unit: &'static str,
    /// The corpus workload measured (e.g. `"lambda"`, `"gc_churn"`).
    pub workload: String,
    /// The engine measured (`"vm"`, `"treewalk"`, `"rt"`, `"serve"`).
    pub backend: String,
    /// Per-run samples, lower is better.
    pub samples: Vec<u64>,
}

impl BenchEntry {
    /// The robust summary of this entry's samples.
    pub fn summary(&self) -> Summary {
        Summary::of(self.samples.clone())
    }

    fn to_json(&self) -> Json {
        let s = self.summary();
        Json::obj(vec![
            ("name", self.name.as_str().into()),
            ("unit", self.unit.into()),
            ("workload", self.workload.as_str().into()),
            ("backend", self.backend.as_str().into()),
            (
                "samples",
                Json::Arr(self.samples.iter().map(|&v| v.into()).collect()),
            ),
            ("median", s.median.into()),
            ("min", s.min.into()),
            ("mad", s.mad.into()),
        ])
    }
}

/// One suite's trajectory document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDoc {
    /// Suite id (`"vm"`, `"dispatch"`, `"gc"`, `"serve"`).
    pub suite: String,
    /// Measurement environment.
    pub env: BenchEnv,
    /// Measured passes per benchmark.
    pub repeats: u32,
    /// Unmeasured warmup passes per benchmark.
    pub warmup: u32,
    /// The measured benchmarks, in a stable producer-chosen order.
    pub benchmarks: Vec<BenchEntry>,
    /// Extra top-level facts (e.g. `("speedup", 3.1.into())`), appended
    /// after the required keys; validators ignore them.
    pub extra: Vec<(&'static str, Json)>,
}

impl BenchDoc {
    /// A document for `suite` measured in the current environment.
    pub fn new(suite: &str, repeats: u32, warmup: u32) -> BenchDoc {
        BenchDoc {
            suite: suite.to_string(),
            env: BenchEnv::current(),
            repeats,
            warmup,
            benchmarks: Vec::new(),
            extra: Vec::new(),
        }
    }

    /// Renders the stable-schema JSON document (one line, no trailing
    /// newline).
    pub fn to_json(&self) -> String {
        let mut pairs = vec![
            ("schema", BENCH_SCHEMA.into()),
            ("suite", self.suite.as_str().into()),
            ("env", self.env.to_json()),
            (
                "config",
                Json::obj(vec![
                    ("repeats", self.repeats.into()),
                    ("warmup", self.warmup.into()),
                ]),
            ),
            (
                "benchmarks",
                Json::Arr(self.benchmarks.iter().map(BenchEntry::to_json).collect()),
            ),
        ];
        pairs.extend(self.extra.iter().map(|(k, v)| (*k, v.clone())));
        Json::obj(pairs).to_string()
    }
}

/// Validates that `doc` is a well-formed `jns-bench/2` document.
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn validate_bench(doc: &Json) -> Result<(), String> {
    if doc.get("schema").and_then(Json::as_str) != Some(BENCH_SCHEMA) {
        return Err(format!("schema must be {BENCH_SCHEMA:?}"));
    }
    if doc.get("suite").and_then(Json::as_str).is_none() {
        return Err("missing string `suite`".to_string());
    }
    let env = doc.get("env").ok_or("missing `env`")?;
    for key in ["os", "arch"] {
        if env.get(key).and_then(Json::as_str).is_none() {
            return Err(format!("env needs string `{key}`"));
        }
    }
    if env.get("cpus").and_then(Json::as_u64).is_none() {
        return Err("env needs numeric `cpus`".to_string());
    }
    let cfg = doc.get("config").ok_or("missing `config`")?;
    for key in ["repeats", "warmup"] {
        if cfg.get(key).and_then(Json::as_u64).is_none() {
            return Err(format!("config needs numeric `{key}`"));
        }
    }
    let benches = doc
        .get("benchmarks")
        .and_then(Json::as_arr)
        .ok_or("missing `benchmarks` array")?;
    if benches.is_empty() {
        return Err("`benchmarks` must not be empty".to_string());
    }
    for b in benches {
        let name = b
            .get("name")
            .and_then(Json::as_str)
            .ok_or("benchmark entries need string `name`")?;
        for key in ["unit", "workload", "backend"] {
            if b.get(key).and_then(Json::as_str).is_none() {
                return Err(format!("benchmark `{name}` needs string `{key}`"));
            }
        }
        let samples = b
            .get("samples")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("benchmark `{name}` needs `samples`"))?;
        if samples.is_empty() || samples.iter().any(|s| s.as_u64().is_none()) {
            return Err(format!(
                "benchmark `{name}` needs at least one numeric sample"
            ));
        }
        for key in ["median", "min", "mad"] {
            if b.get(key).and_then(Json::as_u64).is_none() {
                return Err(format!("benchmark `{name}` needs numeric `{key}`"));
            }
        }
    }
    Ok(())
}

/// One benchmark's comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareLine {
    /// Benchmark name (the matching key).
    pub name: String,
    /// Baseline summary, recomputed from the old document's samples.
    pub old: Summary,
    /// New summary, recomputed from the new document's samples.
    pub new: Summary,
    /// Median delta as a signed fraction of the old median
    /// (`0.10` = 10% slower).
    pub delta_frac: f64,
    /// The tolerance-aware verdict.
    pub verdict: Verdict,
}

/// The outcome of comparing two `jns-bench/2` documents.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompareReport {
    /// One row per benchmark present in both documents, in the new
    /// document's order.
    pub lines: Vec<CompareLine>,
    /// Benchmarks only in the baseline (removed or renamed).
    pub missing_in_new: Vec<String>,
    /// Benchmarks only in the new document (added).
    pub added_in_new: Vec<String>,
}

impl CompareReport {
    /// How many compared benchmarks regressed.
    pub fn regressions(&self) -> usize {
        self.lines
            .iter()
            .filter(|l| l.verdict == Verdict::Regressed)
            .count()
    }
}

/// Extracts `(name, samples)` pairs from a validated document.
fn entries(doc: &Json) -> Result<Vec<(String, Vec<u64>)>, String> {
    let benches = doc
        .get("benchmarks")
        .and_then(Json::as_arr)
        .ok_or("missing `benchmarks` array")?;
    benches
        .iter()
        .map(|b| {
            let name = b
                .get("name")
                .and_then(Json::as_str)
                .ok_or("benchmark entry without `name`")?
                .to_string();
            let samples = b
                .get("samples")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("benchmark `{name}` without `samples`"))?
                .iter()
                .map(|s| s.as_u64().ok_or_else(|| format!("`{name}`: bad sample")))
                .collect::<Result<Vec<u64>, String>>()?;
            Ok((name, samples))
        })
        .collect()
}

/// Compares two parsed `jns-bench/2` documents benchmark by benchmark
/// (matched on `name`; statistics recomputed from raw samples).
///
/// # Errors
///
/// Returns the first schema violation of either document — callers must
/// treat that differently from a regression (a broken artifact fails
/// CI even when the gate itself is warn-only).
pub fn compare_docs(old: &Json, new: &Json, tol: &Tolerance) -> Result<CompareReport, String> {
    validate_bench(old).map_err(|e| format!("baseline: {e}"))?;
    validate_bench(new).map_err(|e| format!("new: {e}"))?;
    let old_entries = entries(old)?;
    let new_entries = entries(new)?;
    let mut report = CompareReport::default();
    for (name, new_samples) in &new_entries {
        match old_entries.iter().find(|(n, _)| n == name) {
            Some((_, old_samples)) => {
                let old_s = Summary::of(old_samples.clone());
                let new_s = Summary::of(new_samples.clone());
                let verdict = stats::compare(&old_s, &new_s, tol);
                let delta_frac = if old_s.median > 0 {
                    (new_s.median as f64 - old_s.median as f64) / old_s.median as f64
                } else {
                    0.0
                };
                report.lines.push(CompareLine {
                    name: name.clone(),
                    old: old_s,
                    new: new_s,
                    delta_frac,
                    verdict,
                });
            }
            None => report.added_in_new.push(name.clone()),
        }
    }
    for (name, _) in &old_entries {
        if !new_entries.iter().any(|(n, _)| n == name) {
            report.missing_in_new.push(name.clone());
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn doc_with(samples: &[u64]) -> String {
        let mut d = BenchDoc::new("vm", samples.len() as u32, 1);
        d.benchmarks.push(BenchEntry {
            name: "lambda_translate/vm".into(),
            unit: "us",
            workload: "lambda".into(),
            backend: "vm".into(),
            samples: samples.to_vec(),
        });
        d.to_json()
    }

    #[test]
    fn bench_doc_round_trips_through_validation() {
        let text = doc_with(&[100, 102, 98, 101, 99]);
        let doc = parse(&text).unwrap();
        validate_bench(&doc).unwrap();
        assert_eq!(
            doc.get("benchmarks")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(1)
        );
    }

    #[test]
    fn validation_rejects_v1_and_empty_suites() {
        let v1 = parse(r#"{"schema":"jns-bench/1","workload":"x"}"#).unwrap();
        assert!(validate_bench(&v1).is_err());
        let empty = parse(&BenchDoc::new("vm", 3, 1).to_json()).unwrap();
        assert!(validate_bench(&empty).is_err());
    }

    #[test]
    fn compare_detects_synthetic_regression_and_ignores_noise() {
        let tol = Tolerance {
            frac: 0.25,
            mad_sigmas: 4.0,
            abs_floor_us: 10,
        };
        let base = parse(&doc_with(&[1000, 1010, 990, 1000, 1005])).unwrap();
        let wobble = parse(&doc_with(&[1100, 1110, 1090, 1100, 1105])).unwrap();
        let slow = parse(&doc_with(&[3000, 3030, 2970, 3000, 3015])).unwrap();

        let ok = compare_docs(&base, &wobble, &tol).unwrap();
        assert_eq!(ok.regressions(), 0);
        assert_eq!(ok.lines[0].verdict, Verdict::Unchanged);

        let bad = compare_docs(&base, &slow, &tol).unwrap();
        assert_eq!(bad.regressions(), 1);
        assert_eq!(bad.lines[0].verdict, Verdict::Regressed);
        assert!(bad.lines[0].delta_frac > 1.9, "delta is ~2x");
    }

    #[test]
    fn compare_reports_membership_changes() {
        let tol = Tolerance::default();
        let mut old = BenchDoc::new("vm", 1, 0);
        old.benchmarks.push(BenchEntry {
            name: "gone".into(),
            unit: "us",
            workload: "w".into(),
            backend: "vm".into(),
            samples: vec![10],
        });
        let mut new = BenchDoc::new("vm", 1, 0);
        new.benchmarks.push(BenchEntry {
            name: "fresh".into(),
            unit: "us",
            workload: "w".into(),
            backend: "vm".into(),
            samples: vec![10],
        });
        let old = parse(&old.to_json()).unwrap();
        let new = parse(&new.to_json()).unwrap();
        let r = compare_docs(&old, &new, &tol).unwrap();
        assert_eq!(r.missing_in_new, vec!["gone".to_string()]);
        assert_eq!(r.added_in_new, vec!["fresh".to_string()]);
        assert!(r.lines.is_empty());
    }

    #[test]
    fn compare_rejects_malformed_documents() {
        let tol = Tolerance::default();
        let good = parse(&doc_with(&[10])).unwrap();
        let bad = parse(r#"{"schema":"jns-bench/2"}"#).unwrap();
        assert!(compare_docs(&bad, &good, &tol).is_err());
        assert!(compare_docs(&good, &bad, &tol).is_err());
    }
}
