//! # criterion (offline shim)
//!
//! A dependency-free stand-in for the real `criterion` crate, implementing
//! the subset of the API used by this workspace's benches: `Criterion`,
//! benchmark groups, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter` / `iter_with_setup`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Timing model: each routine is warmed up briefly, then run in batches
//! until a time budget is spent; the shim reports the best and mean
//! per-iteration wall time on stdout. No statistics, plots, or baselines —
//! swap the path dependency for the real crate to regain those. The shim
//! honours `CRITERION_SHIM_BUDGET_MS` (per-benchmark measurement budget,
//! default 300) so CI can keep bench runs short.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level handle, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _parent: self,
            name,
        }
    }

    /// Benches a standalone routine.
    pub fn bench_function(&mut self, id: impl IdLike, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&id.render(), f);
        self
    }
}

/// A named benchmark group.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim ignores measurement time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benches a routine within the group.
    pub fn bench_function(&mut self, id: impl IdLike, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{}", self.name, id.render());
        run_one(&label, f);
        self
    }

    /// Benches a routine parameterised by `input`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.render());
        run_one(&label, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }

    fn render(&self) -> String {
        self.text.clone()
    }
}

/// Things accepted where criterion takes a benchmark id.
pub trait IdLike {
    /// The display form.
    fn render(&self) -> String;
}

impl IdLike for BenchmarkId {
    fn render(&self) -> String {
        BenchmarkId::render(self)
    }
}

impl IdLike for &str {
    fn render(&self) -> String {
        (*self).to_string()
    }
}

impl IdLike for String {
    fn render(&self) -> String {
        self.clone()
    }
}

/// Drives the routine under measurement.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Total time spent inside measured routines.
    elapsed: Duration,
    /// Iterations measured.
    iters: u64,
    /// Best single-iteration time seen.
    best: Option<Duration>,
    /// Measurement budget.
    budget: Duration,
}

fn budget() -> Duration {
    let ms = std::env::var("CRITERION_SHIM_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms)
}

impl Bencher {
    /// Measures `f` repeatedly until the budget is spent.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warmup.
        black_box(f());
        let deadline = Instant::now() + self.budget;
        loop {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed();
            self.elapsed += dt;
            self.iters += 1;
            self.best = Some(self.best.map_or(dt, |b| b.min(dt)));
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    /// Measures `routine` over fresh inputs from `setup`; only the routine
    /// is timed.
    pub fn iter_with_setup<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
    ) {
        black_box(routine(setup()));
        let deadline = Instant::now() + self.budget;
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            let dt = t0.elapsed();
            self.elapsed += dt;
            self.iters += 1;
            self.best = Some(self.best.map_or(dt, |b| b.min(dt)));
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

fn run_one(label: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        budget: budget(),
        ..Bencher::default()
    };
    f(&mut b);
    if b.iters == 0 {
        println!("  {label}: no measurements");
        return;
    }
    let mean = b.elapsed / u32::try_from(b.iters).unwrap_or(u32::MAX);
    let best = b.best.unwrap_or_default();
    println!(
        "  {label}: mean {} best {} ({} iters)",
        fmt(mean),
        fmt(best),
        b.iters
    );
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// Declares a bench group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("CRITERION_SHIM_BUDGET_MS", "5");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("f", 3), &3, |b, &x| {
            b.iter_with_setup(|| x, |v| v * 2)
        });
        g.finish();
    }
}
