//! # proptest (offline shim)
//!
//! A small, dependency-free stand-in for the real `proptest` crate,
//! implementing exactly the subset of the API this workspace uses:
//!
//! - the [`proptest!`] macro with an optional `#![proptest_config(..)]`
//!   header and `arg in strategy` bindings;
//! - [`Strategy`] with `prop_map`, implemented for integer ranges, string
//!   "regex" literals (treated as arbitrary printable strings), tuples,
//!   `prop::collection::vec`, and `prop::sample::select`;
//! - `any::<T>()` for primitives, [`ProptestConfig`], `prop_assert!` /
//!   `prop_assert_eq!`.
//!
//! Generation is pseudo-random but **deterministic**: each test derives its
//! seed from its own name, so failures are reproducible. There is no
//! shrinking — a failing case panics with the generated values visible in
//! the assertion message.
//!
//! The build environment for this repository has no access to crates.io,
//! which is why this shim exists; swap the path dependency for the real
//! crate to regain shrinking and true regex-aware string generation.

/// Deterministic splitmix64 RNG used by all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; 0 when `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// Derives the per-test RNG from the test's name (deterministic).
pub fn test_rng(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::new(h)
}

/// Runner configuration (only `cases` is honoured by the shim).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. The shim has no shrinking: `generate` produces one
/// value per invocation.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for ::std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128).max(1) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for ::std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128 - *self.start() as i128 + 1).max(1) as u64;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

/// String "regex" strategy: the shim ignores the pattern's structure and
/// produces arbitrary printable strings (including some unicode), with the
/// maximum length loosely read from a trailing `{lo,hi}` bound if present.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let max_len = parse_max_len(self).unwrap_or(48);
        let len = rng.below(max_len as u64 + 1) as usize;
        let mut s = String::with_capacity(len);
        for _ in 0..len {
            let c = match rng.below(20) {
                0 => '\u{3bb}',  // λ
                1 => '\u{2264}', // ≤
                2 => '"',
                3 => '\\',
                4 => '\n',
                _ => {
                    // Printable ASCII.
                    char::from(32 + rng.below(95) as u8)
                }
            };
            s.push(c);
        }
        s
    }
}

fn parse_max_len(pattern: &str) -> Option<usize> {
    // Accepts the `...{lo,hi}` suffix form used in this workspace.
    let open = pattern.rfind('{')?;
    let close = pattern.rfind('}')?;
    if close != pattern.len() - 1 || open >= close {
        return None;
    }
    let body = &pattern[open + 1..close];
    let (_, hi) = body.split_once(',')?;
    hi.trim().parse().ok()
}

macro_rules! tuple_strategy {
    ($(($($n:ident $idx:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
}

/// Types with a canonical "arbitrary" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy producing arbitrary values of `T`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The `prop::` namespace (collections and sampling).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// Strategy for `Vec<T>` with a length drawn from `len`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: std::ops::Range<usize>,
        }

        /// Generates vectors of values from `element` with length in `len`.
        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = Strategy::generate(&self.len, rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::{Strategy, TestRng};

        /// Strategy choosing uniformly from a fixed pool.
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            pool: Vec<T>,
        }

        /// Chooses one of `pool` uniformly (the pool must be non-empty).
        pub fn select<T: Clone>(pool: Vec<T>) -> Select<T> {
            assert!(!pool.is_empty(), "select() needs a non-empty pool");
            Select { pool }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                self.pool[rng.below(self.pool.len() as u64) as usize].clone()
            }
        }
    }
}

/// Everything a `use proptest::prelude::*;` consumer expects.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// The property-test macro: runs each body `cases` times with freshly
/// generated bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(stringify!($name));
            for __case in 0..__cfg.cases {
                let _ = __case;
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_rng("ranges");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn determinism() {
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_roundtrip(x in 0usize..10, flip in any::<bool>()) {
            prop_assert!(x < 10);
            let _ = flip;
        }
    }
}
