//! Behavioural tests for the serving layer: thread-safety bounds
//! (compile-time), per-request heap reclamation on reused worker VMs,
//! back-pressure, error isolation, and — on machines with enough cores —
//! the multi-worker throughput win.

use jns_core::{Backend, Compiler, SharedProgram};
use jns_eval::Value;
use jns_serve::{serve_batch, workload, Pool, Request, ServeConfig};
use jns_vm::VmProgram;

/// The ISSUE-2 acceptance bound, enforced at compile time: runtime
/// values and the compiled program cross thread boundaries.
#[test]
fn value_and_vmprogram_are_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    fn assert_send<T: Send>() {}
    assert_send_sync::<Value>();
    assert_send_sync::<VmProgram>();
    assert_send::<SharedProgram>();
}

fn compile(src: &str) -> jns_core::Compiled {
    Compiler::new()
        .with_backend(Backend::Vm)
        .compile(src)
        .expect("test program compiles")
}

#[test]
fn batch_replays_are_identical_and_reclaim_heap() {
    let compiled = compile(&workload::service_dispatch_smoke());
    let expected = compiled.run().expect("single run succeeds");

    let report = serve_batch(&compiled, &ServeConfig::with_workers(2), 12);
    assert_eq!(report.responses.len(), 12);
    assert!(report.uniform(), "outputs diverged: {:?}", report.responses);
    for r in &report.responses {
        assert_eq!(r.output, expected.output, "request {} output", r.id);
        assert_eq!(
            r.stats.semantic(),
            expected.stats.semantic(),
            "request {} semantic stats",
            r.id
        );
    }
    // Every worker that handled a second request must have reclaimed the
    // first request's whole heap, and no request may see a pre-populated
    // heap (reclaimed-at-start equals the previous request's live count).
    let live = report.responses[0].heap_live;
    assert!(live > 0, "workload allocates");
    let total_after_first: u64 = report
        .responses
        .iter()
        .map(|r| r.heap_reclaimed as u64)
        .sum();
    let mut per_worker: std::collections::HashMap<usize, u64> = Default::default();
    for r in &report.responses {
        *per_worker.entry(r.worker).or_default() += 1;
    }
    let expected_reclaims: u64 = per_worker.values().map(|n| (n - 1) * live as u64).sum();
    assert_eq!(total_after_first, expected_reclaims);
}

#[test]
fn runtime_errors_are_isolated_per_request() {
    // Every request fails the same benign cast; the pool must survive
    // and report each failure without poisoning later requests.
    let compiled = compile(
        r#"class A { class C { } class D { } }
           main {
             final A!.C c = new A.C();
             print "before";
             final A.D d = (cast A.D)c;
           }"#,
    );
    let report = serve_batch(&compiled, &ServeConfig::with_workers(2), 6);
    assert_eq!(report.responses.len(), 6);
    for r in &report.responses {
        assert!(!r.is_ok());
        assert_eq!(r.output, vec!["before"], "partial output survives");
        assert!(r.error.as_deref().unwrap().contains("cast failed"));
    }
}

#[test]
fn fuel_limits_apply_per_request_not_per_worker() {
    // If fuel accumulated across requests on a reused worker VM, later
    // requests would spuriously run out.
    let compiled = compile("main { final int x = 1; while (x < 500) { print x; } }");
    let cfg = ServeConfig {
        workers: 1,
        queue_cap: 4,
        fuel: Some(200),
        ..ServeConfig::default()
    };
    let report = serve_batch(&compiled, &cfg, 4);
    for r in &report.responses {
        assert!(r.error.as_deref().unwrap_or("").contains("fuel"));
    }

    let ok = compile("main { print 41 + 1; }");
    let report = serve_batch(&ok, &cfg, 5);
    assert!(report.uniform());
    assert_eq!(report.responses[0].output, vec!["42"]);
}

#[test]
fn bounded_queue_applies_backpressure_without_deadlock() {
    // Submit far more requests than the queue holds; the submitter must
    // block and drain rather than deadlock or drop work.
    let compiled = compile("main { print 7; }");
    let cfg = ServeConfig {
        workers: 2,
        queue_cap: 2,
        ..ServeConfig::default()
    };
    let report = serve_batch(&compiled, &cfg, 64);
    assert_eq!(report.responses.len(), 64);
    let ids: Vec<u64> = report.responses.iter().map(|r| r.id).collect();
    assert_eq!(ids, (0..64).collect::<Vec<u64>>(), "sorted, none lost");
    assert!(
        report.telemetry.queue_high_water <= 2,
        "high-water mark cannot exceed the queue capacity"
    );
    assert!(
        report.telemetry.submit_blocked > 0,
        "64 submits through a 2-slot queue must block at least once"
    );
}

#[test]
fn pool_can_be_driven_incrementally() {
    let compiled = compile("main { print 1 + 1; }");
    let shared = compiled.shared();
    let mut pool = Pool::new(&shared, &ServeConfig::with_workers(2));
    for id in 0..8 {
        pool.submit(Request { id });
    }
    assert_eq!(pool.submitted(), 8);
    let responses = pool.shutdown();
    assert_eq!(responses.len(), 8);
    assert!(responses.iter().all(|r| r.output == vec!["2"]));
}

/// ISSUE-2 acceptance: ≥ 2.5× single-worker throughput at 4 workers on
/// the §2.4 batch. Parallel speedup needs parallel hardware, so the
/// assertion only runs where ≥ 4 cores are available (it is a no-op —
/// with a notice — on smaller machines such as 1-core CI runners).
#[test]
fn four_workers_scale_on_multicore() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let compiled = compile(&workload::service_dispatch(60));
    let requests = 48;

    // Correctness half runs everywhere: 4-worker outputs must match the
    // single-threaded VM byte for byte.
    let expected = compiled.run().expect("single run succeeds");
    let multi = serve_batch(&compiled, &ServeConfig::with_workers(4), requests);
    assert!(multi.uniform());
    assert_eq!(multi.responses[0].output, expected.output);

    if cores < 4 {
        eprintln!("note: {cores} core(s) available; skipping the >=2.5x throughput assertion");
        return;
    }
    let single = serve_batch(&compiled, &ServeConfig::with_workers(1), requests);
    let speedup = multi.throughput_rps() / single.throughput_rps();
    assert!(
        speedup >= 2.5,
        "4 workers reached only {speedup:.2}x over 1 worker \
         ({:.1} vs {:.1} req/s)",
        multi.throughput_rps(),
        single.throughput_rps()
    );
}
