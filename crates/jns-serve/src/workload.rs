//! The §2.4 service-dispatch batch workload, shared by `jns bench-serve`,
//! the serve bench, and the determinism suite.
//!
//! One *request* is one full service lifecycle: build the dispatcher
//! wiring, dispatch a stream of packets, evolve the live system from
//! `service` to `logService` with a single view change (Fig. 4), then
//! dispatch the same stream through the evolved dispatcher. This is the
//! paper's flagship scenario shaped as the unit of work a front-end
//! would replay per connection.

use jns_core::service;

/// The J&s source of one service-dispatch request handling `packets`
/// packets before the evolution and `packets` after it.
pub fn service_dispatch(packets: u32) -> String {
    let main_body = format!(
        r#"
        final service!.SomeService s = new service.SomeService();
        final service!.EchoService e = new service.EchoService();
        final service!.Dispatcher d = new service.Dispatcher {{ s = s, e = e }};
        final Server srv = new Server {{ disp = d }};
        final service!.Packet p0 = new service.Packet {{ kind = 0, payload = "x" }};
        final service!.Packet p1 = new service.Packet {{ kind = 1, payload = "y" }};
        while (s.handled < {packets}) {{
          final str r0 = d.dispatch(p0);
          final str r1 = d.dispatch(p1);
        }}
        srv.evolve();
        final logService!.Dispatcher d2 = (cast logService!.Dispatcher)srv.disp;
        final logService!.Packet q0 = (view logService!.Packet)p0;
        final logService!.Packet q1 = (view logService!.Packet)p1;
        while (s.handled < {packets} * 2) {{
          final str r2 = d2.dispatch(q0);
          final str r3 = d2.dispatch(q1);
        }}
        print d2.dispatch(q0);
        print d2.dispatch(q1);
        print s.handled;"#
    );
    service::program(&main_body)
}

/// A small fixed-size variant for smoke tests and CI.
pub fn service_dispatch_smoke() -> String {
    service_dispatch(16)
}
