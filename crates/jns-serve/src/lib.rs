//! # jns-serve
//!
//! A concurrent serving layer over one compiled J&s program — the
//! paper's §2.4 flagship scenario (a network service whose families
//! evolve while the dispatcher keeps running) taken to its logical
//! deployment shape:
//!
//! - **Compile once.** The program is parsed, checked, and lowered to
//!   bytecode a single time; the immutable [`jns_vm::VmProgram`] is
//!   shared by every worker through an `Arc` (it is `Send + Sync` by
//!   construction).
//! - **A VM per worker.** Each worker thread owns a
//!   [`jns_core::SharedProgram`] handle (shared bytecode + its own
//!   deterministic lazy class table) and one long-lived [`jns_vm::Vm`]
//!   whose monotone caches — inline caches, union layouts, memoised view
//!   changes, interned types and mask sets — stay warm across requests.
//! - **A heap reset per request.** Before each request the worker calls
//!   [`jns_vm::Vm::reset_for_request`], reclaiming the previous
//!   request's whole region of objects (a trivial whole-heap collection
//!   on the shared `jns_eval::Heap`), so worker memory stays flat no
//!   matter how long the pool runs. With [`ServeConfig::heap_limit`]
//!   set, the heap's mark-compact tracing collector additionally bounds
//!   the live heap *within* each request, so one adversarial giant
//!   request cannot grow a worker without bound either
//!   (`Stats::{gc_runs, reclaimed, peak_live}` surface it per response
//!   and in the aggregate).
//!
//! Requests enter through a *bounded* queue (back-pressure instead of
//! unbounded buffering); responses flow back over an unbounded channel,
//! so workers never block on the way out and the submit/collect pair
//! cannot deadlock. [`serve_batch`] is the one-call driver used by the
//! `jns serve` / `jns bench-serve` CLI and the determinism test suite.

#![warn(missing_docs)]

pub mod workload;

use jns_core::{Compiled, SharedProgram};
use jns_eval::Stats;
use jns_obs::{Histogram, TimedEvent, TraceBuffer, TraceEvent};
use std::collections::VecDeque;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Pool sizing and per-request limits.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of worker threads (and worker VMs). At least 1.
    pub workers: usize,
    /// Capacity of the bounded request queue; submitters block (back
    /// pressure) once this many requests are waiting. At least 1.
    pub queue_cap: usize,
    /// Optional per-request fuel limit (VM instructions).
    pub fuel: Option<u64>,
    /// Optional recursion-depth limit per request (method activations
    /// plus nested field initialisers; default
    /// [`jns_eval::DEFAULT_MAX_DEPTH`]). Exceeding it surfaces as a
    /// benign `DepthExceeded` response error, never a worker crash.
    pub max_depth: Option<u32>,
    /// Optional live-heap threshold per worker VM: once this many objects
    /// are live *within* a request, the next allocation first runs a
    /// mark-compact tracing collection (`Stats::{gc_runs, reclaimed,
    /// peak_live}` report it). This bounds worker memory against a single
    /// adversarial giant request — the per-request region reset only
    /// protects *across* requests. `None` disables intra-request GC.
    ///
    /// With a limit set, each worker additionally **auto-sizes** its own
    /// effective limit from an EWMA of the `peak_live` it observes per
    /// request, clamped to this global value — so on mixed workloads a
    /// worker serving small requests keeps a right-sized region instead
    /// of the global worst case, while heavy requests walk the EWMA (and
    /// the effective limit) back up toward the global bound. The chosen
    /// per-worker limits surface in
    /// [`PoolTelemetry::worker_heap_limits`].
    pub heap_limit: Option<usize>,
    /// Optional nursery capacity for generational collection on the
    /// worker VMs (effective only alongside [`ServeConfig::heap_limit`]):
    /// a full nursery triggers a cheap minor collection instead of a
    /// full mark-compact. Defaults from [`jns_core::env_nursery`]
    /// (`JNS_NURSERY`), like the compiler's own default.
    pub nursery: Option<usize>,
    /// When set, every worker VM carries a bounded
    /// [`jns_obs::TraceBuffer`] (request start/end, GC runs, inline-cache
    /// misses), drained into [`ServeReport::trace_events`] at shutdown.
    /// Off by default: the disabled path is a branch on a `None` sink in
    /// each hook, so responses and stats are byte-identical either way.
    pub trace: bool,
    /// Capacity of each worker's trace buffer (events beyond it are
    /// counted as dropped, never reallocated). Only meaningful with
    /// [`ServeConfig::trace`]; defaults to [`jns_obs::DEFAULT_TRACE_CAP`].
    pub trace_cap: usize,
    /// When set, every worker VM runs the sampling profiler at this
    /// instruction stride; per-worker collapsed stacks merge into
    /// [`PoolTelemetry::samples`] at shutdown. `None` (the default)
    /// keeps the dispatch loop's hook a single branch — responses and
    /// stats are byte-identical either way.
    pub sample_stride: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            queue_cap: 128,
            fuel: None,
            max_depth: None,
            heap_limit: None,
            nursery: jns_core::env_nursery(),
            trace: false,
            trace_cap: jns_obs::DEFAULT_TRACE_CAP,
            sample_stride: None,
        }
    }
}

impl ServeConfig {
    /// A config with `workers` workers and defaults otherwise.
    pub fn with_workers(workers: usize) -> Self {
        ServeConfig {
            workers,
            ..Default::default()
        }
    }
}

/// One unit of work: replay the compiled program's entrypoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Caller-chosen id, echoed in the [`Response`].
    pub id: u64,
}

/// The result of one request, produced by one worker VM.
#[derive(Debug, Clone)]
pub struct Response {
    /// The id of the request this answers.
    pub id: u64,
    /// Index of the worker that executed it.
    pub worker: usize,
    /// Lines produced by `print`.
    pub output: Vec<String>,
    /// The final value, rendered the way `print` would show it
    /// (`None` on error).
    pub value: Option<String>,
    /// The runtime error, rendered (`None` on success).
    pub error: Option<String>,
    /// Per-request execution statistics (the worker VM's stats are reset
    /// before every request).
    pub stats: Stats,
    /// Heap objects live at the end of this request.
    pub heap_live: usize,
    /// Heap objects reclaimed by the pre-request region reset (objects
    /// the *previous* request on this worker left behind).
    pub heap_reclaimed: usize,
    /// Time this request waited between submit and a worker picking it
    /// up, microseconds. Stamped when the submitter *enters* the bounded
    /// queue, so back-pressure blocking counts as queue wait.
    pub queue_us: u64,
    /// Time the worker spent executing this request, microseconds
    /// (heap reset + `main`).
    pub exec_us: u64,
}

impl Response {
    /// Whether the request completed without a runtime error.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

// ---------------------------------------------------------------- queue

/// A bounded MPMC queue: `Mutex` + two `Condvar`s (classic bounded
/// buffer). `push` blocks while full, `pop` blocks while empty, `close`
/// wakes everyone and makes `pop` drain-then-`None`.
struct RequestQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

/// Queue entries carry the instant the submitter *entered* [`push`]
/// (before any back-pressure blocking), so a request's measured queue
/// wait includes the time its submitter spent blocked on a full queue.
struct QueueState {
    buf: VecDeque<(Request, Instant)>,
    closed: bool,
    /// Most entries ever waiting at once (post-push high-water mark).
    high_water: usize,
    /// Number of `push` calls that found the queue full and had to block.
    submit_blocked: u64,
}

impl RequestQueue {
    fn new(cap: usize) -> Self {
        RequestQueue {
            state: Mutex::new(QueueState {
                buf: VecDeque::with_capacity(cap),
                closed: false,
                high_water: 0,
                submit_blocked: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Blocks while the queue is full. Returns `false` if the queue was
    /// closed (the request is dropped).
    fn push(&self, req: Request) -> bool {
        let enqueued = Instant::now();
        let mut st = self.state.lock().expect("queue poisoned");
        if st.buf.len() >= self.cap && !st.closed {
            st.submit_blocked += 1;
        }
        while st.buf.len() >= self.cap && !st.closed {
            st = self.not_full.wait(st).expect("queue poisoned");
        }
        if st.closed {
            return false;
        }
        st.buf.push_back((req, enqueued));
        st.high_water = st.high_water.max(st.buf.len());
        self.not_empty.notify_one();
        true
    }

    /// Blocks while the queue is empty and open; `None` once closed and
    /// drained. The returned instant is when the request entered `push`.
    fn pop(&self) -> Option<(Request, Instant)> {
        let mut st = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(entry) = st.buf.pop_front() {
                self.not_full.notify_one();
                return Some(entry);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).expect("queue poisoned");
        }
    }

    fn close(&self) {
        let mut st = self.state.lock().expect("queue poisoned");
        st.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// `(high_water, submit_blocked)` back-pressure gauges.
    fn gauges(&self) -> (usize, u64) {
        let st = self.state.lock().expect("queue poisoned");
        (st.high_water, st.submit_blocked)
    }
}

// ----------------------------------------------------------------- pool

/// Smoothing factor for the per-worker `peak_live` EWMA the heap
/// auto-sizer runs on (weight of the newest request's observation).
const AUTO_SIZE_ALPHA: f64 = 0.3;
/// Headroom multiplier over the smoothed peak when choosing a worker's
/// effective heap limit, so ordinary jitter does not trigger extra
/// collections.
const AUTO_SIZE_HEADROOM: f64 = 1.5;
/// Lower bound for an auto-sized effective heap limit (never squeezed
/// below this, even after a run of near-empty requests).
const AUTO_SIZE_FLOOR: usize = 16;

/// One step of the per-worker heap auto-sizer: folds this request's
/// observed `peak_live` into the EWMA and returns the new effective
/// limit, clamped between [`AUTO_SIZE_FLOOR`] and the global limit.
fn auto_size_step(ewma: &mut Option<f64>, peak_live: u64, global: usize) -> usize {
    let peak = peak_live as f64;
    let e = match *ewma {
        Some(e) => AUTO_SIZE_ALPHA * peak + (1.0 - AUTO_SIZE_ALPHA) * e,
        None => peak,
    };
    *ewma = Some(e);
    let want = (e * AUTO_SIZE_HEADROOM).ceil() as usize;
    want.max(AUTO_SIZE_FLOOR).min(global)
}

/// A running worker pool over one compiled program.
///
/// Workers are spawned eagerly; each owns a cloned [`SharedProgram`]
/// handle and one warm VM. Dropping the pool without calling
/// [`Pool::shutdown`] closes the queue and detaches the workers; prefer
/// `shutdown`, which joins them and returns every response.
pub struct Pool {
    queue: Arc<RequestQueue>,
    workers: Vec<JoinHandle<()>>,
    tx: Option<Sender<Response>>,
    rx: Receiver<Response>,
    submitted: u64,
    telemetry: Arc<Mutex<Vec<Option<WorkerTelemetry>>>>,
    sample_stride: Option<u64>,
}

/// What one worker thread hands back when it exits: its latency
/// histogram shards, request count, and (when tracing) its event buffer.
#[derive(Debug, Default)]
struct WorkerTelemetry {
    queue_wait: Histogram,
    exec: Histogram,
    requests: u64,
    events: Vec<TimedEvent>,
    dropped: u64,
    /// Collapsed sampling-profiler stacks, when sampling was on.
    sample_stacks: Vec<(String, u64)>,
    samples_taken: u64,
    /// The effective heap limit the auto-sizer had settled on when the
    /// worker exited (`None` when running without a heap limit).
    heap_limit: Option<usize>,
}

impl Pool {
    /// Spawns `cfg.workers` worker threads over `shared`.
    pub fn new(shared: &SharedProgram, cfg: &ServeConfig) -> Pool {
        let queue = Arc::new(RequestQueue::new(cfg.queue_cap));
        let (tx, rx) = channel::<Response>();
        let n = cfg.workers.max(1);
        // One shared clock origin so event timestamps from different
        // workers order correctly after the shutdown merge.
        let origin = Instant::now();
        let telemetry = Arc::new(Mutex::new(
            (0..n)
                .map(|_| None)
                .collect::<Vec<Option<WorkerTelemetry>>>(),
        ));
        let mut workers = Vec::with_capacity(n);
        for w in 0..n {
            let queue = Arc::clone(&queue);
            let tx = tx.clone();
            let handle = shared.clone();
            let fuel = cfg.fuel;
            let max_depth = cfg.max_depth;
            let heap_limit = cfg.heap_limit;
            let nursery = cfg.nursery;
            let trace = cfg.trace;
            let trace_cap = cfg.trace_cap;
            let sample_stride = cfg.sample_stride;
            let telemetry = Arc::clone(&telemetry);
            let t = std::thread::Builder::new()
                .name(format!("jns-serve-{w}"))
                .spawn(move || {
                    let mut vm = handle.spawn_vm();
                    if let Some(f) = fuel {
                        // Stats (and with them the step counter the fuel
                        // check reads) reset per request, so one limit
                        // set at spawn time applies to every request.
                        vm = vm.with_fuel(f);
                    }
                    if let Some(d) = max_depth {
                        // The depth counter likewise resets per request.
                        vm = vm.with_max_depth(d);
                    }
                    if let Some(l) = heap_limit {
                        // The threshold survives per-request resets.
                        vm = vm.with_heap_limit(l);
                    }
                    if let Some(n) = nursery {
                        // As does the nursery capacity.
                        vm = vm.with_nursery(n);
                    }
                    if trace {
                        // The buffer survives per-request resets; one
                        // worker accumulates events for its whole life.
                        vm.set_trace(TraceBuffer::for_worker(origin, w as u32, trace_cap));
                    }
                    if let Some(s) = sample_stride {
                        // The sampler likewise survives resets: one
                        // worker accumulates one profile across requests.
                        vm.set_sample_stride(s);
                    }
                    let mut tele = WorkerTelemetry::default();
                    // Per-worker heap auto-sizing state (see
                    // `ServeConfig::heap_limit`).
                    let mut peak_ewma: Option<f64> = None;
                    while let Some((req, enqueued)) = queue.pop() {
                        let queue_us = enqueued.elapsed().as_micros() as u64;
                        if let Some(t) = vm.trace_mut() {
                            t.push(TraceEvent::RequestStart { id: req.id });
                        }
                        let exec_start = Instant::now();
                        let heap_reclaimed = vm.reset_for_request();
                        let (value, error) = match vm.run() {
                            Ok(v) => (Some(vm.display_value(&v)), None),
                            Err(e) => (None, Some(e.to_string())),
                        };
                        let exec_us = exec_start.elapsed().as_micros() as u64;
                        if let Some(t) = vm.trace_mut() {
                            t.push(TraceEvent::RequestEnd {
                                id: req.id,
                                ok: error.is_none(),
                                queue_us,
                                exec_us,
                            });
                        }
                        tele.queue_wait.record(queue_us);
                        tele.exec.record(exec_us);
                        tele.requests += 1;
                        if let Some(global) = heap_limit {
                            // Auto-size this worker's region for the next
                            // request from the traffic it has seen. GC
                            // timing never changes outputs, so this only
                            // moves cost, not behaviour.
                            let eff = auto_size_step(&mut peak_ewma, vm.stats.peak_live, global);
                            vm.set_heap_limit(Some(eff));
                        }
                        let resp = Response {
                            id: req.id,
                            worker: w,
                            output: std::mem::take(&mut vm.output),
                            value,
                            error,
                            stats: vm.stats,
                            heap_live: vm.heap_size(),
                            heap_reclaimed,
                            queue_us,
                            exec_us,
                        };
                        if tx.send(resp).is_err() {
                            break; // collector gone; stop early
                        }
                    }
                    if let Some(buf) = vm.take_trace() {
                        tele.dropped = buf.dropped();
                        tele.events = buf.into_events();
                    }
                    if vm.sample_stride().is_some() {
                        tele.sample_stacks = vm.folded_samples();
                        tele.samples_taken = vm.samples_taken();
                    }
                    tele.heap_limit = vm.heap_limit();
                    telemetry.lock().expect("telemetry poisoned")[w] = Some(tele);
                })
                .expect("spawn jns-serve worker");
            workers.push(t);
        }
        Pool {
            queue,
            workers,
            tx: Some(tx),
            rx,
            submitted: 0,
            telemetry,
            sample_stride: cfg.sample_stride,
        }
    }

    /// Enqueues a request, blocking while the bounded queue is full.
    pub fn submit(&mut self, req: Request) {
        if self.queue.push(req) {
            self.submitted += 1;
        }
    }

    /// Requests submitted so far.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Collects one response if any worker has finished a request.
    pub fn try_collect(&self) -> Option<Response> {
        self.rx.try_recv().ok()
    }

    /// Closes the queue, joins every worker, and returns all remaining
    /// responses (anything not already taken via [`Pool::try_collect`]).
    pub fn shutdown(self) -> Vec<Response> {
        self.shutdown_report().0
    }

    /// Like [`Pool::shutdown`], but also merges every worker's telemetry
    /// shards (latency histograms, request counts, trace events) and the
    /// queue's back-pressure gauges into one [`PoolTelemetry`].
    pub fn shutdown_report(mut self) -> (Vec<Response>, PoolTelemetry) {
        self.queue.close();
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
        drop(self.tx.take()); // after join: workers cloned it anyway
        let mut out: Vec<Response> = self.rx.iter().collect();
        out.sort_by_key(|r| r.id);
        let mut tele = PoolTelemetry::default();
        let (high_water, blocked) = self.queue.gauges();
        tele.queue_high_water = high_water;
        tele.submit_blocked = blocked;
        let mut slots = self.telemetry.lock().expect("telemetry poisoned");
        let mut shards = Vec::with_capacity(slots.len());
        let mut stacks: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
        let mut taken = 0u64;
        for slot in slots.drain(..) {
            let wt = slot.unwrap_or_default(); // worker panicked: no shard
            tele.queue_wait.merge(&wt.queue_wait);
            tele.exec.merge(&wt.exec);
            tele.worker_requests.push(wt.requests);
            tele.worker_heap_limits.push(wt.heap_limit);
            shards.push(wt.events);
            tele.trace_dropped += wt.dropped;
            for (stack, n) in wt.sample_stacks {
                *stacks.entry(stack).or_insert(0) += n;
            }
            taken += wt.samples_taken;
        }
        drop(slots);
        tele.trace_events = jns_obs::merge_events(shards);
        tele.samples = self.sample_stride.map(|stride| jns_obs::ProfileSamples {
            stride,
            taken,
            stacks: stacks.into_iter().collect(),
        });
        (out, tele)
    }
}

/// Pool-level telemetry merged at shutdown from per-worker shards —
/// merging histograms is bucketwise addition, so the merged distribution
/// is exactly the histogram of the union of all per-worker samples.
#[derive(Debug, Default)]
pub struct PoolTelemetry {
    /// Queue-wait latency across every request (submit → worker pickup).
    pub queue_wait: Histogram,
    /// Execution latency across every request (heap reset + `main`).
    pub exec: Histogram,
    /// Requests executed per worker, indexed by worker id.
    pub worker_requests: Vec<u64>,
    /// Each worker's effective heap limit at exit — where the
    /// per-worker auto-sizer settled after clamping its `peak_live`
    /// EWMA to the global [`ServeConfig::heap_limit`] (`None` per entry
    /// when the pool ran without a limit). Indexed by worker id.
    pub worker_heap_limits: Vec<Option<usize>>,
    /// Most requests ever waiting in the bounded queue at once.
    pub queue_high_water: usize,
    /// Number of submits that found the queue full and blocked.
    pub submit_blocked: u64,
    /// All workers' trace events, merged in timestamp order (empty
    /// unless [`ServeConfig::trace`] was set).
    pub trace_events: Vec<TimedEvent>,
    /// Events discarded because some worker's bounded buffer filled.
    pub trace_dropped: u64,
    /// Sampling-profiler collapsed stacks merged across every worker
    /// (stack-wise count addition, so the merged profile is exactly the
    /// profile of the union of all per-worker samples). `None` unless
    /// [`ServeConfig::sample_stride`] was set.
    pub samples: Option<jns_obs::ProfileSamples>,
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.queue.close();
    }
}

// --------------------------------------------------------------- report

/// Everything a batch run produces: per-request responses plus
/// pool-level aggregates.
#[derive(Debug)]
pub struct ServeReport {
    /// All responses, sorted by request id.
    pub responses: Vec<Response>,
    /// Statistics summed across every request.
    pub aggregate: Stats,
    /// Heap objects reclaimed by per-request resets, summed.
    pub heap_reclaimed: u64,
    /// Worker count the batch ran with.
    pub workers: usize,
    /// Wall-clock time from first submit to pool shutdown.
    pub elapsed: Duration,
    /// Latency histograms, back-pressure gauges, per-worker request
    /// counts, and (when tracing) the merged event stream.
    pub telemetry: PoolTelemetry,
}

impl ServeReport {
    /// Completed requests per second.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return f64::INFINITY;
        }
        self.responses.len() as f64 / secs
    }

    /// Whether every response succeeded and produced byte-identical
    /// output and value.
    pub fn uniform(&self) -> bool {
        let Some(first) = self.responses.first() else {
            return true;
        };
        self.responses
            .iter()
            .all(|r| r.is_ok() && r.output == first.output && r.value == first.value)
    }
}

/// Compiles nothing, submits `requests` replays of `compiled`'s
/// entrypoint to a fresh pool, and reports. The program's bytecode is
/// lowered on first use and shared by every worker.
pub fn serve_batch(compiled: &Compiled, cfg: &ServeConfig, requests: u64) -> ServeReport {
    let shared = compiled.shared();
    let start = Instant::now();
    let mut pool = Pool::new(&shared, cfg);
    for id in 0..requests {
        pool.submit(Request { id });
    }
    let (responses, telemetry) = pool.shutdown_report();
    let elapsed = start.elapsed();
    let mut aggregate = Stats::default();
    let mut heap_reclaimed = 0u64;
    for r in &responses {
        aggregate.merge(&r.stats);
        heap_reclaimed += r.heap_reclaimed as u64;
    }
    ServeReport {
        responses,
        aggregate,
        heap_reclaimed,
        workers: cfg.workers.max(1),
        elapsed,
        telemetry,
    }
}
