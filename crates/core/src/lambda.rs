//! The §7.3 **lambda compiler**, written in the J&s surface language.
//!
//! Four families (Fig. 20):
//!
//! ```text
//!        base            λ-calculus AST (Exp, Var, Abs, App)
//!       /    \
//!     sum    pair        each adds one constructor and shares the rest
//!       \    /           of its classes with base (in-place translation)
//!      sumpair           composes both translations with ZERO new
//!                        translation code — only sharing declarations
//! ```
//!
//! `pair` and `sum` further bind the base classes with `translate` methods
//! that rewrite an AST *in place*: nodes whose subtrees are unchanged are
//! re-viewed into the base family (`reconstructAbs`/`reconstructApp`,
//! Fig. 7), so already-simple subtrees are reused with their identity
//! preserved; only `Pair`/`Case` nodes are replaced by church encodings.

/// The `base` family: the plain λ-calculus.
pub const BASE: &str = r#"
class base {
  class Exp {
    str show() { return "?"; }
  }
  class Var extends Exp {
    str x;
    str show() { return this.x; }
  }
  class Abs extends Exp {
    str x;
    Exp e;
    str show() { return "(fn " + this.x + ". " + this.e.show() + ")"; }
  }
  class App extends Exp {
    Exp f;
    Exp a;
    str show() { return "(" + this.f.show() + " " + this.a.show() + ")"; }
  }
}
"#;

/// The `pair` family: `base` + pairs, with in-place translation to `base`
/// (Fig. 7).
pub const PAIR: &str = r#"
class pair extends base {
  class Exp shares base.Exp {
    abstract base!.Exp translate(Translator v);
  }
  class Var extends Exp shares base.Var {
    base!.Exp translate(Translator v) sharing Var = base!.Var {
      return (view base!.Var)this;
    }
  }
  class Abs extends Exp shares base.Abs\e {
    base!.Exp translate(Translator v) {
      final base!.Exp exp = this.e.translate(v);
      return v.reconstructAbs(this, this.x, exp);
    }
  }
  class App extends Exp shares base.App\f\a {
    base!.Exp translate(Translator v) {
      final base!.Exp nf = this.f.translate(v);
      final base!.Exp na = this.a.translate(v);
      return v.reconstructApp(this, nf, na);
    }
  }
  class Pair extends Exp {
    Exp fst;
    Exp snd;
    str show() { return "<" + this.fst.show() + ", " + this.snd.show() + ">"; }
    base!.Exp translate(Translator v) {
      final base!.Exp nf = this.fst.translate(v);
      final base!.Exp ns = this.snd.translate(v);
      // <a, b>  ~~>  (fn p. fn q. fn f. ((f p) q)) a b
      final base!.Exp body = new base.App {
        f = new base.App { f = new base.Var { x = "f" },
                           a = new base.Var { x = "p" } },
        a = new base.Var { x = "q" } };
      final base!.Exp lam = new base.Abs { x = "p", e = new base.Abs {
        x = "q", e = new base.Abs { x = "f", e = body } } };
      return new base.App { f = new base.App { f = lam, a = nf }, a = ns };
    }
  }
  class Fst extends Exp {
    Exp p;
    str show() { return "(fst " + this.p.show() + ")"; }
    base!.Exp translate(Translator v) {
      final base!.Exp np = this.p.translate(v);
      // fst e  ~~>  e (fn p. fn q. p)
      final base!.Exp sel = new base.Abs { x = "p", e = new base.Abs {
        x = "q", e = new base.Var { x = "p" } } };
      return new base.App { f = np, a = sel };
    }
  }
  class Snd extends Exp {
    Exp p;
    str show() { return "(snd " + this.p.show() + ")"; }
    base!.Exp translate(Translator v) {
      final base!.Exp np = this.p.translate(v);
      final base!.Exp sel = new base.Abs { x = "p", e = new base.Abs {
        x = "q", e = new base.Var { x = "q" } } };
      return new base.App { f = np, a = sel };
    }
  }
  class Translator {
    int reusedAbs = 0;
    int reusedApp = 0;
    int rebuilt = 0;
    base!.Abs reconstructAbs(Abs old, str x, base!.Exp exp)
        sharing Abs\e = base!.Abs\e {
      if (old.x == x && old.e == exp) {
        this.reusedAbs = this.reusedAbs + 1;
        final base!.Abs\e temp = (view base!.Abs\e)old;
        temp.e = exp;
        return temp;
      } else {
        this.rebuilt = this.rebuilt + 1;
        return new base.Abs { x = x, e = exp };
      }
    }
    base!.App reconstructApp(App old, base!.Exp nf, base!.Exp na)
        sharing App\f\a = base!.App\f\a {
      if (old.f == nf && old.a == na) {
        this.reusedApp = this.reusedApp + 1;
        final base!.App\f\a temp = (view base!.App\f\a)old;
        temp.f = nf;
        temp.a = na;
        return temp;
      } else {
        this.rebuilt = this.rebuilt + 1;
        return new base.App { f = nf, a = na };
      }
    }
  }
}
"#;

/// The `sum` family: `base` + sums (`Inj1`/`Inj2`/`Case`), with in-place
/// translation to `base`.
pub const SUM: &str = r#"
class sum extends base {
  class Exp shares base.Exp {
    abstract base!.Exp translate(Translator v);
  }
  class Var extends Exp shares base.Var {
    base!.Exp translate(Translator v) sharing Var = base!.Var {
      return (view base!.Var)this;
    }
  }
  class Abs extends Exp shares base.Abs\e {
    base!.Exp translate(Translator v) {
      final base!.Exp exp = this.e.translate(v);
      return v.reconstructAbs(this, this.x, exp);
    }
  }
  class App extends Exp shares base.App\f\a {
    base!.Exp translate(Translator v) {
      final base!.Exp nf = this.f.translate(v);
      final base!.Exp na = this.a.translate(v);
      return v.reconstructApp(this, nf, na);
    }
  }
  class Inj1 extends Exp {
    Exp e;
    str show() { return "(inl " + this.e.show() + ")"; }
    base!.Exp translate(Translator v) {
      final base!.Exp ne = this.e.translate(v);
      // inl e  ~~>  fn l. fn r. l e
      return new base.Abs { x = "l", e = new base.Abs { x = "r",
        e = new base.App { f = new base.Var { x = "l" }, a = ne } } };
    }
  }
  class Inj2 extends Exp {
    Exp e;
    str show() { return "(inr " + this.e.show() + ")"; }
    base!.Exp translate(Translator v) {
      final base!.Exp ne = this.e.translate(v);
      return new base.Abs { x = "l", e = new base.Abs { x = "r",
        e = new base.App { f = new base.Var { x = "r" }, a = ne } } };
    }
  }
  class Case extends Exp {
    Exp scrut;
    Exp onl;
    Exp onr;
    str show() {
      return "(case " + this.scrut.show() + " of " + this.onl.show()
        + " | " + this.onr.show() + ")";
    }
    base!.Exp translate(Translator v) {
      final base!.Exp ns = this.scrut.translate(v);
      final base!.Exp nl = this.onl.translate(v);
      final base!.Exp nr = this.onr.translate(v);
      // case s of l | r  ~~>  (s l) r
      return new base.App { f = new base.App { f = ns, a = nl }, a = nr };
    }
  }
  class Translator {
    int reusedAbs = 0;
    int reusedApp = 0;
    int rebuilt = 0;
    base!.Abs reconstructAbs(Abs old, str x, base!.Exp exp)
        sharing Abs\e = base!.Abs\e {
      if (old.x == x && old.e == exp) {
        this.reusedAbs = this.reusedAbs + 1;
        final base!.Abs\e temp = (view base!.Abs\e)old;
        temp.e = exp;
        return temp;
      } else {
        this.rebuilt = this.rebuilt + 1;
        return new base.Abs { x = x, e = exp };
      }
    }
    base!.App reconstructApp(App old, base!.Exp nf, base!.Exp na)
        sharing App\f\a = base!.App\f\a {
      if (old.f == nf && old.a == na) {
        this.reusedApp = this.reusedApp + 1;
        final base!.App\f\a temp = (view base!.App\f\a)old;
        temp.f = nf;
        temp.a = na;
        return temp;
      } else {
        this.rebuilt = this.rebuilt + 1;
        return new base.App { f = nf, a = na };
      }
    }
  }
}
"#;

/// The `sumpair` family: composes `sum` and `pair` with sharing only —
/// "without a single line of translation code" (§7.3).
pub const SUMPAIR: &str = r#"
class sumpair extends sum & pair adapts base {
}
"#;

/// All four families concatenated.
pub fn families() -> String {
    format!("{BASE}{PAIR}{SUM}{SUMPAIR}")
}

/// A complete program: the four families plus the given `main` body.
pub fn program(main_body: &str) -> String {
    format!("{}\nmain {{\n{}\n}}", families(), main_body)
}

#[cfg(test)]
mod tests {
    use crate::Compiler;

    fn run(main_body: &str) -> Vec<String> {
        let src = super::program(main_body);
        let compiled = Compiler::new()
            .compile(&src)
            .unwrap_or_else(|e| panic!("lambda compiler does not typecheck:\n{e}"));
        compiled
            .run()
            .unwrap_or_else(|e| panic!("runtime: {e}"))
            .output
    }

    #[test]
    fn families_typecheck() {
        let src = super::program("print 1;");
        Compiler::new()
            .compile(&src)
            .map(|_| ())
            .unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn translate_variable_in_place() {
        let out = run("final pair!.Var v = new pair.Var { x = \"y\" };
             final pair!.Translator t = new pair.Translator();
             final base!.Exp b = v.translate(t);
             print b.show();
             print v == b;");
        assert_eq!(out, vec!["y", "true"], "Var is re-viewed, not copied");
    }

    #[test]
    fn translate_pure_lambda_term_reuses_every_node() {
        let out = run(
            "final pair!.Exp id = new pair.Abs { x = \"z\", e = new pair.Var { x = \"z\" } };
             final pair!.Translator t = new pair.Translator();
             final base!.Exp b = id.translate(t);
             print b.show();
             print id == b;
             print t.reusedAbs;
             print t.rebuilt;",
        );
        assert_eq!(out, vec!["(fn z. z)", "true", "1", "0"]);
    }

    #[test]
    fn translate_pair_rebuilds_only_the_pair() {
        let out = run("final pair!.Exp p = new pair.Pair {
               fst = new pair.Var { x = \"a\" },
               snd = new pair.Var { x = \"b\" } };
             final pair!.Translator t = new pair.Translator();
             final base!.Exp b = p.translate(t);
             print b.show();
             print p == b;");
        assert_eq!(
            out,
            vec!["(((fn p. (fn q. (fn f. ((f p) q)))) a) b)", "false"]
        );
    }

    #[test]
    fn abs_over_pair_keeps_binder_identity_when_body_unchanged() {
        // (fn k. k) wrapped around no pair: whole term reused.
        // (fn k. <k,k>): Abs rebuilt because the body changed.
        let out = run("final pair!.Exp f = new pair.Abs { x = \"k\",
               e = new pair.Pair { fst = new pair.Var { x = \"k\" },
                                   snd = new pair.Var { x = \"k\" } } };
             final pair!.Translator t = new pair.Translator();
             final base!.Exp b = f.translate(t);
             print f == b;
             print t.rebuilt > 0;");
        assert_eq!(out, vec!["false", "true"]);
    }

    #[test]
    fn sum_translation_works() {
        let out = run("final sum!.Exp c = new sum.Case {
               scrut = new sum.Inj1 { e = new sum.Var { x = \"v\" } },
               onl = new sum.Var { x = \"f\" },
               onr = new sum.Var { x = \"g\" } };
             final sum!.Translator t = new sum.Translator();
             final base!.Exp b = c.translate(t);
             print b.show();");
        assert_eq!(out, vec!["(((fn l. (fn r. (l v))) f) g)"]);
    }

    #[test]
    fn sumpair_composes_without_translation_code() {
        // A term mixing pairs and sums, translated by code inherited from
        // both families — sumpair itself contains no translation code.
        let out = run("final sumpair!.Exp m = new sumpair.Pair {
               fst = new sumpair.Inj1 { e = new sumpair.Var { x = \"a\" } },
               snd = new sumpair.Var { x = \"b\" } };
             final sumpair!.Translator t = new sumpair.Translator();
             final base!.Exp b = m.translate(t);
             print b.show();");
        assert_eq!(
            out,
            vec!["(((fn p. (fn q. (fn f. ((f p) q)))) (fn l. (fn r. (l a)))) b)"]
        );
    }

    #[test]
    fn base_to_pair_direction_is_trivial() {
        // §3.3: in-place translation from base to pair is a constant-time
        // view change on the root (base!.Exp ⤳ pair!.Exp is inferred).
        let out = run("final base!.Exp term = new base.Abs { x = \"z\",
               e = new base.Var { x = \"z\" } };
             final pair!.Exp p = (view pair!.Exp)term;
             final pair!.Translator t = new pair.Translator();
             final base!.Exp back = p.translate(t);
             print term == p;
             print back == term;");
        assert_eq!(out, vec!["true", "true"]);
    }
}

#[cfg(test)]
mod projection_tests {
    use crate::Compiler;

    fn run(main_body: &str) -> Vec<String> {
        let src = super::program(main_body);
        Compiler::new()
            .compile(&src)
            .unwrap_or_else(|e| panic!("{e}"))
            .run()
            .unwrap_or_else(|e| panic!("runtime: {e}"))
            .output
    }

    #[test]
    fn fst_translates_to_selector_application() {
        let out = run("final pair!.Exp e = new pair.Fst { p = new pair.Pair {
               fst = new pair.Var { x = \"a\" },
               snd = new pair.Var { x = \"b\" } } };
             final pair!.Translator t = new pair.Translator();
             print e.translate(t).show();");
        assert_eq!(
            out,
            vec!["((((fn p. (fn q. (fn f. ((f p) q)))) a) b) (fn p. (fn q. p)))"]
        );
    }

    #[test]
    fn snd_selects_second_component() {
        let out = run("final pair!.Exp e = new pair.Snd { p = new pair.Pair {
               fst = new pair.Var { x = \"a\" },
               snd = new pair.Var { x = \"b\" } } };
             final pair!.Translator t = new pair.Translator();
             print e.translate(t).show();");
        assert!(out[0].ends_with("(fn p. (fn q. q)))"), "{}", out[0]);
    }

    #[test]
    fn nested_translations_share_reconstructed_spines() {
        // fst <x, y> under two Abs binders: binders are reused in place
        // when the body node is reconstructed with identical children.
        let out = run("final pair!.Exp inner = new pair.Var { x = \"w\" };
             final pair!.Exp lam = new pair.Abs { x = \"u\",
               e = new pair.Abs { x = \"v\", e = inner } };
             final pair!.Translator t = new pair.Translator();
             final base!.Exp done = lam.translate(t);
             print done == lam;
             print t.reusedAbs;");
        assert_eq!(out, vec!["true", "2"]);
    }

    #[test]
    fn translator_composes_over_deep_spines() {
        // Build a 10-deep Abs chain over a Pair; only the Pair and the
        // spine above it should be rebuilt.
        let mut term = String::from(
            "new pair.Pair { fst = new pair.Var { x = \"a\" }, snd = new pair.Var { x = \"b\" } }",
        );
        for i in 0..10 {
            term = format!("new pair.Abs {{ x = \"x{i}\", e = {term} }}");
        }
        let out = run(&format!(
            "final pair!.Exp root = {term};
             final pair!.Translator t = new pair.Translator();
             final base!.Exp done = root.translate(t);
             print t.reusedAbs;
             print t.rebuilt;"
        ));
        // Nothing is reusable (the pair changes every enclosing body), so
        // all 10 binders rebuild (the Pair itself is church-encoded
        // directly, outside the reconstruct counters).
        assert_eq!(out, vec!["0", "10"]);
    }
}
