//! # jns-core
//!
//! The public facade of the J&s reproduction (*Sharing Classes Between
//! Families*, Qi & Myers, PLDI 2009): one-call compile/run pipeline plus
//! the paper's flagship case studies written in the J&s surface language
//! (the §7.3 lambda compiler and the §2.4 service-evolution example).
//!
//! Execution is pluggable via [`Backend`]: the tree-walking reference
//! interpreter (`jns-eval`), or the bytecode VM (`jns-vm`) with the
//! paper's §6 machinery — union field layouts, view-keyed inline caches,
//! and memoised view changes. Both backends are observably equivalent;
//! the VM is the fast path.
//!
//! # Examples
//!
//! ```
//! use jns_core::Compiler;
//!
//! let out = Compiler::new()
//!     .compile(
//!         "class A { class C { int x = 41; } }
//!          main { final A.C c = new A.C(); print c.x + 1; }",
//!     )?
//!     .run()?;
//! assert_eq!(out.output, vec!["42"]);
//! # Ok::<(), jns_core::Error>(())
//! ```

#![warn(missing_docs)]

pub mod lambda;
pub mod service;

use std::fmt;

pub use jns_eval::{Machine, RtError, Stats, Value};
pub use jns_syntax::{parse, ParseError, Program};
pub use jns_types::{check, CheckedProgram, TypeError};

/// Any error from the pipeline.
#[derive(Debug)]
pub enum Error {
    /// A lexing/parsing error.
    Parse(ParseError),
    /// One or more type errors.
    Type(Vec<TypeError>),
    /// A runtime error.
    Runtime(RtError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "{e}"),
            Error::Type(es) => {
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        writeln!(f)?;
                    }
                    write!(f, "{e}")?;
                }
                Ok(())
            }
            Error::Runtime(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Self {
        Error::Parse(e)
    }
}

impl From<Vec<TypeError>> for Error {
    fn from(e: Vec<TypeError>) -> Self {
        Error::Type(e)
    }
}

impl From<RtError> for Error {
    fn from(e: RtError) -> Self {
        Error::Runtime(e)
    }
}

/// Which execution engine runs a compiled program.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The tree-walking reference interpreter (`jns-eval`).
    #[default]
    TreeWalk,
    /// The bytecode VM (`jns-vm`): union field layouts, view-keyed inline
    /// caches, memoised view changes.
    Vm,
}

/// The compiler front door.
#[derive(Debug, Default, Clone, Copy)]
pub struct Compiler {
    fuel: Option<u64>,
    infer_constraints: bool,
    backend: Backend,
}

impl Compiler {
    /// Creates a compiler with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Limits execution fuel for [`Compiled::run`].
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = Some(fuel);
        self
    }

    /// Enables automatic inference of method sharing constraints (the
    /// paper's §2.5 future work); inferred constraints still participate
    /// in Q-OK, so modular soundness is preserved.
    pub fn with_inferred_constraints(mut self) -> Self {
        self.infer_constraints = true;
        self
    }

    /// Selects the execution backend for [`Compiled::run`].
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Parses and type-checks `src`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Parse`] or [`Error::Type`].
    pub fn compile(self, src: &str) -> Result<Compiled, Error> {
        let ast = parse(src)?;
        let checked = jns_types::check_with(
            &ast,
            jns_types::CheckOptions {
                infer_constraints: self.infer_constraints,
            },
        )?;
        Ok(Compiled {
            program: checked,
            fuel: self.fuel,
            backend: self.backend,
            bytecode: std::cell::OnceCell::new(),
        })
    }
}

/// A compiled program, ready to run.
#[derive(Debug)]
pub struct Compiled {
    /// The checked program (public: benches poke at the class table).
    pub program: CheckedProgram,
    fuel: Option<u64>,
    backend: Backend,
    /// Lazily lowered bytecode, shared by every VM run of this program.
    bytecode: std::cell::OnceCell<jns_vm::VmProgram>,
}

/// The result of a program run.
#[derive(Debug)]
pub struct RunOutput {
    /// Lines produced by `print`.
    pub output: Vec<String>,
    /// The final value of `main`.
    pub value: Value,
    /// Execution statistics.
    pub stats: Stats,
}

impl Compiled {
    /// Runs `main` on the backend selected at compile time.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Runtime`] on runtime failure (benign ones only for
    /// well-typed programs: cast failure, fuel, stack overflow).
    pub fn run(&self) -> Result<RunOutput, Error> {
        self.run_on(self.backend)
    }

    /// Runs `main` on an explicit backend (used by the differential tests
    /// and benches to drive both engines over one compiled program).
    ///
    /// # Errors
    ///
    /// Same contract as [`Compiled::run`].
    pub fn run_on(&self, backend: Backend) -> Result<RunOutput, Error> {
        match backend {
            Backend::TreeWalk => {
                let mut m = Machine::new(&self.program);
                if let Some(f) = self.fuel {
                    m = m.with_fuel(f);
                }
                let value = m.run()?;
                Ok(RunOutput {
                    output: m.output,
                    value,
                    stats: m.stats,
                })
            }
            Backend::Vm => {
                let code = self.bytecode.get_or_init(|| jns_vm::compile(&self.program));
                let mut vm = jns_vm::Vm::new(&self.program, code);
                if let Some(f) = self.fuel {
                    vm = vm.with_fuel(f);
                }
                let value = vm.run()?;
                Ok(RunOutput {
                    output: std::mem::take(&mut vm.output),
                    value,
                    stats: vm.stats,
                })
            }
        }
    }

    /// Runs an arbitrary `main` body against this program's classes by
    /// recompiling with the given main block. Convenience for harnesses.
    ///
    /// # Errors
    ///
    /// Propagates compile/run errors.
    pub fn run_main(src_classes: &str, main_body: &str) -> Result<RunOutput, Error> {
        let full = format!("{src_classes}\nmain {{\n{main_body}\n}}");
        Compiler::new().compile(&full)?.run()
    }
}
