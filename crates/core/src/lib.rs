//! # jns-core
//!
//! The public facade of the J&s reproduction (*Sharing Classes Between
//! Families*, Qi & Myers, PLDI 2009): one-call compile/run pipeline plus
//! the paper's flagship case studies written in the J&s surface language
//! (the §7.3 lambda compiler and the §2.4 service-evolution example).
//!
//! Execution is pluggable via [`Backend`]: the tree-walking reference
//! interpreter (`jns-eval`), or the bytecode VM (`jns-vm`) with the
//! paper's §6 machinery — union field layouts, view-keyed inline caches,
//! and memoised view changes. Both backends are observably equivalent;
//! the VM is the fast path.
//!
//! # Examples
//!
//! ```
//! use jns_core::Compiler;
//!
//! let out = Compiler::new()
//!     .compile(
//!         "class A { class C { int x = 41; } }
//!          main { final A.C c = new A.C(); print c.x + 1; }",
//!     )?
//!     .run()?;
//! assert_eq!(out.output, vec!["42"]);
//! # Ok::<(), jns_core::Error>(())
//! ```

#![warn(missing_docs)]

pub mod lambda;
pub mod service;

use std::fmt;

pub use jns_eval::{Machine, RtError, Stats, Value};
pub use jns_syntax::{parse, ParseError, Program};
pub use jns_types::{check, CheckedProgram, TypeError};

/// Any error from the pipeline.
#[derive(Debug)]
pub enum Error {
    /// A lexing/parsing error.
    Parse(ParseError),
    /// One or more type errors.
    Type(Vec<TypeError>),
    /// A runtime error.
    Runtime(RtError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "{e}"),
            Error::Type(es) => {
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        writeln!(f)?;
                    }
                    write!(f, "{e}")?;
                }
                Ok(())
            }
            Error::Runtime(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Self {
        Error::Parse(e)
    }
}

impl From<Vec<TypeError>> for Error {
    fn from(e: Vec<TypeError>) -> Self {
        Error::Type(e)
    }
}

impl From<RtError> for Error {
    fn from(e: RtError) -> Self {
        Error::Runtime(e)
    }
}

/// Which execution engine runs a compiled program.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The tree-walking reference interpreter (`jns-eval`).
    #[default]
    TreeWalk,
    /// The bytecode VM (`jns-vm`): union field layouts, view-keyed inline
    /// caches, memoised view changes.
    Vm,
}

/// The nursery capacity requested by the `JNS_NURSERY` environment
/// variable, if set to a positive integer. [`Compiler::new`] and
/// `jns_serve::ServeConfig` use this as their default, which is how CI
/// forces generational collection onto whole test suites (e.g.
/// `JNS_NURSERY=8 cargo test --test gc`) without per-call plumbing.
/// Explicit `--nursery` / [`Compiler::with_nursery`] settings win.
pub fn env_nursery() -> Option<usize> {
    std::env::var("JNS_NURSERY")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// The compiler front door.
#[derive(Debug, Default, Clone, Copy)]
pub struct Compiler {
    fuel: Option<u64>,
    max_depth: Option<u32>,
    heap_limit: Option<usize>,
    nursery: Option<usize>,
    infer_constraints: bool,
    backend: Backend,
    // Dispatch-engine ablation knobs, stored negated so `Default` (false)
    // means both stages are on.
    no_fuse: bool,
    no_quicken: bool,
}

impl Compiler {
    /// Creates a compiler with default settings (the nursery defaults
    /// from [`env_nursery`], so test suites can be forced generational
    /// wholesale).
    pub fn new() -> Self {
        Self {
            nursery: env_nursery(),
            ..Self::default()
        }
    }

    /// Limits execution fuel for [`Compiled::run`].
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = Some(fuel);
        self
    }

    /// Sets the recursion-depth limit for [`Compiled::run`] (method
    /// activations plus nested field initialisers; default
    /// [`jns_eval::DEFAULT_MAX_DEPTH`]). Both backends run on explicit
    /// heap-allocated stacks, so large limits are safe: exceeding the
    /// limit returns the benign [`RtError::DepthExceeded`] instead of
    /// crashing the process.
    pub fn with_max_depth(mut self, max_depth: u32) -> Self {
        self.max_depth = Some(max_depth);
        self
    }

    /// Sets the live-heap threshold for [`Compiled::run`] (both backends
    /// run on the shared [`jns_eval::Heap`]): once this many objects are
    /// live, the next allocation first runs a mark-compact tracing
    /// collection over the machine's explicit stacks, so a single giant
    /// request keeps a bounded live heap instead of growing monotonically.
    /// Unset (the default) disables the collector, with byte-identical
    /// behaviour to an unlimited heap.
    pub fn with_heap_limit(mut self, heap_limit: usize) -> Self {
        self.heap_limit = Some(heap_limit);
        self
    }

    /// Sets the nursery capacity for generational collection on
    /// [`Compiled::run`] (effective only alongside a heap limit): new
    /// objects bump-allocate into the nursery, a full nursery triggers a
    /// cheap *minor* collection that promotes survivors, and the
    /// existing full mark-compact remains the *major* collection.
    /// Outputs and semantic statistics are identical with the nursery on
    /// or off; only GC cost and the `minor_runs`/`major_runs`/
    /// `promoted`/`barrier_hits` counters move.
    pub fn with_nursery(mut self, nursery: usize) -> Self {
        self.nursery = Some(nursery);
        self
    }

    /// Enables automatic inference of method sharing constraints (the
    /// paper's §2.5 future work); inferred constraints still participate
    /// in Q-OK, so modular soundness is preserved.
    pub fn with_inferred_constraints(mut self) -> Self {
        self.infer_constraints = true;
        self
    }

    /// Selects the execution backend for [`Compiled::run`].
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Enables or disables superinstruction fusion when lowering to
    /// bytecode (VM backend; on by default). Fusion is observably
    /// identical apart from `Stats::{steps, fused}` — each fused pair
    /// costs one step instead of two or three.
    pub fn with_fusion(mut self, on: bool) -> Self {
        self.no_fuse = !on;
        self
    }

    /// Enables or disables IC-guided quickening in spawned VMs (on by
    /// default). Quickening rewrites are strict one-for-one instruction
    /// replacements, so even `Stats::steps` is unchanged; only
    /// `Stats::{quickened, dequickened}` and inline-cache counters move.
    pub fn with_quickening(mut self, on: bool) -> Self {
        self.no_quicken = !on;
        self
    }

    /// Parses and type-checks `src`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Parse`] or [`Error::Type`].
    pub fn compile(self, src: &str) -> Result<Compiled, Error> {
        let parse_start = std::time::Instant::now();
        let ast = parse(src)?;
        let parse_us = parse_start.elapsed().as_micros() as u64;
        let check_start = std::time::Instant::now();
        let checked = jns_types::check_with(
            &ast,
            jns_types::CheckOptions {
                infer_constraints: self.infer_constraints,
            },
        )?;
        let check_us = check_start.elapsed().as_micros() as u64;
        Ok(Compiled {
            program: checked,
            fuel: self.fuel,
            max_depth: self.max_depth,
            heap_limit: self.heap_limit,
            nursery: self.nursery,
            backend: self.backend,
            no_fuse: self.no_fuse,
            no_quicken: self.no_quicken,
            bytecode: std::sync::OnceLock::new(),
            timings: CompileTimings { parse_us, check_us },
        })
    }
}

/// Wall-clock cost of the front-end phases, microseconds. Recorded on
/// every compile (two `Instant` reads — unobservable next to parsing
/// itself) so `--trace` can emit phase events without a re-compile.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileTimings {
    /// Lexing + parsing.
    pub parse_us: u64,
    /// Type checking (including sharing-constraint verification).
    pub check_us: u64,
}

/// A compiled program, ready to run.
#[derive(Debug)]
pub struct Compiled {
    /// The checked program (public: benches poke at the class table).
    pub program: CheckedProgram,
    fuel: Option<u64>,
    max_depth: Option<u32>,
    heap_limit: Option<usize>,
    nursery: Option<usize>,
    backend: Backend,
    no_fuse: bool,
    no_quicken: bool,
    /// Lazily lowered bytecode, shared (via `Arc`) by every VM run of
    /// this program — including worker VMs on other threads.
    bytecode: std::sync::OnceLock<std::sync::Arc<jns_vm::VmProgram>>,
    timings: CompileTimings,
}

/// The result of a program run.
#[derive(Debug)]
pub struct RunOutput {
    /// Lines produced by `print`.
    pub output: Vec<String>,
    /// The final value of `main`.
    pub value: Value,
    /// Execution statistics.
    pub stats: Stats,
    /// Per-chunk executed-instruction counts, most executed first (VM
    /// backend only; empty for the tree-walker).
    pub chunk_profile: Vec<(String, u64)>,
    /// Per-site inline-cache hit/miss/polymorphism profile (VM backend
    /// only; empty for the tree-walker).
    pub ic_profile: Vec<jns_obs::IcSiteProfile>,
    /// The trace buffer handed to [`Compiled::run_observed`], with the
    /// events the run appended; `None` when tracing was off.
    pub trace: Option<jns_obs::TraceBuffer>,
    /// The sampling profiler's collapsed stacks (see
    /// [`jns_obs::ProfileSamples`]); `None` unless the run was started
    /// via [`Compiled::run_with`] with a sample stride, on the VM
    /// backend.
    pub samples: Option<jns_obs::ProfileSamples>,
}

/// Observability options for one run (all off by default, in which case
/// the run is byte-identical to [`Compiled::run_on`]).
#[derive(Debug, Default)]
pub struct RunOptions {
    /// Structured-event sink for GC and inline-cache-miss events; comes
    /// back (with the run's events appended) in [`RunOutput::trace`].
    pub trace: Option<jns_obs::TraceBuffer>,
    /// Enable the VM's sampling profiler with this instruction stride
    /// (ignored by the tree-walk backend, which has no instruction
    /// stream to stride over). Samples come back in
    /// [`RunOutput::samples`].
    pub sample_stride: Option<u64>,
}

impl Compiled {
    /// Runs `main` on the backend selected at compile time.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Runtime`] on runtime failure (benign ones only for
    /// well-typed programs: cast failure, fuel or depth exhaustion,
    /// division by zero).
    pub fn run(&self) -> Result<RunOutput, Error> {
        self.run_on(self.backend)
    }

    /// Runs `main` on an explicit backend (used by the differential tests
    /// and benches to drive both engines over one compiled program).
    ///
    /// # Errors
    ///
    /// Same contract as [`Compiled::run`].
    pub fn run_on(&self, backend: Backend) -> Result<RunOutput, Error> {
        self.run_observed(backend, None)
    }

    /// Runs `main` on an explicit backend with an optional trace buffer
    /// attached; the buffer (with the run's GC and inline-cache-miss
    /// events appended) comes back in [`RunOutput::trace`]. With `None`
    /// the run is byte-identical to [`Compiled::run_on`] — every hook in
    /// both engines is a branch on a `None` sink.
    ///
    /// # Errors
    ///
    /// Same contract as [`Compiled::run`]. On error the trace buffer is
    /// dropped with the failed machine.
    pub fn run_observed(
        &self,
        backend: Backend,
        trace: Option<jns_obs::TraceBuffer>,
    ) -> Result<RunOutput, Error> {
        self.run_with(
            backend,
            RunOptions {
                trace,
                sample_stride: None,
            },
        )
    }

    /// Runs `main` on an explicit backend with the full set of
    /// observability options: an optional trace buffer and, on the VM,
    /// an optional sampling-profiler stride. The default options make
    /// this identical to [`Compiled::run_on`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Compiled::run`]. On error the trace buffer and
    /// samples are dropped with the failed machine.
    pub fn run_with(&self, backend: Backend, opts: RunOptions) -> Result<RunOutput, Error> {
        let RunOptions {
            trace,
            sample_stride,
        } = opts;
        match backend {
            Backend::TreeWalk => {
                let mut m = Machine::new(&self.program);
                if let Some(f) = self.fuel {
                    m = m.with_fuel(f);
                }
                if let Some(d) = self.max_depth {
                    m = m.with_max_depth(d);
                }
                if let Some(l) = self.heap_limit {
                    m = m.with_heap_limit(l);
                }
                if let Some(n) = self.nursery {
                    m = m.with_nursery(n);
                }
                if let Some(t) = trace {
                    m.set_trace(t);
                }
                let value = m.run()?;
                Ok(RunOutput {
                    output: std::mem::take(&mut m.output),
                    value,
                    stats: m.stats,
                    chunk_profile: Vec::new(),
                    ic_profile: Vec::new(),
                    trace: m.take_trace(),
                    samples: None,
                })
            }
            Backend::Vm => {
                let mut vm = self.spawn_vm();
                if let Some(f) = self.fuel {
                    vm = vm.with_fuel(f);
                }
                if let Some(d) = self.max_depth {
                    vm = vm.with_max_depth(d);
                }
                if let Some(l) = self.heap_limit {
                    vm = vm.with_heap_limit(l);
                }
                if let Some(n) = self.nursery {
                    vm = vm.with_nursery(n);
                }
                if let Some(t) = trace {
                    vm.set_trace(t);
                }
                if let Some(s) = sample_stride {
                    vm.set_sample_stride(s);
                }
                let value = vm.run()?;
                let samples = vm.sample_stride().map(|stride| jns_obs::ProfileSamples {
                    stride,
                    taken: vm.samples_taken(),
                    stacks: vm.folded_samples(),
                });
                Ok(RunOutput {
                    output: std::mem::take(&mut vm.output),
                    value,
                    stats: vm.stats,
                    chunk_profile: vm.profile(),
                    ic_profile: vm.ic_profile(),
                    trace: vm.take_trace(),
                    samples,
                })
            }
        }
    }

    /// Front-end phase timings for this compile (for `--trace` phase
    /// events and the profile export).
    pub fn timings(&self) -> CompileTimings {
        self.timings
    }

    /// The lowered bytecode of this program (compiled once, then shared).
    pub fn bytecode(&self) -> &std::sync::Arc<jns_vm::VmProgram> {
        self.bytecode.get_or_init(|| {
            std::sync::Arc::new(jns_vm::compile_with(
                &self.program,
                jns_vm::CompileOptions {
                    fuse: !self.no_fuse,
                },
            ))
        })
    }

    /// Spawns a fresh VM over this program's (lazily compiled, shared)
    /// bytecode, with the compile-time quickening knob applied. The VM
    /// borrows `self`; callers that want to reuse one VM across many
    /// top-level invocations should pair `Vm::run` with
    /// `Vm::reset_for_request` so the heap stays flat.
    pub fn spawn_vm(&self) -> jns_vm::Vm<'_> {
        jns_vm::Vm::new(&self.program, self.bytecode().as_ref()).with_quickening(!self.no_quicken)
    }

    /// A `Send` handle for fanning this program out to worker threads:
    /// the immutable bytecode is shared by `Arc`, while each handle
    /// carries its own clone of the checked program (whose class table is
    /// an interior-mutable, lazily growing memo structure and therefore
    /// deliberately *not* shared across threads). Cloning the handle is
    /// how a pool gives every worker its own table.
    pub fn shared(&self) -> SharedProgram {
        SharedProgram {
            program: self.program.clone(),
            code: std::sync::Arc::clone(self.bytecode()),
            quicken: !self.no_quicken,
        }
    }

    /// Runs an arbitrary `main` body against this program's classes by
    /// recompiling with the given main block. Convenience for harnesses.
    ///
    /// # Errors
    ///
    /// Propagates compile/run errors.
    pub fn run_main(src_classes: &str, main_body: &str) -> Result<RunOutput, Error> {
        let full = format!("{src_classes}\nmain {{\n{main_body}\n}}");
        Compiler::new().compile(&full)?.run()
    }
}

/// A per-thread handle onto one compiled program: shared immutable
/// bytecode (`Arc<VmProgram>`) plus an owned checked program whose lazy
/// class-table caches grow independently — and deterministically, so
/// every handle answers every query identically.
///
/// Created by [`Compiled::shared`]; `Clone` it once per worker thread.
#[derive(Debug, Clone)]
pub struct SharedProgram {
    program: CheckedProgram,
    code: std::sync::Arc<jns_vm::VmProgram>,
    quicken: bool,
}

impl SharedProgram {
    /// Spawns a VM borrowing this handle. A worker thread typically owns
    /// one `SharedProgram`, spawns one VM, and calls
    /// [`jns_vm::Vm::reset_for_request`] between requests. Each worker VM
    /// quickens into its *own* chunk copies; the shared `Arc<VmProgram>`
    /// is never written.
    pub fn spawn_vm(&self) -> jns_vm::Vm<'_> {
        jns_vm::Vm::new(&self.program, self.code.as_ref()).with_quickening(self.quicken)
    }

    /// The checked program backing this handle.
    pub fn program(&self) -> &CheckedProgram {
        &self.program
    }

    /// The shared bytecode.
    pub fn code(&self) -> &std::sync::Arc<jns_vm::VmProgram> {
        &self.code
    }
}

// Worker pools move `SharedProgram` handles into threads.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<SharedProgram>();
};
